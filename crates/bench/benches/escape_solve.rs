//! Escape-solver benchmarks: cold network build + solve (the reference
//! per-round cost) against the incremental path's warm delta-apply +
//! re-solve on the same synthetic occupancy, at the two grid sizes
//! bracketing the dense flow-benchmark chips (48², 96²).
//!
//! The two paths route bit-identical results (see the persistent-escape
//! tests in `crates/flow/src/escape.rs` and the
//! `incremental_escape_matches_reference` proptest), so these numbers
//! compare cost only.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pacor::grid::{Grid, ObsMap, Point};
use pacor::netflow::{EscapeNetwork, EscapeSource, PersistentEscape, SourceKind};

/// Synthetic escape occupancy on an n×n grid: ~5% scattered obstacles,
/// singleton valve sources spread over the interior, pins along the
/// west and east edges — the shape of a phase-1 escape round after MST
/// routing committed its nets.
fn scenario(n: u32) -> (ObsMap, Vec<EscapeSource>, Vec<Point>) {
    let mut grid = Grid::new(n, n).unwrap();
    for k in 0..(n * n / 20) {
        let x = (k * 37) % n;
        let y = (k * 61) % n;
        grid.set_obstacle(Point::new(x as i32, y as i32));
    }
    let mut obs = ObsMap::new(&grid);
    let mut sources = Vec::new();
    let step = n as i32 / 8;
    for sy in 1..8 {
        for sx in 1..8 {
            let p = Point::new(sx * step, sy * step);
            if !obs.is_blocked(p) {
                obs.block(p);
                sources.push(EscapeSource::at(SourceKind::SingleValve, p));
            }
        }
    }
    let mut pins = Vec::new();
    for y in (1..n as i32 - 1).step_by(3) {
        for x in [0, n as i32 - 1] {
            let p = Point::new(x, y);
            if !obs.is_blocked(p) {
                pins.push(p);
            }
        }
    }
    (obs, sources, pins)
}

/// Free cells adjacent to sources — the cells a rip-up round would
/// transiently unblock and re-block, i.e. the delta churn the warm
/// path absorbs between solves.
fn churn_cells(obs: &ObsMap, sources: &[EscapeSource], count: usize) -> Vec<Point> {
    let mut cells = Vec::new();
    for src in sources {
        for q in src.cells[0].neighbors4() {
            if q.x > 0
                && q.y > 0
                && q.x < obs.width() as i32 - 1
                && q.y < obs.height() as i32 - 1
                && !obs.is_blocked(q)
                && !cells.contains(&q)
            {
                cells.push(q);
                break;
            }
        }
        if cells.len() >= count {
            break;
        }
    }
    cells
}

fn bench_escape_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("escape_solve");
    group.sample_size(20);
    for n in [48u32, 96] {
        let (obs, sources, pins) = scenario(n);
        // Cold: what the reference solver pays every round — build the
        // network from scratch and solve from zero flow.
        group.bench_with_input(BenchmarkId::new("cold_build_solve", n), &n, |b, _| {
            b.iter(|| EscapeNetwork::build(&obs, &sources, &pins).solve())
        });
        // Warm: what the incremental solver pays per later round — mirror
        // a handful of obstacle deltas onto the persistent network and
        // re-solve under retained flow and potentials. Each iteration
        // runs a block + re-unblock delta cycle (two apply+resolve
        // rounds), returning the occupancy to its base state so every
        // sample measures the same work.
        group.bench_with_input(BenchmarkId::new("warm_delta_resolve", n), &n, |b, _| {
            let mut obs = obs.clone();
            obs.enable_delta_log();
            let mut pe = PersistentEscape::new(&obs, &sources, &pins);
            let slots: Vec<usize> = (0..sources.len()).collect();
            pe.solve_round(&slots, true);
            let churn = churn_cells(&obs, &sources, 8);
            b.iter(|| {
                obs.block_all(churn.iter().copied());
                let deltas = obs.take_deltas();
                pe.apply_deltas(&deltas);
                let first = pe.solve_round(&slots, false);
                obs.unblock_all(churn.iter().copied());
                let deltas = obs.take_deltas();
                pe.apply_deltas(&deltas);
                let second = pe.solve_round(&slots, false);
                (first.outcome.routed, second.outcome.routed)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_escape_solve);
criterion_main!(benches);
