//! Property tests pinning the MWCP graph builder to its retained
//! pre-rewrite reference (`SelectionInstance::to_graph_reference`),
//! the same pattern as `AStar::route_reference`. The production
//! builder may fill the dense adjacency differently, but the resulting
//! `WeightedGraph` — node weights, every edge, every non-edge — must
//! be equal, which pins everything downstream (clique solvers,
//! `select_one_per_group`) byte-for-byte.

use pacor_clique::{select_one_per_group, SelectionInstance};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministically derives a random selection instance from the
/// proptest-chosen scalars: `ngroups` groups of 1..=4 candidates with
/// negative mismatch weights, plus random cross-group pair costs —
/// including a sprinkling of malformed entries (same-group and
/// out-of-range indices) that both builders must skip identically.
fn setup(seed: u64, ngroups: usize, pair_density: u32) -> SelectionInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut groups = Vec::with_capacity(ngroups);
    for _ in 0..ngroups {
        let k = rng.gen_range(1usize..=4);
        groups.push((0..k).map(|_| -(rng.gen_range(0u32..2000) as f64) / 1000.0).collect());
    }
    let mut inst = SelectionInstance::new(groups);
    for ga in 0..ngroups {
        for gb in 0..ngroups {
            for ia in 0..inst.groups[ga].len() {
                for ib in 0..inst.groups[gb].len() {
                    if rng.gen_range(0u32..100) < pair_density {
                        inst.add_pair_cost((ga, ia), (gb, ib), -(rng.gen_range(0u32..3000) as f64) / 1000.0);
                    }
                }
            }
        }
        // Out-of-range entries are ignored by contract; both builders
        // must agree on that too.
        if rng.gen_range(0u32..100) < 20 {
            inst.add_pair_cost((ga, 99), (ngroups + 1, 0), -1.0);
        }
    }
    inst
}

proptest! {
    #[test]
    fn graph_builder_matches_reference(
        seed in 0u64..u64::MAX,
        ngroups in 1usize..6,
        pair_density in 0u32..60,
    ) {
        let inst = setup(seed, ngroups, pair_density);
        let bonus = inst.dominating_bonus();
        let fast = inst.to_graph(bonus);
        let reference = inst.to_graph_reference(bonus);
        prop_assert_eq!(&fast, &reference, "MWCP graphs diverged");
    }

    #[test]
    fn selection_is_complete_and_in_range(
        seed in 0u64..u64::MAX,
        ngroups in 1usize..5,
        pair_density in 0u32..50,
    ) {
        let inst = setup(seed, ngroups, pair_density);
        let sel = select_one_per_group(&inst, 64);
        prop_assert_eq!(sel.picks.len(), ngroups);
        for (g, &p) in sel.picks.iter().enumerate() {
            prop_assert!(p < inst.groups[g].len());
        }
    }
}
