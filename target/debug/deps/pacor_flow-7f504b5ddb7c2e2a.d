/root/repo/target/debug/deps/pacor_flow-7f504b5ddb7c2e2a.d: crates/flow/src/lib.rs crates/flow/src/escape.rs crates/flow/src/mcf.rs

/root/repo/target/debug/deps/pacor_flow-7f504b5ddb7c2e2a: crates/flow/src/lib.rs crates/flow/src/escape.rs crates/flow/src/mcf.rs

crates/flow/src/lib.rs:
crates/flow/src/escape.rs:
crates/flow/src/mcf.rs:
