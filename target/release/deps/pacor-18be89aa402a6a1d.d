/root/repo/target/release/deps/pacor-18be89aa402a6a1d.d: crates/core/src/lib.rs crates/core/src/bench_suite.rs crates/core/src/config.rs crates/core/src/detour.rs crates/core/src/error.rs crates/core/src/escape_stage.rs crates/core/src/flow.rs crates/core/src/lm_routing.rs crates/core/src/mst_routing.rs crates/core/src/physics.rs crates/core/src/problem.rs crates/core/src/render.rs crates/core/src/report.rs crates/core/src/routed.rs crates/core/src/verify.rs

/root/repo/target/release/deps/libpacor-18be89aa402a6a1d.rlib: crates/core/src/lib.rs crates/core/src/bench_suite.rs crates/core/src/config.rs crates/core/src/detour.rs crates/core/src/error.rs crates/core/src/escape_stage.rs crates/core/src/flow.rs crates/core/src/lm_routing.rs crates/core/src/mst_routing.rs crates/core/src/physics.rs crates/core/src/problem.rs crates/core/src/render.rs crates/core/src/report.rs crates/core/src/routed.rs crates/core/src/verify.rs

/root/repo/target/release/deps/libpacor-18be89aa402a6a1d.rmeta: crates/core/src/lib.rs crates/core/src/bench_suite.rs crates/core/src/config.rs crates/core/src/detour.rs crates/core/src/error.rs crates/core/src/escape_stage.rs crates/core/src/flow.rs crates/core/src/lm_routing.rs crates/core/src/mst_routing.rs crates/core/src/physics.rs crates/core/src/problem.rs crates/core/src/render.rs crates/core/src/report.rs crates/core/src/routed.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/bench_suite.rs:
crates/core/src/config.rs:
crates/core/src/detour.rs:
crates/core/src/error.rs:
crates/core/src/escape_stage.rs:
crates/core/src/flow.rs:
crates/core/src/lm_routing.rs:
crates/core/src/mst_routing.rs:
crates/core/src/physics.rs:
crates/core/src/problem.rs:
crates/core/src/render.rs:
crates/core/src/report.rs:
crates/core/src/routed.rs:
crates/core/src/verify.rs:
