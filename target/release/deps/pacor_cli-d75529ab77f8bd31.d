/root/repo/target/release/deps/pacor_cli-d75529ab77f8bd31.d: src/bin/pacor_cli.rs

/root/repo/target/release/deps/pacor_cli-d75529ab77f8bd31: src/bin/pacor_cli.rs

src/bin/pacor_cli.rs:
