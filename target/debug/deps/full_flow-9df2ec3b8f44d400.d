/root/repo/target/debug/deps/full_flow-9df2ec3b8f44d400.d: tests/full_flow.rs

/root/repo/target/debug/deps/full_flow-9df2ec3b8f44d400: tests/full_flow.rs

tests/full_flow.rs:
