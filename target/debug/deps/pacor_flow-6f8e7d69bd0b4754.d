/root/repo/target/debug/deps/pacor_flow-6f8e7d69bd0b4754.d: crates/flow/src/lib.rs crates/flow/src/escape.rs crates/flow/src/mcf.rs

/root/repo/target/debug/deps/libpacor_flow-6f8e7d69bd0b4754.rlib: crates/flow/src/lib.rs crates/flow/src/escape.rs crates/flow/src/mcf.rs

/root/repo/target/debug/deps/libpacor_flow-6f8e7d69bd0b4754.rmeta: crates/flow/src/lib.rs crates/flow/src/escape.rs crates/flow/src/mcf.rs

crates/flow/src/lib.rs:
crates/flow/src/escape.rs:
crates/flow/src/mcf.rs:
