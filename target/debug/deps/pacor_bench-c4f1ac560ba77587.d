/root/repo/target/debug/deps/pacor_bench-c4f1ac560ba77587.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpacor_bench-c4f1ac560ba77587.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpacor_bench-c4f1ac560ba77587.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
