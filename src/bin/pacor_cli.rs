//! `pacor` — command-line front-end for the PACOR routing flow.
//!
//! ```text
//! pacor synth <design> [seed]                    write a problem JSON to stdout
//! pacor route [options] <problem.json|design>    run the flow, report JSON to stdout
//! pacor render [--threads N] <problem.json|design>  run the flow, SVG to stdout
//! pacor table2 [--full] [--threads N]            regenerate the paper's Table 2
//! ```
//!
//! `<design>` is one of `Chip1 Chip2 S1 S2 S3 S4 S5`; `route` and
//! `render` additionally accept the dense flow-benchmark chips
//! (`B0-smoke16 B1-dense24 B2-dense48 B3-dense96 B4-dense256
//! B5-dense512`). Anything else is treated as a path to a problem JSON
//! produced by `pacor synth` (or by hand — the schema is
//! `pacor::Problem`'s serde form).
//!
//! `route` options:
//!
//! * `--threads N` — fan the data-parallel flow stages out over `N`
//!   worker threads; results are bit-identical at any value (see
//!   docs/GUIDE.md).
//! * `--trace-out <path>` — write the run's Chrome trace-event JSON
//!   (loadable in `chrome://tracing` or Perfetto).
//! * `--metrics-out <path>` — write the run's flat metrics JSON
//!   (counters + histograms with quantiles; byte-identical at any
//!   `--threads`).
//! * `--report-out <path>` — install the flight recorder around the run
//!   and write the post-mortem report JSON (hottest cells, contended
//!   nets, per-cluster LM slack, escape bottlenecks; byte-identical at
//!   any `--threads`, either negotiation mode, and either rip-up policy
//!   whenever those settings route the same result).
//! * `--ripup-policy full|incremental` — what negotiation rips up between
//!   failed rounds (default `incremental`; `full` is the paper's
//!   Algorithm 1, kept for ablation).
//! * `--negotiation-mode serial|parallel` — how each negotiation round
//!   attempts its pending nets (default `serial`; `parallel` speculates
//!   over the `--threads` workers and commits deterministically, landing
//!   on the identical routed result).
//! * `--escape-solver incremental|reference` — which solver drives the
//!   escape stage (default `incremental`: persistent network with delta
//!   edits, warm-started min-cost flow and windowed recovery solves;
//!   `reference` rebuilds and cold-solves every round — kept for
//!   ablation, routes the identical result).
//! * `--routing-mode flat|hierarchical` — one detailed pass over the
//!   whole chip (default `flat`), or the global-then-detailed split:
//!   gcell corridor planning, region-parallel detailed routing over
//!   the `--threads` workers (byte-identical at any count), and a
//!   stitch/repair pass for cross-region clusters (see DESIGN §15).
//! * `--gcell-size N` — gcell tile side in grid cells for the
//!   hierarchical global stage (default 32; a tile ≥ the chip width
//!   degenerates to the flat flow).
//! * `--quiet` — suppress the report JSON on stdout (and the
//!   `--progress` ticker).
//! * `--stream-out <path|->` — stream live telemetry events as
//!   `pacor-telemetry-v1` JSONL (one event per line). A path is
//!   written atomically (temp file + rename on clean finish, so a
//!   killed run never leaves a torn file); `-` streams to stderr
//!   line-by-line.
//! * `--progress` — human one-line round ticker on stderr
//!   (auto-disabled by `--quiet`).
//! * `--watchdog <bench.json>` — arm the stage watchdog: per-stage
//!   wall-clock budgets derived from the committed `stage_ms`
//!   baselines in a bench report (4x each stage's worst committed
//!   time, floored at 50 ms), emitting structured `budget_exceeded`
//!   events plus a 1 s heartbeat while a stage runs long.
//! * `--digest-out <path>` — write the run's `pacor-rundigest-v1`
//!   record (config fingerprint, deterministic outcome/counters/
//!   histograms, per-cluster LM slack, span tree). Everything outside
//!   the trailing `wall` sub-object is byte-identical at any
//!   `--threads`, either negotiation mode, and either rip-up policy
//!   whenever they route the same result; compare two digests with
//!   `tables compare`.
//! * `--ledger <path>` — atomically append the same digest as one
//!   compact line to an append-only `RUNS.jsonl` run ledger, so later
//!   runs can find their baseline (`pacor_obs::latest_baseline`).
//!
//! Unknown `--flags` are rejected with an error rather than silently
//! treated as file names.

use pacor::route::{NegotiationMode, RipUpPolicy};
use pacor::{
    BenchDesign, EscapeSolver, FlowConfig, FlowVariant, PacorFlow, Problem, RouteReport,
    RoutingMode,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("synth") => cmd_synth(&args[1..]),
        Some("route") => cmd_route(&args[1..]),
        Some("render") => cmd_render(&args[1..]),
        Some("table2") => cmd_table2(&args[1..]),
        _ => {
            eprintln!(
                "usage: pacor synth <design> [seed]\n       pacor route [--threads N] [--trace-out FILE] [--metrics-out FILE] [--report-out FILE] [--digest-out FILE] [--ledger FILE] [--stream-out FILE|-] [--progress] [--watchdog BENCH.json] [--ripup-policy full|incremental] [--negotiation-mode serial|parallel] [--escape-solver incremental|reference] [--routing-mode flat|hierarchical] [--gcell-size N] [--quiet] <problem.json|design>\n       pacor render [--threads N] <problem.json|design>\n       pacor table2 [--full] [--threads N]"
            );
            2
        }
    };
    std::process::exit(code);
}

fn design_of(name: &str) -> Option<BenchDesign> {
    match name {
        "Chip1" => Some(BenchDesign::Chip1),
        "Chip2" => Some(BenchDesign::Chip2),
        "S1" => Some(BenchDesign::S1),
        "S2" => Some(BenchDesign::S2),
        "S3" => Some(BenchDesign::S3),
        "S4" => Some(BenchDesign::S4),
        "S5" => Some(BenchDesign::S5),
        _ => None,
    }
}

/// Parsed command options.
#[derive(Debug, Default)]
struct Options {
    threads: usize,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    report_out: Option<String>,
    digest_out: Option<String>,
    ledger: Option<String>,
    stream_out: Option<String>,
    progress: bool,
    watchdog: Option<String>,
    ripup_policy: Option<RipUpPolicy>,
    negotiation_mode: Option<NegotiationMode>,
    escape_solver: Option<EscapeSolver>,
    routing_mode: Option<RoutingMode>,
    gcell_size: Option<u32>,
    quiet: bool,
    full: bool,
    positional: Vec<String>,
}

/// Parses `args` accepting only the flags named in `allowed`. Any other
/// `--flag` — including an allowed flag's typo — is an error, so a
/// mistyped option can never be swallowed as a file name.
fn parse_options(args: &[String], allowed: &[&str]) -> Result<Options, String> {
    let mut opts = Options {
        threads: 1,
        ..Options::default()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let flag = a.as_str();
        if flag.starts_with("--") && !allowed.contains(&flag) {
            return Err(if allowed.is_empty() {
                format!("unknown option {flag} (this command takes no options)")
            } else {
                format!("unknown option {flag} (supported: {})", allowed.join(" "))
            });
        }
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag {
            "--threads" => {
                let v = value()?;
                opts.threads =
                    v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--threads: expected a positive integer, got {v:?}")
                    })?;
            }
            "--trace-out" => opts.trace_out = Some(value()?),
            "--metrics-out" => opts.metrics_out = Some(value()?),
            "--report-out" => opts.report_out = Some(value()?),
            "--digest-out" => opts.digest_out = Some(value()?),
            "--ledger" => opts.ledger = Some(value()?),
            "--stream-out" => opts.stream_out = Some(value()?),
            "--progress" => opts.progress = true,
            "--watchdog" => opts.watchdog = Some(value()?),
            "--ripup-policy" => {
                let v = value()?;
                opts.ripup_policy = Some(RipUpPolicy::parse(&v).ok_or_else(|| {
                    format!("--ripup-policy: expected full or incremental, got {v:?}")
                })?);
            }
            "--negotiation-mode" => {
                let v = value()?;
                opts.negotiation_mode = Some(NegotiationMode::parse(&v).ok_or_else(|| {
                    format!("--negotiation-mode: expected serial or parallel, got {v:?}")
                })?);
            }
            "--escape-solver" => {
                let v = value()?;
                opts.escape_solver = Some(EscapeSolver::parse(&v).ok_or_else(|| {
                    format!("--escape-solver: expected incremental or reference, got {v:?}")
                })?);
            }
            "--routing-mode" => {
                let v = value()?;
                opts.routing_mode = Some(RoutingMode::parse(&v).ok_or_else(|| {
                    format!("--routing-mode: expected flat or hierarchical, got {v:?}")
                })?);
            }
            "--gcell-size" => {
                let v = value()?;
                opts.gcell_size =
                    Some(v.parse::<u32>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--gcell-size: expected a positive integer, got {v:?}")
                    })?);
            }
            "--quiet" => opts.quiet = true,
            "--full" => opts.full = true,
            _ => opts.positional.push(a.clone()),
        }
    }
    Ok(opts)
}

/// The dense flow-benchmark chips, routable by name like the Table 1
/// designs (`make escape-smoke` depends on this for B2-dense48).
fn bench_chip_of(name: &str) -> Option<pacor::DesignParams> {
    std::iter::once(pacor::FLOW_SMOKE_CHIP)
        .chain(pacor::FLOW_BENCH_CHIPS)
        .chain(std::iter::once(pacor::FLOW_HUGE_CHIP))
        .find(|c| c.name == name)
}

fn load_problem(arg: &str, seed: u64) -> Result<Problem, String> {
    if let Some(design) = design_of(arg) {
        return Ok(design.synthesize(seed));
    }
    if let Some(chip) = bench_chip_of(arg) {
        return Ok(pacor::synthesize_params(chip, seed));
    }
    let text = std::fs::read_to_string(arg).map_err(|e| format!("reading {arg}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parsing {arg}: {e}"))
}

fn cmd_synth(args: &[String]) -> i32 {
    let opts = match parse_options(args, &[]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("synth: {e}");
            return 2;
        }
    };
    let Some(name) = opts.positional.first() else {
        eprintln!("synth: missing design name");
        return 2;
    };
    let Some(design) = design_of(name) else {
        eprintln!("synth: unknown design {name}");
        return 2;
    };
    let seed = opts
        .positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    let problem = design.synthesize(seed);
    println!(
        "{}",
        serde_json::to_string_pretty(&problem).expect("problems serialize")
    );
    0
}

/// Writes the observability exports requested by `--trace-out` /
/// `--metrics-out` from a finished outer session.
fn write_exports(opts: &Options, report: &pacor::obs::ObsReport) -> Result<(), String> {
    if let Some(path) = &opts.trace_out {
        pacor::obs::atomic_write(path, pacor::obs::chrome_trace(report))
            .map_err(|e| format!("writing {path}: {e}"))?;
    }
    if let Some(path) = &opts.metrics_out {
        pacor::obs::atomic_write(path, pacor::obs::metrics_json(report))
            .map_err(|e| format!("writing {path}: {e}"))?;
    }
    Ok(())
}

/// Derives the watchdog's per-stage wall-clock budgets from a
/// committed bench report (`BENCH_flow.json`): four times each stage's
/// worst committed `stage_ms`, floored at 50 ms so sub-millisecond
/// stages never alarm on scheduler jitter.
fn load_budgets(path: &str) -> Result<pacor::obs::StageBudgets, String> {
    fn ms_of(v: &serde_json::Value) -> f64 {
        match v {
            serde_json::Value::Float(f) => *f,
            serde_json::Value::Int(i) => *i as f64,
            serde_json::Value::UInt(u) => *u as f64,
            _ => 0.0,
        }
    }
    let bad = |e: &dyn std::fmt::Display| format!("parsing {path}: {e}");
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let report: serde_json::Value = serde_json::from_str(&text).map_err(|e| bad(&e))?;
    let serde_json::Value::Array(entries) = report.field("entries").map_err(|e| bad(&e))? else {
        return Err(format!("parsing {path}: `entries` is not an array"));
    };
    const STAGES: [&str; 5] = [
        "clustering",
        "lm_routing",
        "mst_routing",
        "escape",
        "detour",
    ];
    let mut maxima = [0.0f64; 5];
    for entry in entries {
        let stage_ms = entry.field("stage_ms").map_err(|e| bad(&e))?;
        for (slot, name) in maxima.iter_mut().zip(STAGES) {
            *slot = slot.max(ms_of(stage_ms.field(name).map_err(|e| bad(&e))?));
        }
    }
    let budget = |ms: f64| ((ms * 4.0).ceil() as u64).max(50);
    Ok(pacor::obs::StageBudgets {
        clustering: budget(maxima[0]),
        lm_routing: budget(maxima[1]),
        mst_routing: budget(maxima[2]),
        escape: budget(maxima[3]),
        detour: budget(maxima[4]),
    })
}

fn cmd_route(args: &[String]) -> i32 {
    let opts = match parse_options(
        args,
        &[
            "--threads",
            "--trace-out",
            "--metrics-out",
            "--report-out",
            "--digest-out",
            "--ledger",
            "--stream-out",
            "--progress",
            "--watchdog",
            "--ripup-policy",
            "--negotiation-mode",
            "--escape-solver",
            "--routing-mode",
            "--gcell-size",
            "--quiet",
        ],
    ) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("route: {e}");
            return 2;
        }
    };
    let Some(arg) = opts.positional.first() else {
        eprintln!("route: missing problem file or design name");
        return 2;
    };
    let problem = match load_problem(arg, 42) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("route: {e}");
            return 1;
        }
    };
    // An outer observability session captures the flow's events (the
    // flow's own nested session merges upward into it on finish).
    let wants_obs = opts.trace_out.is_some()
        || opts.metrics_out.is_some()
        || opts.digest_out.is_some()
        || opts.ledger.is_some();
    let session = wants_obs.then(pacor::obs::Session::begin);
    let mut config = FlowConfig::default()
        .with_threads(opts.threads)
        .with_ripup_policy(opts.ripup_policy.unwrap_or_default())
        .with_negotiation_mode(opts.negotiation_mode.unwrap_or_default())
        .with_escape_solver(opts.escape_solver.unwrap_or_default())
        .with_routing_mode(opts.routing_mode.unwrap_or_default());
    if let Some(gcell) = opts.gcell_size {
        config = config.with_gcell_size(gcell);
    }
    if opts.report_out.is_some() {
        pacor::obs::flight_install(config.recorder_config());
    }
    // Streaming telemetry: a JSONL sink for `--stream-out`, a human
    // ticker for `--progress` (unless `--quiet`), and watchdog budgets
    // plus a heartbeat when `--watchdog` names a bench baseline.
    let ticker = opts.progress && !opts.quiet;
    if opts.stream_out.is_some() || ticker || opts.watchdog.is_some() {
        let mut sinks: Vec<Box<dyn pacor::obs::TelemetrySink>> = Vec::new();
        if let Some(path) = &opts.stream_out {
            if path == "-" {
                sinks.push(Box::new(pacor::obs::WriterSink::stderr()));
            } else {
                match pacor::obs::StreamWriter::create(path) {
                    Ok(w) => sinks.push(Box::new(w)),
                    Err(e) => {
                        eprintln!("route: writing {path}: {e}");
                        return 1;
                    }
                }
            }
        }
        if ticker {
            sinks.push(Box::new(pacor::obs::TickerSink));
        }
        let mut cfg = pacor::obs::TelemetryConfig::default();
        if let Some(bench) = &opts.watchdog {
            match load_budgets(bench) {
                Ok(budgets) => {
                    cfg.budgets = budgets;
                    cfg.heartbeat_ms = 1000;
                }
                Err(e) => {
                    eprintln!("route: {e}");
                    return 1;
                }
            }
        }
        pacor::obs::telemetry_install(cfg, sinks);
    }
    let result = PacorFlow::new(config).run(&problem);
    let telemetry_result = pacor::obs::telemetry_take();
    let flight_log = pacor::obs::flight_take();
    let obs_report = session.map(pacor::obs::Session::finish);
    if let Some(Err(e)) = telemetry_result {
        let path = opts.stream_out.as_deref().unwrap_or("-");
        eprintln!("route: writing {path}: {e}");
        return 1;
    }
    match result {
        Ok(report) => {
            if let Some(obs_report) = &obs_report {
                if let Err(e) = write_exports(&opts, obs_report) {
                    eprintln!("route: {e}");
                    return 1;
                }
            }
            if let Some(path) = &opts.report_out {
                let log = flight_log.expect("recorder was installed");
                let json = pacor::obs::post_mortem_json(&log);
                if let Err(e) = pacor::obs::atomic_write(path, json) {
                    eprintln!("route: writing {path}: {e}");
                    return 1;
                }
            }
            if opts.digest_out.is_some() || opts.ledger.is_some() {
                let obs_report = obs_report.as_ref().expect("outer session was begun");
                let digest = pacor::run_digest(&problem, &config, &report, obs_report);
                if let Some(path) = &opts.digest_out {
                    if let Err(e) = pacor::obs::atomic_write(path, digest.to_json()) {
                        eprintln!("route: writing {path}: {e}");
                        return 1;
                    }
                }
                if let Some(path) = &opts.ledger {
                    if let Err(e) = pacor::obs::ledger_append(std::path::Path::new(path), &digest)
                    {
                        eprintln!("route: writing {path}: {e}");
                        return 1;
                    }
                }
            }
            if !opts.quiet {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&report).expect("reports serialize")
                );
            }
            0
        }
        Err(e) => {
            eprintln!("route: {e}");
            1
        }
    }
}

fn cmd_render(args: &[String]) -> i32 {
    let opts = match parse_options(args, &["--threads"]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("render: {e}");
            return 2;
        }
    };
    let Some(arg) = opts.positional.first() else {
        eprintln!("render: missing problem file or design name");
        return 2;
    };
    let problem = match load_problem(arg, 42) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("render: {e}");
            return 1;
        }
    };
    match PacorFlow::new(FlowConfig::default().with_threads(opts.threads)).run_detailed(&problem) {
        Ok((_, routed)) => {
            print!("{}", pacor::render_svg(&problem, &routed, 12));
            0
        }
        Err(e) => {
            eprintln!("render: {e}");
            1
        }
    }
}

fn cmd_table2(args: &[String]) -> i32 {
    let opts = match parse_options(args, &["--full", "--threads"]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("table2: {e}");
            return 2;
        }
    };
    let designs: Vec<BenchDesign> = if opts.full {
        BenchDesign::ALL.to_vec()
    } else {
        BenchDesign::SYNTH.to_vec()
    };
    println!("{}", RouteReport::table_header());
    for d in designs {
        let problem = d.synthesize(42);
        for v in FlowVariant::ALL {
            let config = FlowConfig::for_variant(v).with_threads(opts.threads);
            match PacorFlow::new(config).run(&problem) {
                Ok(r) => println!("{}", r.table_row()),
                Err(e) => {
                    eprintln!("table2: {e}");
                    return 1;
                }
            }
        }
    }
    0
}
