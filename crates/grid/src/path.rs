//! Routed paths on the grid.

use crate::{GridError, GridLen, Point, Rect};
use serde::{Deserialize, Serialize};

/// A routed control-channel segment: a connected sequence of grid cells.
///
/// The channel *length* is the number of edges traversed
/// (`cells - 1`), matching the paper's grid-unit length accounting.
///
/// # Examples
///
/// ```
/// use pacor_grid::{GridPath, Point};
///
/// let p = GridPath::new(vec![
///     Point::new(0, 0),
///     Point::new(1, 0),
///     Point::new(1, 1),
/// ])?;
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.source(), Point::new(0, 0));
/// assert_eq!(p.target(), Point::new(1, 1));
/// # Ok::<(), pacor_grid::GridError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridPath {
    cells: Vec<Point>,
}

impl GridPath {
    /// Creates a path from a cell sequence, validating connectivity.
    ///
    /// A path may legitimately revisit a cell: the minimum-length bounded
    /// router (Section 6) produces detours that wind back and forth; only
    /// *adjacency* of consecutive cells is required.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::DisconnectedPath`] when two consecutive cells
    /// are not 4-neighbors, and [`GridError::InvalidDimensions`] when the
    /// sequence is empty.
    pub fn new(cells: Vec<Point>) -> Result<Self, GridError> {
        if cells.is_empty() {
            return Err(GridError::InvalidDimensions {
                width: 0,
                height: 0,
            });
        }
        for (i, w) in cells.windows(2).enumerate() {
            if !w[0].is_adjacent(w[1]) {
                return Err(GridError::DisconnectedPath { at: i });
            }
        }
        Ok(Self { cells })
    }

    /// A zero-length path sitting on a single cell.
    pub fn singleton(p: Point) -> Self {
        Self { cells: vec![p] }
    }

    /// Channel length in grid units (edges traversed).
    #[inline]
    pub fn len(&self) -> GridLen {
        (self.cells.len() - 1) as GridLen
    }

    /// Returns `true` when the path is a single cell (zero length).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.len() == 1
    }

    /// First cell.
    #[inline]
    pub fn source(&self) -> Point {
        self.cells[0]
    }

    /// Last cell.
    #[inline]
    pub fn target(&self) -> Point {
        *self.cells.last().expect("path is never empty")
    }

    /// The cell sequence.
    #[inline]
    pub fn cells(&self) -> &[Point] {
        &self.cells
    }

    /// Iterates over the cells.
    pub fn iter(&self) -> std::slice::Iter<'_, Point> {
        self.cells.iter()
    }

    /// Reverses the path in place (swap source/target).
    pub fn reverse(&mut self) {
        self.cells.reverse();
    }

    /// Returns the reversed path.
    pub fn to_reversed(&self) -> GridPath {
        let mut cells = self.cells.clone();
        cells.reverse();
        GridPath { cells }
    }

    /// Bounding box of all cells.
    pub fn bbox(&self) -> Rect {
        let mut r = Rect::from_point(self.cells[0]);
        for &p in &self.cells[1..] {
            r = r.union(&Rect::from_point(p));
        }
        r
    }

    /// Returns `true` when `p` lies on the path.
    pub fn contains(&self, p: Point) -> bool {
        self.cells.contains(&p)
    }

    /// The cell at the middle of the path (used as the escape-routing
    /// source for two-valve length-matching clusters, Section 5 case (2)).
    pub fn midpoint(&self) -> Point {
        self.cells[self.cells.len() / 2]
    }

    /// The corner points of the path: endpoints plus every cell where the
    /// direction changes. Rendering a path as a polyline through its
    /// corners is loss-free and far more compact than per-cell points.
    ///
    /// # Examples
    ///
    /// ```
    /// use pacor_grid::{GridPath, Point};
    ///
    /// let p = GridPath::new(vec![
    ///     Point::new(0, 0),
    ///     Point::new(1, 0),
    ///     Point::new(2, 0),
    ///     Point::new(2, 1),
    /// ])?;
    /// assert_eq!(p.corners(), vec![
    ///     Point::new(0, 0),
    ///     Point::new(2, 0),
    ///     Point::new(2, 1),
    /// ]);
    /// # Ok::<(), pacor_grid::GridError>(())
    /// ```
    pub fn corners(&self) -> Vec<Point> {
        if self.cells.len() <= 2 {
            return self.cells.clone();
        }
        let mut out = vec![self.cells[0]];
        for w in self.cells.windows(3) {
            let d1 = (w[1].x - w[0].x, w[1].y - w[0].y);
            let d2 = (w[2].x - w[1].x, w[2].y - w[1].y);
            if d1 != d2 {
                out.push(w[1]);
            }
        }
        out.push(*self.cells.last().expect("nonempty"));
        out
    }

    /// Concatenates `other` onto `self`.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::DisconnectedPath`] when `other.source()` is
    /// neither equal nor adjacent to `self.target()`.
    pub fn join(&self, other: &GridPath) -> Result<GridPath, GridError> {
        let mut cells = self.cells.clone();
        if self.target() == other.source() {
            cells.extend_from_slice(&other.cells[1..]);
        } else if self.target().is_adjacent(other.source()) {
            cells.extend_from_slice(&other.cells);
        } else {
            return Err(GridError::DisconnectedPath {
                at: self.cells.len() - 1,
            });
        }
        GridPath::new(cells)
    }
}

impl<'a> IntoIterator for &'a GridPath {
    type Item = &'a Point;
    type IntoIter = std::slice::Iter<'a, Point>;

    fn into_iter(self) -> Self::IntoIter {
        self.cells.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_path() -> GridPath {
        GridPath::new(vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(2, 0),
            Point::new(2, 1),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert!(GridPath::new(vec![]).is_err());
    }

    #[test]
    fn rejects_disconnected() {
        let err = GridPath::new(vec![Point::new(0, 0), Point::new(2, 0)]).unwrap_err();
        assert!(matches!(err, GridError::DisconnectedPath { at: 0 }));
    }

    #[test]
    fn allows_revisits() {
        // A back-and-forth detour: 0→1→0 revisits (0,0) and is valid.
        let p = GridPath::new(vec![Point::new(0, 0), Point::new(1, 0), Point::new(0, 0)]).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn length_and_endpoints() {
        let p = l_path();
        assert_eq!(p.len(), 3);
        assert_eq!(p.source(), Point::new(0, 0));
        assert_eq!(p.target(), Point::new(2, 1));
        assert!(!p.is_empty());
    }

    #[test]
    fn singleton_has_zero_length() {
        let p = GridPath::singleton(Point::new(3, 3));
        assert_eq!(p.len(), 0);
        assert!(p.is_empty());
        assert_eq!(p.source(), p.target());
    }

    #[test]
    fn bbox_covers_cells() {
        let p = l_path();
        let bb = p.bbox();
        for c in p.iter() {
            assert!(bb.contains(*c));
        }
        assert_eq!(bb.area(), 6);
    }

    #[test]
    fn midpoint_on_path() {
        let p = l_path();
        assert!(p.contains(p.midpoint()));
    }

    #[test]
    fn join_shared_endpoint() {
        let a = GridPath::new(vec![Point::new(0, 0), Point::new(1, 0)]).unwrap();
        let b = GridPath::new(vec![Point::new(1, 0), Point::new(1, 1)]).unwrap();
        let j = a.join(&b).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.cells().len(), 3);
    }

    #[test]
    fn join_adjacent_endpoint() {
        let a = GridPath::singleton(Point::new(0, 0));
        let b = GridPath::singleton(Point::new(1, 0));
        let j = a.join(&b).unwrap();
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn join_disjoint_fails() {
        let a = GridPath::singleton(Point::new(0, 0));
        let b = GridPath::singleton(Point::new(5, 5));
        assert!(a.join(&b).is_err());
    }

    #[test]
    fn corners_of_l_path() {
        let p = l_path();
        assert_eq!(
            p.corners(),
            vec![Point::new(0, 0), Point::new(2, 0), Point::new(2, 1)]
        );
    }

    #[test]
    fn corners_of_straight_and_tiny_paths() {
        let straight = GridPath::new((0..5).map(|x| Point::new(x, 3)).collect()).unwrap();
        assert_eq!(straight.corners(), vec![Point::new(0, 3), Point::new(4, 3)]);
        let single = GridPath::singleton(Point::new(2, 2));
        assert_eq!(single.corners(), vec![Point::new(2, 2)]);
        let pair = GridPath::new(vec![Point::new(0, 0), Point::new(0, 1)]).unwrap();
        assert_eq!(pair.corners().len(), 2);
    }

    #[test]
    fn corners_capture_zigzag() {
        let z = GridPath::new(vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(1, 1),
            Point::new(2, 1),
            Point::new(2, 2),
        ])
        .unwrap();
        assert_eq!(z.corners().len(), 5); // every interior cell is a turn
    }

    #[test]
    fn reverse_roundtrip() {
        let p = l_path();
        let r = p.to_reversed();
        assert_eq!(r.source(), p.target());
        assert_eq!(r.target(), p.source());
        assert_eq!(r.to_reversed(), p);
    }
}
