//! MST-based routing of clusters without the length-matching constraint
//! (paper Section 3, "MST-based cluster routing").
//!
//! The batch entry point ([`route_ordinary_clusters`]) honors the flow's
//! [`NegotiationMode`]: in `Parallel` mode each de-clustering wave is
//! routed speculatively — every cluster against a private clone of the
//! wave-start obstacle state — and committed in queue order under the
//! same expanded-cells disjointness rule as the negotiation router, so
//! the routed result is identical to the serial queue at any thread
//! count.

use crate::{FlowConfig, RoutedCluster, RoutedKind};
use pacor_grid::{GridPath, ObsMap, Point};
use pacor_route::{parallel_map_with, AStar, AStarScratch, NegotiationMode};
use pacor_valves::Cluster;

/// Routes one ordinary cluster: valves are connected in minimum-spanning-
/// tree order, each new valve joining the already-routed net by
/// point-to-path A\* (which subsumes the point-to-point and path-to-path
/// modes of the paper). Successful paths are blocked in `obs`.
///
/// Returns `None` — with `obs` untouched — when some valve cannot reach
/// the net; the caller de-clusters and retries.
pub fn route_mst_cluster(
    obs: &mut ObsMap,
    cluster: &Cluster,
    positions: &[Point],
) -> Option<RoutedCluster> {
    let mut scratch = AStarScratch::new();
    route_mst_owned(obs, cluster.clone(), positions.to_vec(), &mut scratch, None).ok()
}

/// Owned-input worker behind [`route_mst_cluster`]: consumes the cluster
/// and positions (handing them back on failure, so the batch loop never
/// clones) and reuses the caller's A\* scratch across clusters.
///
/// When `spec_expanded` is given, every search's expanded-cell set
/// (including the failing search's flood) is accumulated into it — the
/// speculative batch's conflict footprint. Only valid when every
/// position is in bounds (the flat kernel must run for the scratch
/// views to be meaningful).
fn route_mst_owned(
    obs: &mut ObsMap,
    cluster: Cluster,
    positions: Vec<Point>,
    scratch: &mut AStarScratch,
    mut spec_expanded: Option<&mut Vec<Point>>,
) -> Result<RoutedCluster, (Cluster, Vec<Point>)> {
    assert_eq!(cluster.len(), positions.len(), "positions per member");
    if cluster.len() == 1 {
        // No internal net; the valve cell itself is the terminal. Block it
        // so other nets cannot run through the valve.
        obs.block(positions[0]);
        return Ok(RoutedCluster {
            cluster,
            member_positions: positions,
            kind: RoutedKind::Singleton,
            escape: None,
        });
    }

    // Prim order: start at valve 0, repeatedly take the valve closest to
    // the connected set (by Manhattan distance).
    let n = positions.len();
    let mut in_net = vec![false; n];
    in_net[0] = true;
    let mut order: Vec<usize> = Vec::with_capacity(n - 1);
    for _ in 1..n {
        let next = (0..n)
            .filter(|&i| !in_net[i])
            .min_by_key(|&i| {
                (0..n)
                    .filter(|&j| in_net[j])
                    .map(|j| positions[i].manhattan(positions[j]))
                    .min()
                    .unwrap_or(u64::MAX)
            })
            .expect("some valve remains");
        in_net[next] = true;
        order.push(next);
    }

    let cp = obs.checkpoint();
    let mut net_cells: Vec<Point> = vec![positions[0]];
    let mut paths: Vec<GridPath> = Vec::new();
    for &i in &order {
        let path = AStar::new(obs).route_with_scratch(&[positions[i]], &net_cells, scratch);
        if let Some(acc) = spec_expanded.as_deref_mut() {
            acc.extend(scratch.expanded_cells());
        }
        match path {
            Some(p) => {
                obs.block_all(p.cells().iter().copied());
                net_cells.extend(p.cells().iter().copied());
                paths.push(p);
            }
            None => {
                obs.rollback(cp);
                return Err((cluster, positions));
            }
        }
    }
    // Ensure the lone starting valve cell is blocked even when every path
    // attached elsewhere.
    obs.block(positions[0]);

    Ok(RoutedCluster {
        cluster,
        member_positions: positions,
        kind: RoutedKind::Mst { paths },
        escape: None,
    })
}

/// Routes a batch of ordinary clusters with de-clustering on failure:
/// a cluster that fails is split in half (recursively, down to
/// singletons, which always succeed). Cluster ids of split-off parts are
/// assigned from `next_id` upward.
///
/// `config` supplies the [`NegotiationMode`] (serial queue vs
/// speculative waves) and the speculation thread count; both modes
/// produce the identical routed result.
pub fn route_ordinary_clusters(
    obs: &mut ObsMap,
    clusters: Vec<(Cluster, Vec<Point>)>,
    next_id: &mut u32,
    config: &FlowConfig,
) -> Vec<RoutedCluster> {
    pacor_obs::counter_add("mst.clusters", clusters.len() as u64);
    let batch = clusters.len() as u64;
    let out = match config.negotiation_mode {
        NegotiationMode::Serial => route_batch_serial(obs, clusters, next_id),
        NegotiationMode::Parallel => {
            route_batch_speculative(obs, clusters, next_id, config.thread_count.max(1))
        }
    };
    // Telemetry aggregates only: the wave structure differs between
    // modes (though the committed order does not), so per-wave events
    // would break the stream's mode invariance.
    if pacor_obs::telemetry_active() {
        let edges: u64 = out
            .iter()
            .map(|rc| match &rc.kind {
                RoutedKind::Mst { paths } => paths.len() as u64,
                _ => 0,
            })
            .sum();
        let committed = out.len() as u64;
        pacor_obs::progress(|| pacor_obs::ProgressEvent::MstProgress {
            clusters: batch,
            committed,
            splits: committed.saturating_sub(batch),
            edges,
        });
    }
    out
}

/// Splits a failed cluster in half and appends both halves (with their
/// member positions) to `queue`. Panics on singletons, which cannot fail.
fn split_into(
    queue: &mut impl Extend<(Cluster, Vec<Point>)>,
    cluster: Cluster,
    positions: Vec<Point>,
    next_id: &mut u32,
) {
    let parent = cluster.id().0;
    match cluster.split(*next_id) {
        Some((a, b)) => {
            pacor_obs::flight(|| pacor_obs::FlightEvent::MstSplit {
                parent,
                low: *next_id,
                high: *next_id + 1,
            });
            *next_id += 2;
            pacor_obs::counter_add("mst.splits", 1);
            let pos_of = |c: &Cluster| {
                c.members()
                    .iter()
                    .map(|m| {
                        let k = cluster
                            .members()
                            .iter()
                            .position(|x| x == m)
                            .expect("member of parent");
                        positions[k]
                    })
                    .collect::<Vec<_>>()
            };
            let (pa, pb) = (pos_of(&a), pos_of(&b));
            queue.extend([(a, pa), (b, pb)]);
        }
        None => {
            // A singleton can never fail above; defensive fallback.
            unreachable!("singleton cluster routing cannot fail");
        }
    }
}

fn count_edges(rc: &RoutedCluster) {
    let edges = match &rc.kind {
        RoutedKind::Mst { paths } => paths.len() as u64,
        _ => 0,
    };
    pacor_obs::counter_add("mst.edges", edges);
    pacor_obs::flight(|| pacor_obs::FlightEvent::MstCommit {
        cluster: rc.cluster.id().0,
        edges: edges as u32,
        length: rc.total_length(),
    });
}

/// The serial FIFO queue: route each cluster against the live state,
/// splits rejoin the back of the queue.
fn route_batch_serial(
    obs: &mut ObsMap,
    clusters: Vec<(Cluster, Vec<Point>)>,
    next_id: &mut u32,
) -> Vec<RoutedCluster> {
    let mut queue: std::collections::VecDeque<(Cluster, Vec<Point>)> = clusters.into();
    let mut out = Vec::new();
    let mut scratch = AStarScratch::new();
    while let Some((cluster, positions)) = queue.pop_front() {
        match route_mst_owned(obs, cluster, positions, &mut scratch, None) {
            Ok(rc) => {
                count_edges(&rc);
                out.push(rc)
            }
            Err((cluster, positions)) => split_into(&mut queue, cluster, positions, next_id),
        }
    }
    out
}

/// Speculative wave batch: every cluster of the current wave is routed
/// concurrently against a private clone of the wave-start obstacle
/// state; results commit in queue order, accepted iff no cell any of the
/// cluster's searches *expanded* was blocked by an earlier commit this
/// wave (the negotiation router's rule, applied to the whole per-cluster
/// search sequence). Rejected or opaque items re-route against the live
/// state; failures split into the next wave.
///
/// A failed cluster blocks nothing, so committing wave items in order
/// with splits deferred to the next wave replays the serial FIFO queue
/// exactly — the output and every `mst.edges`/`mst.splits` increment
/// land in the same order at any thread count.
fn route_batch_speculative(
    obs: &mut ObsMap,
    clusters: Vec<(Cluster, Vec<Point>)>,
    next_id: &mut u32,
    threads: usize,
) -> Vec<RoutedCluster> {
    type SpecResult = Result<RoutedCluster, (Cluster, Vec<Point>)>;
    let (width, height) = (obs.width() as usize, obs.height() as usize);
    let in_bounds = move |p: &Point| {
        p.x >= 0 && p.y >= 0 && (p.x as usize) < width && (p.y as usize) < height
    };
    let mut wave = clusters;
    let mut out = Vec::new();
    let mut scratch = AStarScratch::new();
    // Per-wave dirty-cell set as an epoch-stamped flat grid: a cell is
    // dirty this wave iff its stamp equals the wave epoch, so clearing
    // between waves is a single increment. Out-of-bounds positions are
    // never marked — they cannot collide with the (in-bounds) expanded
    // cells the conflict check probes.
    let mut dirty_at = vec![0u32; width * height];
    let mut dirty_epoch = 0u32;
    let cell_of = move |p: &Point| {
        in_bounds(p).then(|| p.y as usize * width + p.x as usize)
    };
    while !wave.is_empty() {
        // Phase 1 — speculate. Opaque items (an out-of-bounds valve
        // bypasses the flat kernel, leaving no expanded-cell record) are
        // not searched; they fall back to the live state below.
        let snapshot: &ObsMap = obs;
        let specs: Vec<Option<(SpecResult, Vec<Point>)>> = parallel_map_with(
            threads,
            &wave,
            AStarScratch::new,
            |ws, _, (cluster, positions)| {
                if !positions.iter().all(in_bounds) {
                    return None;
                }
                let mut private = snapshot.clone();
                let mut expanded = Vec::new();
                let r = route_mst_owned(
                    &mut private,
                    cluster.clone(),
                    positions.clone(),
                    ws,
                    Some(&mut expanded),
                );
                Some((r, expanded))
            },
        );
        pacor_obs::counter_add("mst.speculative", specs.iter().flatten().count() as u64);

        // Phase 2 — commit in order.
        dirty_epoch = dirty_epoch.wrapping_add(1);
        if dirty_epoch == 0 {
            // u32 wrap (unreachable in practice): old stamps would alias.
            dirty_at.fill(0);
            dirty_epoch = 1;
        }
        let mut next_wave: Vec<(Cluster, Vec<Point>)> = Vec::new();
        for (spec, item) in specs.into_iter().zip(wave) {
            let conflicted = matches!(&spec, Some((_, exp)) if exp
                .iter()
                .any(|c| matches!(cell_of(c), Some(i) if dirty_at[i] == dirty_epoch)));
            let outcome: SpecResult = match (spec, conflicted) {
                (Some((r, _)), false) => {
                    if let Ok(rc) = &r {
                        let mut cells = rc.net_cells();
                        cells.push(rc.member_positions[0]);
                        obs.block_all(cells.iter().copied());
                        for c in &cells {
                            if let Some(i) = cell_of(c) {
                                dirty_at[i] = dirty_epoch;
                            }
                        }
                    }
                    r
                }
                (spec, _) => {
                    if spec.is_some() {
                        pacor_obs::counter_add("mst.conflicts", 1);
                    }
                    pacor_obs::counter_add("mst.serial_fallbacks", 1);
                    let (cluster, positions) = item;
                    let r = route_mst_owned(obs, cluster, positions, &mut scratch, None);
                    if let Ok(rc) = &r {
                        let mut cells = rc.net_cells();
                        cells.push(rc.member_positions[0]);
                        for c in &cells {
                            if let Some(i) = cell_of(c) {
                                dirty_at[i] = dirty_epoch;
                            }
                        }
                    }
                    r
                }
            };
            match outcome {
                Ok(rc) => {
                    count_edges(&rc);
                    out.push(rc);
                }
                Err((cluster, positions)) => {
                    split_into(&mut next_wave, cluster, positions, next_id)
                }
            }
        }
        wave = next_wave;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacor_grid::Grid;
    use pacor_valves::{ClusterId, ValveId};

    fn open(w: u32, h: u32) -> ObsMap {
        ObsMap::new(&Grid::new(w, h).unwrap())
    }

    fn cluster(n: u32) -> Cluster {
        Cluster::new(ClusterId(0), (0..n).map(ValveId).collect(), false)
    }

    #[test]
    fn singleton_blocks_valve_cell() {
        let mut obs = open(6, 6);
        let rc = route_mst_cluster(&mut obs, &cluster(1), &[Point::new(3, 3)]).unwrap();
        assert!(matches!(rc.kind, RoutedKind::Singleton));
        assert!(obs.is_blocked(Point::new(3, 3)));
    }

    #[test]
    fn pair_routes_direct() {
        let mut obs = open(10, 10);
        let rc = route_mst_cluster(
            &mut obs,
            &cluster(2),
            &[Point::new(1, 1), Point::new(7, 1)],
        )
        .unwrap();
        assert_eq!(rc.total_length(), 6);
        for c in rc.net_cells() {
            assert!(obs.is_blocked(c));
        }
    }

    #[test]
    fn steiner_sharing_via_point_to_path() {
        // The third valve may connect anywhere on the existing *path*, so
        // the total can never exceed the plain MST bound (7 + 7 = 14) and
        // often beats it by attaching mid-path.
        let mut obs = open(12, 12);
        let rc = route_mst_cluster(
            &mut obs,
            &cluster(3),
            &[Point::new(1, 5), Point::new(9, 5), Point::new(5, 8)],
        )
        .unwrap();
        assert!(rc.total_length() <= 14, "length {}", rc.total_length());
        // The second connection terminates on the first path's cells
        // (point-to-path), not necessarily on a valve.
        match &rc.kind {
            RoutedKind::Mst { paths } => {
                assert_eq!(paths.len(), 2);
                assert!(paths[0].contains(paths[1].target()));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn blocked_cluster_returns_none_and_restores() {
        let mut grid = Grid::new(9, 9).unwrap();
        for y in 0..9 {
            grid.set_obstacle(Point::new(4, y));
        }
        let mut obs = ObsMap::new(&grid);
        let before = obs.blocked_count();
        let r = route_mst_cluster(
            &mut obs,
            &cluster(2),
            &[Point::new(1, 1), Point::new(7, 1)],
        );
        assert!(r.is_none());
        assert_eq!(obs.blocked_count(), before);
    }

    #[test]
    fn declustering_splits_unroutable() {
        let mut grid = Grid::new(9, 9).unwrap();
        for y in 0..9 {
            grid.set_obstacle(Point::new(4, y));
        }
        let mut obs = ObsMap::new(&grid);
        let mut next_id = 10;
        let out = route_ordinary_clusters(
            &mut obs,
            vec![(
                cluster(2),
                vec![Point::new(1, 1), Point::new(7, 1)],
            )],
            &mut next_id,
            &FlowConfig::default(),
        );
        // Split into two singletons.
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|rc| matches!(rc.kind, RoutedKind::Singleton)));
        assert_eq!(next_id, 12);
    }

    #[test]
    fn batch_routes_in_order() {
        let mut obs = open(14, 14);
        let mut next_id = 5;
        let out = route_ordinary_clusters(
            &mut obs,
            vec![
                (
                    Cluster::new(ClusterId(0), vec![ValveId(0), ValveId(1)], false),
                    vec![Point::new(1, 1), Point::new(5, 1)],
                ),
                (
                    Cluster::new(ClusterId(1), vec![ValveId(2)], false),
                    vec![Point::new(10, 10)],
                ),
            ],
            &mut next_id,
            &FlowConfig::default(),
        );
        assert_eq!(out.len(), 2);
        assert_eq!(next_id, 5);
    }

    #[test]
    fn speculative_batch_matches_serial_queue() {
        // A mix of routable clusters, a contended pair sharing a narrow
        // region, and an unroutable cluster that de-clusters — the
        // speculative waves must reproduce the serial queue exactly at
        // every thread count (including splits and cluster-id assignment).
        let build = || {
            let mut grid = Grid::new(20, 20).unwrap();
            for y in 0..19 {
                grid.set_obstacle(Point::new(14, y));
            }
            ObsMap::new(&grid)
        };
        let clusters = || {
            vec![
                (
                    Cluster::new(ClusterId(0), vec![ValveId(0), ValveId(1)], false),
                    vec![Point::new(1, 1), Point::new(9, 1)],
                ),
                (
                    Cluster::new(ClusterId(1), vec![ValveId(2), ValveId(3), ValveId(4)], false),
                    vec![Point::new(2, 5), Point::new(9, 5), Point::new(5, 9)],
                ),
                // Straddles the wall (only a slit at y=19): usually forced
                // to a long detour or a split.
                (
                    Cluster::new(ClusterId(2), vec![ValveId(5), ValveId(6)], false),
                    vec![Point::new(12, 0), Point::new(17, 0)],
                ),
            ]
        };
        let mut serial_obs = build();
        let mut serial_id = 10;
        let serial = route_ordinary_clusters(
            &mut serial_obs,
            clusters(),
            &mut serial_id,
            &FlowConfig::default(),
        );
        for threads in [1, 2, 4] {
            let mut obs = build();
            let mut id = 10;
            let cfg = FlowConfig::default()
                .with_negotiation_mode(NegotiationMode::Parallel)
                .with_threads(threads);
            let spec = route_ordinary_clusters(&mut obs, clusters(), &mut id, &cfg);
            assert_eq!(id, serial_id, "@{threads}");
            assert_eq!(spec.len(), serial.len(), "@{threads}");
            for (a, b) in spec.iter().zip(&serial) {
                assert_eq!(a.cluster.id(), b.cluster.id(), "@{threads}");
                assert_eq!(a.net_cells(), b.net_cells(), "@{threads}");
            }
            assert_eq!(obs.blocked_count(), serial_obs.blocked_count(), "@{threads}");
        }
    }

    #[test]
    #[should_panic(expected = "positions per member")]
    fn mismatched_positions_panic() {
        let mut obs = open(6, 6);
        route_mst_cluster(&mut obs, &cluster(2), &[Point::new(1, 1)]);
    }
}
