# Convenience targets for the PACOR reproduction workspace.

CARGO ?= cargo

.PHONY: verify build test clippy bench tables obs-smoke bench-flow bench-smoke

# The acceptance gate: release build, full test suite, zero-warning
# lints, a smoke-run of the observability exports, and a smoke-run of
# the end-to-end flow benchmark harness.
verify: build test clippy obs-smoke bench-smoke

build:
	$(CARGO) build --release --workspace

test:
	$(CARGO) test -q --workspace

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

bench:
	$(CARGO) bench -p pacor-bench --bench kernels

# The full end-to-end flow benchmark: every chip under both rip-up
# policies, written to BENCH_flow.json at the repo root (takes minutes).
bench-flow:
	$(CARGO) run --release -p pacor-bench --bin bench_flow -- --repeat 5 --out BENCH_flow.json

# Cheap harness exercise for CI: one tiny chip, result discarded.
bench-smoke:
	$(CARGO) run --release -p pacor-bench --bin bench_flow -- --smoke --repeat 1 --out target/bench_flow_smoke.json
	python3 -c "import json; r = json.load(open('target/bench_flow_smoke.json')); assert len(r['entries']) == 2, r; print('bench-smoke: harness produced', len(r['entries']), 'entries')"

tables:
	$(CARGO) run --release -p pacor-bench --bin tables -- all

# Route one small design with both observability exports enabled and
# check that each output file parses as JSON.
obs-smoke:
	$(CARGO) run --release --bin pacor-cli -- route --quiet \
		--trace-out target/obs_smoke_trace.json \
		--metrics-out target/obs_smoke_metrics.json S1
	python3 -c "import json; json.load(open('target/obs_smoke_trace.json')); json.load(open('target/obs_smoke_metrics.json')); print('obs-smoke: both exports are valid JSON')"
