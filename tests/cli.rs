//! End-to-end tests of the `pacor` command-line binary.

use std::process::Command;

fn pacor(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_pacor-cli"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn no_args_prints_usage() {
    let out = pacor(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn synth_emits_problem_json() {
    let out = pacor(&["synth", "S1", "7"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"name\": \"S1\""));
    assert!(text.contains("\"valves\""));
    assert!(text.contains("\"pins\""));
}

#[test]
fn synth_rejects_unknown_design() {
    let out = pacor(&["synth", "S99"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown design"));
}

#[test]
fn route_by_design_name() {
    let out = pacor(&["route", "S1"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"matched_clusters\""));
    assert!(text.contains("\"valves_routed\": 5"));
}

#[test]
fn synth_then_route_roundtrip() {
    let synth = pacor(&["synth", "S2", "3"]);
    assert!(synth.status.success());
    let dir = std::env::temp_dir().join("pacor_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("s2.json");
    std::fs::write(&path, &synth.stdout).unwrap();
    let route = pacor(&["route", path.to_str().unwrap()]);
    assert!(route.status.success());
    let text = String::from_utf8_lossy(&route.stdout);
    assert!(text.contains("\"design\": \"S2\""));
    assert!(text.contains("\"valves_total\": 10"));
}

#[test]
fn route_rejects_garbage_file() {
    let dir = std::env::temp_dir().join("pacor_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage.json");
    std::fs::write(&path, b"{ not json").unwrap();
    let out = pacor(&["route", path.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("parsing"));
}

#[test]
fn render_emits_svg() {
    let out = pacor(&["render", "S1"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("<svg"));
    assert!(text.trim_end().ends_with("</svg>"));
}

#[test]
fn table2_prints_all_synth_designs() {
    let out = pacor(&["table2"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for d in ["S1", "S2", "S3", "S4", "S5"] {
        assert!(text.contains(d), "missing {d}");
    }
    assert!(text.contains("PACOR"));
    assert!(text.contains("w/o Sel"));
}
