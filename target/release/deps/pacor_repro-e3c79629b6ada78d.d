/root/repo/target/release/deps/pacor_repro-e3c79629b6ada78d.d: src/lib.rs

/root/repo/target/release/deps/libpacor_repro-e3c79629b6ada78d.rlib: src/lib.rs

/root/repo/target/release/deps/libpacor_repro-e3c79629b6ada78d.rmeta: src/lib.rs

src/lib.rs:
