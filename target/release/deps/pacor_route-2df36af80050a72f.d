/root/repo/target/release/deps/pacor_route-2df36af80050a72f.d: crates/route/src/lib.rs crates/route/src/astar.rs crates/route/src/bounded.rs crates/route/src/history.rs crates/route/src/negotiation.rs

/root/repo/target/release/deps/libpacor_route-2df36af80050a72f.rlib: crates/route/src/lib.rs crates/route/src/astar.rs crates/route/src/bounded.rs crates/route/src/history.rs crates/route/src/negotiation.rs

/root/repo/target/release/deps/libpacor_route-2df36af80050a72f.rmeta: crates/route/src/lib.rs crates/route/src/astar.rs crates/route/src/bounded.rs crates/route/src/history.rs crates/route/src/negotiation.rs

crates/route/src/lib.rs:
crates/route/src/astar.rs:
crates/route/src/bounded.rs:
crates/route/src/history.rs:
crates/route/src/negotiation.rs:
