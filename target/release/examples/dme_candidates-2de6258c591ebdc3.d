/root/repo/target/release/examples/dme_candidates-2de6258c591ebdc3.d: examples/dme_candidates.rs

/root/repo/target/release/examples/dme_candidates-2de6258c591ebdc3: examples/dme_candidates.rs

examples/dme_candidates.rs:
