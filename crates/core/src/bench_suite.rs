//! Benchmark design synthesizer matching Table 1 of the paper.
//!
//! The paper evaluates two real biochips (Chip1, Chip2) and five
//! synthesized testcases (S1–S5). The real chip layouts are not public,
//! so this module synthesizes *all seven* designs from the published
//! parameters — grid size, valve count, candidate control pin count,
//! obstacle count (Table 1) and multi-valve cluster count (Table 2) —
//! using a seeded RNG for reproducibility. The routing flow consumes
//! nothing beyond these parameters, so the substitution preserves the
//! experimental shape (see DESIGN.md).

use crate::Problem;
use pacor_grid::{Grid, Point};
use pacor_valves::{ActivationSequence, ActivationStatus, Valve, ValveId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Published parameters of one benchmark design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignParams {
    /// Design name.
    pub name: &'static str,
    /// Grid width (Table 1 "Size", first dimension).
    pub width: u32,
    /// Grid height (Table 1 "Size", second dimension).
    pub height: u32,
    /// Number of valves (Table 1 "#Valves").
    pub valves: u32,
    /// Number of candidate control pins (Table 1 "#Control pin").
    pub control_pins: u32,
    /// Number of obstructed routing cells (Table 1 "#Obs").
    pub obstacles: u32,
    /// Number of clusters with ≥ 2 valves (Table 2 "#Clusters").
    pub multi_clusters: u32,
    /// `true` when every multi-valve cluster is a two-valve pair (the
    /// paper notes Chip2 "has only clusters with two valves").
    pub pairs_only: bool,
}

/// The seven benchmark designs of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchDesign {
    /// Real biochip 1: 179×413, 176 valves, 556 pins, 1800 obstacles.
    Chip1,
    /// Real biochip 2: 231×265, 56 valves, 495 pins, 1863 obstacles.
    Chip2,
    /// Synthesized: 12×12, 5 valves.
    S1,
    /// Synthesized: 22×22, 10 valves.
    S2,
    /// Synthesized: 52×52, 15 valves.
    S3,
    /// Synthesized: 72×72, 20 valves.
    S4,
    /// Synthesized: 152×152, 40 valves.
    S5,
}

impl BenchDesign {
    /// All designs in Table 1 order.
    pub const ALL: [BenchDesign; 7] = [
        BenchDesign::Chip1,
        BenchDesign::Chip2,
        BenchDesign::S1,
        BenchDesign::S2,
        BenchDesign::S3,
        BenchDesign::S4,
        BenchDesign::S5,
    ];

    /// The synthesized testcases only (S1–S5).
    pub const SYNTH: [BenchDesign; 5] = [
        BenchDesign::S1,
        BenchDesign::S2,
        BenchDesign::S3,
        BenchDesign::S4,
        BenchDesign::S5,
    ];

    /// Published parameters for this design (Tables 1 and 2).
    pub fn params(self) -> DesignParams {
        match self {
            BenchDesign::Chip1 => DesignParams {
                name: "Chip1",
                width: 179,
                height: 413,
                valves: 176,
                control_pins: 556,
                obstacles: 1800,
                multi_clusters: 40,
                pairs_only: false,
            },
            BenchDesign::Chip2 => DesignParams {
                name: "Chip2",
                width: 231,
                height: 265,
                valves: 56,
                control_pins: 495,
                obstacles: 1863,
                multi_clusters: 22,
                pairs_only: true,
            },
            BenchDesign::S1 => DesignParams {
                name: "S1",
                width: 12,
                height: 12,
                valves: 5,
                control_pins: 14,
                obstacles: 9,
                multi_clusters: 2,
                pairs_only: false,
            },
            BenchDesign::S2 => DesignParams {
                name: "S2",
                width: 22,
                height: 22,
                valves: 10,
                control_pins: 40,
                obstacles: 54,
                multi_clusters: 2,
                pairs_only: false,
            },
            BenchDesign::S3 => DesignParams {
                name: "S3",
                width: 52,
                height: 52,
                valves: 15,
                control_pins: 93,
                obstacles: 0,
                multi_clusters: 5,
                pairs_only: false,
            },
            BenchDesign::S4 => DesignParams {
                name: "S4",
                width: 72,
                height: 72,
                valves: 20,
                control_pins: 139,
                obstacles: 27,
                multi_clusters: 7,
                pairs_only: false,
            },
            BenchDesign::S5 => DesignParams {
                name: "S5",
                width: 152,
                height: 152,
                valves: 40,
                control_pins: 306,
                obstacles: 135,
                multi_clusters: 13,
                pairs_only: false,
            },
        }
    }

    /// Synthesizes a reproducible problem instance with this design's
    /// published parameters. The same `seed` always yields the same
    /// instance.
    ///
    /// # Panics
    ///
    /// Panics if the synthesized instance fails validation — a synthesizer
    /// bug, not a user error.
    pub fn synthesize(self, seed: u64) -> Problem {
        synthesize(self.params(), seed)
    }
}

/// Synthesizes a problem from explicit parameters rather than one of the
/// paper's designs. The end-to-end benchmark harness uses this to build
/// chips denser than Table 1's, where negotiation actually has to rip up
/// and retry.
///
/// # Panics
///
/// Panics when the parameters leave no room to place every cluster (the
/// synthesizer keeps a one-cell moat around valves).
pub fn synthesize_params(p: DesignParams, seed: u64) -> Problem {
    synthesize(p, seed)
}

/// Chips the end-to-end flow benchmark runs, smallest to largest.
///
/// Table 1's designs are too sparse to exercise negotiation (every one
/// converges in a single round), so these are denser synthesized chips —
/// more multi-valve clusters packed per unit area plus a heavier obstacle
/// field — where the first routing pass genuinely collides and the rip-up
/// policies diverge. The larger two are deliberately oversubscribed: the
/// escape stage cannot connect every valve (completion < 100%, identical
/// across policies), which keeps the negotiation loop under pressure for
/// the whole run instead of only its first seconds.
pub const FLOW_BENCH_CHIPS: [DesignParams; 4] = [
    DesignParams {
        name: "B1-dense24",
        width: 24,
        height: 24,
        valves: 18,
        control_pins: 40,
        obstacles: 50,
        multi_clusters: 8,
        pairs_only: false,
    },
    DesignParams {
        name: "B2-dense48",
        width: 48,
        height: 48,
        valves: 100,
        control_pins: 110,
        obstacles: 280,
        multi_clusters: 44,
        pairs_only: false,
    },
    DesignParams {
        name: "B3-dense96",
        width: 96,
        height: 96,
        valves: 200,
        control_pins: 200,
        obstacles: 700,
        multi_clusters: 88,
        pairs_only: false,
    },
    // FPVA-scale tier (arXiv:1705.04996): large enough that the flat
    // flow visibly struggles and the hierarchical split pays off, but
    // pin-rich enough to finish at 100% completion so the tier can
    // gate correctness (verify-clean routing) as well as speed.
    DesignParams {
        name: "B4-dense256",
        width: 256,
        height: 256,
        valves: 400,
        control_pins: 700,
        obstacles: 2800,
        multi_clusters: 150,
        pairs_only: false,
    },
];

/// The opt-in 512² chip `bench_flow --huge` adds on top of
/// [`FLOW_BENCH_CHIPS`] — FPVA-scale stress, too slow for the default
/// benchmark run.
pub const FLOW_HUGE_CHIP: DesignParams = DesignParams {
    name: "B5-dense512",
    width: 512,
    height: 512,
    valves: 900,
    control_pins: 1600,
    obstacles: 9000,
    multi_clusters: 340,
    pairs_only: false,
};

/// The single tiny chip `bench_flow --smoke` (and `make bench-smoke`)
/// runs so CI can exercise the harness in well under a second.
pub const FLOW_SMOKE_CHIP: DesignParams = DesignParams {
    name: "B0-smoke16",
    width: 16,
    height: 16,
    valves: 10,
    control_pins: 24,
    obstacles: 20,
    multi_clusters: 4,
    pairs_only: false,
};

/// Cluster size plan: every multi-cluster starts as a pair; spare valves
/// are reserved for singletons (~¼ of the valves) and the rest grow the
/// multi-clusters round-robin up to size 4.
fn size_plan(p: &DesignParams) -> Vec<u32> {
    let m = p.multi_clusters as usize;
    let mut sizes = vec![2u32; m];
    let spare = p.valves.saturating_sub(2 * p.multi_clusters);
    let reserve = if p.pairs_only {
        spare
    } else {
        spare.min(p.valves.div_ceil(4))
    };
    let mut distribute = spare - reserve;
    let mut i = 0;
    while distribute > 0 && !sizes.is_empty() {
        if sizes[i] < 4 {
            sizes[i] += 1;
            distribute -= 1;
        }
        i = (i + 1) % sizes.len();
        if sizes.iter().all(|&s| s >= 4) {
            break; // remaining spares become singletons
        }
    }
    sizes
}

fn synthesize(p: DesignParams, seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5043_4F52); // "PCOR"
    let grid = Grid::new(p.width, p.height).expect("published sizes are valid");

    // Obstacles: distinct interior cells.
    let mut obstacle_set = std::collections::HashSet::new();
    let margin = 1i32;
    while (obstacle_set.len() as u32) < p.obstacles {
        let x = rng.gen_range(margin..p.width as i32 - margin);
        let y = rng.gen_range(margin..p.height as i32 - margin);
        obstacle_set.insert(Point::new(x, y));
    }

    // Cluster plan.
    let sizes = size_plan(&p);
    let singles = p.valves - sizes.iter().sum::<u32>();
    let n_clusters = sizes.len() as u32 + singles;

    // Distinct activation codes per cluster (no don't-cares ⇒ clusters are
    // exactly the compatibility classes).
    let code_len = (32 - (n_clusters.max(2) - 1).leading_zeros()).max(3) as usize;
    let code = |k: u32| -> ActivationSequence {
        (0..code_len)
            .map(|b| {
                if (k >> b) & 1 == 1 {
                    ActivationStatus::Closed
                } else {
                    ActivationStatus::Open
                }
            })
            .collect()
    };

    // Valve placement.
    let vmargin = 2i32.min(p.width as i32 / 4).max(1);
    let mut used: std::collections::HashSet<Point> = obstacle_set.clone();
    let free_cell = |rng: &mut StdRng,
                     used: &std::collections::HashSet<Point>,
                     cx: i32,
                     cy: i32,
                     radius: i32|
     -> Option<Point> {
        for _ in 0..200 {
            let x =
                (cx + rng.gen_range(-radius..=radius)).clamp(vmargin, p.width as i32 - 1 - vmargin);
            let y = (cy + rng.gen_range(-radius..=radius))
                .clamp(vmargin, p.height as i32 - 1 - vmargin);
            let q = Point::new(x, y);
            // Keep a one-cell moat (full 8-neighborhood) around existing
            // valves and obstacles: real designs place valves with routing
            // feasibility in mind, and diagonal valve blobs create
            // capacity-1 pockets no router can fully serve.
            let crowded = (-1..=1).any(|dx| {
                (-1..=1).any(|dy| {
                    (dx != 0 || dy != 0) && used.contains(&Point::new(q.x + dx, q.y + dy))
                })
            });
            if !used.contains(&q) && !crowded {
                return Some(q);
            }
        }
        None
    };

    let mut valves = Vec::new();
    let mut lm_clusters = Vec::new();
    let mut next_valve = 0u32;
    for (k, &size) in sizes.iter().enumerate() {
        // Cluster center with room for the whole group.
        let spread = (3 + 2 * size as i32)
            .min(p.width.min(p.height) as i32 / 2 - 1)
            .max(2);
        let mut members = Vec::new();
        'place: for _ in 0..100 {
            members.clear();
            let cx = rng.gen_range(
                vmargin + spread..=(p.width as i32 - 1 - vmargin - spread).max(vmargin + spread),
            );
            let cy = rng.gen_range(
                vmargin + spread..=(p.height as i32 - 1 - vmargin - spread).max(vmargin + spread),
            );
            let mut tentative = used.clone();
            for _ in 0..size {
                match free_cell(&mut rng, &tentative, cx, cy, spread) {
                    Some(q) => {
                        tentative.insert(q);
                        members.push(q);
                    }
                    None => continue 'place,
                }
            }
            used = tentative;
            break;
        }
        assert_eq!(
            members.len(),
            size as usize,
            "synthesizer could not place cluster {k} of {}",
            p.name
        );
        let ids: Vec<ValveId> = members
            .iter()
            .map(|&pos| {
                let id = ValveId(next_valve);
                next_valve += 1;
                valves.push(Valve::new(id, pos, code(k as u32)));
                id
            })
            .collect();
        lm_clusters.push(ids);
    }
    for s in 0..singles {
        let cx = rng.gen_range(vmargin..p.width as i32 - vmargin);
        let cy = rng.gen_range(vmargin..p.height as i32 - vmargin);
        let pos = free_cell(&mut rng, &used, cx, cy, p.width.min(p.height) as i32 / 2)
            .expect("grid has room for singleton valves");
        used.insert(pos);
        let id = ValveId(next_valve);
        next_valve += 1;
        valves.push(Valve::new(id, pos, code(sizes.len() as u32 + s)));
    }

    // Control pins: evenly spaced free boundary cells.
    let boundary: Vec<Point> = grid
        .boundary_points()
        .filter(|b| !obstacle_set.contains(b))
        .collect();
    let want = (p.control_pins as usize).min(boundary.len());
    let mut pins = Vec::with_capacity(want);
    for i in 0..want {
        pins.push(boundary[i * boundary.len() / want]);
    }
    pins.dedup();

    let mut obstacles: Vec<Point> = obstacle_set.into_iter().collect();
    obstacles.sort();
    let mut builder = Problem::builder(p.name, p.width, p.height)
        .delta(1)
        .pins(pins)
        .obstacles(obstacles);
    for v in valves {
        builder = builder.valve(v);
    }
    for c in lm_clusters {
        builder = builder.lm_cluster(c);
    }
    builder.build().expect("synthesized design is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_match_table1() {
        let p = BenchDesign::Chip1.params();
        assert_eq!((p.width, p.height), (179, 413));
        assert_eq!(p.valves, 176);
        assert_eq!(p.control_pins, 556);
        assert_eq!(p.obstacles, 1800);
        let p = BenchDesign::S3.params();
        assert_eq!((p.width, p.height), (52, 52));
        assert_eq!(p.obstacles, 0);
    }

    #[test]
    fn size_plans_cover_valves() {
        for d in BenchDesign::ALL {
            let p = d.params();
            let sizes = size_plan(&p);
            assert_eq!(sizes.len() as u32, p.multi_clusters, "{}", p.name);
            let multi: u32 = sizes.iter().sum();
            assert!(multi <= p.valves, "{}", p.name);
            assert!(sizes.iter().all(|&s| (2..=4).contains(&s)), "{}", p.name);
            if p.pairs_only {
                assert!(sizes.iter().all(|&s| s == 2), "{}", p.name);
            }
        }
    }

    #[test]
    fn s1_synthesis_matches_parameters() {
        let prob = BenchDesign::S1.synthesize(42);
        assert_eq!(prob.valve_count(), 5);
        assert_eq!(prob.obstacles.len(), 9);
        assert_eq!(prob.lm_clusters.len(), 2);
        assert_eq!(prob.width, 12);
        prob.validate().unwrap();
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = BenchDesign::S2.synthesize(7);
        let b = BenchDesign::S2.synthesize(7);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn different_seeds_differ() {
        let a = BenchDesign::S2.synthesize(1);
        let b = BenchDesign::S2.synthesize(2);
        assert_ne!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn all_synth_designs_validate() {
        for d in BenchDesign::SYNTH {
            let prob = d.synthesize(11);
            prob.validate().unwrap();
            let p = d.params();
            assert_eq!(prob.valve_count() as u32, p.valves, "{}", p.name);
            assert_eq!(prob.obstacles.len() as u32, p.obstacles, "{}", p.name);
            assert_eq!(
                prob.lm_clusters.len() as u32,
                p.multi_clusters,
                "{}",
                p.name
            );
        }
    }

    #[test]
    fn chip2_is_pairs_only() {
        let prob = BenchDesign::Chip2.synthesize(3);
        assert!(prob.lm_clusters.iter().all(|c| c.len() == 2));
        assert_eq!(prob.lm_clusters.len(), 22);
    }

    #[test]
    fn pins_are_on_free_boundary() {
        let prob = BenchDesign::S4.synthesize(9);
        let grid = prob.grid().unwrap();
        for &p in &prob.pins {
            assert!(grid.is_boundary(p));
            assert!(!grid.is_obstacle(p));
        }
        assert!(!prob.pins.is_empty());
    }

    #[test]
    fn clusters_are_compatibility_classes() {
        let prob = BenchDesign::S3.synthesize(5);
        // Valves in the same LM cluster share a code; across clusters the
        // codes differ.
        for c in &prob.lm_clusters {
            let s0 = prob.valves.get(c[0]).unwrap().sequence().clone();
            for &m in c {
                assert_eq!(prob.valves.get(m).unwrap().sequence(), &s0);
            }
        }
    }
}
