//! Post-mortem report generation from a [`FlightLog`].
//!
//! [`post_mortem_json`] distills a drained flight recorder into a
//! diagnostic JSON document: which nets stayed unrouted and what walled
//! them in, the most-contended nets, the hottest cells and history-cost
//! percentiles, per-cluster LM slack against the δ window, and the
//! escape-stage bottleneck cells. [`render_heatmap`] draws the same
//! congestion data as an ASCII grid for terminal triage.
//!
//! # Determinism
//!
//! Both outputs are pure functions of the log. Because emit sites live
//! only at the flow's deterministic commit points, the bytes are
//! invariant across worker-thread counts and negotiation modes; the
//! mode-specific events ([`FlightEvent::SpecConflict`],
//! [`FlightEvent::SerialFallback`]) are deliberately **excluded** from
//! the report. Across rip-up policies the report is identical whenever
//! the policies produce the same routed state (they provably coincide
//! while every negotiation session converges without a failed round).

use crate::recorder::{FlightEvent, FlightLog, SnapshotKind};
use crate::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write;

/// How many entries the ranked lists (hot cells, contended nets,
/// bottleneck cells) keep.
const TOP_K: usize = 10;

/// Frontier-cell cap per unrouted net in the report.
const FRONTIER_K: usize = 8;

#[derive(Default)]
struct NetStats {
    attempts: u64,
    failures: u64,
    ripups: u64,
    last_round: u32,
}

/// Renders the post-mortem diagnostic report as a deterministic,
/// pretty-printed JSON document (see module docs for the guarantees).
pub fn post_mortem_json(log: &FlightLog) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"pacor-postmortem-v1\",");

    // Per-net and aggregate negotiation statistics.
    let mut nets: BTreeMap<u32, NetStats> = BTreeMap::new();
    let mut ripups_by_reason: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut outcomes: Vec<&FlightEvent> = Vec::new();
    let mut escape_failed = 0u64;
    let mut declustered = 0u64;
    let mut escape_rips = 0u64;
    let mut detour_segments = 0u64;
    let mut detour_added = 0u64;
    let mut mst_commits = 0u64;
    let mut mst_splits = 0u64;
    // (blocked cluster id) -> the walls around its pocket.
    let mut blocked: BTreeMap<u32, &FlightEvent> = BTreeMap::new();
    // (y, x) -> number of EscapeBlocked frontiers the cell appears in.
    let mut bottleneck: BTreeMap<(i32, i32), u64> = BTreeMap::new();
    // Session id of the last round seen per session, to count rounds.
    let mut session_rounds: BTreeMap<u32, u32> = BTreeMap::new();

    for event in log.events() {
        match event {
            FlightEvent::NetAttempt {
                session,
                round,
                net,
                routed,
                ..
            } => {
                let s = nets.entry(*net).or_default();
                s.attempts += 1;
                if !routed {
                    s.failures += 1;
                }
                s.last_round = s.last_round.max(*round);
                let r = session_rounds.entry(*session).or_default();
                *r = (*r).max(*round);
            }
            FlightEvent::RipUp { net, reason, .. } => {
                nets.entry(*net).or_default().ripups += 1;
                *ripups_by_reason.entry(reason.label()).or_default() += 1;
            }
            FlightEvent::ClusterOutcome { .. } => outcomes.push(event),
            FlightEvent::EscapeFailed { .. } => escape_failed += 1,
            FlightEvent::Declustered { .. } => declustered += 1,
            FlightEvent::EscapeRip { .. } => escape_rips += 1,
            FlightEvent::EscapeBlocked {
                cluster, frontier, ..
            } => {
                blocked.insert(*cluster, event);
                for cell in frontier {
                    *bottleneck.entry((cell.y, cell.x)).or_default() += 1;
                }
            }
            FlightEvent::DetourSegment { added, .. } => {
                detour_segments += 1;
                detour_added += added;
            }
            FlightEvent::MstCommit { .. } => mst_commits += 1,
            FlightEvent::MstSplit { .. } => mst_splits += 1,
            // Mode-specific events stay out of the report (see module
            // docs); session starts carry no aggregate of their own.
            FlightEvent::SpecConflict { .. }
            | FlightEvent::SerialFallback { .. }
            | FlightEvent::NegotiationStart { .. }
            | FlightEvent::LmReconstructed { .. }
            | FlightEvent::LmDemoted { .. } => {}
        }
    }
    let rounds: u64 = session_rounds.values().map(|&r| r as u64).sum();

    // -- outcome ------------------------------------------------------
    let mut unrouted: Vec<u32> = Vec::new();
    let mut complete = 0u64;
    let mut matched = 0u64;
    let mut lm_total = 0u64;
    let mut total_length = 0u64;
    for o in &outcomes {
        if let FlightEvent::ClusterOutcome {
            cluster,
            lm,
            complete: c,
            matched: m,
            length,
            ..
        } = o
        {
            if *c {
                complete += 1;
            } else {
                unrouted.push(*cluster);
            }
            if *m {
                matched += 1;
            }
            if *lm {
                lm_total += 1;
            }
            total_length += length;
        }
    }
    unrouted.sort_unstable();
    let _ = writeln!(
        out,
        "  \"outcome\": {{\"clusters\": {}, \"complete\": {complete}, \"unrouted\": {}, \"lm_clusters\": {lm_total}, \"matched\": {matched}, \"total_length\": {total_length}}},",
        outcomes.len(),
        json_u32_list(&unrouted)
    );

    // -- unrouted nets with their escape walls ------------------------
    out.push_str("  \"unrouted_nets\": [");
    for (i, &cluster) in unrouted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (valves, lm) = outcomes
            .iter()
            .find_map(|o| match o {
                FlightEvent::ClusterOutcome {
                    cluster: c,
                    valves,
                    lm,
                    ..
                } if *c == cluster => Some((*valves, *lm)),
                _ => None,
            })
            .unwrap_or((0, false));
        let _ = write!(
            out,
            "\n    {{\"cluster\": {cluster}, \"valves\": {valves}, \"lm\": {lm}"
        );
        if let Some(FlightEvent::EscapeBlocked {
            pocket,
            blockers,
            frontier,
            ..
        }) = blocked.get(&cluster)
        {
            let _ = write!(
                out,
                ", \"pocket_cells\": {pocket}, \"blockers\": {}, \"contended_cells\": [",
                json_u32_list(blockers)
            );
            for (j, cell) in frontier.iter().take(FRONTIER_K).enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"x\": {}, \"y\": {}, \"owner\": {}}}",
                    cell.x, cell.y, cell.owner
                );
            }
            out.push(']');
        }
        out.push('}');
    }
    out.push_str("\n  ],\n");

    // -- negotiation aggregates ---------------------------------------
    let attempts: u64 = nets.values().map(|s| s.attempts).sum();
    let failures: u64 = nets.values().map(|s| s.failures).sum();
    let total_ripups: u64 = nets.values().map(|s| s.ripups).sum();
    let _ = write!(
        out,
        "  \"negotiation\": {{\"sessions\": {}, \"rounds\": {rounds}, \"attempts\": {attempts}, \"failed_attempts\": {failures}, \"ripups\": {total_ripups}, \"ripups_by_reason\": {{",
        log.sessions()
    );
    for (i, (label, n)) in ripups_by_reason.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{label}\": {n}");
    }
    out.push_str("}},\n");

    // -- most-contended nets ------------------------------------------
    let mut contended: Vec<(&u32, &NetStats)> = nets
        .iter()
        .filter(|(_, s)| s.failures + s.ripups > 0)
        .collect();
    contended.sort_by(|a, b| {
        (b.1.failures, b.1.ripups, a.0).cmp(&(a.1.failures, a.1.ripups, b.0))
    });
    out.push_str("  \"contended_nets\": [");
    for (i, (net, s)) in contended.iter().take(TOP_K).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"net\": {net}, \"failures\": {}, \"ripups\": {}, \"last_round\": {}}}",
            s.failures, s.ripups, s.last_round
        );
    }
    out.push_str("\n  ],\n");

    // -- history heat: percentiles + hottest cells --------------------
    let heat_snapshot = log
        .snapshots()
        .iter()
        .rev()
        .find(|s| s.kind == SnapshotKind::Round && !s.heat_milli.is_empty());
    let mut heat_hist = Histogram::default();
    let mut hot: Vec<(u32, u32, u32)> = Vec::new(); // (heat, y, x)
    if let Some(snap) = heat_snapshot {
        for (i, &h) in snap.heat_milli.iter().enumerate() {
            if h > 0 {
                heat_hist.observe(h as u64);
                hot.push((h, i as u32 / snap.width, i as u32 % snap.width));
            }
        }
    }
    hot.sort_by(|a, b| (b.0, a.1, a.2).cmp(&(a.0, b.1, b.2)));
    let _ = writeln!(
        out,
        "  \"history\": {{\"hot_cells\": {}, \"p50_milli\": {}, \"p95_milli\": {}, \"p99_milli\": {}, \"max_milli\": {}}},",
        heat_hist.count(),
        heat_hist.p50(),
        heat_hist.p95(),
        heat_hist.p99(),
        heat_hist.max()
    );
    out.push_str("  \"hot_cells\": [");
    for (i, (h, y, x)) in hot.iter().take(TOP_K).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    {{\"x\": {x}, \"y\": {y}, \"heat_milli\": {h}}}");
    }
    out.push_str("\n  ],\n");

    // -- per-cluster LM slack vs the δ window -------------------------
    out.push_str("  \"lm_clusters\": [");
    let mut first = true;
    for o in &outcomes {
        if let FlightEvent::ClusterOutcome {
            cluster,
            lm: true,
            matched,
            length,
            mismatch,
            delta,
            ..
        } = o
        {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"cluster\": {cluster}, \"length\": {length}, \"delta\": {delta}, \"mismatch\": "
            );
            match mismatch {
                Some(m) => {
                    let _ = write!(out, "{m}, \"slack\": {}", *delta as i64 - *m as i64);
                }
                None => out.push_str("null, \"slack\": null"),
            }
            let _ = write!(out, ", \"matched\": {matched}}}");
        }
    }
    out.push_str("\n  ],\n");

    // -- escape bottlenecks -------------------------------------------
    let mut walls: Vec<(&(i32, i32), &u64)> = bottleneck.iter().collect();
    walls.sort_by(|a, b| (b.1, a.0).cmp(&(a.1, b.0)));
    let _ = write!(
        out,
        "  \"escape\": {{\"failed\": {escape_failed}, \"declustered\": {declustered}, \"ripped\": {escape_rips}, \"bottleneck_cells\": ["
    );
    for (i, ((y, x), n)) in walls.iter().take(TOP_K).enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{{\"x\": {x}, \"y\": {y}, \"blocking\": {n}}}");
    }
    out.push_str("]},\n");

    // -- remaining aggregates -----------------------------------------
    let _ = writeln!(
        out,
        "  \"detour\": {{\"segments\": {detour_segments}, \"added_length\": {detour_added}}},"
    );
    let _ = writeln!(
        out,
        "  \"mst\": {{\"commits\": {mst_commits}, \"splits\": {mst_splits}}},"
    );
    let _ = writeln!(
        out,
        "  \"snapshots\": {{\"recorded\": {}, \"dropped\": {}}},",
        log.snapshots().len(),
        log.dropped_snapshots()
    );
    let _ = writeln!(out, "  \"dropped_events\": {}", log.dropped_events());
    out.push_str("}\n");
    out
}

fn json_u32_list(values: &[u32]) -> String {
    let mut s = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{v}");
    }
    s.push(']');
    s
}

/// Renders the log's congestion data as an ASCII heatmap.
///
/// Occupancy comes from the latest snapshot (the final one when the
/// flow completed), history heat from the latest mid-negotiation
/// snapshot, and cells on an escape-blocking frontier are marked `B`.
/// `#` is an occupied cell, `.` a free one, digits `1`–`9` scale the
/// relative history heat of free cells.
pub fn render_heatmap(log: &FlightLog) -> String {
    let Some(occ) = log.snapshots().last() else {
        return String::from("(no congestion snapshots recorded)\n");
    };
    let heat = log
        .snapshots()
        .iter()
        .rev()
        .find(|s| s.kind == SnapshotKind::Round && !s.heat_milli.is_empty());
    let (w, h) = (occ.width as usize, occ.height as usize);
    let max_heat = heat
        .map(|s| s.heat_milli.iter().copied().max().unwrap_or(0))
        .unwrap_or(0);
    let mut walls: Vec<(i32, i32)> = Vec::new();
    for event in log.events() {
        if let FlightEvent::EscapeBlocked { frontier, .. } = event {
            walls.extend(frontier.iter().map(|c| (c.x, c.y)));
        }
    }
    walls.sort_unstable();
    walls.dedup();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "congestion heatmap {w}x{h} ({}, max heat {max_heat} milli)",
        match occ.kind {
            SnapshotKind::Final => String::from("final occupancy"),
            SnapshotKind::Round =>
                format!("session {} round {}", occ.session, occ.round),
        }
    );
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            let cell_heat = heat
                .and_then(|s| s.heat_milli.get(i).copied())
                .unwrap_or(0);
            let c = if walls.binary_search(&(x as i32, y as i32)).is_ok() {
                'B'
            } else if occ.occupancy.get(i).copied().unwrap_or(0) != 0 {
                '#'
            } else if cell_heat > 0 && max_heat > 0 {
                let level = 1 + (cell_heat as u64 * 8 / max_heat as u64).min(8);
                char::from_digit(level as u32, 10).unwrap_or('9')
            } else {
                '.'
            };
            out.push(c);
        }
        out.push('\n');
    }
    out.push_str("legend: '#' occupied  'B' escape-blocking  '.' free  1-9 history heat\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{
        flight, flight_begin_session, flight_install, flight_snapshot, flight_take,
        CongestionSnapshot, FrontierCell, RecorderConfig, RipReason,
    };

    fn sample_log() -> FlightLog {
        flight_install(RecorderConfig::default());
        let s = flight_begin_session(2);
        for (net, routed) in [(4u32, true), (9u32, false)] {
            flight(|| FlightEvent::NetAttempt {
                session: s,
                round: 1,
                net,
                routed,
                length: if routed { 11 } else { 0 },
                expanded: 20,
                flood: if routed { 0 } else { 5 },
            });
        }
        flight(|| FlightEvent::RipUp {
            session: s,
            round: 1,
            net: 4,
            reason: RipReason::ContendedWall,
        });
        flight_snapshot(CongestionSnapshot {
            kind: SnapshotKind::Round,
            session: s,
            round: 1,
            width: 3,
            height: 2,
            occupancy: vec![1, 0, 0, 0, 1, 0],
            heat_milli: vec![0, 1500, 0, 0, 300, 0],
        });
        flight(|| FlightEvent::EscapeBlocked {
            cluster: 9,
            pocket: 4,
            blockers: vec![4],
            frontier: vec![FrontierCell { x: 1, y: 0, owner: 4 }],
        });
        for (cluster, complete) in [(4u32, true), (9u32, false)] {
            flight(|| FlightEvent::ClusterOutcome {
                cluster,
                valves: 2,
                lm: true,
                complete,
                matched: complete,
                length: if complete { 11 } else { 0 },
                mismatch: if complete { Some(0) } else { None },
                delta: 1,
            });
        }
        flight_snapshot(CongestionSnapshot {
            kind: SnapshotKind::Final,
            session: 0,
            round: 0,
            width: 3,
            height: 2,
            occupancy: vec![1, 1, 0, 0, 1, 0],
            heat_milli: Vec::new(),
        });
        flight_take().unwrap()
    }

    #[test]
    fn post_mortem_names_unrouted_nets_and_walls() {
        let log = sample_log();
        let json = post_mortem_json(&log);
        assert!(json.contains("\"unrouted\": [9]"), "{json}");
        assert!(json.contains("\"pocket_cells\": 4"), "{json}");
        assert!(json.contains("\"blockers\": [4]"), "{json}");
        assert!(
            json.contains("{\"x\": 1, \"y\": 0, \"owner\": 4}"),
            "{json}"
        );
        assert!(json.contains("\"contended_wall\": 1"), "{json}");
        assert!(json.contains("\"slack\": 1"), "{json}");
        assert!(json.contains("\"max_milli\": 1500"), "{json}");
        // The hottest cell leads the ranking.
        assert!(
            json.contains("{\"x\": 1, \"y\": 0, \"heat_milli\": 1500}"),
            "{json}"
        );
    }

    #[test]
    fn post_mortem_is_a_pure_function_of_the_log() {
        let log = sample_log();
        assert_eq!(post_mortem_json(&log), post_mortem_json(&log));
        let log2 = sample_log();
        assert_eq!(post_mortem_json(&log), post_mortem_json(&log2));
    }

    #[test]
    fn heatmap_renders_grid_with_markers() {
        let log = sample_log();
        let map = render_heatmap(&log);
        // 3x2 grid: row 0 is "#B." (occupied, escape wall, free) and
        // row 1 shows the milder heat on the occupied centre cell.
        assert!(map.contains("congestion heatmap 3x2"), "{map}");
        assert!(map.contains("#B.\n.#.\n"), "{map}");
        assert!(map.contains("legend:"), "{map}");
    }

    #[test]
    fn heatmap_without_snapshots_degrades_gracefully() {
        flight_install(RecorderConfig::default());
        let log = flight_take().unwrap();
        assert_eq!(render_heatmap(&log), "(no congestion snapshots recorded)\n");
    }

    #[test]
    fn mode_specific_events_do_not_reach_the_report() {
        flight_install(RecorderConfig::default());
        let log_plain = flight_take().unwrap();
        flight_install(RecorderConfig::default());
        flight(|| FlightEvent::SpecConflict { net: 3 });
        flight(|| FlightEvent::SerialFallback { net: 3 });
        let log_spec = flight_take().unwrap();
        assert_eq!(post_mortem_json(&log_plain), post_mortem_json(&log_spec));
    }
}
