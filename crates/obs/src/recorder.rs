//! Flight recorder: a bounded, deterministic, structured event log.
//!
//! Counters and histograms (the rest of this crate) answer *how much*;
//! the flight recorder answers *what happened to whom*: which nets
//! fought over which cells, why a rip-up picked its victims, and what
//! the congestion landscape looked like when the flow gave up. Events
//! are **typed records keyed by net/cluster/round ids** — not stringly
//! trace args — so a post-mortem generator ([`crate::post_mortem_json`])
//! can aggregate them without parsing.
//!
//! # Recording model
//!
//! A recorder is installed on the flow's **session thread** with
//! [`flight_install`] and drained with [`flight_take`]. Hot paths emit
//! through [`flight`], which takes a closure so the event is only
//! constructed when a recorder is active — the disabled cost is one
//! thread-local check. Emit sites live exclusively at the flow's
//! deterministic commit points (the session thread's attempt loop,
//! rip-up selection, MST commit order, escape/detour stages), never
//! inside worker closures, so the log is identical at any worker-thread
//! count and under either negotiation mode.
//!
//! # Bounding
//!
//! The event ring holds at most [`RecorderConfig::capacity`] events and
//! drops the **oldest** on overflow — end-of-run outcomes are the ones
//! a post-mortem needs. Congestion snapshots live in their own ring
//! ([`RecorderConfig::snapshot_capacity`], newest kept) and are taken
//! every [`RecorderConfig::snapshot_cadence`] negotiation rounds plus
//! on every final round. Both drop counts are themselves recorded and
//! deterministic, because the emission sequence is.

use std::cell::RefCell;
use std::collections::VecDeque;

thread_local! {
    /// The active flight recorder of the current thread, if any.
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Sizing and cadence knobs for the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Maximum retained events; the oldest are dropped on overflow.
    pub capacity: usize,
    /// Take a congestion snapshot every this many negotiation rounds
    /// (round 1 and every final round are always eligible).
    pub snapshot_cadence: u32,
    /// Maximum retained snapshots; the oldest are dropped on overflow.
    pub snapshot_capacity: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        Self {
            capacity: 4096,
            snapshot_cadence: 4,
            snapshot_capacity: 8,
        }
    }
}

/// Why a rip-up victim was selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RipReason {
    /// The net owned cells on a failed search's contended frontier.
    ContendedWall,
    /// Incremental escalation: more failures than the previous round.
    Escalated,
    /// A failed search produced no contended-cell information.
    Opaque,
    /// The full rip-up policy rips every routed net on any failure.
    FullPolicy,
}

impl RipReason {
    /// Stable lower-case label used in the post-mortem JSON.
    pub fn label(self) -> &'static str {
        match self {
            RipReason::ContendedWall => "contended_wall",
            RipReason::Escalated => "escalated",
            RipReason::Opaque => "opaque",
            RipReason::FullPolicy => "full_policy",
        }
    }
}

/// A blocked cell on the BFS frontier of an escape-routing pocket,
/// with the cluster that owns it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontierCell {
    /// Cell x coordinate.
    pub x: i32,
    /// Cell y coordinate.
    pub y: i32,
    /// Id of the routed cluster occupying the cell.
    pub owner: u32,
}

/// One structured flight-recorder event.
///
/// `net` ids are the LM-cluster ids the negotiation requests were
/// tagged with (or the request index when untagged); `cluster` ids are
/// `ClusterId` values; `session` counts negotiation sessions in flow
/// order; `round` is the 1-based negotiation round within a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightEvent {
    /// A negotiation session opened over `edges` requests.
    NegotiationStart {
        /// Flow-ordered session id (1-based).
        session: u32,
        /// Number of route requests in the session.
        edges: u32,
    },
    /// One per-net search outcome inside a negotiation round.
    NetAttempt {
        /// Enclosing negotiation session.
        session: u32,
        /// 1-based round within the session.
        round: u32,
        /// Net id the request was tagged with.
        net: u32,
        /// Whether the search found a path.
        routed: bool,
        /// Path length in cells when routed, 0 otherwise.
        length: u64,
        /// Cells the A* search expanded (0 when unavailable).
        expanded: u32,
        /// Contended-frontier size for failed searches, 0 otherwise.
        flood: u32,
    },
    /// A routed net was ripped up, with the selection reason.
    RipUp {
        /// Enclosing negotiation session.
        session: u32,
        /// Round in which the victim was selected.
        round: u32,
        /// Net id of the victim.
        net: u32,
        /// Why this victim was selected.
        reason: RipReason,
    },
    /// A speculative parallel route was rejected (overlapping expansion).
    ///
    /// Mode-specific by nature: recorded for the log, excluded from the
    /// post-mortem report so report bytes stay mode-invariant.
    SpecConflict {
        /// Net id of the conflicted request.
        net: u32,
    },
    /// A conflicted/opaque net was re-routed serially in commit order.
    ///
    /// Mode-specific like [`FlightEvent::SpecConflict`]; log-only.
    SerialFallback {
        /// Net id of the fallen-back request.
        net: u32,
    },
    /// An MST cluster's routing was committed (serial or speculative —
    /// commit order is identical).
    MstCommit {
        /// Cluster id.
        cluster: u32,
        /// Number of routed tree edges.
        edges: u32,
        /// Total routed length of the cluster.
        length: u64,
    },
    /// An unroutable MST cluster was split into two for the next wave.
    MstSplit {
        /// Cluster id that failed to route whole.
        parent: u32,
        /// Id of the first half.
        low: u32,
        /// Id of the second half.
        high: u32,
    },
    /// An LM cluster's tree was rebuilt from scratch after negotiation
    /// failed on the DME-selected topology.
    LmReconstructed {
        /// Cluster id.
        cluster: u32,
    },
    /// An LM cluster was demoted to the ordinary MST stage.
    LmDemoted {
        /// Cluster id.
        cluster: u32,
    },
    /// An escape-routing phase could not connect a cluster to any pin.
    EscapeFailed {
        /// Escape phase (1 = clustered, 2 = de-clustered, 3 = solo).
        phase: u8,
        /// Escape-stage round.
        round: u32,
        /// Cluster id that failed.
        cluster: u32,
    },
    /// A routed cluster was ripped up to open a path for `blocked`.
    EscapeRip {
        /// Cluster id of the ripped victim.
        victim: u32,
        /// Cluster id whose escape was blocked.
        blocked: u32,
    },
    /// A multi-valve cluster was de-clustered into singletons.
    Declustered {
        /// Cluster id.
        cluster: u32,
    },
    /// A cluster's escape flood was walled in: the pocket it could
    /// reach, and the routed cells (with owners) on its frontier.
    EscapeBlocked {
        /// Cluster id whose escape was blocked.
        cluster: u32,
        /// Free cells reachable before hitting routed walls.
        pocket: u32,
        /// Cluster ids selected as rip candidates.
        blockers: Vec<u32>,
        /// Frontier cells (sorted by y, x; capped), with owners.
        frontier: Vec<FrontierCell>,
    },
    /// A length-matching detour segment was inserted.
    DetourSegment {
        /// Cluster id being padded.
        cluster: u32,
        /// Cells of length the segment added.
        added: u64,
    },
    /// Final per-cluster outcome, emitted once per cluster at flow end.
    ClusterOutcome {
        /// Cluster id.
        cluster: u32,
        /// Number of valves in the cluster.
        valves: u32,
        /// Whether the cluster is under the LM constraint.
        lm: bool,
        /// Whether every edge (and its escape) routed.
        complete: bool,
        /// Whether the LM window was met (false for non-LM clusters).
        matched: bool,
        /// Total routed length.
        length: u64,
        /// Worst pairwise length mismatch, when defined.
        mismatch: Option<u64>,
        /// The chip's δ window.
        delta: u64,
    },
}

impl FlightEvent {
    /// Stable snake_case name of the event kind (catalogued in
    /// `docs/OBSERVABILITY.md`).
    pub fn kind(&self) -> &'static str {
        match self {
            FlightEvent::NegotiationStart { .. } => "negotiation_start",
            FlightEvent::NetAttempt { .. } => "net_attempt",
            FlightEvent::RipUp { .. } => "rip_up",
            FlightEvent::SpecConflict { .. } => "spec_conflict",
            FlightEvent::SerialFallback { .. } => "serial_fallback",
            FlightEvent::MstCommit { .. } => "mst_commit",
            FlightEvent::MstSplit { .. } => "mst_split",
            FlightEvent::LmReconstructed { .. } => "lm_reconstructed",
            FlightEvent::LmDemoted { .. } => "lm_demoted",
            FlightEvent::EscapeFailed { .. } => "escape_failed",
            FlightEvent::EscapeRip { .. } => "escape_rip",
            FlightEvent::Declustered { .. } => "declustered",
            FlightEvent::EscapeBlocked { .. } => "escape_blocked",
            FlightEvent::DetourSegment { .. } => "detour_segment",
            FlightEvent::ClusterOutcome { .. } => "cluster_outcome",
        }
    }
}

/// What a congestion snapshot captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// Mid-negotiation: occupancy of the round's routed state plus
    /// history heat.
    Round,
    /// Flow end: final occupancy (no history heat).
    Final,
}

/// A per-cell congestion snapshot in row-major order (y then x).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CongestionSnapshot {
    /// Round vs final.
    pub kind: SnapshotKind,
    /// Negotiation session the snapshot belongs to (0 for final).
    pub session: u32,
    /// Round within the session (0 for final).
    pub round: u32,
    /// Grid width.
    pub width: u32,
    /// Grid height.
    pub height: u32,
    /// 1 where the cell is occupied/blocked, 0 where free.
    pub occupancy: Vec<u8>,
    /// History cost per cell in integer milli-units (empty when the
    /// snapshot carries no heat).
    pub heat_milli: Vec<u32>,
}

/// Everything a drained recorder captured.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightLog {
    config: RecorderConfig,
    events: Vec<FlightEvent>,
    snapshots: Vec<CongestionSnapshot>,
    dropped_events: u64,
    dropped_snapshots: u64,
    sessions: u32,
}

impl FlightLog {
    /// The retained events, oldest first.
    pub fn events(&self) -> &[FlightEvent] {
        &self.events
    }

    /// The retained congestion snapshots, oldest first.
    pub fn snapshots(&self) -> &[CongestionSnapshot] {
        &self.snapshots
    }

    /// Events dropped because the ring was full.
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// Snapshots dropped because the snapshot ring was full.
    pub fn dropped_snapshots(&self) -> u64 {
        self.dropped_snapshots
    }

    /// Negotiation sessions opened while recording.
    pub fn sessions(&self) -> u32 {
        self.sessions
    }

    /// The configuration the recorder ran with.
    pub fn config(&self) -> RecorderConfig {
        self.config
    }
}

#[derive(Debug)]
struct Recorder {
    config: RecorderConfig,
    events: VecDeque<FlightEvent>,
    snapshots: VecDeque<CongestionSnapshot>,
    dropped_events: u64,
    dropped_snapshots: u64,
    sessions: u32,
}

impl Recorder {
    fn new(config: RecorderConfig) -> Self {
        Self {
            config,
            events: VecDeque::with_capacity(config.capacity.min(1024)),
            snapshots: VecDeque::new(),
            dropped_events: 0,
            dropped_snapshots: 0,
            sessions: 0,
        }
    }

    fn push(&mut self, event: FlightEvent) {
        if self.config.capacity == 0 {
            self.dropped_events += 1;
            return;
        }
        if self.events.len() == self.config.capacity {
            self.events.pop_front();
            self.dropped_events += 1;
        }
        self.events.push_back(event);
    }

    fn push_snapshot(&mut self, snapshot: CongestionSnapshot) {
        if self.config.snapshot_capacity == 0 {
            self.dropped_snapshots += 1;
            return;
        }
        if self.snapshots.len() == self.config.snapshot_capacity {
            self.snapshots.pop_front();
            self.dropped_snapshots += 1;
        }
        self.snapshots.push_back(snapshot);
    }

    fn into_log(self) -> FlightLog {
        FlightLog {
            config: self.config,
            events: self.events.into(),
            snapshots: self.snapshots.into(),
            dropped_events: self.dropped_events,
            dropped_snapshots: self.dropped_snapshots,
            sessions: self.sessions,
        }
    }
}

/// Installs a flight recorder on the current thread, replacing (and
/// discarding) any previous one. Pair with [`flight_take`].
pub fn flight_install(config: RecorderConfig) {
    RECORDER.with(|r| *r.borrow_mut() = Some(Recorder::new(config)));
}

/// Removes the current thread's recorder and returns its log, or
/// `None` when no recorder is installed.
pub fn flight_take() -> Option<FlightLog> {
    RECORDER.with(|r| r.borrow_mut().take()).map(Recorder::into_log)
}

/// Whether a flight recorder is installed on the current thread.
///
/// Emit sites that need to *compute* event fields (e.g. walk an A*
/// scratch's expanded set) gate on this so the disabled cost stays one
/// thread-local check.
pub fn flight_active() -> bool {
    RECORDER.with(|r| r.borrow().is_some())
}

/// RAII guard from [`flight_pause`]: reinstalls the suspended recorder
/// on drop.
#[must_use = "dropping the guard immediately resumes recording"]
pub struct FlightPause {
    handle: Option<Recorder>,
}

impl Drop for FlightPause {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            RECORDER.with(|r| *r.borrow_mut() = Some(handle));
        }
    }
}

/// Temporarily suspends the current thread's flight recorder.
///
/// Unlike [`flight_take`], the recorder's rings, drop counters and
/// session counter are preserved intact: events emitted while the
/// guard lives are simply not recorded, and recording resumes where it
/// left off when the guard drops. Pausing with no recorder installed
/// (or pausing twice) is a no-op.
pub fn flight_pause() -> FlightPause {
    FlightPause { handle: RECORDER.with(|r| r.borrow_mut().take()) }
}

/// Records the event built by `f` when a recorder is active. The
/// closure only runs (and the event is only allocated) when recording.
pub fn flight(f: impl FnOnce() -> FlightEvent) {
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            let event = f();
            rec.push(event);
        }
    });
}

/// Opens a negotiation session in the log: bumps the deterministic
/// session counter, records [`FlightEvent::NegotiationStart`] and
/// returns the new session id (0 when not recording).
pub fn flight_begin_session(edges: u32) -> u32 {
    RECORDER.with(|r| {
        let mut rec = r.borrow_mut();
        let Some(rec) = rec.as_mut() else { return 0 };
        rec.sessions += 1;
        let session = rec.sessions;
        rec.push(FlightEvent::NegotiationStart { session, edges });
        session
    })
}

/// Whether round `round` (1-based) of a negotiation session should take
/// a congestion snapshot: recording must be active and either the
/// cadence hits or `force` is set (final rounds are always captured).
pub fn flight_snapshot_due(round: u32, force: bool) -> bool {
    RECORDER.with(|r| {
        let rec = r.borrow();
        let Some(rec) = rec.as_ref() else { return false };
        force || round.saturating_sub(1).is_multiple_of(rec.config.snapshot_cadence.max(1))
    })
}

/// Records a congestion snapshot (no-op when not recording).
pub fn flight_snapshot(snapshot: CongestionSnapshot) {
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.push_snapshot(snapshot);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(capacity: usize) -> RecorderConfig {
        RecorderConfig {
            capacity,
            ..RecorderConfig::default()
        }
    }

    #[test]
    fn inactive_recorder_records_nothing() {
        assert!(!flight_active());
        let mut ran = false;
        flight(|| {
            ran = true;
            FlightEvent::LmDemoted { cluster: 1 }
        });
        assert!(!ran, "event closure must not run without a recorder");
        assert_eq!(flight_begin_session(3), 0);
        assert!(!flight_snapshot_due(1, true));
        assert!(flight_take().is_none());
    }

    #[test]
    fn events_round_trip_through_take() {
        flight_install(cfg(16));
        assert!(flight_active());
        let s = flight_begin_session(2);
        assert_eq!(s, 1);
        flight(|| FlightEvent::NetAttempt {
            session: s,
            round: 1,
            net: 7,
            routed: true,
            length: 12,
            expanded: 30,
            flood: 0,
        });
        let log = flight_take().expect("recorder installed");
        assert!(!flight_active());
        assert_eq!(log.sessions(), 1);
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.events()[0].kind(), "negotiation_start");
        assert_eq!(log.events()[1].kind(), "net_attempt");
        assert_eq!(log.dropped_events(), 0);
    }

    #[test]
    fn pause_suspends_and_resumes_recording() {
        flight_install(cfg(16));
        let s = flight_begin_session(1);
        {
            let _pause = flight_pause();
            assert!(!flight_active());
            flight(|| FlightEvent::SpecConflict { net: 9 });
        }
        assert!(flight_active(), "guard drop must reinstall the recorder");
        flight(|| FlightEvent::SpecConflict { net: 1 });
        let log = flight_take().unwrap();
        assert_eq!(log.sessions(), s, "session counter survives the pause");
        assert_eq!(log.events().len(), 2, "paused events must not be recorded");
        assert_eq!(log.events()[1].kind(), "spec_conflict");
    }

    #[test]
    fn pause_without_recorder_is_a_noop() {
        assert!(!flight_active());
        drop(flight_pause());
        assert!(!flight_active());
    }

    #[test]
    fn ring_drops_oldest_events() {
        flight_install(cfg(3));
        for net in 0..5 {
            flight(|| FlightEvent::SpecConflict { net });
        }
        let log = flight_take().unwrap();
        assert_eq!(log.dropped_events(), 2);
        let nets: Vec<u32> = log
            .events()
            .iter()
            .map(|e| match e {
                FlightEvent::SpecConflict { net } => *net,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(nets, vec![2, 3, 4], "newest events must survive");
    }

    #[test]
    fn snapshot_cadence_and_force() {
        flight_install(RecorderConfig {
            snapshot_cadence: 4,
            ..RecorderConfig::default()
        });
        assert!(flight_snapshot_due(1, false));
        assert!(!flight_snapshot_due(2, false));
        assert!(!flight_snapshot_due(4, false));
        assert!(flight_snapshot_due(5, false));
        assert!(flight_snapshot_due(3, true), "final rounds are forced");
        flight_take();
    }

    #[test]
    fn snapshot_ring_keeps_newest() {
        flight_install(RecorderConfig {
            snapshot_capacity: 2,
            ..RecorderConfig::default()
        });
        for round in 1..=4u32 {
            flight_snapshot(CongestionSnapshot {
                kind: SnapshotKind::Round,
                session: 1,
                round,
                width: 1,
                height: 1,
                occupancy: vec![0],
                heat_milli: vec![0],
            });
        }
        let log = flight_take().unwrap();
        assert_eq!(log.dropped_snapshots(), 2);
        let rounds: Vec<u32> = log.snapshots().iter().map(|s| s.round).collect();
        assert_eq!(rounds, vec![3, 4]);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        flight_install(RecorderConfig {
            capacity: 0,
            snapshot_capacity: 0,
            ..RecorderConfig::default()
        });
        flight(|| FlightEvent::LmDemoted { cluster: 1 });
        flight_snapshot(CongestionSnapshot {
            kind: SnapshotKind::Final,
            session: 0,
            round: 0,
            width: 1,
            height: 1,
            occupancy: vec![0],
            heat_milli: Vec::new(),
        });
        let log = flight_take().unwrap();
        assert!(log.events().is_empty());
        assert!(log.snapshots().is_empty());
        assert_eq!(log.dropped_events(), 1);
        assert_eq!(log.dropped_snapshots(), 1);
    }
}
