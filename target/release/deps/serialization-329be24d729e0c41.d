/root/repo/target/release/deps/serialization-329be24d729e0c41.d: tests/serialization.rs

/root/repo/target/release/deps/serialization-329be24d729e0c41: tests/serialization.rs

tests/serialization.rs:
