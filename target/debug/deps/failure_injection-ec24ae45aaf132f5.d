/root/repo/target/debug/deps/failure_injection-ec24ae45aaf132f5.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-ec24ae45aaf132f5: tests/failure_injection.rs

tests/failure_injection.rs:
