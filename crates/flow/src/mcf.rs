//! Integral minimum-cost maximum-flow via successive shortest paths.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifier of a directed edge returned by [`MinCostFlow::add_edge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(usize);

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: i64,
    cost: i64,
    flow: i64,
}

/// Result of a [`MinCostFlow::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowResult {
    /// Units of flow actually routed (≤ the requested amount).
    pub flow: i64,
    /// Total cost of the routed flow.
    pub cost: i64,
}

/// Minimum-cost flow solver (successive shortest paths with Dijkstra and
/// Johnson potentials; Bellman–Ford bootstrap when negative costs exist).
///
/// Capacities and costs are `i64`; all flows are integral. The solver
/// sends flow one augmenting path at a time in order of increasing
/// reduced cost, which yields a min-cost flow for *every* intermediate
/// flow value — exactly the behaviour needed to "route as many as
/// possible, cheapest first".
#[derive(Debug, Clone)]
pub struct MinCostFlow {
    graph: Vec<Vec<usize>>, // node -> indices into `edges`
    edges: Vec<Edge>,
    has_negative: bool,
}

impl MinCostFlow {
    /// Creates a network with `n` nodes (`0..n`).
    pub fn new(n: usize) -> Self {
        Self {
            graph: vec![Vec::new(); n],
            edges: Vec::new(),
            has_negative: false,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.len()
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.graph.push(Vec::new());
        self.graph.len() - 1
    }

    /// Adds a directed edge `u → v` with capacity `cap` and per-unit cost
    /// `cost`. Returns an [`EdgeId`] usable with [`MinCostFlow::edge_flow`].
    ///
    /// # Panics
    ///
    /// Panics when an endpoint is out of range or `cap < 0`.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: i64, cost: i64) -> EdgeId {
        assert!(u < self.graph.len() && v < self.graph.len(), "endpoint out of range");
        assert!(cap >= 0, "capacity must be non-negative");
        if cost < 0 {
            self.has_negative = true;
        }
        let id = self.edges.len();
        self.graph[u].push(id);
        self.edges.push(Edge {
            to: v,
            cap,
            cost,
            flow: 0,
        });
        self.graph[v].push(id + 1);
        self.edges.push(Edge {
            to: u,
            cap: 0,
            cost: -cost,
            flow: 0,
        });
        EdgeId(id)
    }

    /// Current flow on a forward edge.
    pub fn edge_flow(&self, id: EdgeId) -> i64 {
        self.edges[id.0].flow
    }

    /// Sends up to `max_flow` units from `s` to `t` at minimum cost.
    /// Augmentation stops early when `t` becomes unreachable, so the
    /// returned flow may be smaller than requested.
    ///
    /// # Panics
    ///
    /// Panics when `s` or `t` is out of range.
    pub fn solve(&mut self, s: usize, t: usize, max_flow: i64) -> FlowResult {
        assert!(s < self.graph.len() && t < self.graph.len(), "terminal out of range");
        let n = self.graph.len();
        let mut potential = vec![0i64; n];

        if self.has_negative {
            // Bellman–Ford over residual edges with remaining capacity.
            let mut dist = vec![i64::MAX; n];
            dist[s] = 0;
            for _ in 0..n {
                let mut changed = false;
                for u in 0..n {
                    if dist[u] == i64::MAX {
                        continue;
                    }
                    for &eid in &self.graph[u] {
                        let e = &self.edges[eid];
                        if e.cap - e.flow > 0 && dist[u] + e.cost < dist[e.to] {
                            dist[e.to] = dist[u] + e.cost;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            for v in 0..n {
                if dist[v] != i64::MAX {
                    potential[v] = dist[v];
                }
            }
        }

        let mut total_flow = 0i64;
        let mut total_cost = 0i64;

        while total_flow < max_flow {
            // Dijkstra on reduced costs, stopping as soon as `t` is
            // settled: unsettled nodes have true distance ≥ dist[t], so
            // clamping their potential update to dist[t] preserves
            // non-negative reduced costs (standard SSP early exit).
            let mut dist = vec![i64::MAX; n];
            let mut prev_edge = vec![usize::MAX; n];
            dist[s] = 0;
            let mut heap = BinaryHeap::new();
            heap.push(Reverse((0i64, s)));
            let mut settled_t = false;
            while let Some(Reverse((d, u))) = heap.pop() {
                if d > dist[u] {
                    continue;
                }
                if u == t {
                    settled_t = true;
                    break;
                }
                for &eid in &self.graph[u] {
                    let e = &self.edges[eid];
                    if e.cap - e.flow <= 0 {
                        continue;
                    }
                    let nd = d + e.cost + potential[u] - potential[e.to];
                    debug_assert!(
                        e.cost + potential[u] - potential[e.to] >= 0,
                        "negative reduced cost"
                    );
                    if nd < dist[e.to] {
                        dist[e.to] = nd;
                        prev_edge[e.to] = eid;
                        heap.push(Reverse((nd, e.to)));
                    }
                }
            }
            if !settled_t {
                break; // t unreachable: maximal flow attained
            }
            let dt = dist[t];
            for v in 0..n {
                potential[v] += dist[v].min(dt);
            }
            // Bottleneck along the augmenting path.
            let mut push = max_flow - total_flow;
            let mut v = t;
            while v != s {
                let eid = prev_edge[v];
                let e = &self.edges[eid];
                push = push.min(e.cap - e.flow);
                v = self.edges[eid ^ 1].to;
            }
            // Apply.
            let mut v = t;
            while v != s {
                let eid = prev_edge[v];
                self.edges[eid].flow += push;
                self.edges[eid ^ 1].flow -= push;
                total_cost += push * self.edges[eid].cost;
                v = self.edges[eid ^ 1].to;
            }
            total_flow += push;
        }

        FlowResult {
            flow: total_flow,
            cost: total_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_two_paths() {
        let mut mcf = MinCostFlow::new(4);
        mcf.add_edge(0, 1, 1, 1);
        mcf.add_edge(0, 2, 1, 2);
        mcf.add_edge(1, 3, 1, 1);
        mcf.add_edge(2, 3, 1, 2);
        let r = mcf.solve(0, 3, 10);
        assert_eq!(r, FlowResult { flow: 2, cost: 6 });
    }

    #[test]
    fn respects_requested_flow() {
        let mut mcf = MinCostFlow::new(2);
        mcf.add_edge(0, 1, 5, 3);
        let r = mcf.solve(0, 1, 2);
        assert_eq!(r, FlowResult { flow: 2, cost: 6 });
    }

    #[test]
    fn cheapest_first() {
        // Capacity 2 wanted but only 1 requested: must take the cheap arc.
        let mut mcf = MinCostFlow::new(2);
        let cheap = mcf.add_edge(0, 1, 1, 1);
        let dear = mcf.add_edge(0, 1, 1, 100);
        let r = mcf.solve(0, 1, 1);
        assert_eq!(r.cost, 1);
        assert_eq!(mcf.edge_flow(cheap), 1);
        assert_eq!(mcf.edge_flow(dear), 0);
    }

    #[test]
    fn unreachable_sink_gives_zero() {
        let mut mcf = MinCostFlow::new(3);
        mcf.add_edge(0, 1, 1, 1);
        let r = mcf.solve(0, 2, 5);
        assert_eq!(r, FlowResult { flow: 0, cost: 0 });
    }

    #[test]
    fn rerouting_via_residual_edges() {
        // Classic case where the second augmentation must push back flow:
        //   s→a (1,1), s→b (1,4), a→b (1,0)... build so naive greedy fails.
        let (s, a, b, t) = (0, 1, 2, 3);
        let mut mcf = MinCostFlow::new(4);
        mcf.add_edge(s, a, 1, 1);
        mcf.add_edge(s, b, 1, 10);
        mcf.add_edge(a, b, 1, 1);
        mcf.add_edge(a, t, 1, 10);
        mcf.add_edge(b, t, 1, 1);
        // Best for 2 units: s→a→b→t (3) + s→b? b full... the solver must
        // route s→a→t (11) and s→b→t (11) or s→a→b→t + s→b→t with rewind.
        let r = mcf.solve(s, t, 2);
        assert_eq!(r.flow, 2);
        // Optimal = s→a→b→t (1+1+1=3) + s→b...b→t used; residual forces
        // s→b (10) + push-back on a→b + a→t (10): total 3 - 1 + 10 + 10 + 1 = 23?
        // Enumerate: routes {s→a→t, s→b→t} = 11 + 11 = 22;
        //            {s→a→b→t, s→b→t} infeasible (b→t cap 1).
        // So optimum is 22.
        assert_eq!(r.cost, 22);
    }

    #[test]
    fn negative_costs_handled() {
        let mut mcf = MinCostFlow::new(3);
        mcf.add_edge(0, 1, 1, -5);
        mcf.add_edge(1, 2, 1, 2);
        mcf.add_edge(0, 2, 1, 1);
        let r = mcf.solve(0, 2, 2);
        assert_eq!(r.flow, 2);
        assert_eq!(r.cost, -3 + 1);
    }

    #[test]
    fn intermediate_flows_are_min_cost() {
        // Ask for 1 unit in a network whose cheapest s-t path costs 4.
        let mut mcf = MinCostFlow::new(5);
        mcf.add_edge(0, 1, 1, 2);
        mcf.add_edge(1, 4, 1, 2);
        mcf.add_edge(0, 2, 1, 3);
        mcf.add_edge(2, 4, 1, 3);
        mcf.add_edge(0, 3, 1, 1);
        mcf.add_edge(3, 4, 1, 9);
        let r = mcf.solve(0, 4, 1);
        assert_eq!(r, FlowResult { flow: 1, cost: 4 });
    }

    #[test]
    fn add_node_grows_network() {
        let mut mcf = MinCostFlow::new(1);
        let v = mcf.add_node();
        assert_eq!(v, 1);
        mcf.add_edge(0, v, 1, 0);
        let r = mcf.solve(0, v, 1);
        assert_eq!(r.flow, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-negative")]
    fn negative_capacity_panics() {
        MinCostFlow::new(2).add_edge(0, 1, -1, 0);
    }

    #[test]
    fn large_grid_like_network() {
        // 10x10 grid, 5 sources on the left, sink column on the right.
        let n = 10;
        let id = |x: usize, y: usize| y * n + x;
        let t = n * n;
        let s = n * n + 1;
        let mut mcf = MinCostFlow::new(n * n + 2);
        for y in 0..n {
            for x in 0..n {
                if x + 1 < n {
                    mcf.add_edge(id(x, y), id(x + 1, y), 1, 1);
                    mcf.add_edge(id(x + 1, y), id(x, y), 1, 1);
                }
                if y + 1 < n {
                    mcf.add_edge(id(x, y), id(x, y + 1), 1, 1);
                    mcf.add_edge(id(x, y + 1), id(x, y), 1, 1);
                }
            }
        }
        for k in 0..5 {
            mcf.add_edge(s, id(0, 2 * k), 1, 0);
            mcf.add_edge(id(n - 1, 2 * k), t, 1, 0);
        }
        let r = mcf.solve(s, t, 5);
        assert_eq!(r.flow, 5);
        // Straight rows: 9 steps each.
        assert_eq!(r.cost, 45);
    }
}
