/root/repo/target/release/deps/pacor_repro-60a5b8c273eec39e.d: src/lib.rs

/root/repo/target/release/deps/pacor_repro-60a5b8c273eec39e: src/lib.rs

src/lib.rs:
