//! PathFinder-style history costs — Eq. (5) of the paper.

use pacor_grid::Point;

/// Per-cell history cost for negotiation-based routing.
///
/// Each grid cell `g` carries a cost `Ch(g)` that starts at 0 and is
/// bumped whenever an iteration ends with failed edges, per Eq. (5):
///
/// ```text
/// Ch(g)_{r+1} = b_g + α · Ch(g)_r
/// ```
///
/// with defaults `b = 1.0`, `α = 0.1` from the paper. Cells that were
/// occupied in many failed iterations accumulate cost and become less
/// attractive to the A\* search — "less likely to be occupied by the
/// routing paths unless there are no alternative routing solutions".
#[derive(Debug, Clone)]
pub struct HistoryCost {
    width: u32,
    costs: Vec<f64>,
    base: f64,
    alpha: f64,
}

impl HistoryCost {
    /// Creates an all-zero history for a `width × height` grid with the
    /// paper's defaults (`b = 1.0`, `α = 0.1`).
    pub fn new(width: u32, height: u32) -> Self {
        Self::with_params(width, height, 1.0, 0.1)
    }

    /// Creates a history with explicit `b` and `α`.
    ///
    /// # Panics
    ///
    /// Panics when `b < 0` or `α < 0` — negative parameters would turn
    /// congestion history into a reward.
    pub fn with_params(width: u32, height: u32, base: f64, alpha: f64) -> Self {
        assert!(base >= 0.0 && alpha >= 0.0, "history parameters must be non-negative");
        Self {
            width,
            costs: vec![0.0; width as usize * height as usize],
            base,
            alpha,
        }
    }

    #[inline]
    fn index_of(&self, p: Point) -> Option<usize> {
        if p.x >= 0 && p.y >= 0 && (p.x as u32) < self.width {
            let i = p.y as usize * self.width as usize + p.x as usize;
            (i < self.costs.len()).then_some(i)
        } else {
            None
        }
    }

    /// Current history cost of a cell (0 for out-of-bounds points).
    #[inline]
    pub fn cost(&self, p: Point) -> f64 {
        self.index_of(p).map(|i| self.costs[i]).unwrap_or(0.0)
    }

    /// Applies Eq. (5) to one cell.
    pub fn bump(&mut self, p: Point) {
        if let Some(i) = self.index_of(p) {
            self.costs[i] = self.base + self.alpha * self.costs[i];
        }
    }

    /// Applies Eq. (5) to every cell of every path in `paths` — the
    /// step-18 update of Algorithm 1.
    pub fn bump_all<'a, I>(&mut self, paths: I)
    where
        I: IntoIterator<Item = &'a [Point]>,
    {
        for path in paths {
            for &p in path {
                self.bump(p);
            }
        }
    }

    /// The fixed point `b / (1 − α)` that repeated bumps converge to
    /// (for `α < 1`). Exposed for tests and for tuning ablations.
    pub fn saturation(&self) -> f64 {
        if self.alpha < 1.0 {
            self.base / (1.0 - self.alpha)
        } else {
            f64::INFINITY
        }
    }

    /// Number of cells carrying nonzero accumulated history — the
    /// cheap congestion-pressure signal the telemetry stream reports
    /// per round. Deterministic: bumps happen in canonical net order.
    pub fn pressure_cells(&self) -> u64 {
        self.costs.iter().filter(|&&c| c > 0.0).count() as u64
    }

    /// Resets every cell's history to zero.
    pub fn clear(&mut self) {
        self.costs.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let h = HistoryCost::new(4, 4);
        assert_eq!(h.cost(Point::new(2, 2)), 0.0);
    }

    #[test]
    fn bump_follows_equation_5() {
        let mut h = HistoryCost::new(4, 4);
        let p = Point::new(1, 1);
        h.bump(p);
        assert!((h.cost(p) - 1.0).abs() < 1e-12);
        h.bump(p);
        assert!((h.cost(p) - 1.1).abs() < 1e-12);
        h.bump(p);
        assert!((h.cost(p) - 1.11).abs() < 1e-12);
    }

    #[test]
    fn bumps_monotonically_approach_saturation() {
        let mut h = HistoryCost::with_params(2, 2, 1.0, 0.1);
        let p = Point::new(0, 0);
        let sat = h.saturation();
        let mut last = 0.0;
        for _ in 0..50 {
            h.bump(p);
            let c = h.cost(p);
            assert!(c >= last); // strictly increasing until fp convergence
            assert!(c <= sat + 1e-9);
            last = c;
        }
        assert!((last - sat).abs() < 1e-6);
    }

    #[test]
    fn out_of_bounds_is_silent() {
        let mut h = HistoryCost::new(2, 2);
        h.bump(Point::new(-1, 0));
        h.bump(Point::new(9, 9));
        assert_eq!(h.cost(Point::new(9, 9)), 0.0);
    }

    #[test]
    fn bump_all_touches_every_cell() {
        let mut h = HistoryCost::new(4, 4);
        let p1 = [Point::new(0, 0), Point::new(1, 0)];
        let p2 = [Point::new(3, 3)];
        h.bump_all([&p1[..], &p2[..]]);
        assert!(h.cost(Point::new(0, 0)) > 0.0);
        assert!(h.cost(Point::new(1, 0)) > 0.0);
        assert!(h.cost(Point::new(3, 3)) > 0.0);
        assert_eq!(h.cost(Point::new(2, 2)), 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut h = HistoryCost::new(2, 2);
        h.bump(Point::new(0, 0));
        h.clear();
        assert_eq!(h.cost(Point::new(0, 0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_alpha_panics() {
        HistoryCost::with_params(2, 2, 1.0, -0.5);
    }
}
