//! The control synthesis and routing problem (paper Section 2).

use crate::FlowError;
use pacor_grid::{Grid, GridLen, Point};
use pacor_valves::{Valve, ValveId, ValveSet};
use serde::{Deserialize, Serialize};

/// A complete problem instance, matching the paper's "Given":
/// all valves with coordinates, valve compatibility (via activation
/// sequences), clusters with the length-matching threshold `δ`, feasible
/// control pin positions, and the routing grid (already partitioned per
/// the design rules).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Problem {
    /// Design name (for reports).
    pub name: String,
    /// Grid width in routing cells.
    pub width: u32,
    /// Grid height in routing cells.
    pub height: u32,
    /// All valves.
    pub valves: ValveSet,
    /// Length-matching clusters: valve-id groups that must be driven by a
    /// single pin with matched channel lengths.
    pub lm_clusters: Vec<Vec<ValveId>>,
    /// Length-matching threshold `δ` in grid units.
    pub delta: GridLen,
    /// Feasible control pin positions (boundary cells).
    pub pins: Vec<Point>,
    /// Obstructed routing cells.
    pub obstacles: Vec<Point>,
}

impl Problem {
    /// Starts building a problem on a `width × height` grid.
    pub fn builder(name: impl Into<String>, width: u32, height: u32) -> ProblemBuilder {
        ProblemBuilder {
            problem: Problem {
                name: name.into(),
                width,
                height,
                valves: ValveSet::new(),
                lm_clusters: Vec::new(),
                delta: 1,
                pins: Vec::new(),
                obstacles: Vec::new(),
            },
        }
    }

    /// Materializes the routing grid with all obstacles applied.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Grid`] for invalid dimensions.
    pub fn grid(&self) -> Result<Grid, FlowError> {
        let mut grid = Grid::new(self.width, self.height)?;
        for &o in &self.obstacles {
            grid.set_obstacle(o);
        }
        Ok(grid)
    }

    /// Validates the instance: valves on free in-bounds cells, pins on
    /// the boundary, length-matching clusters referencing known, pairwise
    /// compatible valves.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidProblem`] describing the first
    /// violation found.
    pub fn validate(&self) -> Result<(), FlowError> {
        let grid = self.grid()?;
        for v in self.valves.iter() {
            let p = v.position();
            if !grid.in_bounds(p) {
                return Err(FlowError::InvalidProblem(format!(
                    "valve {} at {} outside the {}x{} grid",
                    v.id(),
                    p,
                    self.width,
                    self.height
                )));
            }
            if grid.is_obstacle(p) {
                return Err(FlowError::InvalidProblem(format!(
                    "valve {} at {} sits on an obstacle",
                    v.id(),
                    p
                )));
            }
        }
        for &p in &self.pins {
            if !grid.is_boundary(p) {
                return Err(FlowError::InvalidProblem(format!(
                    "control pin at {p} is not on the chip boundary"
                )));
            }
        }
        for (k, cluster) in self.lm_clusters.iter().enumerate() {
            if cluster.len() < 2 {
                return Err(FlowError::InvalidProblem(format!(
                    "length-matching cluster {k} has fewer than two valves"
                )));
            }
            for &id in cluster {
                if self.valves.get(id).is_none() {
                    return Err(FlowError::InvalidProblem(format!(
                        "length-matching cluster {k} references unknown valve {id}"
                    )));
                }
            }
            for i in 0..cluster.len() {
                for j in (i + 1)..cluster.len() {
                    let a = self.valves.get(cluster[i]).expect("checked above");
                    let b = self.valves.get(cluster[j]).expect("checked above");
                    if !a.is_compatible(b) {
                        return Err(FlowError::InvalidProblem(format!(
                            "length-matching cluster {k}: valves {} and {} are incompatible",
                            cluster[i], cluster[j]
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of valves.
    pub fn valve_count(&self) -> usize {
        self.valves.len()
    }
}

/// Builder for [`Problem`].
#[derive(Debug, Clone)]
pub struct ProblemBuilder {
    problem: Problem,
}

impl ProblemBuilder {
    /// Adds a valve.
    pub fn valve(mut self, valve: Valve) -> Self {
        self.problem.valves.insert(valve);
        self
    }

    /// Adds a length-matching cluster over the given valve ids.
    pub fn lm_cluster(mut self, ids: Vec<ValveId>) -> Self {
        self.problem.lm_clusters.push(ids);
        self
    }

    /// Sets the length-matching threshold δ (grid units; paper uses 1).
    pub fn delta(mut self, delta: GridLen) -> Self {
        self.problem.delta = delta;
        self
    }

    /// Adds a candidate control pin.
    pub fn pin(mut self, p: Point) -> Self {
        self.problem.pins.push(p);
        self
    }

    /// Adds several candidate control pins.
    pub fn pins<I: IntoIterator<Item = Point>>(mut self, it: I) -> Self {
        self.problem.pins.extend(it);
        self
    }

    /// Adds an obstructed cell.
    pub fn obstacle(mut self, p: Point) -> Self {
        self.problem.obstacles.push(p);
        self
    }

    /// Adds several obstructed cells.
    pub fn obstacles<I: IntoIterator<Item = Point>>(mut self, it: I) -> Self {
        self.problem.obstacles.extend(it);
        self
    }

    /// Finishes and validates the problem.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidProblem`] when validation fails; see
    /// [`Problem::validate`].
    pub fn build(self) -> Result<Problem, FlowError> {
        self.problem.validate()?;
        Ok(self.problem)
    }

    /// Finishes without validation (for deliberately broken test inputs).
    pub fn build_unchecked(self) -> Problem {
        self.problem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valve(id: u32, x: i32, y: i32, seq: &str) -> Valve {
        Valve::new(ValveId(id), Point::new(x, y), seq.parse().expect("valid"))
    }

    #[test]
    fn builder_roundtrip() {
        let p = Problem::builder("t", 10, 10)
            .valve(valve(0, 2, 2, "01"))
            .valve(valve(1, 7, 7, "0X"))
            .lm_cluster(vec![ValveId(0), ValveId(1)])
            .pin(Point::new(0, 5))
            .obstacle(Point::new(5, 5))
            .delta(2)
            .build()
            .unwrap();
        assert_eq!(p.valve_count(), 2);
        assert_eq!(p.delta, 2);
        assert_eq!(p.lm_clusters.len(), 1);
    }

    #[test]
    fn rejects_valve_on_obstacle() {
        let err = Problem::builder("t", 10, 10)
            .valve(valve(0, 5, 5, "0"))
            .obstacle(Point::new(5, 5))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("obstacle"));
    }

    #[test]
    fn rejects_valve_off_grid() {
        let err = Problem::builder("t", 4, 4)
            .valve(valve(0, 9, 9, "0"))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("outside"));
    }

    #[test]
    fn rejects_interior_pin() {
        let err = Problem::builder("t", 10, 10)
            .pin(Point::new(5, 5))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("boundary"));
    }

    #[test]
    fn rejects_incompatible_lm_cluster() {
        let err = Problem::builder("t", 10, 10)
            .valve(valve(0, 1, 1, "01"))
            .valve(valve(1, 2, 2, "10"))
            .lm_cluster(vec![ValveId(0), ValveId(1)])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("incompatible"));
    }

    #[test]
    fn rejects_singleton_lm_cluster() {
        let err = Problem::builder("t", 10, 10)
            .valve(valve(0, 1, 1, "01"))
            .lm_cluster(vec![ValveId(0)])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("fewer than two"));
    }

    #[test]
    fn rejects_unknown_valve_in_cluster() {
        let err = Problem::builder("t", 10, 10)
            .valve(valve(0, 1, 1, "01"))
            .valve(valve(1, 2, 2, "0X"))
            .lm_cluster(vec![ValveId(0), ValveId(9)])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("unknown valve"));
    }

    #[test]
    fn grid_applies_obstacles() {
        let p = Problem::builder("t", 8, 8)
            .obstacle(Point::new(3, 3))
            .build()
            .unwrap();
        let g = p.grid().unwrap();
        assert!(g.is_obstacle(Point::new(3, 3)));
        assert_eq!(g.obstacle_count(), 1);
    }
}
