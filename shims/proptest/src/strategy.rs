//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates an intermediate value, then a dependent strategy from
    /// it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// Boxes a strategy for storage in a [`Union`] (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(strategy)
}

/// Uniform choice among several strategies of one value type.
pub struct Union<T> {
    branches: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union; panics if `branches` is empty.
    pub fn new(branches: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        Self { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.branches.len() as u64) as usize;
        self.branches[idx].sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(rng.below(span) as $wide) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(rng.below(span + 1) as $wide) as $t
            }
        }
    )+};
}

impl_int_range_strategy!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Floating rounding can land exactly on the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (-5i32..5).sample(&mut rng);
            assert!((-5..5).contains(&v));
            let u = (2usize..=4).sample(&mut rng);
            assert!((2..=4).contains(&u));
            let f = (-1.5f64..0.25).sample(&mut rng);
            assert!((-1.5..0.25).contains(&f));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::new(2);
        let s = (1usize..4).prop_flat_map(|n| {
            crate::collection::vec(0u8..10, n).prop_map(move |v| (n, v))
        });
        for _ in 0..100 {
            let (n, v) = s.sample(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn union_samples_all_branches() {
        let mut rng = TestRng::new(3);
        let s = Union::new(vec![boxed(Just(1u8)), boxed(Just(2u8))]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
