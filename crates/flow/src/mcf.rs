//! Integral minimum-cost maximum-flow via successive shortest paths.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifier of a directed edge returned by [`MinCostFlow::add_edge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(usize);

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: i64,
    cost: i64,
    flow: i64,
}

/// Result of a [`MinCostFlow::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowResult {
    /// Units of flow actually routed (≤ the requested amount).
    pub flow: i64,
    /// Total cost of the routed flow.
    pub cost: i64,
}

/// Minimum-cost flow solver (successive shortest paths with Dijkstra and
/// Johnson potentials; Bellman–Ford bootstrap when negative costs exist).
///
/// Capacities and costs are `i64`; all flows are integral. The solver
/// sends flow one augmenting path at a time in order of increasing
/// reduced cost, which yields a min-cost flow for *every* intermediate
/// flow value — exactly the behaviour needed to "route as many as
/// possible, cheapest first".
///
/// Edges accumulate in a flat arena; adjacency is a CSR layout frozen
/// lazily on [`MinCostFlow::solve`] (and rebuilt only when the graph grew
/// since), so the augmentation loop walks two contiguous arrays instead
/// of chasing per-node `Vec`s.
#[derive(Debug, Clone)]
pub struct MinCostFlow {
    nodes: usize,
    edges: Vec<Edge>,
    has_negative: bool,
    /// CSR row offsets (`nodes + 1` entries once frozen).
    head: Vec<usize>,
    /// CSR arc ids, grouped by tail node: arc `a` leaves `edges[a ^ 1].to`.
    arcs: Vec<u32>,
    /// CSR-position-ordered copies of the arc fields, so the Dijkstra
    /// inner loop reads three contiguous arrays instead of gathering
    /// `edges[arcs[i]]` — plus residual capacity in place of `cap`/`flow`
    /// and the CSR position of each arc's twin for the augmentation walk.
    /// Flows are written back into `edges` after every solve, keeping
    /// [`MinCostFlow::edge_flow`] and CSR re-freezes exact.
    csr_to: Vec<u32>,
    csr_cost: Vec<i64>,
    csr_res: Vec<i64>,
    csr_twin: Vec<u32>,
    /// Arena length the CSR was frozen at (`usize::MAX` = never).
    frozen_edges: usize,
    /// Node count the CSR was frozen at.
    frozen_nodes: usize,
}

impl MinCostFlow {
    /// Creates a network with `n` nodes (`0..n`).
    pub fn new(n: usize) -> Self {
        Self {
            nodes: n,
            edges: Vec::new(),
            has_negative: false,
            head: Vec::new(),
            arcs: Vec::new(),
            csr_to: Vec::new(),
            csr_cost: Vec::new(),
            csr_res: Vec::new(),
            csr_twin: Vec::new(),
            frozen_edges: usize::MAX,
            frozen_nodes: usize::MAX,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.nodes += 1;
        self.nodes - 1
    }

    /// Adds a directed edge `u → v` with capacity `cap` and per-unit cost
    /// `cost`. Returns an [`EdgeId`] usable with [`MinCostFlow::edge_flow`].
    ///
    /// # Panics
    ///
    /// Panics when an endpoint is out of range or `cap < 0`.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: i64, cost: i64) -> EdgeId {
        assert!(u < self.nodes && v < self.nodes, "endpoint out of range");
        assert!(cap >= 0, "capacity must be non-negative");
        if cost < 0 {
            self.has_negative = true;
        }
        let id = self.edges.len();
        self.edges.push(Edge {
            to: v,
            cap,
            cost,
            flow: 0,
        });
        self.edges.push(Edge {
            to: u,
            cap: 0,
            cost: -cost,
            flow: 0,
        });
        EdgeId(id)
    }

    /// Current flow on a forward edge.
    pub fn edge_flow(&self, id: EdgeId) -> i64 {
        self.edges[id.0].flow
    }

    /// (Re)builds the CSR adjacency when edges or nodes were added since
    /// the last freeze. Counting sort over arc tails: arc `a` (forward or
    /// residual) leaves the head of its twin, `edges[a ^ 1].to`.
    fn freeze_csr(&mut self) {
        if self.frozen_edges == self.edges.len() && self.frozen_nodes == self.nodes {
            return;
        }
        self.head.clear();
        self.head.resize(self.nodes + 1, 0);
        for a in 0..self.edges.len() {
            self.head[self.edges[a ^ 1].to + 1] += 1;
        }
        for v in 0..self.nodes {
            self.head[v + 1] += self.head[v];
        }
        let mut cursor = self.head.clone();
        self.arcs.clear();
        self.arcs.resize(self.edges.len(), 0);
        // Arc id → CSR position, for wiring each arc to its twin.
        let mut pos_of = vec![0u32; self.edges.len()];
        for (a, slot) in pos_of.iter_mut().enumerate() {
            let u = self.edges[a ^ 1].to;
            self.arcs[cursor[u]] = a as u32;
            *slot = cursor[u] as u32;
            cursor[u] += 1;
        }
        let m = self.edges.len();
        self.csr_to.clear();
        self.csr_cost.clear();
        self.csr_res.clear();
        self.csr_twin.clear();
        self.csr_to.reserve(m);
        self.csr_cost.reserve(m);
        self.csr_res.reserve(m);
        self.csr_twin.reserve(m);
        for pos in 0..m {
            let a = self.arcs[pos] as usize;
            let e = &self.edges[a];
            self.csr_to.push(e.to as u32);
            self.csr_cost.push(e.cost);
            self.csr_res.push(e.cap - e.flow);
            self.csr_twin.push(pos_of[a ^ 1]);
        }
        self.frozen_edges = self.edges.len();
        self.frozen_nodes = self.nodes;
    }

    /// Sends up to `max_flow` units from `s` to `t` at minimum cost.
    /// Augmentation stops early when `t` becomes unreachable, so the
    /// returned flow may be smaller than requested.
    ///
    /// # Panics
    ///
    /// Panics when `s` or `t` is out of range.
    pub fn solve(&mut self, s: usize, t: usize, max_flow: i64) -> FlowResult {
        self.solve_until(s, t, max_flow, i64::MAX)
    }

    /// [`MinCostFlow::solve`], but stops augmenting once the *true* cost
    /// of the next shortest augmenting path reaches `bail`. SSP path
    /// costs are non-decreasing, so every skipped augmentation would
    /// also have cost ≥ `bail`; the flow routed before the bail-out is
    /// still min-cost for its value. `bail = i64::MAX` never triggers.
    pub fn solve_until(&mut self, s: usize, t: usize, max_flow: i64, bail: i64) -> FlowResult {
        assert!(s < self.nodes && t < self.nodes, "terminal out of range");
        self.freeze_csr();
        let n = self.nodes;
        // Offset-form Johnson potentials: after each augmentation the
        // textbook update is `potential[v] += dist[v].min(dt)` for all v.
        // Potentials only ever appear in differences, so the uniform
        // `+dt` part cancels and we store `potential[v] - Σdt` instead —
        // touched nodes get `+= dist[v].min(dt) - dt`, untouched nodes
        // (`dist[v] = MAX`, i.e. `+= dt` in textbook form) stay put. That
        // turns two O(n) sweeps per augmentation (reset + update) into
        // O(touched) work.
        let mut potential = vec![0i64; n];

        if self.has_negative {
            // Bellman–Ford over residual edges with remaining capacity.
            let mut dist = vec![i64::MAX; n];
            dist[s] = 0;
            for _ in 0..n {
                let mut changed = false;
                for u in 0..n {
                    if dist[u] == i64::MAX {
                        continue;
                    }
                    for pos in self.head[u]..self.head[u + 1] {
                        let to = self.csr_to[pos] as usize;
                        if self.csr_res[pos] > 0 && dist[u] + self.csr_cost[pos] < dist[to] {
                            dist[to] = dist[u] + self.csr_cost[pos];
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            for v in 0..n {
                if dist[v] != i64::MAX {
                    potential[v] = dist[v];
                }
            }
        }

        let mut total_flow = 0i64;
        let mut total_cost = 0i64;

        // Dijkstra state, allocated once; only the nodes touched by an
        // augmentation are reset before the next one.
        let mut dist = vec![i64::MAX; n];
        let mut prev_pos = vec![u32::MAX; n];
        let mut touched: Vec<u32> = Vec::new();
        let mut heap: BinaryHeap<Reverse<(i64, usize)>> = BinaryHeap::new();

        while total_flow < max_flow {
            // Dijkstra on reduced costs, stopping as soon as `t` is
            // settled: unsettled nodes have true distance ≥ dist[t], so
            // clamping their potential update to dist[t] preserves
            // non-negative reduced costs (standard SSP early exit).
            for &v in &touched {
                dist[v as usize] = i64::MAX;
                prev_pos[v as usize] = u32::MAX;
            }
            touched.clear();
            heap.clear();
            dist[s] = 0;
            touched.push(s as u32);
            heap.push(Reverse((0i64, s)));
            let mut settled_t = false;
            while let Some(Reverse((d, u))) = heap.pop() {
                if d > dist[u] {
                    continue;
                }
                if u == t {
                    settled_t = true;
                    break;
                }
                let pu = potential[u];
                for pos in self.head[u]..self.head[u + 1] {
                    if self.csr_res[pos] <= 0 {
                        continue;
                    }
                    let to = self.csr_to[pos] as usize;
                    let nd = d + self.csr_cost[pos] + pu - potential[to];
                    debug_assert!(
                        self.csr_cost[pos] + pu - potential[to] >= 0,
                        "negative reduced cost"
                    );
                    if nd < dist[to] {
                        if dist[to] == i64::MAX {
                            touched.push(to as u32);
                        }
                        dist[to] = nd;
                        prev_pos[to] = pos as u32;
                        heap.push(Reverse((nd, to)));
                    }
                }
            }
            if !settled_t {
                break; // t unreachable: maximal flow attained
            }
            let dt = dist[t];
            // True path cost = dist[t] + potential[t] - potential[s]
            // (telescoping reduced costs); the Σdt offset cancels in the
            // difference, so offset-form potentials give the exact value.
            if bail != i64::MAX
                && (dt as i128) + (potential[t] as i128) - (potential[s] as i128)
                    >= bail as i128
            {
                break;
            }
            for &v in &touched {
                let d = dist[v as usize];
                if d < dt {
                    potential[v as usize] += d - dt;
                }
            }
            // Bottleneck along the augmenting path.
            let mut push = max_flow - total_flow;
            let mut v = t;
            while v != s {
                let pos = prev_pos[v] as usize;
                push = push.min(self.csr_res[pos]);
                v = self.csr_to[self.csr_twin[pos] as usize] as usize;
            }
            // Apply.
            let mut v = t;
            while v != s {
                let pos = prev_pos[v] as usize;
                self.csr_res[pos] -= push;
                self.csr_res[self.csr_twin[pos] as usize] += push;
                total_cost += push * self.csr_cost[pos];
                v = self.csr_to[self.csr_twin[pos] as usize] as usize;
            }
            total_flow += push;
        }

        // Publish the residuals back to the arena so `edge_flow` and the
        // next CSR freeze observe the flow this solve routed.
        for pos in 0..self.arcs.len() {
            let a = self.arcs[pos] as usize;
            self.edges[a].flow = self.edges[a].cap - self.csr_res[pos];
        }

        FlowResult {
            flow: total_flow,
            cost: total_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_two_paths() {
        let mut mcf = MinCostFlow::new(4);
        mcf.add_edge(0, 1, 1, 1);
        mcf.add_edge(0, 2, 1, 2);
        mcf.add_edge(1, 3, 1, 1);
        mcf.add_edge(2, 3, 1, 2);
        let r = mcf.solve(0, 3, 10);
        assert_eq!(r, FlowResult { flow: 2, cost: 6 });
    }

    #[test]
    fn respects_requested_flow() {
        let mut mcf = MinCostFlow::new(2);
        mcf.add_edge(0, 1, 5, 3);
        let r = mcf.solve(0, 1, 2);
        assert_eq!(r, FlowResult { flow: 2, cost: 6 });
    }

    #[test]
    fn cheapest_first() {
        // Capacity 2 wanted but only 1 requested: must take the cheap arc.
        let mut mcf = MinCostFlow::new(2);
        let cheap = mcf.add_edge(0, 1, 1, 1);
        let dear = mcf.add_edge(0, 1, 1, 100);
        let r = mcf.solve(0, 1, 1);
        assert_eq!(r.cost, 1);
        assert_eq!(mcf.edge_flow(cheap), 1);
        assert_eq!(mcf.edge_flow(dear), 0);
    }

    #[test]
    fn unreachable_sink_gives_zero() {
        let mut mcf = MinCostFlow::new(3);
        mcf.add_edge(0, 1, 1, 1);
        let r = mcf.solve(0, 2, 5);
        assert_eq!(r, FlowResult { flow: 0, cost: 0 });
    }

    #[test]
    fn rerouting_via_residual_edges() {
        // Classic case where the second augmentation must push back flow:
        //   s→a (1,1), s→b (1,4), a→b (1,0)... build so naive greedy fails.
        let (s, a, b, t) = (0, 1, 2, 3);
        let mut mcf = MinCostFlow::new(4);
        mcf.add_edge(s, a, 1, 1);
        mcf.add_edge(s, b, 1, 10);
        mcf.add_edge(a, b, 1, 1);
        mcf.add_edge(a, t, 1, 10);
        mcf.add_edge(b, t, 1, 1);
        // Best for 2 units: s→a→b→t (3) + s→b? b full... the solver must
        // route s→a→t (11) and s→b→t (11) or s→a→b→t + s→b→t with rewind.
        let r = mcf.solve(s, t, 2);
        assert_eq!(r.flow, 2);
        // Optimal = s→a→b→t (1+1+1=3) + s→b...b→t used; residual forces
        // s→b (10) + push-back on a→b + a→t (10): total 3 - 1 + 10 + 10 + 1 = 23?
        // Enumerate: routes {s→a→t, s→b→t} = 11 + 11 = 22;
        //            {s→a→b→t, s→b→t} infeasible (b→t cap 1).
        // So optimum is 22.
        assert_eq!(r.cost, 22);
    }

    #[test]
    fn negative_costs_handled() {
        let mut mcf = MinCostFlow::new(3);
        mcf.add_edge(0, 1, 1, -5);
        mcf.add_edge(1, 2, 1, 2);
        mcf.add_edge(0, 2, 1, 1);
        let r = mcf.solve(0, 2, 2);
        assert_eq!(r.flow, 2);
        assert_eq!(r.cost, -3 + 1);
    }

    #[test]
    fn intermediate_flows_are_min_cost() {
        // Ask for 1 unit in a network whose cheapest s-t path costs 4.
        let mut mcf = MinCostFlow::new(5);
        mcf.add_edge(0, 1, 1, 2);
        mcf.add_edge(1, 4, 1, 2);
        mcf.add_edge(0, 2, 1, 3);
        mcf.add_edge(2, 4, 1, 3);
        mcf.add_edge(0, 3, 1, 1);
        mcf.add_edge(3, 4, 1, 9);
        let r = mcf.solve(0, 4, 1);
        assert_eq!(r, FlowResult { flow: 1, cost: 4 });
    }

    #[test]
    fn add_node_grows_network() {
        let mut mcf = MinCostFlow::new(1);
        let v = mcf.add_node();
        assert_eq!(v, 1);
        mcf.add_edge(0, v, 1, 0);
        let r = mcf.solve(0, v, 1);
        assert_eq!(r.flow, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-negative")]
    fn negative_capacity_panics() {
        MinCostFlow::new(2).add_edge(0, 1, -1, 0);
    }

    /// Naive successive-shortest-path reference: Bellman–Ford over the
    /// residual graph each augmentation, no potentials, no CSR. Slow but
    /// obviously correct on networks without negative cycles.
    struct Reference {
        n: usize,
        // (to, cap, cost, flow); arc a's twin is a ^ 1.
        edges: Vec<(usize, i64, i64, i64)>,
    }

    impl Reference {
        fn new(n: usize) -> Self {
            Self { n, edges: Vec::new() }
        }

        fn add_edge(&mut self, u: usize, v: usize, cap: i64, cost: i64) {
            let _ = u;
            self.edges.push((v, cap, cost, 0));
            self.edges.push((u, 0, -cost, 0));
        }

        fn tail(&self, a: usize) -> usize {
            self.edges[a ^ 1].0
        }

        fn solve(&mut self, s: usize, t: usize, max_flow: i64) -> FlowResult {
            let mut total_flow = 0i64;
            let mut total_cost = 0i64;
            while total_flow < max_flow {
                let mut dist = vec![i64::MAX; self.n];
                let mut prev = vec![usize::MAX; self.n];
                dist[s] = 0;
                for _ in 0..self.n {
                    let mut changed = false;
                    for a in 0..self.edges.len() {
                        let (to, cap, cost, flow) = self.edges[a];
                        let u = self.tail(a);
                        if cap - flow > 0
                            && dist[u] != i64::MAX
                            && dist[u] + cost < dist[to]
                        {
                            dist[to] = dist[u] + cost;
                            prev[to] = a;
                            changed = true;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                if dist[t] == i64::MAX {
                    break;
                }
                let mut push = max_flow - total_flow;
                let mut v = t;
                while v != s {
                    let a = prev[v];
                    push = push.min(self.edges[a].1 - self.edges[a].3);
                    v = self.tail(a);
                }
                let mut v = t;
                while v != s {
                    let a = prev[v];
                    self.edges[a].3 += push;
                    self.edges[a ^ 1].3 -= push;
                    total_cost += push * self.edges[a].2;
                    v = self.tail(a);
                }
                total_flow += push;
            }
            FlowResult {
                flow: total_flow,
                cost: total_cost,
            }
        }
    }

    #[test]
    fn randomized_equivalence_with_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xF10C);
        for case in 0..60 {
            let n = rng.gen_range(4..12usize);
            let m = rng.gen_range(n..4 * n);
            let mut mcf = MinCostFlow::new(n);
            let mut reference = Reference::new(n);
            for _ in 0..m {
                // Forward-oriented edges (u < v) keep the network acyclic,
                // so negative costs cannot form negative cycles.
                let u = rng.gen_range(0..n - 1);
                let v = rng.gen_range(u + 1..n);
                let cap = rng.gen_range(0..4i64);
                let cost = rng.gen_range(-3..10i64);
                mcf.add_edge(u, v, cap, cost);
                reference.add_edge(u, v, cap, cost);
            }
            let want = rng.gen_range(1..8i64);
            let got = mcf.solve(0, n - 1, want);
            let expect = reference.solve(0, n - 1, want);
            assert_eq!(got, expect, "case {case}: n={n} m={m} want={want}");
        }
    }

    #[test]
    fn csr_refreezes_after_growth() {
        // Solve, then grow the graph and solve again: the CSR must pick
        // up both the new node and the new edges.
        let mut mcf = MinCostFlow::new(2);
        mcf.add_edge(0, 1, 1, 1);
        assert_eq!(mcf.solve(0, 1, 10).flow, 1);
        let v = mcf.add_node();
        mcf.add_edge(0, v, 2, 1);
        mcf.add_edge(v, 1, 2, 1);
        let r = mcf.solve(0, 1, 10);
        assert_eq!(r.flow, 2, "two more units via the new node");
        assert_eq!(r.cost, 4);
    }

    #[test]
    fn large_grid_like_network() {
        // 10x10 grid, 5 sources on the left, sink column on the right.
        let n = 10;
        let id = |x: usize, y: usize| y * n + x;
        let t = n * n;
        let s = n * n + 1;
        let mut mcf = MinCostFlow::new(n * n + 2);
        for y in 0..n {
            for x in 0..n {
                if x + 1 < n {
                    mcf.add_edge(id(x, y), id(x + 1, y), 1, 1);
                    mcf.add_edge(id(x + 1, y), id(x, y), 1, 1);
                }
                if y + 1 < n {
                    mcf.add_edge(id(x, y), id(x, y + 1), 1, 1);
                    mcf.add_edge(id(x, y + 1), id(x, y), 1, 1);
                }
            }
        }
        for k in 0..5 {
            mcf.add_edge(s, id(0, 2 * k), 1, 0);
            mcf.add_edge(id(n - 1, 2 * k), t, 1, 0);
        }
        let r = mcf.solve(s, t, 5);
        assert_eq!(r.flow, 5);
        // Straight rows: 9 steps each.
        assert_eq!(r.cost, 45);
    }
}
