//! Structural run diffing (`pacor-rundiff-v1`).
//!
//! [`diff_runs`] compares two [`RunDigest`]s and produces a
//! [`RunDiff`]: fingerprint drift, outcome/cluster quality deltas,
//! deterministic counter and histogram deltas, and a span-tree diff
//! with exclusive-time deltas ranked by regression. Every
//! *deterministic* delta is a verdict — those fields cannot jitter, so
//! any change is a real change. *Timing* deltas become verdicts only
//! past the noise rule shared with the bench budgets: a stage has
//! regressed when it is both 25% and 25 ms slower
//! ([`timing_regressed`]), so wall-clock jitter never flags.

use crate::digest::{RunDigest, SpanNode};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Schema tag carried by every diff document.
pub const DIFF_SCHEMA: &str = "pacor-rundiff-v1";

/// Relative slowdown a timing must exceed before it can flag (25%).
pub const NOISE_RELATIVE: f64 = 0.25;

/// Absolute slowdown a timing must also exceed before it can flag.
pub const NOISE_ABS_MS: f64 = 25.0;

/// The shared noise rule: `new` has regressed against `base` only when
/// it is both 25% slower *and* more than 25 ms slower.
pub fn timing_regressed(base_ms: f64, new_ms: f64) -> bool {
    new_ms > base_ms * (1.0 + NOISE_RELATIVE) && new_ms - base_ms > NOISE_ABS_MS
}

/// How serious one diff entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Shown for context; never fails a gate.
    Info,
    /// A real change — deterministic drift or past-noise timing.
    Verdict,
}

/// One compared value: a named before/after pair with a severity.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// What changed (e.g. `outcome.total_length`,
    /// `span stage.escape excl_ms`, `counter negotiate.ripups`).
    pub what: String,
    /// Baseline value, rendered.
    pub base: String,
    /// New value, rendered.
    pub new: String,
    /// Whether this entry counts against the gate.
    pub severity: Severity,
}

impl DiffEntry {
    fn verdict(what: impl Into<String>, base: impl ToString, new: impl ToString) -> Self {
        DiffEntry {
            what: what.into(),
            base: base.to_string(),
            new: new.to_string(),
            severity: Severity::Verdict,
        }
    }

    fn info(what: impl Into<String>, base: impl ToString, new: impl ToString) -> Self {
        DiffEntry {
            what: what.into(),
            base: base.to_string(),
            new: new.to_string(),
            severity: Severity::Info,
        }
    }
}

/// One span-tree node present in both runs, with its exclusive-time
/// movement.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanDelta {
    /// `/`-joined path from the root (e.g. `flow/stage.escape`).
    pub path: String,
    /// Baseline exclusive ms.
    pub base_excl_ms: f64,
    /// New exclusive ms.
    pub new_excl_ms: f64,
    /// Baseline span count.
    pub base_count: u64,
    /// New span count.
    pub new_count: u64,
    /// Whether the movement clears the noise rule.
    pub regressed: bool,
}

/// The full comparison of two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunDiff {
    /// Chip + fingerprint-key agreement and any config drift.
    pub fingerprint: Vec<DiffEntry>,
    /// Outcome and per-cluster quality deltas (always verdicts).
    pub quality: Vec<DiffEntry>,
    /// Deterministic counter/histogram deltas (always verdicts).
    pub metrics: Vec<DiffEntry>,
    /// Spans present in both runs, ranked worst regression first.
    pub span_changed: Vec<SpanDelta>,
    /// Span paths only in the new run (info unless past noise).
    pub span_added: Vec<DiffEntry>,
    /// Span paths only in the baseline (info unless past noise).
    pub span_removed: Vec<DiffEntry>,
    /// End-to-end wall-clock movement (verdict only past noise).
    pub wall: Vec<DiffEntry>,
}

impl RunDiff {
    /// Every entry that counts against the gate, in render order.
    pub fn verdicts(&self) -> Vec<&DiffEntry> {
        let mut out: Vec<&DiffEntry> = Vec::new();
        for section in [
            &self.fingerprint,
            &self.quality,
            &self.metrics,
            &self.span_added,
            &self.span_removed,
            &self.wall,
        ] {
            out.extend(section.iter().filter(|e| e.severity == Severity::Verdict));
        }
        out
    }

    /// Whether the diff carries any verdict — deterministic drift,
    /// past-noise span regression, or past-noise wall regression.
    pub fn has_verdicts(&self) -> bool {
        !self.verdicts().is_empty() || self.span_changed.iter().any(|s| s.regressed)
    }
}

fn flatten_spans(spans: &[SpanNode], out: &mut BTreeMap<String, (u64, u64)>) {
    for s in spans {
        s.walk("", &mut |path, node| {
            let slot = out.entry(path).or_insert((0, 0));
            slot.0 += node.count;
            slot.1 += node.excl_us;
        });
    }
}

fn ms(us: u64) -> f64 {
    us as f64 / 1000.0
}

/// Compares `new` against `base`.
pub fn diff_runs(base: &RunDigest, new: &RunDigest) -> RunDiff {
    let mut fingerprint = Vec::new();
    if base.fingerprint.chip != new.fingerprint.chip {
        fingerprint.push(DiffEntry::verdict(
            "fingerprint.chip",
            &base.fingerprint.chip,
            &new.fingerprint.chip,
        ));
    }
    if base.fingerprint.chip_hash != new.fingerprint.chip_hash {
        fingerprint.push(DiffEntry::verdict(
            "fingerprint.chip_hash",
            format!("{:016x}", base.fingerprint.chip_hash),
            format!("{:016x}", new.fingerprint.chip_hash),
        ));
    }
    let base_cfg: BTreeMap<&str, &str> = base
        .fingerprint
        .config
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    let new_cfg: BTreeMap<&str, &str> = new
        .fingerprint
        .config
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    for (key, bv) in &base_cfg {
        match new_cfg.get(key) {
            Some(nv) if nv == bv => {}
            Some(nv) => fingerprint.push(DiffEntry::verdict(format!("config.{key}"), bv, nv)),
            None => fingerprint.push(DiffEntry::verdict(format!("config.{key}"), bv, "(absent)")),
        }
    }
    for (key, nv) in &new_cfg {
        if !base_cfg.contains_key(key) {
            fingerprint.push(DiffEntry::verdict(format!("config.{key}"), "(absent)", nv));
        }
    }

    // -- quality: outcome fields + per-cluster verdicts -------------------
    let mut quality = Vec::new();
    let bo = &base.outcome;
    let no = &new.outcome;
    for (name, b, n) in [
        ("outcome.completion_milli", bo.completion_milli, no.completion_milli),
        ("outcome.total_length", bo.total_length, no.total_length),
        ("outcome.matched_clusters", bo.matched_clusters, no.matched_clusters),
        ("outcome.matched_length", bo.matched_length, no.matched_length),
        ("outcome.clusters_multi", bo.clusters_multi, no.clusters_multi),
        ("outcome.valves_routed", bo.valves_routed, no.valves_routed),
        ("outcome.valves_total", bo.valves_total, no.valves_total),
        ("outcome.rounds", bo.rounds, no.rounds),
        ("outcome.ripups", bo.ripups, no.ripups),
        ("outcome.escape_rounds", bo.escape_rounds, no.escape_rounds),
        ("outcome.escape_declustered", bo.escape_declustered, no.escape_declustered),
        ("outcome.escape_ripped", bo.escape_ripped, no.escape_ripped),
    ] {
        if b != n {
            quality.push(DiffEntry::verdict(name, b, n));
        }
    }
    if base.clusters.len() != new.clusters.len() {
        quality.push(DiffEntry::verdict(
            "clusters.count",
            base.clusters.len(),
            new.clusters.len(),
        ));
    }
    for (i, (bc, nc)) in base.clusters.iter().zip(new.clusters.iter()).enumerate() {
        if bc != nc {
            quality.push(DiffEntry::verdict(
                format!("clusters[{i}]"),
                format!(
                    "len {} matched {} slack {:?}",
                    bc.length, bc.matched, bc.slack
                ),
                format!(
                    "len {} matched {} slack {:?}",
                    nc.length, nc.matched, nc.slack
                ),
            ));
        }
    }

    // -- deterministic counters + histograms ------------------------------
    let mut metrics = Vec::new();
    let base_counters: BTreeMap<&str, u64> = base
        .counters
        .iter()
        .map(|(k, v)| (k.as_str(), *v))
        .collect();
    let new_counters: BTreeMap<&str, u64> = new
        .counters
        .iter()
        .map(|(k, v)| (k.as_str(), *v))
        .collect();
    let mut counter_names: Vec<&str> = base_counters.keys().chain(new_counters.keys()).copied().collect();
    counter_names.sort_unstable();
    counter_names.dedup();
    for name in counter_names {
        // An absent counter reads 0: a stage that stops emitting is a
        // change, not a schema error.
        let b = base_counters.get(name).copied().unwrap_or(0);
        let n = new_counters.get(name).copied().unwrap_or(0);
        if b != n {
            metrics.push(DiffEntry::verdict(format!("counter {name}"), b, n));
        }
    }
    let base_hists: BTreeMap<&str, _> = base
        .histograms
        .iter()
        .map(|(k, v)| (k.as_str(), *v))
        .collect();
    let new_hists: BTreeMap<&str, _> = new
        .histograms
        .iter()
        .map(|(k, v)| (k.as_str(), *v))
        .collect();
    let mut hist_names: Vec<&str> = base_hists.keys().chain(new_hists.keys()).copied().collect();
    hist_names.sort_unstable();
    hist_names.dedup();
    for name in hist_names {
        let b = base_hists.get(name).copied().unwrap_or_default();
        let n = new_hists.get(name).copied().unwrap_or_default();
        if b != n {
            metrics.push(DiffEntry::verdict(
                format!("histogram {name}"),
                format!("n={} sum={} p95={}", b.count, b.sum, b.p95),
                format!("n={} sum={} p95={}", n.count, n.sum, n.p95),
            ));
        }
    }

    // -- span tree --------------------------------------------------------
    let mut base_spans = BTreeMap::new();
    let mut new_spans = BTreeMap::new();
    flatten_spans(&base.wall.spans, &mut base_spans);
    flatten_spans(&new.wall.spans, &mut new_spans);
    let mut span_changed = Vec::new();
    let mut span_added = Vec::new();
    let mut span_removed = Vec::new();
    for (path, (b_count, b_excl)) in &base_spans {
        match new_spans.get(path) {
            Some((n_count, n_excl)) => {
                let base_excl_ms = ms(*b_excl);
                let new_excl_ms = ms(*n_excl);
                span_changed.push(SpanDelta {
                    path: path.clone(),
                    base_excl_ms,
                    new_excl_ms,
                    base_count: *b_count,
                    new_count: *n_count,
                    regressed: timing_regressed(base_excl_ms, new_excl_ms),
                });
            }
            None => {
                // Removed lanes (e.g. parallel batches gone at
                // --threads 1) are context unless real time vanished.
                let entry = if ms(*b_excl) > NOISE_ABS_MS {
                    DiffEntry::verdict(format!("span -{path}"), format!("{:.1} ms", ms(*b_excl)), "(absent)")
                } else {
                    DiffEntry::info(format!("span -{path}"), format!("{:.1} ms", ms(*b_excl)), "(absent)")
                };
                span_removed.push(entry);
            }
        }
    }
    for (path, (_, n_excl)) in &new_spans {
        if !base_spans.contains_key(path) {
            let entry = if ms(*n_excl) > NOISE_ABS_MS {
                DiffEntry::verdict(format!("span +{path}"), "(absent)", format!("{:.1} ms", ms(*n_excl)))
            } else {
                DiffEntry::info(format!("span +{path}"), "(absent)", format!("{:.1} ms", ms(*n_excl)))
            };
            span_added.push(entry);
        }
    }
    // Worst regression first: by the amount the noise budget is
    // exceeded, then by absolute delta.
    span_changed.sort_by(|a, b| {
        let ka = (a.new_excl_ms - a.base_excl_ms, a.regressed);
        let kb = (b.new_excl_ms - b.base_excl_ms, b.regressed);
        kb.1.cmp(&ka.1)
            .then(kb.0.partial_cmp(&ka.0).unwrap_or(std::cmp::Ordering::Equal))
            .then_with(|| a.path.cmp(&b.path))
    });

    // -- wall clock -------------------------------------------------------
    let mut wall = Vec::new();
    let (bw, nw) = (base.wall.wall_ms, new.wall.wall_ms);
    let wall_entry = if timing_regressed(bw, nw) {
        DiffEntry::verdict("wall_ms", format!("{bw:.1}"), format!("{nw:.1}"))
    } else {
        DiffEntry::info("wall_ms", format!("{bw:.1}"), format!("{nw:.1}"))
    };
    wall.push(wall_entry);
    for (label, b, n) in [
        ("threads", base.wall.threads.to_string(), new.wall.threads.to_string()),
        ("mode", base.wall.mode.clone(), new.wall.mode.clone()),
        ("policy", base.wall.policy.clone(), new.wall.policy.clone()),
        ("routing", base.wall.routing.clone(), new.wall.routing.clone()),
    ] {
        if b != n {
            wall.push(DiffEntry::info(format!("wall.{label}"), b, n));
        }
    }

    RunDiff {
        fingerprint,
        quality,
        metrics,
        span_changed,
        span_added,
        span_removed,
        wall,
    }
}

/// Renders the diff as a `pacor-rundiff-v1` JSON document.
pub fn diff_json(diff: &RunDiff) -> String {
    fn push_entries(out: &mut String, name: &str, entries: &[DiffEntry]) {
        let _ = write!(out, "  \"{name}\": [");
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"what\": ");
            crate::export::push_json_string(out, &e.what);
            out.push_str(", \"base\": ");
            crate::export::push_json_string(out, &e.base);
            out.push_str(", \"new\": ");
            crate::export::push_json_string(out, &e.new);
            let _ = write!(
                out,
                ", \"verdict\": {}}}",
                e.severity == Severity::Verdict
            );
        }
        if !entries.is_empty() {
            out.push_str("\n  ");
        }
        out.push(']');
    }
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"{DIFF_SCHEMA}\",");
    push_entries(&mut out, "fingerprint", &diff.fingerprint);
    out.push_str(",\n");
    push_entries(&mut out, "quality", &diff.quality);
    out.push_str(",\n");
    push_entries(&mut out, "metrics", &diff.metrics);
    out.push_str(",\n  \"span_changed\": [");
    for (i, s) in diff.span_changed.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"path\": ");
        crate::export::push_json_string(&mut out, &s.path);
        let _ = write!(
            out,
            ", \"base_excl_ms\": {:.3}, \"new_excl_ms\": {:.3}, \"base_count\": {}, \"new_count\": {}, \"regressed\": {}}}",
            s.base_excl_ms, s.new_excl_ms, s.base_count, s.new_count, s.regressed
        );
    }
    if !diff.span_changed.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    push_entries(&mut out, "span_added", &diff.span_added);
    out.push_str(",\n");
    push_entries(&mut out, "span_removed", &diff.span_removed);
    out.push_str(",\n");
    push_entries(&mut out, "wall", &diff.wall);
    let _ = write!(out, ",\n  \"has_verdicts\": {}\n}}\n", diff.has_verdicts());
    out
}

/// Renders the diff as ranked ASCII tables (the `tables compare`
/// output). Deterministic sections print every entry; the span table
/// prints regressions first and caps healthy rows at `max_span_rows`.
pub fn render_diff(diff: &RunDiff, max_span_rows: usize) -> String {
    fn section(out: &mut String, title: &str, entries: &[DiffEntry]) {
        if entries.is_empty() {
            return;
        }
        let _ = writeln!(out, "== {title} ==");
        let what_w = entries.iter().map(|e| e.what.len()).max().unwrap_or(4).max(4);
        let base_w = entries.iter().map(|e| e.base.len()).max().unwrap_or(4).max(4);
        for e in entries {
            let mark = if e.severity == Severity::Verdict {
                "!!"
            } else {
                "  "
            };
            let _ = writeln!(
                out,
                "{mark} {:<what_w$}  {:>base_w$} -> {}",
                e.what, e.base, e.new
            );
        }
        out.push('\n');
    }
    let mut out = String::new();
    section(&mut out, "fingerprint drift", &diff.fingerprint);
    section(&mut out, "quality", &diff.quality);
    section(&mut out, "deterministic metrics", &diff.metrics);
    section(&mut out, "spans added", &diff.span_added);
    section(&mut out, "spans removed", &diff.span_removed);

    if !diff.span_changed.is_empty() {
        let _ = writeln!(out, "== span exclusive time (worst first) ==");
        let path_w = diff
            .span_changed
            .iter()
            .map(|s| s.path.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut shown = 0usize;
        for s in &diff.span_changed {
            if !s.regressed && shown >= max_span_rows {
                continue;
            }
            shown += 1;
            let mark = if s.regressed { "!!" } else { "  " };
            let _ = writeln!(
                out,
                "{mark} {:<path_w$}  {:>10.1} -> {:>10.1} ms  ({:+.1} ms, x{} -> x{})",
                s.path,
                s.base_excl_ms,
                s.new_excl_ms,
                s.new_excl_ms - s.base_excl_ms,
                s.base_count,
                s.new_count
            );
        }
        let hidden = diff.span_changed.len() - shown;
        if hidden > 0 {
            let _ = writeln!(out, "   ... {hidden} unchanged span paths within noise");
        }
        out.push('\n');
    }
    section(&mut out, "wall clock", &diff.wall);

    let verdicts = diff.verdicts().len()
        + diff.span_changed.iter().filter(|s| s.regressed).count();
    if verdicts == 0 {
        let _ = writeln!(out, "OK: no differences beyond noise");
    } else {
        let _ = writeln!(out, "FAIL: {verdicts} verdict(s) beyond noise");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::tests::sample_digest;

    #[test]
    fn noise_rule_requires_both_thresholds() {
        assert!(!timing_regressed(100.0, 124.0), "under 25% relative");
        assert!(!timing_regressed(10.0, 30.0), "under 25 ms absolute");
        assert!(timing_regressed(100.0, 130.0), "both thresholds cleared");
        assert!(!timing_regressed(100.0, 90.0), "improvements never flag");
        assert!(timing_regressed(0.0, 26.0), "new work from nothing flags");
    }

    #[test]
    fn identical_runs_diff_clean() {
        let d = sample_digest();
        let diff = diff_runs(&d, &d);
        assert!(!diff.has_verdicts(), "self-diff must be clean: {diff:?}");
        assert!(render_diff(&diff, 20).contains("OK: no differences beyond noise"));
    }

    #[test]
    fn wall_jitter_within_noise_never_flags() {
        let base = sample_digest();
        let mut new = base.clone();
        new.wall.wall_ms *= 1.2; // 20% slower but well under 25 ms absolute
        new.wall.threads = 1;
        new.wall.mode = "serial".into();
        let diff = diff_runs(&base, &new);
        assert!(!diff.has_verdicts(), "{diff:?}");
    }

    #[test]
    fn deterministic_drift_always_flags() {
        let base = sample_digest();
        let mut new = base.clone();
        new.outcome.total_length += 7;
        new.counters[0].1 += 1;
        new.clusters[0].slack = Some(-3);
        let diff = diff_runs(&base, &new);
        assert!(diff.has_verdicts());
        let whats: Vec<&str> = diff.verdicts().iter().map(|e| e.what.as_str()).collect();
        assert!(whats.contains(&"outcome.total_length"));
        assert!(whats.contains(&"counter detour.segments"));
        assert!(whats.iter().any(|w| w.starts_with("clusters[0]")));
        assert!(render_diff(&diff, 20).contains("FAIL:"));
    }

    #[test]
    fn absent_counter_reads_zero() {
        let base = sample_digest();
        let mut new = base.clone();
        new.counters.retain(|(n, _)| n != "detour.segments");
        let diff = diff_runs(&base, &new);
        let entry = diff
            .verdicts()
            .iter()
            .find(|e| e.what == "counter detour.segments")
            .cloned()
            .cloned()
            .expect("dropped counter flags");
        assert_eq!((entry.base.as_str(), entry.new.as_str()), ("3", "0"));
    }

    #[test]
    fn span_regression_past_noise_flags_and_ranks_first() {
        let base = sample_digest();
        let mut new = base.clone();
        // stage.escape excl 3000 µs -> 33 000 µs: +30 ms and > 25%.
        new.wall.spans[0].excl_us = 33_000;
        new.wall.spans[0].incl_us = 35_000;
        let diff = diff_runs(&base, &new);
        assert!(diff.has_verdicts());
        assert_eq!(diff.span_changed[0].path, "stage.escape");
        assert!(diff.span_changed[0].regressed);
        // The child moved by nothing: present, not regressed.
        assert!(diff
            .span_changed
            .iter()
            .any(|s| s.path == "stage.escape/escape.net_solve" && !s.regressed));
    }

    #[test]
    fn small_added_lanes_are_info_large_ones_verdicts() {
        let base = sample_digest();
        let mut new = base.clone();
        new.wall.spans.push(SpanNode {
            name: "parallel.batch".into(),
            count: 8,
            incl_us: 2_000,
            excl_us: 2_000,
            children: vec![],
        });
        let diff = diff_runs(&base, &new);
        assert!(!diff.has_verdicts(), "2 ms lane is context: {diff:?}");
        let mut big = base.clone();
        big.wall.spans.push(SpanNode {
            name: "stage.mystery".into(),
            count: 1,
            incl_us: 60_000,
            excl_us: 60_000,
            children: vec![],
        });
        let diff = diff_runs(&base, &big);
        assert!(diff.has_verdicts(), "60 ms of new work must flag");
    }

    #[test]
    fn diff_json_is_well_formed_and_tagged() {
        let base = sample_digest();
        let mut new = base.clone();
        new.outcome.ripups += 1;
        let text = diff_json(&diff_runs(&base, &new));
        let v = crate::json::parse(&text).expect("valid JSON");
        assert_eq!(v.get("schema").unwrap().as_str(), Some(DIFF_SCHEMA));
        assert_eq!(v.get("has_verdicts").unwrap().as_bool(), Some(true));
        assert!(!v.get("quality").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn config_drift_is_a_fingerprint_verdict() {
        let base = sample_digest();
        let mut new = base.clone();
        new.fingerprint.config[1].1 = "0.5".into();
        let diff = diff_runs(&base, &new);
        let whats: Vec<&str> = diff.verdicts().iter().map(|e| e.what.as_str()).collect();
        assert_eq!(whats, vec!["config.lambda"]);
    }
}
