//! Error type for grid construction and access.

use crate::Point;
use std::error::Error;
use std::fmt;

/// Errors produced by the grid substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GridError {
    /// The requested grid dimensions are zero or exceed the supported size.
    InvalidDimensions {
        /// Requested width.
        width: u32,
        /// Requested height.
        height: u32,
    },
    /// A point lies outside the grid.
    OutOfBounds {
        /// The offending point.
        point: Point,
        /// Grid width.
        width: u32,
        /// Grid height.
        height: u32,
    },
    /// A path is not a connected sequence of adjacent cells.
    DisconnectedPath {
        /// First pair index at which adjacency fails.
        at: usize,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::InvalidDimensions { width, height } => {
                write!(f, "invalid grid dimensions {width}x{height}")
            }
            GridError::OutOfBounds {
                point,
                width,
                height,
            } => write!(f, "point {point} outside {width}x{height} grid"),
            GridError::DisconnectedPath { at } => {
                write!(f, "path cells at indices {at} and {} are not adjacent", at + 1)
            }
        }
    }
}

impl Error for GridError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = GridError::InvalidDimensions {
            width: 0,
            height: 5,
        };
        assert_eq!(e.to_string(), "invalid grid dimensions 0x5");
        let e = GridError::OutOfBounds {
            point: Point::new(9, 9),
            width: 4,
            height: 4,
        };
        assert!(e.to_string().contains("outside 4x4 grid"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GridError>();
    }
}
