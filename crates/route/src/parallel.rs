//! Deterministic scoped-thread fan-out.
//!
//! The flow's data-parallel stages (DME candidate generation, MWCP
//! pair scoring, speculative negotiation rounds) fan work out through
//! [`parallel_map`] / [`parallel_map_with`]: scoped worker threads
//! claim items off a shared atomic counter and the results are merged
//! back **by item index**, so the output vector is identical to the
//! sequential map at any thread count. Determinism therefore needs
//! nothing from the workers beyond the mapped function itself being
//! pure — scheduling order never leaks into the result.
//!
//! When the caller has an active [`pacor_obs`] recording frame, each
//! work item additionally runs inside its own [`pacor_obs::task_frame`]
//! and the captured frames are absorbed back in item order, so counter
//! and histogram totals inherit the same any-thread-count determinism.
//!
//! This module lives in `pacor-route` (rather than the flow crate)
//! because the negotiation router's speculative parallel mode fans out
//! through it; the flow crate re-exports both functions unchanged.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Caps a requested thread count at the host's available parallelism.
///
/// Fanning out wider than the hardware cannot win — the workers just
/// timeslice one another plus pay spawn overhead — so the flow routes
/// its configured thread count through this before fanning out. Results
/// are unaffected either way (the merge is index-ordered); only
/// wall-clock time is.
pub fn effective_threads(requested: usize) -> usize {
    let hardware = thread::available_parallelism().map_or(1, |n| n.get());
    requested.clamp(1, hardware)
}

/// Maps `f` over `items` on up to `threads` scoped worker threads,
/// returning results in item order.
///
/// `f` receives `(index, &item)`. With `threads <= 1` or fewer than two
/// items the map runs inline on the caller's thread — the parallel path
/// produces the exact same vector, just wall-clock faster.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_with(threads, items, || (), |(), i, t| f(i, t))
}

/// [`parallel_map`] with per-worker scratch state: every worker thread
/// creates one `S` via `init` and threads it through each item it
/// claims, so reusable buffers (an `AStarScratch`, say) warm up across
/// a worker's items instead of being rebuilt per item.
///
/// `f` receives `(&mut state, index, &item)`. The inline path
/// (`threads <= 1` or fewer than two items) creates a single state and
/// maps sequentially — identical results, identical `init` semantics.
///
/// Determinism contract: `f` must derive its result from `(index,
/// item)` and read-only captures alone. The state is a cache, not an
/// input — which items share a state depends on scheduling.
///
/// # Panics
///
/// Propagates a panic from `init` or `f` (the scope joins all workers
/// first).
pub fn parallel_map_with<T, R, S, I, F>(threads: usize, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    // Observability: when the caller records, every item runs in a
    // private task frame (whatever thread it lands on) and the frames
    // are absorbed in item order — never completion order — so metric
    // totals stay bit-identical at any thread count.
    let recording = pacor_obs::active();
    let _span = recording.then(|| {
        pacor_obs::counter_add("parallel.tasks", items.len() as u64);
        pacor_obs::span_with(
            "parallel.batch",
            &[("items", items.len() as u64), ("threads", threads as u64)],
        )
    });
    if threads <= 1 || items.len() <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| {
                if recording {
                    let (r, frame) = pacor_obs::task_frame(i as u32 + 1, || f(&mut state, i, t));
                    pacor_obs::absorb(frame);
                    r
                } else {
                    f(&mut state, i, t)
                }
            })
            .collect();
    }
    let workers = threads.min(items.len());
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<(R, Option<pacor_obs::Frame>)>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        if recording {
                            let (r, frame) =
                                pacor_obs::task_frame(i as u32 + 1, || f(&mut state, i, &items[i]));
                            produced.push((i, r, Some(frame)));
                        } else {
                            produced.push((i, f(&mut state, i, &items[i]), None));
                        }
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            for (i, r, frame) in handle.join().expect("parallel_map worker panicked") {
                slots[i] = Some((r, frame));
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            let (r, frame) = slot.expect("every item is claimed exactly once");
            if let Some(frame) = frame {
                pacor_obs::absorb(frame);
            }
            r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(4, &items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_at_any_thread_count() {
        let items: Vec<u64> = (0..37).map(|i| i * 17 % 23).collect();
        let work = |_: usize, &x: &u64| -> u64 {
            // Uneven per-item cost, so workers interleave differently
            // from run to run.
            (0..x * 50).fold(x, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
        };
        let sequential = parallel_map(1, &items, work);
        for threads in [2, 3, 4, 8] {
            assert_eq!(parallel_map(threads, &items, work), sequential);
        }
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let calls = AtomicUsize::new(0);
        let items: Vec<i32> = (0..64).collect();
        let out = parallel_map(5, &items, |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 64);
        assert_eq!(calls.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn obs_totals_are_thread_count_invariant() {
        let items: Vec<u64> = (0..25).collect();
        let work = |_: usize, &x: &u64| {
            pacor_obs::counter_add("test.work", x + 1);
            pacor_obs::record("test.size", x);
            x
        };
        let run = |threads: usize| {
            let session = pacor_obs::Session::begin();
            let out = parallel_map(threads, &items, work);
            let report = session.finish();
            (out, pacor_obs::metrics_json(&report))
        };
        let (seq_out, seq_metrics) = run(1);
        for threads in [2, 4, 8] {
            let (out, metrics) = run(threads);
            assert_eq!(out, seq_out);
            assert_eq!(metrics, seq_metrics, "metrics differ at {threads} threads");
        }
    }

    #[test]
    fn handles_degenerate_inputs() {
        let empty: Vec<u8> = vec![];
        assert!(parallel_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(0, &[7u8], |_, &x| x), vec![7]);
        assert_eq!(parallel_map(16, &[1u8, 2], |_, &x| x + 1), vec![2, 3]);
    }

    #[test]
    fn with_state_creates_one_state_per_worker() {
        let created = AtomicUsize::new(0);
        let items: Vec<u32> = (0..40).collect();
        let out = parallel_map_with(
            3,
            &items,
            || {
                created.fetch_add(1, Ordering::Relaxed);
                Vec::<u32>::new()
            },
            |scratch, _, &x| {
                scratch.push(x); // warm buffer reused across the worker's items
                x + 1
            },
        );
        assert_eq!(out, (1..=40).collect::<Vec<_>>());
        let n = created.load(Ordering::Relaxed);
        assert!((1..=3).contains(&n), "expected 1..=3 states, got {n}");
    }

    #[test]
    fn with_state_inline_path_shares_one_state() {
        let created = AtomicUsize::new(0);
        let items = [1u8, 2, 3];
        let out = parallel_map_with(
            1,
            &items,
            || created.fetch_add(1, Ordering::Relaxed),
            |_, i, &x| (i, x),
        );
        assert_eq!(out, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(created.load(Ordering::Relaxed), 1);
    }
}
