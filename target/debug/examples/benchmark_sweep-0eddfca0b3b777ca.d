/root/repo/target/debug/examples/benchmark_sweep-0eddfca0b3b777ca.d: examples/benchmark_sweep.rs

/root/repo/target/debug/examples/benchmark_sweep-0eddfca0b3b777ca: examples/benchmark_sweep.rs

examples/benchmark_sweep.rs:
