//! Integral minimum-cost maximum-flow via successive shortest paths.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifier of a directed edge returned by [`MinCostFlow::add_edge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(usize);

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: i64,
    cost: i64,
    flow: i64,
}

/// Interleaved per-node solver state: tentative Dijkstra distance and
/// retained Johnson potential share an 8-byte record (see the `node`
/// field on [`MinCostFlow`]). Both values fit comfortably in `i32`:
/// reduced distances live in `[0, bail]` and the offset-form potential
/// drift is bounded by the overflow guard in the augmentation loop.
/// `i32::MAX` is the "unvisited" distance sentinel; real distances are
/// only stored after comparing strictly below the current value, so the
/// sentinel can never be confused with a finite distance.
#[derive(Debug, Clone, Copy)]
struct NodeState {
    dist: i32,
    pot: i32,
}

impl NodeState {
    const CLEAN: NodeState = NodeState {
        dist: i32::MAX,
        pot: 0,
    };
}

/// One CSR arc's hot fields packed into 16 bytes, so the Dijkstra inner
/// loop streams a single array instead of gathering from four parallel
/// ones. Costs and capacities are stored as `i32` — the freeze asserts
/// they fit (escape networks use small integer costs; the `i64` public
/// API is kept for arena bookkeeping).
#[derive(Debug, Clone, Copy)]
struct PackedArc {
    to: u32,
    twin: u32,
    cost: i32,
    res: i32,
}

/// Result of a [`MinCostFlow::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowResult {
    /// Units of flow actually routed (≤ the requested amount).
    pub flow: i64,
    /// Total cost of the routed flow.
    pub cost: i64,
}

/// Minimum-cost flow solver (successive shortest paths with Dijkstra and
/// Johnson potentials; Bellman–Ford bootstrap when negative costs exist).
///
/// Capacities and costs are `i64`; all flows are integral. The solver
/// sends flow one augmenting path at a time in order of increasing
/// reduced cost, which yields a min-cost flow for *every* intermediate
/// flow value — exactly the behaviour needed to "route as many as
/// possible, cheapest first".
///
/// Edges accumulate in a flat arena; adjacency is a CSR layout frozen
/// lazily on [`MinCostFlow::solve`] (and rebuilt only when the graph grew
/// since), so the augmentation loop walks two contiguous arrays instead
/// of chasing per-node `Vec`s.
#[derive(Debug, Clone)]
pub struct MinCostFlow {
    nodes: usize,
    edges: Vec<Edge>,
    has_negative: bool,
    /// CSR row offsets (`nodes + 1` entries once frozen).
    head: Vec<usize>,
    /// CSR arc ids, grouped by tail node: arc `a` leaves `edges[a ^ 1].to`.
    arcs: Vec<u32>,
    /// CSR-position-ordered packed copies of the arc fields
    /// ([`PackedArc`]), so the Dijkstra inner loop streams one contiguous
    /// array instead of gathering `edges[arcs[i]]` — residual capacity
    /// replaces `cap`/`flow`, and each arc carries the CSR position of
    /// its twin for the augmentation walk. Flows are written back into
    /// `edges` after every solve, keeping [`MinCostFlow::edge_flow`] and
    /// CSR re-freezes exact.
    csr: Vec<PackedArc>,
    /// Capacity by CSR position, so [`MinCostFlow::reset_flow`] can restore
    /// residuals without a full refreeze.
    csr_cap: Vec<i32>,
    /// Arc id → CSR position, for O(1) capacity/cost delta edits on a
    /// frozen network ([`MinCostFlow::set_edge_cap`] and friends).
    pos_of: Vec<u32>,
    /// Arena length the CSR was frozen at (`usize::MAX` = never).
    frozen_edges: usize,
    /// Node count the CSR was frozen at.
    frozen_nodes: usize,
    /// Per-node solver state, interleaved so the Dijkstra inner loop's two
    /// random reads per arc (`dist[to]`, `potential[to]`) land on one
    /// cache line. `pot` holds the Johnson potentials, kept across solves:
    /// [`MinCostFlow::solve_until`] resets them (cold semantics);
    /// [`MinCostFlow::solve_more`] retains them so a delta-edited network
    /// can re-augment warm. `dist` is Dijkstra scratch — entries are dirty
    /// exactly for the nodes listed in `touched`; every solve resets only
    /// those.
    node: Vec<NodeState>,
    prev_pos: Vec<u32>,
    touched: Vec<u32>,
    heap: BinaryHeap<Reverse<(i32, u32)>>,
    /// Two-level bitset over node ids: the *plateau* of the augmentation
    /// Dijkstra — pending nodes whose tentative distance equals the
    /// distance currently being popped. Grid escape networks have huge
    /// equal-distance plateaus (every tight arc relaxes at the same
    /// reduced distance), and `(d, u)` heap order within one distance is
    /// just ascending node id — which a find-first-set over these words
    /// delivers in O(1) instead of O(log n) heap traffic.
    plat_bits: Vec<u64>,
    plat_sum: Vec<u64>,
}

impl MinCostFlow {
    /// Creates a network with `n` nodes (`0..n`).
    pub fn new(n: usize) -> Self {
        Self {
            nodes: n,
            edges: Vec::new(),
            has_negative: false,
            head: Vec::new(),
            arcs: Vec::new(),
            csr: Vec::new(),
            csr_cap: Vec::new(),
            pos_of: Vec::new(),
            frozen_edges: usize::MAX,
            frozen_nodes: usize::MAX,
            node: Vec::new(),
            prev_pos: Vec::new(),
            touched: Vec::new(),
            heap: BinaryHeap::new(),
            plat_bits: Vec::new(),
            plat_sum: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.nodes += 1;
        self.nodes - 1
    }

    /// Adds a directed edge `u → v` with capacity `cap` and per-unit cost
    /// `cost`. Returns an [`EdgeId`] usable with [`MinCostFlow::edge_flow`].
    ///
    /// # Panics
    ///
    /// Panics when an endpoint is out of range or `cap < 0`.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: i64, cost: i64) -> EdgeId {
        assert!(u < self.nodes && v < self.nodes, "endpoint out of range");
        assert!(cap >= 0, "capacity must be non-negative");
        if cost < 0 {
            self.has_negative = true;
        }
        let id = self.edges.len();
        self.edges.push(Edge {
            to: v,
            cap,
            cost,
            flow: 0,
        });
        self.edges.push(Edge {
            to: u,
            cap: 0,
            cost: -cost,
            flow: 0,
        });
        EdgeId(id)
    }

    /// Current flow on a forward edge.
    pub fn edge_flow(&self, id: EdgeId) -> i64 {
        self.edges[id.0].flow
    }

    /// (Re)builds the CSR adjacency when edges or nodes were added since
    /// the last freeze. Counting sort over arc tails: arc `a` (forward or
    /// residual) leaves the head of its twin, `edges[a ^ 1].to`.
    fn freeze_csr(&mut self) {
        if self.frozen_edges == self.edges.len() && self.frozen_nodes == self.nodes {
            return;
        }
        self.head.clear();
        self.head.resize(self.nodes + 1, 0);
        for a in 0..self.edges.len() {
            self.head[self.edges[a ^ 1].to + 1] += 1;
        }
        for v in 0..self.nodes {
            self.head[v + 1] += self.head[v];
        }
        let mut cursor = self.head.clone();
        self.arcs.clear();
        self.arcs.resize(self.edges.len(), 0);
        // Arc id → CSR position, for wiring each arc to its twin. Kept
        // after the freeze so delta edits can locate an arc in O(1).
        self.pos_of.clear();
        self.pos_of.resize(self.edges.len(), 0);
        for a in 0..self.edges.len() {
            let u = self.edges[a ^ 1].to;
            self.arcs[cursor[u]] = a as u32;
            self.pos_of[a] = cursor[u] as u32;
            cursor[u] += 1;
        }
        let m = self.edges.len();
        self.csr.clear();
        self.csr.reserve(m);
        self.csr_cap.clear();
        self.csr_cap.reserve(m);
        for pos in 0..m {
            let a = self.arcs[pos] as usize;
            let e = &self.edges[a];
            let cap = i32::try_from(e.cap).expect("edge capacity exceeds CSR i32 range");
            let cost = i32::try_from(e.cost).expect("edge cost exceeds CSR i32 range");
            self.csr.push(PackedArc {
                to: e.to as u32,
                twin: self.pos_of[a ^ 1],
                cost,
                res: cap - e.flow as i32,
            });
            self.csr_cap.push(cap);
        }
        self.frozen_edges = self.edges.len();
        self.frozen_nodes = self.nodes;
    }

    /// Whether `id`'s arc pair is covered by the current CSR freeze.
    #[inline]
    fn in_csr(&self, a: usize) -> bool {
        self.frozen_edges == self.edges.len() && a < self.frozen_edges
    }

    /// Changes the capacity of a forward edge in place — O(1) on a frozen
    /// network, deferred to the next freeze otherwise. The edge must carry
    /// no flow (retract or [`MinCostFlow::reset_flow`] first).
    ///
    /// # Panics
    ///
    /// Panics when `cap < 0` or the edge carries flow.
    pub fn set_edge_cap(&mut self, id: EdgeId, cap: i64) {
        assert!(cap >= 0, "capacity must be non-negative");
        assert_eq!(self.edges[id.0].flow, 0, "cannot resize a flowing edge");
        self.edges[id.0].cap = cap;
        if self.in_csr(id.0) {
            let pos = self.pos_of[id.0] as usize;
            let cap = i32::try_from(cap).expect("edge capacity exceeds CSR i32 range");
            self.csr_cap[pos] = cap;
            self.csr[pos].res = cap;
        }
    }

    /// Changes the per-unit cost of a forward edge (and its residual twin)
    /// in place — O(1) on a frozen network, deferred otherwise.
    pub fn set_edge_cost(&mut self, id: EdgeId, cost: i64) {
        if cost < 0 {
            self.has_negative = true;
        }
        self.edges[id.0].cost = cost;
        self.edges[id.0 ^ 1].cost = -cost;
        if self.in_csr(id.0) {
            let cost = i32::try_from(cost).expect("edge cost exceeds CSR i32 range");
            self.csr[self.pos_of[id.0] as usize].cost = cost;
            self.csr[self.pos_of[id.0 ^ 1] as usize].cost = -cost;
        }
    }

    /// Current capacity of a forward edge.
    pub fn edge_cap(&self, id: EdgeId) -> i64 {
        self.edges[id.0].cap
    }

    /// Tail node of a forward edge (the node the edge leaves).
    pub fn edge_tail(&self, id: EdgeId) -> usize {
        self.edges[id.0 ^ 1].to
    }

    /// Overwrites the flow on a forward edge without routing it — used to
    /// retire or transplant bookkeeping arcs whose unit is accounted for
    /// elsewhere. The caller is responsible for flow conservation.
    ///
    /// # Panics
    ///
    /// Panics when the flow would exceed the capacity or go negative.
    pub fn force_flow(&mut self, id: EdgeId, flow: i64) {
        assert!(
            (0..=self.edges[id.0].cap).contains(&flow),
            "flow out of range"
        );
        self.edges[id.0].flow = flow;
        self.edges[id.0 ^ 1].flow = -flow;
        if self.in_csr(id.0) {
            let pos = self.pos_of[id.0] as usize;
            self.csr[pos].res = (self.edges[id.0].cap - flow) as i32;
            self.csr[self.pos_of[id.0 ^ 1] as usize].res = flow as i32;
        }
    }

    /// Clears every unit of flow, restoring all residuals to capacity —
    /// a cold restart on a persistent network without rebuilding the CSR.
    pub fn reset_flow(&mut self) {
        for e in &mut self.edges {
            e.flow = 0;
        }
        if self.frozen_edges == self.edges.len() && self.frozen_nodes == self.nodes {
            for (arc, &cap) in self.csr.iter_mut().zip(&self.csr_cap) {
                arc.res = cap;
            }
        }
    }

    /// The retained Johnson potential of `v` (0 before any solve).
    pub fn node_potential(&self, v: usize) -> i64 {
        self.node.get(v).map(|st| st.pot as i64).unwrap_or(0)
    }

    /// Overwrites the retained potential of `v` — used when grafting new
    /// nodes into a warm network before [`MinCostFlow::repair_potentials`].
    pub fn set_node_potential(&mut self, v: usize, p: i64) {
        if self.node.len() < self.nodes {
            self.node.resize(self.nodes, NodeState::CLEAN);
        }
        self.node[v].pot = i32::try_from(p).expect("potential exceeds i32 range");
    }

    /// Cancels one unit of flow along the path starting at forward edge
    /// `first`, walking saturated forward arcs until `t`. On unit-capacity
    /// path networks (every node carries at most one unit) the walk is
    /// unique. Returns the number of arcs retracted.
    ///
    /// # Panics
    ///
    /// Panics when `first` carries no flow or the walk dead-ends before
    /// `t` (non-path flow).
    pub fn retract_unit(&mut self, first: EdgeId, t: usize) -> usize {
        assert!(self.edges[first.0].flow > 0, "retract on flowless edge");
        self.freeze_csr();
        let mut retracted = 0usize;
        let mut a = first.0;
        loop {
            self.edges[a].flow -= 1;
            self.edges[a ^ 1].flow += 1;
            let pos = self.pos_of[a] as usize;
            self.csr[pos].res += 1;
            self.csr[self.pos_of[a ^ 1] as usize].res -= 1;
            retracted += 1;
            let v = self.edges[a].to;
            if v == t {
                return retracted;
            }
            let mut next = None;
            for pos in self.head[v]..self.head[v + 1] {
                let b = self.arcs[pos] as usize;
                if b & 1 == 0 && self.edges[b].flow > 0 {
                    next = Some(b);
                    break;
                }
            }
            a = next.expect("flow path dead-ends before the sink");
        }
    }

    /// Re-validates the retained potentials after structural deltas (new
    /// arcs, capacity activations, grafted nodes) by recomputing shortest
    /// reduced distances from `s` over the entire residual graph — a
    /// label-correcting Dijkstra that tolerates the temporarily negative
    /// reduced costs the deltas introduced — and folding them into the
    /// potentials.
    ///
    /// Returns `false` when the pass could not restore `reduced cost ≥ 0`
    /// on every residual arc leaving a reachable node (the retained flow
    /// is no longer optimal for its value, e.g. a freed corridor offers a
    /// strictly cheaper route, or a negative residual cycle appeared). The
    /// caller must then fall back to a cold re-solve; the network itself
    /// is left consistent.
    pub fn repair_potentials(&mut self, s: usize) -> bool {
        assert!(s < self.nodes, "terminal out of range");
        self.freeze_csr();
        self.ensure_scratch();
        for &v in &self.touched {
            self.node[v as usize].dist = i32::MAX;
            self.prev_pos[v as usize] = u32::MAX;
        }
        self.touched.clear();
        self.heap.clear();
        self.node[s].dist = 0;
        self.touched.push(s as u32);
        self.heap.push(Reverse((0i32, s as u32)));
        // Label-correcting: nodes may re-settle when a negative arc later
        // improves them. A convergent repair re-settles a node only a
        // handful of times (once per distinct delta region that improves
        // it); a node spinning on a negative cycle re-pops once per lap.
        // The per-node counter detects the lap pattern within ~a dozen
        // cycle lengths instead of burning a whole-graph budget; the
        // global budget stays as a backstop.
        let budget = 2 * self.nodes + 64;
        let mut pops = 0usize;
        let mut pop_cnt = vec![0u8; self.nodes];
        const CYCLING_POPS: u8 = 12;
        while let Some(Reverse((d, u))) = self.heap.pop() {
            let u = u as usize;
            if d > self.node[u].dist {
                continue;
            }
            pops += 1;
            pop_cnt[u] = pop_cnt[u].saturating_add(1);
            if pop_cnt[u] >= CYCLING_POPS || pops > budget {
                return false;
            }
            let pu = self.node[u].pot;
            for pos in self.head[u]..self.head[u + 1] {
                let arc = self.csr[pos];
                if arc.res <= 0 {
                    continue;
                }
                let to = arc.to as usize;
                let nd = d + arc.cost + pu - self.node[to].pot;
                if nd < self.node[to].dist {
                    if self.node[to].dist == i32::MAX {
                        self.touched.push(to as u32);
                    }
                    self.node[to].dist = nd;
                    self.prev_pos[to] = pos as u32;
                    self.heap.push(Reverse((nd, to as u32)));
                }
            }
        }
        for &v in &self.touched {
            let st = &mut self.node[v as usize];
            st.pot += st.dist;
        }
        // Verify: every residual arc leaving a reached node must be
        // non-negative again (arcs between unreached nodes stay invisible
        // to subsequent augmentations until the next structural delta).
        for u in 0..self.nodes {
            if self.node[u].dist == i32::MAX && u != s {
                continue;
            }
            let pu = self.node[u].pot;
            for pos in self.head[u]..self.head[u + 1] {
                let arc = self.csr[pos];
                if arc.res > 0 && arc.cost + pu - self.node[arc.to as usize].pot < 0 {
                    return false;
                }
            }
        }
        true
    }

    /// Walks backward from `v` along flowing arcs to the super source
    /// `s` and returns the path's first edge (the feed), suitable for
    /// [`MinCostFlow::retract_unit`]. At each node the first flowing
    /// in-arc in CSR order is followed; on unit-capacity path networks
    /// the walk is unique. Returns `None` when `v` carries no inbound
    /// flow or the walk fails to reach `s` within a node-count budget.
    pub fn flowing_feed_from(&mut self, v: usize, s: usize) -> Option<EdgeId> {
        self.freeze_csr();
        let mut cur = v;
        for _ in 0..self.nodes {
            // A reverse arc leaving `cur` with residual capacity is the
            // mirror of a flowing forward arc *into* `cur`.
            let mut found = None;
            for pos in self.head[cur]..self.head[cur + 1] {
                let a = self.arcs[pos] as usize;
                if a & 1 == 1 && self.csr[pos].res > 0 {
                    found = Some(a);
                    break;
                }
            }
            let a = found?;
            let tail = self.edges[a].to; // reverse arc points at the tail
            if tail == s {
                return Some(EdgeId(a ^ 1));
            }
            cur = tail;
        }
        None
    }

    /// Grows the persistent solver scratch to the current node count.
    fn ensure_scratch(&mut self) {
        let n = self.nodes;
        if self.node.len() < n {
            self.node.resize(n, NodeState::CLEAN);
        }
        if self.prev_pos.len() < n {
            self.prev_pos.resize(n, u32::MAX);
        }
        let words = n.div_ceil(64);
        if self.plat_bits.len() < words {
            self.plat_bits.resize(words, 0);
            self.plat_sum.resize(words.div_ceil(64), 0);
        }
    }

    /// Sends up to `max_flow` units from `s` to `t` at minimum cost.
    /// Augmentation stops early when `t` becomes unreachable, so the
    /// returned flow may be smaller than requested.
    ///
    /// # Panics
    ///
    /// Panics when `s` or `t` is out of range.
    pub fn solve(&mut self, s: usize, t: usize, max_flow: i64) -> FlowResult {
        self.solve_until(s, t, max_flow, i64::MAX)
    }

    /// [`MinCostFlow::solve`], but stops augmenting once the *true* cost
    /// of the next shortest augmenting path reaches `bail`. SSP path
    /// costs are non-decreasing, so every skipped augmentation would
    /// also have cost ≥ `bail`; the flow routed before the bail-out is
    /// still min-cost for its value. `bail = i64::MAX` never triggers.
    pub fn solve_until(&mut self, s: usize, t: usize, max_flow: i64, bail: i64) -> FlowResult {
        assert!(s < self.nodes && t < self.nodes, "terminal out of range");
        self.freeze_csr();
        self.ensure_scratch();
        let n = self.nodes;
        // Offset-form Johnson potentials: after each augmentation the
        // textbook update is `potential[v] += dist[v].min(dt)` for all v.
        // Potentials only ever appear in differences, so the uniform
        // `+dt` part cancels and we store `potential[v] - Σdt` instead —
        // touched nodes get `+= dist[v].min(dt) - dt`, untouched nodes
        // (`dist[v] = MAX`, i.e. `+= dt` in textbook form) stay put. That
        // turns two O(n) sweeps per augmentation (reset + update) into
        // O(touched) work. Cold semantics: start from zero potentials.
        for st in &mut self.node[..n] {
            st.pot = 0;
        }

        if self.has_negative {
            // Bellman–Ford over residual edges with remaining capacity.
            let mut dist = vec![i64::MAX; n];
            dist[s] = 0;
            for _ in 0..n {
                let mut changed = false;
                for u in 0..n {
                    if dist[u] == i64::MAX {
                        continue;
                    }
                    for pos in self.head[u]..self.head[u + 1] {
                        let arc = self.csr[pos];
                        let to = arc.to as usize;
                        if arc.res > 0 && dist[u] + (arc.cost as i64) < dist[to] {
                            dist[to] = dist[u] + arc.cost as i64;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            for (v, &dv) in dist.iter().enumerate().take(n) {
                if dv != i64::MAX {
                    self.node[v].pot =
                        i32::try_from(dv).expect("bootstrap potential exceeds i32 range");
                }
            }
        }

        self.augment(s, t, max_flow, bail)
    }

    /// Warm continuation: sends up to `add_flow` more units from `s` to
    /// `t` on top of the flow already routed, reusing the potentials
    /// retained from the previous solve instead of restarting from zero.
    /// Valid only while `reduced cost ≥ 0` holds on every residual arc —
    /// i.e. right after a solve on the same network, or after structural
    /// deltas followed by a successful [`MinCostFlow::repair_potentials`].
    pub fn solve_more(&mut self, s: usize, t: usize, add_flow: i64, bail: i64) -> FlowResult {
        assert!(s < self.nodes && t < self.nodes, "terminal out of range");
        self.freeze_csr();
        self.ensure_scratch();
        self.augment(s, t, add_flow, bail)
    }

    /// The SSP augmentation loop shared by cold and warm solves: Dijkstra
    /// on reduced costs under the current `self.potential`, augmenting
    /// until `want` units are routed, `t` becomes unreachable, or the
    /// next path's true cost reaches `bail`.
    fn augment(&mut self, s: usize, t: usize, want: i64, bail: i64) -> FlowResult {
        let mut total_flow = 0i64;
        let mut total_cost = 0i64;
        // The plateau bitset lives in locals so the hot loop can index it
        // alongside `self` fields without borrow gymnastics.
        let mut bits = std::mem::take(&mut self.plat_bits);
        let mut sum = std::mem::take(&mut self.plat_sum);

        while total_flow < want {
            // Dijkstra on reduced costs, stopping as soon as `t` is
            // settled: unsettled nodes have true distance ≥ dist[t], so
            // clamping their potential update to dist[t] preserves
            // non-negative reduced costs (standard SSP early exit).
            // Persistent scratch invariant: dirty dist/prev entries are
            // exactly the nodes in `touched`, across calls too.
            //
            // Queue discipline: pushes happen only on strict improvement,
            // so equal `(d, u)` duplicates are impossible and any queue
            // that pops ascending `(d, u)` reproduces the reference pop
            // order exactly. Nodes at the distance currently being popped
            // (`cur_d` — the plateau, where almost all pops land on these
            // grids) live in the bitset and pop by find-first-set;
            // strictly farther nodes wait in the binary heap and are
            // drained into the bitset level by level.
            for i in 0..self.touched.len() {
                let v = self.touched[i] as usize;
                self.node[v].dist = i32::MAX;
                self.prev_pos[v] = u32::MAX;
            }
            self.touched.clear();
            self.heap.clear();
            bitset_clear(&mut bits, &mut sum);
            self.node[s].dist = 0;
            self.touched.push(s as u32);
            bitset_set(&mut bits, &mut sum, s);
            let mut cur_d = 0i32;
            let mut settled_t = false;
            loop {
                let u = match bitset_first(&sum, &bits) {
                    Some(u) => {
                        bitset_unset(&mut bits, &mut sum, u);
                        u
                    }
                    None => {
                        // Plateau drained: advance to the next distance
                        // level present in the heap, skipping stale
                        // entries, and move that whole level over.
                        let d = loop {
                            match self.heap.peek() {
                                Some(&Reverse((d, v))) => {
                                    if d > self.node[v as usize].dist {
                                        self.heap.pop();
                                        continue;
                                    }
                                    break d;
                                }
                                None => break i32::MAX,
                            }
                        };
                        if d == i32::MAX {
                            break; // queue exhausted
                        }
                        if d == self.node[t].dist {
                            // The whole level sits at `dist[t]`: none of
                            // its settles can improve `t` (no strict
                            // improvement at equal distance), change a
                            // potential (`d == dt` updates by zero), or
                            // alter `prev[t]` — settle `t` right now.
                            settled_t = true;
                            break;
                        }
                        cur_d = d;
                        while let Some(&Reverse((d2, v))) = self.heap.peek() {
                            if d2 != d {
                                break;
                            }
                            self.heap.pop();
                            if d2 == self.node[v as usize].dist {
                                bitset_set(&mut bits, &mut sum, v as usize);
                            }
                        }
                        continue;
                    }
                };
                if u == t {
                    settled_t = true;
                    break;
                }
                let d = cur_d;
                let pu = self.node[u].pot;
                for pos in self.head[u]..self.head[u + 1] {
                    let arc = self.csr[pos];
                    if arc.res <= 0 {
                        continue;
                    }
                    let to = arc.to as usize;
                    let st = self.node[to];
                    let nd = d + arc.cost + pu - st.pot;
                    debug_assert!(arc.cost + pu - st.pot >= 0, "negative reduced cost");
                    if nd < st.dist {
                        if st.dist == i32::MAX {
                            self.touched.push(to as u32);
                        }
                        self.node[to].dist = nd;
                        self.prev_pos[to] = pos as u32;
                        if nd == d {
                            if to == t {
                                // Tight relaxation into the sink: dist[t]
                                // equals the current level, so no later
                                // settle can improve it or (by strict-
                                // improvement) reassign prev[t], and the
                                // remaining plateau settles update every
                                // potential by zero — settle t here.
                                settled_t = true;
                                break;
                            }
                            bitset_set(&mut bits, &mut sum, to);
                        } else {
                            self.heap.push(Reverse((nd, to as u32)));
                        }
                    }
                }
                if settled_t {
                    break;
                }
            }
            if !settled_t {
                break; // t unreachable: maximal flow attained
            }
            let dt = self.node[t].dist;
            // True path cost = dist[t] + potential[t] - potential[s]
            // (telescoping reduced costs); the Σdt offset cancels in the
            // difference, so offset-form potentials give the exact value.
            if bail != i64::MAX
                && (dt as i64) + (self.node[t].pot as i64) - (self.node[s].pot as i64) >= bail
            {
                break;
            }
            for i in 0..self.touched.len() {
                let v = self.touched[i] as usize;
                let st = &mut self.node[v];
                if st.dist < dt {
                    st.pot += st.dist - dt;
                }
            }
            // The offset-form potentials drift downward by `dt` per
            // augmentation (`s` tracks the full `-Σdt`). Escape-scale
            // solves stay far below this bound; a pathological warm chain
            // must fail loudly rather than overflow `i32` silently.
            assert!(
                self.node[s].pot > i32::MIN / 2,
                "Johnson potential drift exceeds i32 range; cold-restart via solve_until"
            );
            // Bottleneck along the augmenting path.
            let mut push = want - total_flow;
            let mut v = t;
            while v != s {
                let pos = self.prev_pos[v] as usize;
                push = push.min(self.csr[pos].res as i64);
                v = self.csr[self.csr[pos].twin as usize].to as usize;
            }
            // Apply.
            let mut v = t;
            while v != s {
                let pos = self.prev_pos[v] as usize;
                let twin = self.csr[pos].twin as usize;
                self.csr[pos].res -= push as i32;
                self.csr[twin].res += push as i32;
                total_cost += push * self.csr[pos].cost as i64;
                v = self.csr[twin].to as usize;
            }
            total_flow += push;
        }

        // Publish the residuals back to the arena so `edge_flow` and the
        // next CSR freeze observe the flow this solve routed.
        for pos in 0..self.arcs.len() {
            let a = self.arcs[pos] as usize;
            self.edges[a].flow = self.edges[a].cap - self.csr[pos].res as i64;
        }

        self.plat_bits = bits;
        self.plat_sum = sum;
        FlowResult {
            flow: total_flow,
            cost: total_cost,
        }
    }
}

#[inline]
fn bitset_set(bits: &mut [u64], sum: &mut [u64], v: usize) {
    bits[v >> 6] |= 1 << (v & 63);
    sum[v >> 12] |= 1 << ((v >> 6) & 63);
}

#[inline]
fn bitset_unset(bits: &mut [u64], sum: &mut [u64], v: usize) {
    let w = v >> 6;
    bits[w] &= !(1 << (v & 63));
    if bits[w] == 0 {
        sum[w >> 6] &= !(1 << (w & 63));
    }
}

/// Lowest set node id, via the summary words then one leaf word.
#[inline]
fn bitset_first(sum: &[u64], bits: &[u64]) -> Option<usize> {
    for (si, &sw) in sum.iter().enumerate() {
        if sw != 0 {
            let w = (si << 6) + sw.trailing_zeros() as usize;
            return Some((w << 6) + bits[w].trailing_zeros() as usize);
        }
    }
    None
}

/// Clears only the words the summary marks dirty.
fn bitset_clear(bits: &mut [u64], sum: &mut [u64]) {
    for si in 0..sum.len() {
        let mut sw = sum[si];
        while sw != 0 {
            bits[(si << 6) + sw.trailing_zeros() as usize] = 0;
            sw &= sw - 1;
        }
        sum[si] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_two_paths() {
        let mut mcf = MinCostFlow::new(4);
        mcf.add_edge(0, 1, 1, 1);
        mcf.add_edge(0, 2, 1, 2);
        mcf.add_edge(1, 3, 1, 1);
        mcf.add_edge(2, 3, 1, 2);
        let r = mcf.solve(0, 3, 10);
        assert_eq!(r, FlowResult { flow: 2, cost: 6 });
    }

    #[test]
    fn respects_requested_flow() {
        let mut mcf = MinCostFlow::new(2);
        mcf.add_edge(0, 1, 5, 3);
        let r = mcf.solve(0, 1, 2);
        assert_eq!(r, FlowResult { flow: 2, cost: 6 });
    }

    #[test]
    fn cheapest_first() {
        // Capacity 2 wanted but only 1 requested: must take the cheap arc.
        let mut mcf = MinCostFlow::new(2);
        let cheap = mcf.add_edge(0, 1, 1, 1);
        let dear = mcf.add_edge(0, 1, 1, 100);
        let r = mcf.solve(0, 1, 1);
        assert_eq!(r.cost, 1);
        assert_eq!(mcf.edge_flow(cheap), 1);
        assert_eq!(mcf.edge_flow(dear), 0);
    }

    #[test]
    fn unreachable_sink_gives_zero() {
        let mut mcf = MinCostFlow::new(3);
        mcf.add_edge(0, 1, 1, 1);
        let r = mcf.solve(0, 2, 5);
        assert_eq!(r, FlowResult { flow: 0, cost: 0 });
    }

    #[test]
    fn rerouting_via_residual_edges() {
        // Classic case where the second augmentation must push back flow:
        //   s→a (1,1), s→b (1,4), a→b (1,0)... build so naive greedy fails.
        let (s, a, b, t) = (0, 1, 2, 3);
        let mut mcf = MinCostFlow::new(4);
        mcf.add_edge(s, a, 1, 1);
        mcf.add_edge(s, b, 1, 10);
        mcf.add_edge(a, b, 1, 1);
        mcf.add_edge(a, t, 1, 10);
        mcf.add_edge(b, t, 1, 1);
        // Best for 2 units: s→a→b→t (3) + s→b? b full... the solver must
        // route s→a→t (11) and s→b→t (11) or s→a→b→t + s→b→t with rewind.
        let r = mcf.solve(s, t, 2);
        assert_eq!(r.flow, 2);
        // Optimal = s→a→b→t (1+1+1=3) + s→b...b→t used; residual forces
        // s→b (10) + push-back on a→b + a→t (10): total 3 - 1 + 10 + 10 + 1 = 23?
        // Enumerate: routes {s→a→t, s→b→t} = 11 + 11 = 22;
        //            {s→a→b→t, s→b→t} infeasible (b→t cap 1).
        // So optimum is 22.
        assert_eq!(r.cost, 22);
    }

    #[test]
    fn negative_costs_handled() {
        let mut mcf = MinCostFlow::new(3);
        mcf.add_edge(0, 1, 1, -5);
        mcf.add_edge(1, 2, 1, 2);
        mcf.add_edge(0, 2, 1, 1);
        let r = mcf.solve(0, 2, 2);
        assert_eq!(r.flow, 2);
        assert_eq!(r.cost, -3 + 1);
    }

    #[test]
    fn intermediate_flows_are_min_cost() {
        // Ask for 1 unit in a network whose cheapest s-t path costs 4.
        let mut mcf = MinCostFlow::new(5);
        mcf.add_edge(0, 1, 1, 2);
        mcf.add_edge(1, 4, 1, 2);
        mcf.add_edge(0, 2, 1, 3);
        mcf.add_edge(2, 4, 1, 3);
        mcf.add_edge(0, 3, 1, 1);
        mcf.add_edge(3, 4, 1, 9);
        let r = mcf.solve(0, 4, 1);
        assert_eq!(r, FlowResult { flow: 1, cost: 4 });
    }

    #[test]
    fn add_node_grows_network() {
        let mut mcf = MinCostFlow::new(1);
        let v = mcf.add_node();
        assert_eq!(v, 1);
        mcf.add_edge(0, v, 1, 0);
        let r = mcf.solve(0, v, 1);
        assert_eq!(r.flow, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-negative")]
    fn negative_capacity_panics() {
        MinCostFlow::new(2).add_edge(0, 1, -1, 0);
    }

    /// Naive successive-shortest-path reference: Bellman–Ford over the
    /// residual graph each augmentation, no potentials, no CSR. Slow but
    /// obviously correct on networks without negative cycles.
    struct Reference {
        n: usize,
        // (to, cap, cost, flow); arc a's twin is a ^ 1.
        edges: Vec<(usize, i64, i64, i64)>,
    }

    impl Reference {
        fn new(n: usize) -> Self {
            Self {
                n,
                edges: Vec::new(),
            }
        }

        fn add_edge(&mut self, u: usize, v: usize, cap: i64, cost: i64) {
            let _ = u;
            self.edges.push((v, cap, cost, 0));
            self.edges.push((u, 0, -cost, 0));
        }

        fn tail(&self, a: usize) -> usize {
            self.edges[a ^ 1].0
        }

        fn solve(&mut self, s: usize, t: usize, max_flow: i64) -> FlowResult {
            let mut total_flow = 0i64;
            let mut total_cost = 0i64;
            while total_flow < max_flow {
                let mut dist = vec![i64::MAX; self.n];
                let mut prev = vec![usize::MAX; self.n];
                dist[s] = 0;
                for _ in 0..self.n {
                    let mut changed = false;
                    for a in 0..self.edges.len() {
                        let (to, cap, cost, flow) = self.edges[a];
                        let u = self.tail(a);
                        if cap - flow > 0 && dist[u] != i64::MAX && dist[u] + cost < dist[to] {
                            dist[to] = dist[u] + cost;
                            prev[to] = a;
                            changed = true;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                if dist[t] == i64::MAX {
                    break;
                }
                let mut push = max_flow - total_flow;
                let mut v = t;
                while v != s {
                    let a = prev[v];
                    push = push.min(self.edges[a].1 - self.edges[a].3);
                    v = self.tail(a);
                }
                let mut v = t;
                while v != s {
                    let a = prev[v];
                    self.edges[a].3 += push;
                    self.edges[a ^ 1].3 -= push;
                    total_cost += push * self.edges[a].2;
                    v = self.tail(a);
                }
                total_flow += push;
            }
            FlowResult {
                flow: total_flow,
                cost: total_cost,
            }
        }
    }

    #[test]
    fn randomized_equivalence_with_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xF10C);
        for case in 0..60 {
            let n = rng.gen_range(4..12usize);
            let m = rng.gen_range(n..4 * n);
            let mut mcf = MinCostFlow::new(n);
            let mut reference = Reference::new(n);
            for _ in 0..m {
                // Forward-oriented edges (u < v) keep the network acyclic,
                // so negative costs cannot form negative cycles.
                let u = rng.gen_range(0..n - 1);
                let v = rng.gen_range(u + 1..n);
                let cap = rng.gen_range(0..4i64);
                let cost = rng.gen_range(-3..10i64);
                mcf.add_edge(u, v, cap, cost);
                reference.add_edge(u, v, cap, cost);
            }
            let want = rng.gen_range(1..8i64);
            let got = mcf.solve(0, n - 1, want);
            let expect = reference.solve(0, n - 1, want);
            assert_eq!(got, expect, "case {case}: n={n} m={m} want={want}");
        }
    }

    #[test]
    fn csr_refreezes_after_growth() {
        // Solve, then grow the graph and solve again: the CSR must pick
        // up both the new node and the new edges.
        let mut mcf = MinCostFlow::new(2);
        mcf.add_edge(0, 1, 1, 1);
        assert_eq!(mcf.solve(0, 1, 10).flow, 1);
        let v = mcf.add_node();
        mcf.add_edge(0, v, 2, 1);
        mcf.add_edge(v, 1, 2, 1);
        let r = mcf.solve(0, 1, 10);
        assert_eq!(r.flow, 2, "two more units via the new node");
        assert_eq!(r.cost, 4);
    }

    #[test]
    fn large_grid_like_network() {
        // 10x10 grid, 5 sources on the left, sink column on the right.
        let n = 10;
        let id = |x: usize, y: usize| y * n + x;
        let t = n * n;
        let s = n * n + 1;
        let mut mcf = MinCostFlow::new(n * n + 2);
        for y in 0..n {
            for x in 0..n {
                if x + 1 < n {
                    mcf.add_edge(id(x, y), id(x + 1, y), 1, 1);
                    mcf.add_edge(id(x + 1, y), id(x, y), 1, 1);
                }
                if y + 1 < n {
                    mcf.add_edge(id(x, y), id(x, y + 1), 1, 1);
                    mcf.add_edge(id(x, y + 1), id(x, y), 1, 1);
                }
            }
        }
        for k in 0..5 {
            mcf.add_edge(s, id(0, 2 * k), 1, 0);
            mcf.add_edge(id(n - 1, 2 * k), t, 1, 0);
        }
        let r = mcf.solve(s, t, 5);
        assert_eq!(r.flow, 5);
        // Straight rows: 9 steps each.
        assert_eq!(r.cost, 45);
    }

    #[test]
    fn warm_continuation_matches_one_shot() {
        // Routing k units then k more warm must equal routing 2k cold:
        // SSP is min-cost at every intermediate value, and solve_more
        // continues under the retained potentials.
        let build = || {
            let mut mcf = MinCostFlow::new(6);
            mcf.add_edge(0, 1, 2, 1);
            mcf.add_edge(0, 2, 2, 3);
            mcf.add_edge(1, 3, 1, 1);
            mcf.add_edge(1, 4, 2, 2);
            mcf.add_edge(2, 4, 2, 1);
            mcf.add_edge(3, 5, 2, 1);
            mcf.add_edge(4, 5, 3, 1);
            mcf
        };
        let mut cold = build();
        let one_shot = cold.solve(0, 5, 4);
        let mut warm = build();
        let first = warm.solve(0, 5, 2);
        let second = warm.solve_more(0, 5, 2, i64::MAX);
        assert_eq!(first.flow + second.flow, one_shot.flow);
        assert_eq!(first.cost + second.cost, one_shot.cost);
    }

    #[test]
    fn reset_flow_restores_cold_state() {
        let mut mcf = MinCostFlow::new(3);
        mcf.add_edge(0, 1, 2, 1);
        mcf.add_edge(1, 2, 2, 1);
        let a = mcf.solve(0, 2, 2);
        mcf.reset_flow();
        let b = mcf.solve(0, 2, 2);
        assert_eq!(a, b, "same answer after a flow reset");
    }

    #[test]
    fn set_edge_cap_updates_frozen_csr() {
        let mut mcf = MinCostFlow::new(2);
        let cheap = mcf.add_edge(0, 1, 1, 1);
        mcf.add_edge(0, 1, 5, 10);
        assert_eq!(mcf.solve(0, 1, 1), FlowResult { flow: 1, cost: 1 });
        mcf.reset_flow();
        // Close the cheap arc in place: the next solve (no refreeze —
        // the graph did not grow) must route via the dear arc.
        mcf.set_edge_cap(cheap, 0);
        assert_eq!(mcf.solve(0, 1, 1), FlowResult { flow: 1, cost: 10 });
        // Reopen and widen: both units fit, cheap first.
        mcf.reset_flow();
        mcf.set_edge_cap(cheap, 2);
        assert_eq!(mcf.edge_cap(cheap), 2);
        assert_eq!(mcf.solve(0, 1, 2), FlowResult { flow: 2, cost: 2 });
    }

    #[test]
    fn set_edge_cost_updates_frozen_csr() {
        let mut mcf = MinCostFlow::new(2);
        let a = mcf.add_edge(0, 1, 1, 1);
        mcf.add_edge(0, 1, 1, 5);
        assert_eq!(mcf.solve(0, 1, 2).cost, 6);
        mcf.reset_flow();
        mcf.set_edge_cost(a, 7);
        assert_eq!(mcf.solve(0, 1, 2).cost, 12);
    }

    #[test]
    fn retract_unit_cancels_a_path() {
        // 0 → 1 → 2 → 3 unit path plus a cheaper parallel 0 → 3. Both
        // saturate; retracting the dearer path leaves the remaining flow
        // min-cost for its value, so repair succeeds and a warm
        // re-augmentation finds the same path again. (Retraction reopens
        // saturated arcs whose reduced cost may be negative under the
        // retained potentials — repair_potentials is mandatory before
        // the next warm solve.)
        let mut mcf = MinCostFlow::new(4);
        let first = mcf.add_edge(0, 1, 1, 1);
        mcf.add_edge(1, 2, 1, 1);
        mcf.add_edge(2, 3, 1, 1);
        mcf.add_edge(0, 3, 1, 2);
        assert_eq!(mcf.solve(0, 3, 2), FlowResult { flow: 2, cost: 5 });
        assert_eq!(mcf.edge_flow(first), 1);
        let arcs = mcf.retract_unit(first, 3);
        assert_eq!(arcs, 3, "three arcs on the cancelled path");
        assert_eq!(mcf.edge_flow(first), 0);
        assert!(mcf.repair_potentials(0), "remaining flow still optimal");
        let r = mcf.solve_more(0, 3, 1, i64::MAX);
        assert_eq!(r, FlowResult { flow: 1, cost: 3 });
        assert_eq!(mcf.edge_flow(first), 1);
    }

    #[test]
    fn repair_potentials_after_activation() {
        // Solve with a detour closed, then open it via set_edge_cap. The
        // activated arc 1→2 has reduced cost 1 + π(1) − π(2) = −9 under
        // the retained offset-form potentials (π(1) = −10 after the cold
        // solve, π(2) = 0 untouched), yet the retained unit on 0→1→3 is
        // still min-cost for its value (the detour totals 36 > 20), so
        // repair must succeed and the warm continuation must route the
        // second unit through the detour at its true cost.
        let mut mcf = MinCostFlow::new(4);
        mcf.add_edge(0, 1, 2, 10);
        mcf.add_edge(1, 3, 1, 10);
        let via = mcf.add_edge(1, 2, 0, 1);
        mcf.add_edge(2, 3, 1, 25);
        assert_eq!(mcf.solve(0, 3, 1), FlowResult { flow: 1, cost: 20 });
        mcf.set_edge_cap(via, 1);
        assert!(mcf.repair_potentials(0), "retained flow is still optimal");
        let r = mcf.solve_more(0, 3, 1, i64::MAX);
        assert_eq!(
            r,
            FlowResult { flow: 1, cost: 36 },
            "second unit takes the detour"
        );
    }

    #[test]
    fn repair_potentials_detects_stale_flow() {
        // One unit routed the dear way, then a strictly cheaper corridor
        // opens: the retained flow is no longer min-cost for its value,
        // so the repair must report failure (caller re-solves cold).
        let mut mcf = MinCostFlow::new(3);
        mcf.add_edge(0, 1, 1, 10);
        mcf.add_edge(1, 2, 1, 10);
        let shortcut = mcf.add_edge(0, 2, 0, 1);
        assert_eq!(mcf.solve(0, 2, 1).cost, 20);
        mcf.set_edge_cap(shortcut, 1);
        assert!(
            !mcf.repair_potentials(0),
            "cheaper corridor invalidates the retained flow"
        );
        // Cold restart from the same network recovers the optimum.
        mcf.reset_flow();
        assert_eq!(mcf.solve(0, 2, 1), FlowResult { flow: 1, cost: 1 });
    }

    #[test]
    fn force_flow_syncs_residuals() {
        let mut mcf = MinCostFlow::new(2);
        let e = mcf.add_edge(0, 1, 1, 4);
        assert_eq!(mcf.solve(0, 1, 1).flow, 1);
        mcf.force_flow(e, 0);
        // The freed capacity is visible to the next warm augmentation.
        let r = mcf.solve_more(0, 1, 1, i64::MAX);
        assert_eq!(r, FlowResult { flow: 1, cost: 4 });
    }
}
