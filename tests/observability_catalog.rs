//! Anti-rot guard for `docs/OBSERVABILITY.md`: run a smoke flow that
//! exercises both negotiation modes and both rip-up policies with the
//! flight recorder installed and the telemetry stream collecting, and
//! assert that every counter, histogram, span, instant, recorder-event
//! name, and telemetry event kind actually emitted appears in the
//! catalog. Adding an emit site without cataloging it fails here.

use pacor_repro::pacor::obs::{self, TraceEvent};
use pacor_repro::pacor::route::{NegotiationMode, RipUpPolicy};
use pacor_repro::pacor::{synthesize_params, DesignParams, FlowConfig, PacorFlow, RoutingMode};
use std::collections::BTreeSet;

#[test]
fn every_emitted_name_is_catalogued() {
    // Dense enough that negotiation rips up and escape recovers, so the
    // rarer emit sites (rip-up, de-clustering, detouring) all fire.
    let dense = DesignParams {
        name: "D1-dense24",
        width: 24,
        height: 24,
        valves: 18,
        control_pins: 40,
        obstacles: 50,
        multi_clusters: 8,
        pairs_only: false,
    };
    let problem = synthesize_params(dense, 42);

    let session = obs::Session::begin();
    let config = FlowConfig::default()
        .with_threads(4)
        .with_negotiation_mode(NegotiationMode::Parallel);
    obs::flight_install(config.recorder_config());
    let sink = obs::MemorySink::new();
    let lines_handle = sink.lines();
    obs::telemetry_install(obs::TelemetryConfig::deterministic(), vec![Box::new(sink)]);
    let mut kinds: BTreeSet<&'static str> = BTreeSet::new();
    for policy in [RipUpPolicy::Full, RipUpPolicy::Incremental] {
        PacorFlow::new(config.with_ripup_policy(policy))
            .run(&problem)
            .expect("dense chip routes");
    }
    // A multi-region hierarchical run (gcell smaller than the chip), so
    // the `global.*` counters/histogram and the global/regions/stitch/
    // repair emit sites are guarded too.
    PacorFlow::new(
        config
            .with_routing_mode(RoutingMode::Hierarchical)
            .with_gcell_size(8),
    )
    .run(&problem)
    .expect("dense chip routes hierarchically");
    let log = obs::flight_take().expect("recorder installed");
    obs::telemetry_take()
        .expect("telemetry installed")
        .expect("no sink errors");
    kinds.extend(log.events().iter().map(|e| e.kind()));
    let report = session.finish();

    // Telemetry event kinds pulled from the raw JSONL stream, so the
    // doc's streaming-telemetry section rots as loudly as the rest.
    let telemetry_kinds: BTreeSet<String> = lines_handle
        .lock()
        .expect("sink lines")
        .iter()
        .map(|l| {
            let rest = l.split("\"kind\":\"").nth(1).expect("line carries kind");
            rest[..rest.find('"').expect("kind is quoted")].to_string()
        })
        .collect();
    assert!(
        telemetry_kinds.contains("round_progress") && telemetry_kinds.contains("escape_progress"),
        "smoke flow too tame to guard the telemetry catalog: {telemetry_kinds:?}"
    );

    let mut names: BTreeSet<String> = BTreeSet::new();
    names.extend(report.counters().map(|(n, _)| n.to_string()));
    names.extend(report.histograms().map(|(n, _)| n.to_string()));
    for event in report.events() {
        match event {
            TraceEvent::Span { name, .. }
            | TraceEvent::Instant { name, .. }
            | TraceEvent::Counter { name, .. } => {
                names.insert(name.to_string());
            }
        }
    }
    names.extend(kinds.iter().map(|k| k.to_string()));
    names.extend(telemetry_kinds);
    assert!(
        names.contains("negotiate.ripups")
            && names.contains("rip_up")
            && names.contains("global.regions")
            && names.contains("global.corridor_len"),
        "smoke flow too tame to guard the catalog: {names:?}"
    );

    let catalog = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/docs/OBSERVABILITY.md"
    ))
    .expect("docs/OBSERVABILITY.md exists");
    let missing: Vec<&String> = names
        .iter()
        .filter(|n| !catalog.contains(&format!("`{n}`")))
        .collect();
    assert!(
        missing.is_empty(),
        "emitted names missing from docs/OBSERVABILITY.md: {missing:?}"
    );
}
