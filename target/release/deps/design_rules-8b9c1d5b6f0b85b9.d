/root/repo/target/release/deps/design_rules-8b9c1d5b6f0b85b9.d: tests/design_rules.rs

/root/repo/target/release/deps/design_rules-8b9c1d5b6f0b85b9: tests/design_rules.rs

tests/design_rules.rs:
