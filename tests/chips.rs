//! Heavy integration tests on the Chip1/Chip2-scale designs. These run
//! in seconds under `--release` but minutes under the default dev
//! profile, so they are `#[ignore]`d by default:
//!
//! ```sh
//! cargo test --release --test chips -- --ignored
//! ```

use pacor_repro::pacor::{BenchDesign, FlowConfig, FlowVariant, PacorFlow};

#[test]
#[ignore = "chip-scale; run with --release -- --ignored"]
fn chip2_all_variants_identical_and_complete() {
    let problem = BenchDesign::Chip2.synthesize(42);
    let mut results = Vec::new();
    for v in FlowVariant::ALL {
        let r = PacorFlow::new(FlowConfig::for_variant(v))
            .run(&problem)
            .expect("valid");
        assert_eq!(r.completion_rate(), 1.0, "{}", v.label());
        results.push((r.matched_clusters, r.total_length));
    }
    // Paper: "All the three methods obtain same solution quality on
    // Chip2" — pairs-only clusters with abundant routing resources.
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
    assert_eq!(results[0].0, 22, "all 22 pair clusters matched");
}

#[test]
#[ignore = "chip-scale; run with --release -- --ignored"]
fn chip1_pacor_dominates_without_selection() {
    let problem = BenchDesign::Chip1.synthesize(42);
    let wo_sel = PacorFlow::new(FlowConfig::for_variant(FlowVariant::WithoutSelection))
        .run(&problem)
        .expect("valid");
    let pacor = PacorFlow::new(FlowConfig::for_variant(FlowVariant::Pacor))
        .run(&problem)
        .expect("valid");
    assert_eq!(wo_sel.completion_rate(), 1.0);
    assert_eq!(pacor.completion_rate(), 1.0);
    assert!(
        pacor.matched_clusters >= wo_sel.matched_clusters,
        "PACOR {} < w/o Sel {}",
        pacor.matched_clusters,
        wo_sel.matched_clusters
    );
    // Significant portion matched (paper: 24/40; ours routes ≥ that).
    assert!(pacor.matched_clusters * 2 >= pacor.clusters_multi);
}

#[test]
#[ignore = "chip-scale; run with --release -- --ignored"]
fn chip1_matched_clusters_satisfy_delta() {
    let problem = BenchDesign::Chip1.synthesize(42);
    let (report, routed) = PacorFlow::new(FlowConfig::default())
        .run_detailed(&problem)
        .expect("valid");
    assert_eq!(report.completion_rate(), 1.0);
    for rc in &routed {
        if rc.cluster.is_length_matched() && rc.is_complete() {
            if let Some(m) = rc.mismatch() {
                if m <= problem.delta {
                    // counted as matched — verify per-member lengths agree
                    let lens = rc.member_lengths().expect("LM cluster");
                    let max = lens.iter().max().unwrap();
                    let min = lens.iter().min().unwrap();
                    assert!(max - min <= problem.delta);
                }
            }
        }
    }
}
