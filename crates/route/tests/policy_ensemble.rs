//! Deterministic fixed-seed ensemble comparing the two rip-up policies.
//!
//! Per-case claims like "incremental never takes more rounds" are *not*
//! theorems — evicting only contended victims can occasionally discover a
//! worse ordering than replanning everything, and the no-progress
//! escalation costs an extra round when it fires. What the incremental
//! policy does guarantee is aggregate behavior: over a fixed random
//! ensemble it rips strictly fewer paths in total while completing the
//! same workloads. Because the seed is pinned, these sums are exact and
//! the test never flakes; a regression in either policy shifts them.

use pacor_grid::{Grid, ObsMap, Point};
use pacor_route::{NegotiationRouter, RipUpPolicy, RouteRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 1500;
const SIZE: i32 = 14;

fn random_case(rng: &mut StdRng) -> (ObsMap, Vec<RouteRequest>) {
    let mut grid = Grid::new(SIZE as u32, SIZE as u32).unwrap();
    let mut cells = std::collections::HashSet::new();
    for _ in 0..rng.gen_range(0..30) {
        cells.insert(Point::new(rng.gen_range(0..SIZE), rng.gen_range(0..SIZE)));
    }
    let n_terms: usize = 2 * rng.gen_range(2..5usize);
    let mut terms = Vec::new();
    while terms.len() < n_terms {
        let p = Point::new(rng.gen_range(0..SIZE), rng.gen_range(0..SIZE));
        if !cells.contains(&p) && !terms.contains(&p) {
            terms.push(p);
        }
    }
    for c in &cells {
        grid.set_obstacle(*c);
    }
    let edges = terms
        .chunks_exact(2)
        .map(|c| RouteRequest::point_to_point(c[0], c[1]))
        .collect();
    (ObsMap::new(&grid), edges)
}

#[test]
fn incremental_rips_fewer_paths_over_ensemble() {
    let mut rng = StdRng::seed_from_u64(1);
    let (mut sum_ripups_full, mut sum_ripups_inc) = (0u64, 0u64);
    let (mut n_complete_full, mut n_complete_inc) = (0i64, 0i64);
    let mut contended = 0usize;
    for _ in 0..CASES {
        let (base, edges) = random_case(&mut rng);
        let mut obs_full = base.clone();
        let mut obs_inc = base;
        let full = NegotiationRouter::new()
            .with_ripup_policy(RipUpPolicy::Full)
            .route_all(&mut obs_full, &edges);
        let inc = NegotiationRouter::new()
            .with_ripup_policy(RipUpPolicy::Incremental)
            .route_all(&mut obs_inc, &edges);
        if full.iterations > 1 || inc.iterations > 1 {
            contended += 1;
        }
        sum_ripups_full += full.ripups;
        sum_ripups_inc += inc.ripups;
        n_complete_full += i64::from(full.complete);
        n_complete_inc += i64::from(inc.complete);
    }
    // The ensemble must genuinely exercise negotiation, not converge on
    // round 1 everywhere.
    assert!(
        contended > 100,
        "only {contended}/{CASES} cases saw contention — ensemble too sparse"
    );
    // The headline claim: strictly fewer rip-ups in aggregate.
    assert!(
        sum_ripups_inc < sum_ripups_full,
        "incremental ripped {sum_ripups_inc} paths vs full's {sum_ripups_full}"
    );
    // Completeness parity: individual cases may flip either way (different
    // rip sets explore different orderings), but the ensemble totals must
    // stay within 1% of each other.
    let tolerance = (CASES / 100) as i64;
    assert!(
        (n_complete_full - n_complete_inc).abs() <= tolerance,
        "completion imbalance: full {n_complete_full} vs incremental {n_complete_inc}"
    );
}
