//! Criterion bench for Table 1: benchmark design synthesis throughput.
//!
//! Table 1 defines the designs; this bench measures how fast the
//! synthesizer regenerates each one from its published parameters
//! (relevant because every experiment re-synthesizes its instance).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pacor::BenchDesign;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_synthesis");
    for design in BenchDesign::SYNTH {
        group.bench_with_input(
            BenchmarkId::from_parameter(design.params().name),
            &design,
            |b, &design| b.iter(|| design.synthesize(42)),
        );
    }
    // One large design to exercise the dense-obstacle path.
    group.sample_size(10);
    group.bench_function("Chip2", |b| b.iter(|| BenchDesign::Chip2.synthesize(42)));
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
