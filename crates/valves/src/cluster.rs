//! Valve clusters — the unit the routing flow operates on.

use crate::ValveId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a cluster, dense from 0 within one design.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClusterId(pub u32);

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A cluster of pairwise-compatible valves sharing one control pin.
///
/// Clusters flagged with [`Cluster::is_length_matched`] carry the paper's
/// length-matching constraint: every member's routed channel length to the
/// shared control pin must lie within `δ` of every other member's.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cluster {
    id: ClusterId,
    members: Vec<ValveId>,
    length_matched: bool,
}

impl Cluster {
    /// Creates a cluster.
    ///
    /// # Panics
    ///
    /// Panics on an empty member list.
    pub fn new(id: ClusterId, members: Vec<ValveId>, length_matched: bool) -> Self {
        assert!(!members.is_empty(), "cluster must have at least one valve");
        Self {
            id,
            members,
            length_matched,
        }
    }

    /// The cluster identifier.
    #[inline]
    pub fn id(&self) -> ClusterId {
        self.id
    }

    /// Member valves.
    #[inline]
    pub fn members(&self) -> &[ValveId] {
        &self.members
    }

    /// Number of member valves.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` when the cluster has exactly one valve (single
    /// valves route directly to a control pin, paper Section 5).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false // a cluster always has ≥ 1 member (enforced in `new`)
    }

    /// Returns `true` when the cluster carries the length-matching
    /// constraint.
    #[inline]
    pub fn is_length_matched(&self) -> bool {
        self.length_matched
    }

    /// Adds a valve to the cluster (used by the greedy clusterer).
    pub(crate) fn push(&mut self, v: ValveId) {
        self.members.push(v);
    }

    /// Splits the cluster into singletons — the paper's *de-clustering*
    /// fallback when routing a cluster fails. Ids are assigned from
    /// `next_id` upward.
    pub fn decluster(&self, next_id: u32) -> Vec<Cluster> {
        self.members
            .iter()
            .enumerate()
            .map(|(k, &v)| Cluster::new(ClusterId(next_id + k as u32), vec![v], false))
            .collect()
    }

    /// Splits the cluster in half (a milder de-clustering step: "the
    /// corresponding cluster will be de-clustered into smaller ones").
    ///
    /// Returns `None` for singleton clusters, which cannot shrink.
    pub fn split(&self, next_id: u32) -> Option<(Cluster, Cluster)> {
        if self.members.len() < 2 {
            return None;
        }
        let mid = self.members.len() / 2;
        let (a, b) = self.members.split_at(mid);
        Some((
            Cluster::new(ClusterId(next_id), a.to_vec(), false),
            Cluster::new(ClusterId(next_id + 1), b.to_vec(), false),
        ))
    }
}

impl fmt::Display for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}{}]",
            self.id,
            self.members
                .iter()
                .map(|m| m.to_string())
                .collect::<Vec<_>>()
                .join(","),
            if self.length_matched { "; δ" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: u32) -> Cluster {
        Cluster::new(ClusterId(0), (0..n).map(ValveId).collect(), true)
    }

    #[test]
    #[should_panic(expected = "at least one valve")]
    fn empty_cluster_panics() {
        Cluster::new(ClusterId(0), vec![], false);
    }

    #[test]
    fn decluster_to_singletons() {
        let c = cluster(3);
        let parts = c.decluster(10);
        assert_eq!(parts.len(), 3);
        for (k, p) in parts.iter().enumerate() {
            assert_eq!(p.id(), ClusterId(10 + k as u32));
            assert_eq!(p.len(), 1);
            assert!(!p.is_length_matched());
        }
    }

    #[test]
    fn split_preserves_members() {
        let c = cluster(5);
        let (a, b) = c.split(7).unwrap();
        assert_eq!(a.len() + b.len(), 5);
        let mut all: Vec<_> = a.members().to_vec();
        all.extend_from_slice(b.members());
        all.sort();
        assert_eq!(all, (0..5).map(ValveId).collect::<Vec<_>>());
    }

    #[test]
    fn split_singleton_is_none() {
        assert!(cluster(1).split(0).is_none());
    }

    #[test]
    fn display_shows_constraint_flag() {
        let c = cluster(2);
        assert!(c.to_string().contains("δ"));
        let d = Cluster::new(ClusterId(1), vec![ValveId(9)], false);
        assert!(!d.to_string().contains("δ"));
    }
}
