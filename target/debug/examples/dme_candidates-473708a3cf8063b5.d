/root/repo/target/debug/examples/dme_candidates-473708a3cf8063b5.d: examples/dme_candidates.rs

/root/repo/target/debug/examples/dme_candidates-473708a3cf8063b5: examples/dme_candidates.rs

examples/dme_candidates.rs:
