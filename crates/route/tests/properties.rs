//! Property-based tests for the routers.

use pacor_grid::{Grid, ObsMap, Point};
use pacor_route::{AStar, BoundedAStar, NegotiationRouter, RouteRequest};
use proptest::prelude::*;
use std::collections::{HashSet, VecDeque};

/// Reference BFS shortest-path length, or `None` when unreachable.
fn bfs_len(obs: &ObsMap, from: Point, to: Point) -> Option<u64> {
    if from == to {
        return Some(0);
    }
    let mut dist = std::collections::HashMap::new();
    dist.insert(from, 0u64);
    let mut q = VecDeque::from([from]);
    while let Some(p) = q.pop_front() {
        for n in p.neighbors4() {
            if n == to {
                return Some(dist[&p] + 1);
            }
            if !obs.is_blocked(n) && !dist.contains_key(&n) {
                dist.insert(n, dist[&p] + 1);
                q.push_back(n);
            }
        }
    }
    None
}

fn build_map(obst: &HashSet<(i32, i32)>, w: u32, h: u32) -> ObsMap {
    let mut grid = Grid::new(w, h).unwrap();
    for &(x, y) in obst {
        grid.set_obstacle(Point::new(x, y));
    }
    ObsMap::new(&grid)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn astar_is_optimal_vs_bfs(
        obst in prop::collection::hash_set((0i32..12, 0i32..12), 0..40),
        sx in 0i32..12, sy in 0i32..12,
        tx in 0i32..12, ty in 0i32..12,
    ) {
        let mut obst = obst;
        obst.remove(&(sx, sy));
        obst.remove(&(tx, ty));
        let obs = build_map(&obst, 12, 12);
        let (s, t) = (Point::new(sx, sy), Point::new(tx, ty));
        let astar = AStar::new(&obs).point_to_point(s, t);
        let reference = bfs_len(&obs, s, t);
        match (astar, reference) {
            (Some(p), Some(l)) => {
                prop_assert_eq!(p.len(), l, "A* not optimal");
                prop_assert_eq!(p.source(), s);
                prop_assert_eq!(p.target(), t);
                for c in p.cells().iter().skip(1) {
                    prop_assert!(!obs.is_blocked(*c) || *c == t);
                }
            }
            (None, None) => {}
            (a, b) => prop_assert!(false, "reachability mismatch: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn astar_multi_target_returns_nearest(
        sx in 0i32..10, sy in 0i32..10,
        targets in prop::collection::vec((0i32..10, 0i32..10), 1..5),
    ) {
        let obs = build_map(&HashSet::new(), 10, 10);
        let s = Point::new(sx, sy);
        let tgts: Vec<Point> = targets.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let p = AStar::new(&obs).route(&[s], &tgts).expect("open grid routes");
        let best = tgts.iter().map(|t| s.manhattan(*t)).min().unwrap();
        prop_assert_eq!(p.len(), best);
        prop_assert!(tgts.contains(&p.target()));
    }

    #[test]
    fn bounded_router_respects_bound(
        sx in 1i32..10, sy in 1i32..10,
        tx in 1i32..10, ty in 1i32..10,
        extra in 0u64..12,
    ) {
        prop_assume!((sx, sy) != (tx, ty));
        let obs = build_map(&HashSet::new(), 12, 12);
        let (s, t) = (Point::new(sx, sy), Point::new(tx, ty));
        let d = s.manhattan(t);
        let lt = d + extra;
        if let Some(p) = BoundedAStar::new(&obs).route_at_least(s, t, lt) {
            prop_assert!(p.len() >= lt);
            // Minimality above the bound: parity forces at most +1.
            prop_assert!(p.len() <= lt + 1);
            prop_assert_eq!(p.source(), s);
            prop_assert_eq!(p.target(), t);
            // Self-avoiding.
            let mut seen = HashSet::new();
            for c in p.cells() {
                prop_assert!(seen.insert(*c), "revisited {c}");
            }
        }
    }

    #[test]
    fn bounded_router_zero_bound_equals_shortest(
        sx in 0i32..8, sy in 0i32..8, tx in 0i32..8, ty in 0i32..8,
    ) {
        let obs = build_map(&HashSet::new(), 8, 8);
        let (s, t) = (Point::new(sx, sy), Point::new(tx, ty));
        let p = BoundedAStar::new(&obs).route_at_least(s, t, 0).expect("open grid");
        prop_assert_eq!(p.len(), s.manhattan(t));
    }

    #[test]
    fn negotiation_outcome_consistency(
        rows in prop::collection::vec((1i32..10, 1i32..10), 1..4),
    ) {
        // Horizontal nets on distinct rows of a 12-wide grid.
        let mut rows = rows;
        rows.sort_by_key(|r| (r.1, r.0));
        rows.dedup_by_key(|r| r.1); // one net per row y
        let mut obs = build_map(&HashSet::new(), 12, 12);
        let edges: Vec<RouteRequest> = rows
            .iter()
            .map(|&(x, y)| RouteRequest::point_to_point(Point::new(x.min(9), y), Point::new(11, y)))
            .collect();
        let out = NegotiationRouter::new().route_all(&mut obs, &edges);
        prop_assert_eq!(out.complete, out.paths.iter().all(Option::is_some));
        prop_assert!(out.iterations >= 1);
        if out.complete {
            // All paths blocked and pairwise disjoint.
            let mut seen: HashSet<Point> = HashSet::new();
            for p in out.paths.iter().flatten() {
                for c in p.cells() {
                    prop_assert!(obs.is_blocked(*c));
                    prop_assert!(seen.insert(*c), "paths overlap at {c}");
                }
            }
        }
    }
}
