//! Property tests pinning the candidate-enumeration kernel to its
//! retained pre-rewrite reference (`candidates_reference`), the same
//! pattern as `AStar::route_reference`. The production kernel may
//! change *how* it deduplicates embeddings, but every tree — nodes,
//! order, wirelength — must stay identical to the reference on random
//! sink sets, with and without obstacle maps.

use pacor_dme::{
    candidates, candidates_reference, candidates_with_alternates,
    candidates_with_alternates_reference, CandidateConfig,
};
use pacor_grid::{Grid, ObsMap, Point};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Setup {
    obs: ObsMap,
    sinks: Vec<Point>,
}

/// Deterministically derives a random obstacle grid plus distinct sink
/// terminals (kept off obstacles) from the proptest-chosen scalars.
fn setup(w: u32, h: u32, seed: u64, density: u32, nsinks: usize) -> Setup {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut grid = Grid::new(w, h).unwrap();
    let mut sinks: Vec<Point> = Vec::new();
    while sinks.len() < nsinks {
        let p = Point::new(rng.gen_range(0..w as i32), rng.gen_range(0..h as i32));
        if !sinks.contains(&p) {
            sinks.push(p);
        }
    }
    for y in 0..h as i32 {
        for x in 0..w as i32 {
            let p = Point::new(x, y);
            if !sinks.contains(&p) && rng.gen_range(0u32..100) < density {
                grid.set_obstacle(p);
            }
        }
    }
    Setup {
        obs: ObsMap::new(&grid),
        sinks,
    }
}

proptest! {
    #[test]
    fn candidates_match_reference(
        w in 6u32..24,
        h in 6u32..24,
        seed in 0u64..u64::MAX,
        density in 0u32..35,
        nsinks in 2usize..7,
        max_candidates in 1usize..8,
        obs_flag in 0u32..2,
    ) {
        let s = setup(w, h, seed, density, nsinks);
        let config = CandidateConfig {
            max_candidates,
            ..CandidateConfig::default()
        };
        let obs = (obs_flag == 1).then_some(&s.obs);
        let fast = candidates(&s.sinks, obs, config);
        let reference = candidates_reference(&s.sinks, obs, config);
        prop_assert_eq!(&fast, &reference, "candidate lists diverged");
        prop_assert!(!fast.is_empty());
        prop_assert!(fast.len() <= max_candidates);
    }

    #[test]
    fn alternate_candidates_match_reference(
        w in 6u32..20,
        h in 6u32..20,
        seed in 0u64..u64::MAX,
        density in 0u32..30,
        nsinks in 2usize..6,
        max_topologies in 1usize..5,
        obs_flag in 0u32..2,
    ) {
        let s = setup(w, h, seed, density, nsinks);
        let config = CandidateConfig::default();
        let obs = (obs_flag == 1).then_some(&s.obs);
        let fast = candidates_with_alternates(&s.sinks, obs, config, max_topologies);
        let reference =
            candidates_with_alternates_reference(&s.sinks, obs, config, max_topologies);
        prop_assert_eq!(&fast, &reference, "alternate candidate lists diverged");
        prop_assert!(!fast.is_empty());
    }
}
