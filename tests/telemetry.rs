//! Streaming-telemetry determinism (docs/OBSERVABILITY.md): the raw
//! `pacor-telemetry-v1` JSONL stream, collected in deterministic mode
//! (wall-clock fields zeroed), is **byte-identical** at any worker
//! thread count and under either negotiation mode, because every event
//! is emitted at a session-thread commit point — the same discipline
//! the flight recorder follows (`tests/flight.rs`). It is additionally
//! identical across the two rip-up policies whenever the policies route
//! the same result. The sole exception is `flow_started`, which names
//! the policy / mode / thread count on purpose (the stream
//! self-describes its run) — the comparisons below mask exactly those
//! three values and byte-compare everything else.

use pacor_bench::collect_telemetry;
use pacor_repro::pacor::obs;
use pacor_repro::pacor::route::{NegotiationMode, RipUpPolicy};
use pacor_repro::pacor::{synthesize_params, DesignParams, FlowConfig, PacorFlow};

/// The starved chip of `tests/flight.rs`: converges in one round but
/// leaves nets unrouted, and — crucially here — rips nothing up, so the
/// two rip-up policies route identically and the stream must match
/// across the full 16-combo matrix.
const STARVED: DesignParams = DesignParams {
    name: "T1-starved",
    width: 20,
    height: 20,
    valves: 8,
    control_pins: 2,
    obstacles: 0,
    multi_clusters: 3,
    pairs_only: true,
};

/// The contended chip: negotiation rips up, so the policies diverge
/// legitimately — each must still be thread- and mode-invariant on its
/// own.
const DENSE: DesignParams = DesignParams {
    name: "D1-dense24",
    width: 24,
    height: 24,
    valves: 18,
    control_pins: 40,
    obstacles: 50,
    multi_clusters: 8,
    pairs_only: false,
};

fn kind_count(lines: &[String], kind: &str) -> usize {
    let needle = format!("\"kind\":\"{kind}\"");
    lines.iter().filter(|l| l.contains(&needle)).count()
}

/// Masks the run-configuration fields of the `flow_started` event.
/// That event names the policy, mode, and thread count by design (the
/// stream self-describes its run); every *behavioral* byte after it
/// must still match, so the invariance comparison blanks exactly those
/// three values and nothing else.
fn masked(mut lines: Vec<String>) -> Vec<String> {
    let first = lines.first_mut().expect("stream is non-empty");
    assert!(first.contains("\"kind\":\"flow_started\""), "got {first}");
    for key in ["\"policy\":\"", "\"mode\":\""] {
        let start = first.find(key).expect("flow_started carries config") + key.len();
        let len = first[start..].find('"').expect("value is quoted");
        first.replace_range(start..start + len, "*");
    }
    let key = "\"threads\":";
    let start = first.find(key).expect("flow_started carries threads") + key.len();
    let len = first[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .count();
    first.replace_range(start..start + len, "*");
    lines
}

#[test]
fn stream_bytes_invariant_across_threads_modes_and_policies() {
    let base = masked(collect_telemetry(
        STARVED,
        RipUpPolicy::Incremental,
        NegotiationMode::Serial,
        1,
        42,
    ));
    assert!(base.len() > 1, "the stream must carry events");
    for threads in [1usize, 2, 4, 8] {
        for mode in [NegotiationMode::Serial, NegotiationMode::Parallel] {
            for policy in [RipUpPolicy::Full, RipUpPolicy::Incremental] {
                let lines = masked(collect_telemetry(STARVED, policy, mode, threads, 42));
                assert_eq!(
                    lines, base,
                    "stream drifted at threads={threads} {mode:?} {policy:?}"
                );
            }
        }
    }
}

#[test]
fn stream_bytes_invariant_per_policy_on_contended_chip() {
    for policy in [RipUpPolicy::Full, RipUpPolicy::Incremental] {
        let base = masked(collect_telemetry(DENSE, policy, NegotiationMode::Serial, 1, 42));
        assert!(
            kind_count(&base, "round_progress") > 0,
            "dense chip stream must carry negotiation rounds"
        );
        for threads in [2usize, 4] {
            for mode in [NegotiationMode::Serial, NegotiationMode::Parallel] {
                let lines = masked(collect_telemetry(DENSE, policy, mode, threads, 42));
                assert_eq!(
                    lines, base,
                    "{policy:?} stream drifted at threads={threads} {mode:?}"
                );
            }
        }
    }
}

#[test]
fn stream_shape_matches_run_counters() {
    // Collect the stream and the run's metrics in the same run: an
    // outer obs session absorbs the flow's counters while the
    // deterministic telemetry stream records into memory.
    let problem = synthesize_params(DENSE, 42);
    let config = FlowConfig::default().with_threads(2);
    let sink = obs::MemorySink::new();
    let lines_handle = sink.lines();
    let session = obs::Session::begin();
    obs::telemetry_install(obs::TelemetryConfig::deterministic(), vec![Box::new(sink)]);
    PacorFlow::new(config).run(&problem).expect("chip runs");
    let emitted = obs::telemetry_take().expect("telemetry installed");
    let report = session.finish();
    let lines = lines_handle.lock().expect("sink lines").clone();

    // Envelope: versioned flow_started first, flow_finished last, and
    // the terminal event's own count agrees with the stream length.
    let first = lines.first().expect("stream is non-empty");
    assert!(first.contains("\"kind\":\"flow_started\""), "got {first}");
    assert!(first.contains("\"schema\":\"pacor-telemetry-v1\""));
    assert!(first.contains("\"design\":\"D1-dense24\""));
    let last = lines.last().expect("stream is non-empty");
    assert!(last.contains("\"kind\":\"flow_finished\""), "got {last}");
    assert!(
        last.contains(&format!("\"events\":{}", lines.len() - 1)),
        "flow_finished must count every prior event: {last}"
    );
    assert_eq!(emitted.expect("no sink errors"), lines.len() as u64);

    // Stage coverage: every stage enters exactly once and exits exactly
    // once, and entries precede exits pairwise.
    for stage in ["clustering", "lm_routing", "mst_routing", "escape", "detour"] {
        let entered = lines
            .iter()
            .position(|l| l.contains(&format!("\"kind\":\"stage_entered\",\"stage\":\"{stage}\"")));
        let exited = lines
            .iter()
            .position(|l| l.contains(&format!("\"kind\":\"stage_exited\",\"stage\":\"{stage}\"")));
        let (e, x) = (
            entered.unwrap_or_else(|| panic!("{stage} never entered")),
            exited.unwrap_or_else(|| panic!("{stage} never exited")),
        );
        assert!(e < x, "{stage} exit precedes its entry");
    }

    // Per-round events match the negotiation counter, and deterministic
    // mode zeroes every wall-clock field.
    assert_eq!(
        kind_count(&lines, "round_progress") as u64,
        report.counter("negotiate.rounds"),
        "one round_progress per negotiation round"
    );
    for l in &lines {
        if let Some(rest) = l.split("\"elapsed_us\":").nth(1) {
            assert!(
                rest.starts_with('0'),
                "deterministic stream must zero elapsed_us: {l}"
            );
        }
    }

    // Every line is parseable JSON carrying the schema tag.
    for l in &lines {
        serde_json::from_str::<serde::Value>(l).expect("telemetry lines parse");
        assert!(l.contains("\"schema\":\"pacor-telemetry-v1\""));
    }
}

#[test]
fn no_install_means_no_stream() {
    let problem = synthesize_params(STARVED, 42);
    PacorFlow::new(FlowConfig::default())
        .run(&problem)
        .expect("chip runs");
    assert!(
        obs::telemetry_take().is_none(),
        "a run without telemetry_install must leave no stream behind"
    );
}

#[test]
fn zero_budgets_fire_once_per_stage_on_a_real_run() {
    // Timing mode with every budget at zero: each stage must trip its
    // alarm exactly once, immediately before that stage's exit event.
    let problem = synthesize_params(STARVED, 42);
    let sink = obs::MemorySink::new();
    let lines_handle = sink.lines();
    let cfg = obs::TelemetryConfig {
        deterministic: false,
        heartbeat_ms: 0,
        budgets: obs::StageBudgets {
            clustering: 0,
            lm_routing: 0,
            mst_routing: 0,
            escape: 0,
            detour: 0,
        },
    };
    obs::telemetry_install(cfg, vec![Box::new(sink)]);
    PacorFlow::new(FlowConfig::default())
        .run(&problem)
        .expect("chip runs");
    obs::telemetry_take()
        .expect("telemetry installed")
        .expect("no sink errors");
    let lines = lines_handle.lock().expect("sink lines").clone();
    for stage in ["clustering", "lm_routing", "mst_routing", "escape", "detour"] {
        let alarms: Vec<usize> = lines
            .iter()
            .enumerate()
            .filter(|(_, l)| {
                l.contains("\"kind\":\"budget_exceeded\"")
                    && l.contains(&format!("\"stage\":\"{stage}\""))
            })
            .map(|(i, _)| i)
            .collect();
        assert_eq!(alarms.len(), 1, "{stage} must alarm exactly once");
        let exit = lines
            .iter()
            .position(|l| l.contains(&format!("\"kind\":\"stage_exited\",\"stage\":\"{stage}\"")))
            .expect("stage exits");
        assert!(alarms[0] < exit, "{stage} alarm must precede its exit");
    }
}
