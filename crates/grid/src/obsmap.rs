//! Transient obstacle map with checkpoint/rollback.
//!
//! Algorithm 1 of the paper constructs an `ObsMap` ("a two-dimensional
//! array of boolean values") over the routing grid, marks routed paths as
//! obstacles, and *resets* those flags when the negotiation iteration rips
//! everything up. The rip-up & reroute loop of the overall flow needs the
//! same mechanics, so the map records a journal of set bits that can be
//! rolled back to a checkpoint in O(#changes).

use crate::{Grid, Point, Rect};

/// Journal entry for a cell whose transient block was removed again via
/// [`ObsMap::unblock`] — skipped during rollback.
const TOMBSTONE: usize = usize::MAX;

/// A boolean obstacle layer over a [`Grid`], with undo support.
///
/// Permanent obstacles from the grid are folded in at construction time;
/// everything added afterwards is transient and can be rolled back.
///
/// # Examples
///
/// ```
/// use pacor_grid::{Grid, ObsMap, Point};
///
/// let grid = Grid::new(8, 8)?;
/// let mut obs = ObsMap::new(&grid);
/// let cp = obs.checkpoint();
/// obs.block(Point::new(2, 2));
/// assert!(obs.is_blocked(Point::new(2, 2)));
/// obs.rollback(cp);
/// assert!(!obs.is_blocked(Point::new(2, 2)));
/// # Ok::<(), pacor_grid::GridError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ObsMap {
    width: u32,
    height: u32,
    blocked: Vec<bool>,
    journal: Vec<usize>,
    /// Per cell: its live position in `journal`, or [`TOMBSTONE`] when the
    /// cell has no transient block. Makes [`ObsMap::unblock`] O(1) — the
    /// escape stage rips thousands of cells per round, and a linear
    /// journal scan per cell made that quadratic.
    slot: Vec<usize>,
    /// When enabled, every effective blocked-state change is appended as
    /// `(cell index, new state)` — the feed for incremental consumers
    /// (the persistent escape network) that mirror this map as arc
    /// capacities. `None` = disabled, zero overhead on the hot paths.
    delta_log: Option<Vec<(u32, bool)>>,
}

/// Opaque checkpoint token for [`ObsMap::rollback`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Checkpoint(usize);

impl ObsMap {
    /// Builds the map from a grid, copying its permanent obstacles and
    /// occupied cells as blocked.
    pub fn new(grid: &Grid) -> Self {
        let blocked: Vec<bool> = (0..grid.len())
            .map(|i| !grid.is_routable(grid.point_of(i)))
            .collect();
        let slot = vec![TOMBSTONE; blocked.len()];
        Self {
            width: grid.width(),
            height: grid.height(),
            blocked,
            journal: Vec::new(),
            slot,
            delta_log: None,
        }
    }

    /// Starts recording blocked-state changes. Any deltas recorded by a
    /// previous enablement are discarded.
    pub fn enable_delta_log(&mut self) {
        self.delta_log = Some(Vec::new());
    }

    /// Stops recording and drops any pending deltas.
    pub fn disable_delta_log(&mut self) {
        self.delta_log = None;
    }

    /// Drains the recorded deltas (`(cell index, new blocked state)` in
    /// application order), leaving the log enabled and empty. Returns an
    /// empty vec when the log is disabled.
    ///
    /// A cell may appear multiple times; replaying the entries in order
    /// reproduces the map's net state change since the last drain.
    pub fn take_deltas(&mut self) -> Vec<(u32, bool)> {
        match &mut self.delta_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Map width in cells.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Map height in cells.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn index_of(&self, p: Point) -> Option<usize> {
        if p.x >= 0 && p.y >= 0 && (p.x as u32) < self.width && (p.y as u32) < self.height {
            Some(p.y as usize * self.width as usize + p.x as usize)
        } else {
            None
        }
    }

    /// Returns `true` when `p` is blocked (out-of-bounds counts as blocked).
    #[inline]
    pub fn is_blocked(&self, p: Point) -> bool {
        match self.index_of(p) {
            Some(i) => self.blocked[i],
            None => true,
        }
    }

    /// Blocks `p` transiently; records the change for rollback. Blocking an
    /// already-blocked cell is a no-op that records nothing.
    pub fn block(&mut self, p: Point) {
        if let Some(i) = self.index_of(p) {
            if !self.blocked[i] {
                self.blocked[i] = true;
                self.slot[i] = self.journal.len();
                self.journal.push(i);
                if let Some(log) = &mut self.delta_log {
                    log.push((i as u32, true));
                }
            }
        }
    }

    /// Blocks every cell of `path`.
    pub fn block_all<I: IntoIterator<Item = Point>>(&mut self, path: I) {
        for p in path {
            self.block(p);
        }
    }

    /// Removes a transient block from `p` (rip-up of a routed path cell).
    /// Permanent obstacles inherited from the grid cannot be unblocked —
    /// only cells blocked through [`ObsMap::block`] after construction.
    ///
    /// The cell's journal entry is tombstoned in place (O(1)), so
    /// outstanding checkpoints stay valid: later entries keep their
    /// positions, and a rollback simply skips the tombstone.
    pub fn unblock(&mut self, p: Point) {
        if let Some(i) = self.index_of(p) {
            let pos = self.slot[i];
            if pos != TOMBSTONE {
                self.journal[pos] = TOMBSTONE;
                self.slot[i] = TOMBSTONE;
                self.blocked[i] = false;
                if let Some(log) = &mut self.delta_log {
                    log.push((i as u32, false));
                }
            }
        }
    }

    /// Unblocks every cell of `path`.
    pub fn unblock_all<I: IntoIterator<Item = Point>>(&mut self, path: I) {
        for p in path {
            self.unblock(p);
        }
    }

    /// Takes a checkpoint of the current transient state.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint(self.journal.len())
    }

    /// Rolls back every transient block recorded after `cp`.
    ///
    /// # Panics
    ///
    /// Panics when `cp` comes from a different map "timeline" (i.e. the
    /// journal is already shorter than the checkpoint).
    pub fn rollback(&mut self, cp: Checkpoint) {
        assert!(
            cp.0 <= self.journal.len(),
            "checkpoint {0} beyond journal length {1}",
            cp.0,
            self.journal.len()
        );
        while self.journal.len() > cp.0 {
            let i = self.journal.pop().expect("journal nonempty");
            if i != TOMBSTONE {
                self.blocked[i] = false;
                self.slot[i] = TOMBSTONE;
                if let Some(log) = &mut self.delta_log {
                    log.push((i as u32, false));
                }
            }
        }
    }

    /// Clears *all* transient blocks, keeping the permanent ones.
    pub fn reset(&mut self) {
        self.rollback(Checkpoint(0));
    }

    /// Number of blocked cells (permanent + transient).
    pub fn blocked_count(&self) -> usize {
        self.blocked.iter().filter(|b| **b).count()
    }

    /// A region-windowed view for hierarchical detailed routing: a
    /// fresh full-size map whose blocked state snapshots this map's
    /// *current* state, with every cell outside `window` additionally
    /// blocked. All inherited blocks (including this map's transient
    /// ones) behave as permanent in the view — they cannot be
    /// unblocked and survive [`ObsMap::reset`] — so a region router
    /// can rip up only what it routed itself. The view starts with an
    /// empty journal and no delta log.
    pub fn windowed(&self, window: Rect) -> ObsMap {
        let mut blocked = self.blocked.clone();
        let (w, h) = (self.width as i32, self.height as i32);
        for y in 0..h {
            let row = y as usize * self.width as usize;
            if y < window.min().y || y > window.max().y {
                blocked[row..row + self.width as usize].fill(true);
            } else {
                for x in 0..w {
                    if x < window.min().x || x > window.max().x {
                        blocked[row + x as usize] = true;
                    }
                }
            }
        }
        ObsMap {
            width: self.width,
            height: self.height,
            blocked,
            journal: Vec::new(),
            slot: vec![TOMBSTONE; self.slot.len()],
            delta_log: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cell;

    fn grid_with_obstacle() -> Grid {
        let mut g = Grid::new(6, 6).unwrap();
        g.set_obstacle(Point::new(0, 0));
        g.set_cell(Point::new(5, 5), Cell::Occupied(1)).unwrap();
        g
    }

    #[test]
    fn inherits_permanent_obstacles() {
        let obs = ObsMap::new(&grid_with_obstacle());
        assert!(obs.is_blocked(Point::new(0, 0)));
        assert!(obs.is_blocked(Point::new(5, 5)));
        assert!(!obs.is_blocked(Point::new(3, 3)));
        assert_eq!(obs.blocked_count(), 2);
    }

    #[test]
    fn out_of_bounds_is_blocked() {
        let obs = ObsMap::new(&Grid::new(4, 4).unwrap());
        assert!(obs.is_blocked(Point::new(-1, 2)));
        assert!(obs.is_blocked(Point::new(4, 2)));
    }

    #[test]
    fn block_and_rollback() {
        let mut obs = ObsMap::new(&Grid::new(4, 4).unwrap());
        let cp = obs.checkpoint();
        obs.block_all([Point::new(1, 1), Point::new(2, 1), Point::new(3, 1)]);
        assert_eq!(obs.blocked_count(), 3);
        obs.rollback(cp);
        assert_eq!(obs.blocked_count(), 0);
    }

    #[test]
    fn nested_checkpoints() {
        let mut obs = ObsMap::new(&Grid::new(4, 4).unwrap());
        obs.block(Point::new(0, 0));
        let cp1 = obs.checkpoint();
        obs.block(Point::new(1, 0));
        let cp2 = obs.checkpoint();
        obs.block(Point::new(2, 0));
        obs.rollback(cp2);
        assert!(obs.is_blocked(Point::new(1, 0)));
        assert!(!obs.is_blocked(Point::new(2, 0)));
        obs.rollback(cp1);
        assert!(obs.is_blocked(Point::new(0, 0)));
        assert!(!obs.is_blocked(Point::new(1, 0)));
    }

    #[test]
    fn double_block_rolls_back_once() {
        let mut obs = ObsMap::new(&Grid::new(4, 4).unwrap());
        let cp = obs.checkpoint();
        obs.block(Point::new(2, 2));
        obs.block(Point::new(2, 2));
        obs.rollback(cp);
        assert!(!obs.is_blocked(Point::new(2, 2)));
    }

    #[test]
    fn reset_keeps_permanent() {
        let mut obs = ObsMap::new(&grid_with_obstacle());
        obs.block(Point::new(3, 3));
        obs.reset();
        assert!(obs.is_blocked(Point::new(0, 0)));
        assert!(!obs.is_blocked(Point::new(3, 3)));
    }

    #[test]
    fn unblock_removes_transient_only() {
        let mut obs = ObsMap::new(&grid_with_obstacle());
        obs.block(Point::new(2, 2));
        obs.unblock(Point::new(2, 2));
        assert!(!obs.is_blocked(Point::new(2, 2)));
        // Permanent obstacle survives unblock.
        obs.unblock(Point::new(0, 0));
        assert!(obs.is_blocked(Point::new(0, 0)));
    }

    #[test]
    fn unblock_all_rips_up_a_path() {
        let mut obs = ObsMap::new(&Grid::new(6, 6).unwrap());
        let path = [Point::new(1, 1), Point::new(2, 1), Point::new(3, 1)];
        obs.block_all(path);
        assert_eq!(obs.blocked_count(), 3);
        obs.unblock_all(path);
        assert_eq!(obs.blocked_count(), 0);
    }

    #[test]
    fn unblock_keeps_checkpoints_usable() {
        let mut obs = ObsMap::new(&Grid::new(6, 6).unwrap());
        obs.block(Point::new(1, 1));
        let cp = obs.checkpoint(); // journal length 1
        obs.block(Point::new(2, 2));
        obs.unblock(Point::new(1, 1)); // tombstone the pre-checkpoint entry
        obs.rollback(cp); // must not panic
        assert!(!obs.is_blocked(Point::new(1, 1)));
        // Post-checkpoint entries keep their journal positions across the
        // tombstoning, so the rollback still reaches them.
        assert!(!obs.is_blocked(Point::new(2, 2)));
    }

    #[test]
    fn reblock_after_unblock_rolls_back() {
        let mut obs = ObsMap::new(&Grid::new(6, 6).unwrap());
        let cp = obs.checkpoint();
        obs.block(Point::new(3, 3));
        obs.unblock(Point::new(3, 3));
        obs.block(Point::new(3, 3)); // fresh journal entry, new position
        assert!(obs.is_blocked(Point::new(3, 3)));
        obs.rollback(cp);
        assert!(!obs.is_blocked(Point::new(3, 3)));
        assert_eq!(obs.blocked_count(), 0);
    }

    #[test]
    fn delta_log_records_effective_changes_only() {
        let mut obs = ObsMap::new(&grid_with_obstacle());
        obs.enable_delta_log();
        obs.block(Point::new(2, 2)); // effective
        obs.block(Point::new(2, 2)); // no-op: already blocked
        obs.block(Point::new(0, 0)); // no-op: permanent obstacle
        obs.unblock(Point::new(2, 2)); // effective
        obs.unblock(Point::new(0, 0)); // no-op: permanent
        obs.unblock(Point::new(3, 3)); // no-op: never blocked
        let i22 = (2 * 6 + 2) as u32;
        assert_eq!(obs.take_deltas(), vec![(i22, true), (i22, false)]);
        // Drained: the log stays enabled and empty.
        assert_eq!(obs.take_deltas(), vec![]);
        obs.block(Point::new(1, 1));
        assert_eq!(obs.take_deltas(), vec![(6 + 1, true)]);
        obs.disable_delta_log();
        obs.block(Point::new(4, 4));
        assert_eq!(obs.take_deltas(), vec![]);
    }

    #[test]
    fn delta_log_sees_rollback() {
        let mut obs = ObsMap::new(&Grid::new(4, 4).unwrap());
        obs.block(Point::new(1, 1));
        let cp = obs.checkpoint();
        obs.enable_delta_log();
        obs.block(Point::new(2, 2));
        obs.rollback(cp);
        // The block and its undo both appear, in order; the pre-log block
        // at (1,1) survives the rollback and never shows up.
        let i22 = (2 * 4 + 2) as u32;
        assert_eq!(obs.take_deltas(), vec![(i22, true), (i22, false)]);
        assert!(obs.is_blocked(Point::new(1, 1)));
    }

    #[test]
    fn windowed_blocks_outside_and_freezes_inherited_state() {
        let mut obs = ObsMap::new(&grid_with_obstacle());
        obs.block(Point::new(2, 2)); // transient in the parent
        let view = obs.windowed(Rect::from_corners(Point::new(1, 1), Point::new(3, 3)));
        // Outside the window: blocked, even where the parent was free.
        assert!(view.is_blocked(Point::new(4, 4)));
        assert!(view.is_blocked(Point::new(0, 2)));
        // Inside: parent state carried over.
        assert!(view.is_blocked(Point::new(2, 2)));
        assert!(!view.is_blocked(Point::new(1, 1)));
        // Inherited blocks are permanent in the view...
        let mut view = view;
        view.unblock(Point::new(2, 2));
        assert!(view.is_blocked(Point::new(2, 2)));
        view.block(Point::new(1, 1));
        view.reset();
        assert!(!view.is_blocked(Point::new(1, 1)));
        assert!(view.is_blocked(Point::new(4, 4)), "window frame survives reset");
        // ...and the parent is untouched throughout.
        assert!(!obs.is_blocked(Point::new(4, 4)));
    }

    #[test]
    #[should_panic(expected = "beyond journal length")]
    fn rollback_past_journal_panics() {
        let mut obs = ObsMap::new(&Grid::new(4, 4).unwrap());
        obs.block(Point::new(1, 1));
        let cp = obs.checkpoint();
        obs.reset();
        obs.rollback(cp);
    }
}
