//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace vendors the tiny slice of the `rand` 0.8 API it uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over integer ranges. The generator is a fixed
//! SplitMix64 stream — deterministic for a given seed, which is all the
//! benchmark synthesizer requires (values differ from upstream `rand`,
//! but every consumer in this workspace treats the stream as opaque).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator seedable from integer state.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing random value generation.
pub trait Rng: RngCore {
    /// Samples a uniformly distributed value from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample using `rng`.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> Self::Output;
}

/// Unbiased sample of `[0, span)` by rejection on the top bucket.
fn uniform_below<G: RngCore + ?Sized>(rng: &mut G, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(uniform_below(rng, span) as $wide) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(uniform_below(rng, span + 1) as $wide) as $t
            }
        }
    )+};
}

impl_sample_range_int!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: a SplitMix64 stream.
    ///
    /// Deterministic for a given seed; not cryptographic. The stream
    /// differs from upstream `rand`'s `StdRng`, which is fine for the
    /// workspace's synthetic-benchmark use.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i32..1000), b.gen_range(0i32..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..7);
            assert!((-5..7).contains(&v));
            let w = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&w));
            let u = rng.gen_range(10usize..11);
            assert_eq!(u, 10);
        }
    }

    #[test]
    fn inclusive_single_point() {
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(rng.gen_range(4i32..=4), 4);
    }
}
