//! The append-only run ledger (`RUNS.jsonl`).
//!
//! One compact [`RunDigest`] JSON document per line, newest last.
//! Appends are crash-safe: the whole updated file is staged next to the
//! target and atomically renamed over it (the same temp+rename
//! discipline as every other exporter), so a kill mid-append can never
//! leave a torn line — readers see either the old ledger or the new
//! one, byte-complete.

use crate::digest::RunDigest;
use std::io;
use std::path::Path;

/// Appends one digest to the ledger at `path`, creating it on first
/// use. Lines that no longer parse (hand edits, schema drift) are
/// preserved verbatim — the ledger is append-only, not self-healing.
///
/// # Errors
///
/// Propagates I/O failures from reading the existing ledger or from
/// the atomic write (missing parent directory, permissions, full disk).
pub fn ledger_append(path: &Path, digest: &RunDigest) -> io::Result<()> {
    let mut text = match std::fs::read_to_string(path) {
        Ok(existing) => existing,
        Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    if !text.is_empty() && !text.ends_with('\n') {
        text.push('\n');
    }
    text.push_str(&digest.to_jsonl());
    text.push('\n');
    crate::export::atomic_write(path, &text)
}

/// Loads every parseable digest from the ledger, oldest first. Blank
/// lines are skipped; a line that fails to parse is reported with its
/// 1-based line number.
///
/// # Errors
///
/// Returns the underlying I/O error, or `InvalidData` naming the first
/// malformed line.
pub fn ledger_load(path: &Path) -> io::Result<Vec<RunDigest>> {
    let text = std::fs::read_to_string(path)?;
    let mut runs = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let digest = RunDigest::from_json(line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}:{}: {e}", path.display(), idx + 1),
            )
        })?;
        runs.push(digest);
    }
    Ok(runs)
}

/// The most recent ledger entry whose fingerprint key matches
/// `digest`'s — the natural baseline for a re-run. Entries are scanned
/// newest-first; `digest` itself is never in the ledger yet when this
/// is asked, so any hit is a genuine prior run.
pub fn latest_baseline<'a>(runs: &'a [RunDigest], digest: &RunDigest) -> Option<&'a RunDigest> {
    let key = digest.fingerprint.key();
    runs.iter().rev().find(|r| r.fingerprint.key() == key)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest_with(chip: &str, total_length: u64) -> RunDigest {
        let mut d = crate::digest::tests::sample_digest();
        d.fingerprint.chip = chip.to_string();
        d.outcome.total_length = total_length;
        d
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pacor-ledger-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn append_then_load_round_trips_in_order() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("RUNS.jsonl");
        let a = digest_with("A", 10);
        let b = digest_with("B", 20);
        let a2 = digest_with("A", 30);
        for d in [&a, &b, &a2] {
            ledger_append(&path, d).expect("append");
        }
        let runs = ledger_load(&path).expect("load");
        assert_eq!(runs, vec![a.clone(), b, a2.clone()]);
        assert_eq!(latest_baseline(&runs, &a), Some(&a2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_from_a_crash_never_tears_the_ledger() {
        // Simulate a writer killed mid-stage: a garbage .tmp sits next
        // to the ledger. Appends must still land complete lines and the
        // full file must re-parse.
        let dir = temp_dir("crash");
        let path = dir.join("RUNS.jsonl");
        ledger_append(&path, &digest_with("A", 10)).expect("first append");
        std::fs::write(dir.join("RUNS.jsonl.tmp"), "{\"torn\": tr").expect("stale tmp");
        ledger_append(&path, &digest_with("A", 20)).expect("second append");
        let text = std::fs::read_to_string(&path).expect("readable");
        assert!(text.ends_with('\n'), "ledger must end on a line boundary");
        let runs = ledger_load(&path).expect("every line parses");
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[1].outcome.total_length, 20);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_reports_the_malformed_line() {
        let dir = temp_dir("malformed");
        let path = dir.join("RUNS.jsonl");
        ledger_append(&path, &digest_with("A", 10)).expect("append");
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str("{\"not\": \"a digest\"}\n");
        std::fs::write(&path, text).expect("write");
        let err = ledger_load(&path).expect_err("second line is junk");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains(":2:"), "names line 2: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_baseline_for_an_unseen_fingerprint() {
        let runs = vec![digest_with("A", 10)];
        assert!(latest_baseline(&runs, &digest_with("B", 10)).is_none());
    }
}
