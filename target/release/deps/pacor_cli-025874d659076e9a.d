/root/repo/target/release/deps/pacor_cli-025874d659076e9a.d: src/bin/pacor_cli.rs

/root/repo/target/release/deps/pacor_cli-025874d659076e9a: src/bin/pacor_cli.rs

src/bin/pacor_cli.rs:
