/root/repo/target/debug/deps/pacor_valves-4f4d39aca91fab4a.d: crates/valves/src/lib.rs crates/valves/src/addressing.rs crates/valves/src/cluster.rs crates/valves/src/compat.rs crates/valves/src/schedule.rs crates/valves/src/sequence.rs crates/valves/src/valve.rs

/root/repo/target/debug/deps/pacor_valves-4f4d39aca91fab4a: crates/valves/src/lib.rs crates/valves/src/addressing.rs crates/valves/src/cluster.rs crates/valves/src/compat.rs crates/valves/src/schedule.rs crates/valves/src/sequence.rs crates/valves/src/valve.rs

crates/valves/src/lib.rs:
crates/valves/src/addressing.rs:
crates/valves/src/cluster.rs:
crates/valves/src/compat.rs:
crates/valves/src/schedule.rs:
crates/valves/src/sequence.rs:
crates/valves/src/valve.rs:
