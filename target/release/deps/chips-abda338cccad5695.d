/root/repo/target/release/deps/chips-abda338cccad5695.d: tests/chips.rs

/root/repo/target/release/deps/chips-abda338cccad5695: tests/chips.rs

tests/chips.rs:
