//! `bench_flow` — end-to-end PACOR flow benchmark over both rip-up
//! policies and both negotiation modes, writing `BENCH_flow.json`.
//!
//! ```text
//! bench_flow [--out FILE] [--repeat N] [--smoke] [--huge] [--chip NAME] [--events] [--ledger FILE]
//! ```
//!
//! Runs the full flow (clustering → LM routing → MST routing → escape →
//! detour) over the dense synthesized chips of
//! [`pacor_bench::FLOW_BENCH_CHIPS`], once per rip-up policy ×
//! negotiation configuration (serial, plus speculative-parallel at 2
//! and 4 threads), and records wall-clock (end-to-end and inside the
//! `negotiate` spans; best of `--repeat` runs, default 3), a per-stage
//! `stage_ms` breakdown (span-summed clustering / lm_routing /
//! mst_routing / escape / detour wall-clock, so speedups attribute to
//! the stage that earned them), an `escape_ms` sub-breakdown of the
//! escape stage (net_build / net_solve / phase1 / phase2 / phase3,
//! span-summed and min-across-repeats like `stage_ms`), plus the
//! `negotiate.rounds` /
//! `negotiate.ripups` / `astar.scratch_resets`
//! counter totals and the speculation counters.
//!
//! **Large chips** (width ≥ 256, i.e. the B4-dense256 tier and the
//! opt-in `--huge` B5-dense512) run a reduced schedule — repeats capped
//! at 2 and a three-entry routing comparison instead of the policy ×
//! mode matrix: flat serial, hierarchical serial, and hierarchical with
//! 4 region-parallel threads (see DESIGN.md §15). Every multi-thread
//! entry gets a `scaling_efficiency` (serial wall / its wall) relative
//! to the 1-thread entry with the same chip, policy and routing mode;
//! entries that scale *backwards* on a host with more than one CPU are
//! warned about on stderr.
//!
//! `--smoke` swaps the chip list for the single tiny
//! [`pacor_bench::FLOW_SMOKE_CHIP`] so CI can exercise the harness
//! cheaply; `--chip NAME` keeps only the named chip (for
//! `make bench-check`-style baseline comparisons) and implies `--huge`
//! when the huge chip is named. Default output path: `BENCH_flow.json`;
//! the file is written atomically (temp + rename).
//!
//! `--events` adds an opt-in per-entry sanity column on stderr: one
//! extra (untimed) run per entry with the deterministic telemetry
//! stream installed, reporting the event count and asserting the
//! stream's `round_progress` events match the entry's
//! `negotiate.rounds` counter. The JSON schema is unchanged.
//!
//! `--ledger FILE` additionally appends one `pacor-rundigest-v1` line
//! per entry (from the last timed repeat) to the given run-ledger
//! JSONL, so bench runs accumulate history that `tables compare` can
//! diff (see docs/OBSERVABILITY.md §"Run digests").

use pacor::route::{NegotiationMode, RipUpPolicy};
use pacor::{DesignParams, RoutingMode};
use pacor_bench::{
    collect_telemetry, fill_scaling_efficiency, run_flow_bench_with_digest, FlowBenchEntry,
    FlowBenchReport, BENCH_SEED, FLOW_BENCH_CHIPS, FLOW_HUGE_CHIP, FLOW_SMOKE_CHIP, LARGE_WIDTH,
};

fn main() {
    let mut out = String::from("BENCH_flow.json");
    let mut repeat = 3u32;
    let mut smoke = false;
    let mut huge = false;
    let mut events = false;
    let mut chip_filter: Option<String> = None;
    let mut ledger: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => match args.next() {
                Some(v) => out = v,
                None => return usage("--out requires a value"),
            },
            "--ledger" => match args.next() {
                Some(v) => ledger = Some(v),
                None => return usage("--ledger requires a value"),
            },
            "--repeat" => match args.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) if n >= 1 => repeat = n,
                _ => return usage("--repeat requires a positive integer"),
            },
            "--smoke" => smoke = true,
            "--huge" => huge = true,
            "--events" => events = true,
            "--chip" => match args.next() {
                Some(v) => chip_filter = Some(v),
                None => return usage("--chip requires a value"),
            },
            other => return usage(&format!("unknown argument {other}")),
        }
    }

    let mut chips: Vec<DesignParams> = if smoke {
        vec![FLOW_SMOKE_CHIP]
    } else {
        FLOW_BENCH_CHIPS.to_vec()
    };
    if huge || chip_filter.as_deref() == Some(FLOW_HUGE_CHIP.name) {
        chips.push(FLOW_HUGE_CHIP);
    }
    if let Some(name) = &chip_filter {
        chips.retain(|c| c.name == *name);
        if chips.is_empty() {
            return usage(&format!("--chip: no benchmark chip named {name:?}"));
        }
    }

    let mut report = FlowBenchReport {
        seed: BENCH_SEED,
        repeat,
        entries: Vec::new(),
    };
    let mut digests: Vec<pacor::obs::RunDigest> = Vec::new();
    for chip in chips {
        let mut chip_entries: Vec<FlowBenchEntry> = Vec::new();
        if chip.width >= LARGE_WIDTH {
            // Large tier: routing-mode comparison at capped repeats.
            let configs = [
                (RoutingMode::Flat, 1usize),
                (RoutingMode::Hierarchical, 1),
                (RoutingMode::Hierarchical, 4),
            ];
            for (routing, threads) in configs {
                let (entry, digest) = run_flow_bench_with_digest(
                    chip,
                    RipUpPolicy::Incremental,
                    NegotiationMode::Serial,
                    routing,
                    threads,
                    BENCH_SEED,
                    repeat.min(2),
                );
                print_entry(&entry, String::new());
                chip_entries.push(entry);
                digests.push(digest);
            }
        } else {
            let configs = [
                (NegotiationMode::Serial, 1usize),
                (NegotiationMode::Parallel, 2),
                (NegotiationMode::Parallel, 4),
            ];
            for policy in [RipUpPolicy::Full, RipUpPolicy::Incremental] {
                for (mode, threads) in configs {
                    // Counter totals come from the flow's own per-run obs
                    // session (carried in the report), so entries cannot
                    // bleed.
                    let (entry, digest) = run_flow_bench_with_digest(
                        chip,
                        policy,
                        mode,
                        RoutingMode::Flat,
                        threads,
                        BENCH_SEED,
                        repeat,
                    );
                    // Opt-in telemetry sanity: one extra untimed run with
                    // the deterministic stream installed; its round events
                    // must agree with the counters the timed runs report.
                    let events_col = if events {
                        let lines = collect_telemetry(chip, policy, mode, threads, BENCH_SEED);
                        let round_events = lines
                            .iter()
                            .filter(|l| l.contains("\"kind\":\"round_progress\""))
                            .count() as u64;
                        assert_eq!(
                            round_events, entry.rounds,
                            "{} {} {} t={}: round_progress events diverge from negotiate.rounds",
                            entry.chip, entry.policy, entry.mode, entry.threads
                        );
                        format!("  events {:>5}", lines.len())
                    } else {
                        String::new()
                    };
                    print_entry(&entry, events_col);
                    chip_entries.push(entry);
                    digests.push(digest);
                }
            }
        }
        for (chip, policy, routing, threads, eff) in fill_scaling_efficiency(&mut chip_entries) {
            eprintln!(
                "bench_flow: WARNING: {chip} {policy} {routing} t={threads} ran {:.2}x the serial \
                 wall-clock — parallel slower than serial on a {}-CPU host",
                1.0 / eff,
                pacor_bench::host_cpus(),
            );
        }
        report.entries.extend(chip_entries);
    }

    let json = serde_json::to_string_pretty(&report).expect("reports serialize");
    if let Err(e) = pacor::obs::atomic_write(&out, json + "\n") {
        eprintln!("bench_flow: writing {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("bench_flow: wrote {out}");
    if let Some(path) = ledger {
        let path = std::path::Path::new(&path);
        for digest in &digests {
            if let Err(e) = pacor::obs::ledger_append(path, digest) {
                eprintln!("bench_flow: appending to ledger {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        eprintln!(
            "bench_flow: appended {} digest(s) to {}",
            digests.len(),
            path.display()
        );
    }
}

fn print_entry(entry: &FlowBenchEntry, events_col: String) {
    let s = &entry.stage_ms;
    let e = &entry.escape_ms;
    eprintln!(
        "{:<12} {:<12} {:<9} {:<13} t={} {:>9.1} ms  neg {:>8.1} ms  stages clu {:>6.1} lm {:>7.1} mst {:>6.1} esc {:>6.1} det {:>6.1}  esc[bld {:>5.1} slv {:>6.1} p1 {:>6.1} p2 {:>5.1} p3 {:>5.1}]  rounds {:>4}  ripups {:>5}  spec {:>5}  complete {:>5.1}%{}",
        entry.chip,
        entry.policy,
        entry.mode,
        entry.routing,
        entry.threads,
        entry.wall_ms,
        entry.negotiate_ms,
        s.clustering,
        s.lm_routing,
        s.mst_routing,
        s.escape,
        s.detour,
        e.net_build,
        e.net_solve,
        e.phase1,
        e.phase2,
        e.phase3,
        entry.rounds,
        entry.ripups,
        entry.speculative,
        entry.completion_rate * 100.0,
        events_col
    );
}

fn usage(err: &str) {
    eprintln!(
        "bench_flow: {err}\nusage: bench_flow [--out FILE] [--repeat N] [--smoke] [--huge] [--chip NAME] [--events] [--ledger FILE]"
    );
    std::process::exit(2);
}
