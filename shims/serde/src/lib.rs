//! Workspace-local stand-in for `serde`.
//!
//! The build environment cannot reach a crates registry, so the
//! workspace vendors a minimal serde replacement. Instead of the real
//! visitor-based data model, this crate uses an explicit [`Value`]
//! tree: [`Serialize`] renders a type into a `Value`, [`Deserialize`]
//! rebuilds it from one. `serde_json` (also vendored) converts between
//! `Value` and JSON text. The derive macros in `serde_derive` generate
//! both impls for plain structs and enums, following real serde's data
//! conventions (named structs → objects, newtypes → their inner value,
//! unit enum variants → strings, tuple variants → externally tagged
//! objects) so the JSON shape is familiar.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::time::Duration;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data tree all (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer that does not fit `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a named field of an object value.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
            other => Err(Error::custom(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Views the value as an array of exactly `len` elements.
    pub fn as_array_of_len(&self, len: usize) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) if items.len() == len => Ok(items),
            Value::Array(items) => Err(Error::custom(format!(
                "expected array of length {len}, found length {}",
                items.len()
            ))),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }

    /// Views the value as an externally tagged enum variant: a
    /// single-entry object `{"Variant": payload}`.
    pub fn as_enum_variant(&self) -> Result<(&str, &Value), Error> {
        match self {
            Value::Object(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), &entries[0].1))
            }
            other => Err(Error::custom(format!(
                "expected single-key variant object, found {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from any message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a data-model value.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a data-model value.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Deserialization namespace mirroring real serde's `serde::de`.
pub mod de {
    /// In this stand-in every [`Deserialize`](crate::Deserialize) is
    /// already owned, so the owned marker is a plain alias.
    pub use crate::Deserialize as DeserializeOwned;
}

fn int_from_value(value: &Value, what: &str) -> Result<i128, Error> {
    match value {
        Value::Int(v) => Ok(*v as i128),
        Value::UInt(v) => Ok(*v as i128),
        Value::Float(v) if v.fract() == 0.0 => Ok(*v as i128),
        other => Err(Error::custom(format!(
            "expected {what}, found {}",
            other.kind()
        ))),
    }
}

macro_rules! impl_signed {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = int_from_value(value, stringify!($t))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )+};
}

macro_rules! impl_unsigned {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                if let Ok(narrow) = i64::try_from(wide) {
                    Value::Int(narrow)
                } else {
                    Value::UInt(wide)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = int_from_value(value, stringify!($t))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )+};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(v) => Ok(*v as $t),
                    Value::Int(v) => Ok(*v as $t),
                    Value::UInt(v) => Ok(*v as $t),
                    other => Err(Error::custom(format!(
                        "expected number, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )+};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for &'static str {
    /// Leaks the decoded string. Only used for `&'static str` fields of
    /// catalog types (benchmark names), where the handful of distinct
    /// values makes the leak bounded and harmless.
    fn from_value(value: &Value) -> Result<Self, Error> {
        String::from_value(value).map(|s| &*s.leak())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = value.as_array_of_len(LEN)?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_owned(), self.as_secs().to_value()),
            ("nanos".to_owned(), self.subsec_nanos().to_value()),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let secs = u64::from_value(value.field("secs")?)?;
        let nanos = u32::from_value(value.field("nanos")?)?;
        Ok(Duration::new(secs, nanos))
    }
}

impl<K: Serialize + ToString, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort entries for stable output (hash order is nondeterministic).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: Serialize + ToString + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_roundtrip() {
        let v: Option<u32> = None;
        assert_eq!(v.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u32).to_value(), Value::Int(3));
    }

    #[test]
    fn duration_roundtrip() {
        let d = Duration::new(7, 123_456_789);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
    }

    #[test]
    fn tuple_roundtrip() {
        let t = ((1usize, 2usize), (3usize, 4usize), -0.5f64);
        let back =
            <((usize, usize), (usize, usize), f64)>::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn out_of_range_int_errors() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }
}
