/root/repo/target/release/deps/pacor_clique-71839be03f7cafaf.d: crates/clique/src/lib.rs crates/clique/src/annealing.rs crates/clique/src/bitset.rs crates/clique/src/exact.rs crates/clique/src/graph.rs crates/clique/src/greedy.rs crates/clique/src/local_search.rs crates/clique/src/selection.rs

/root/repo/target/release/deps/libpacor_clique-71839be03f7cafaf.rlib: crates/clique/src/lib.rs crates/clique/src/annealing.rs crates/clique/src/bitset.rs crates/clique/src/exact.rs crates/clique/src/graph.rs crates/clique/src/greedy.rs crates/clique/src/local_search.rs crates/clique/src/selection.rs

/root/repo/target/release/deps/libpacor_clique-71839be03f7cafaf.rmeta: crates/clique/src/lib.rs crates/clique/src/annealing.rs crates/clique/src/bitset.rs crates/clique/src/exact.rs crates/clique/src/graph.rs crates/clique/src/greedy.rs crates/clique/src/local_search.rs crates/clique/src/selection.rs

crates/clique/src/lib.rs:
crates/clique/src/annealing.rs:
crates/clique/src/bitset.rs:
crates/clique/src/exact.rs:
crates/clique/src/graph.rs:
crates/clique/src/greedy.rs:
crates/clique/src/local_search.rs:
crates/clique/src/selection.rs:
