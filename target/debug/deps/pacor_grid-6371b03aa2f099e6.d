/root/repo/target/debug/deps/pacor_grid-6371b03aa2f099e6.d: crates/grid/src/lib.rs crates/grid/src/analysis.rs crates/grid/src/error.rs crates/grid/src/grid.rs crates/grid/src/obsmap.rs crates/grid/src/overlap.rs crates/grid/src/path.rs crates/grid/src/point.rs crates/grid/src/rect.rs crates/grid/src/rules.rs

/root/repo/target/debug/deps/libpacor_grid-6371b03aa2f099e6.rlib: crates/grid/src/lib.rs crates/grid/src/analysis.rs crates/grid/src/error.rs crates/grid/src/grid.rs crates/grid/src/obsmap.rs crates/grid/src/overlap.rs crates/grid/src/path.rs crates/grid/src/point.rs crates/grid/src/rect.rs crates/grid/src/rules.rs

/root/repo/target/debug/deps/libpacor_grid-6371b03aa2f099e6.rmeta: crates/grid/src/lib.rs crates/grid/src/analysis.rs crates/grid/src/error.rs crates/grid/src/grid.rs crates/grid/src/obsmap.rs crates/grid/src/overlap.rs crates/grid/src/path.rs crates/grid/src/point.rs crates/grid/src/rect.rs crates/grid/src/rules.rs

crates/grid/src/lib.rs:
crates/grid/src/analysis.rs:
crates/grid/src/error.rs:
crates/grid/src/grid.rs:
crates/grid/src/obsmap.rs:
crates/grid/src/overlap.rs:
crates/grid/src/path.rs:
crates/grid/src/point.rs:
crates/grid/src/rect.rs:
crates/grid/src/rules.rs:
