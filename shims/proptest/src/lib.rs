//! Workspace-local stand-in for `proptest`.
//!
//! The build environment cannot reach a crates registry, so the
//! workspace vendors the slice of the proptest DSL its property tests
//! use: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, `prop::collection::{vec,
//! hash_set}`, `Just`, `prop_oneof!`, and the `proptest!` /
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: cases are generated from a fixed seed
//! derived from the test's module path (fully deterministic across
//! runs and machines), and failing inputs are **not shrunk** — the
//! panic message reports the case number instead.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`, `::hash_set`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size interval for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `HashSet<S::Value>` with a size drawn from `size`.
    ///
    /// Duplicate samples are retried; generation panics if the element
    /// space cannot supply the minimum requested size.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// See [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0usize;
            let max_attempts = n * 64 + 256;
            while out.len() < n {
                out.insert(self.element.sample(rng));
                attempts += 1;
                if attempts >= max_attempts {
                    assert!(
                        out.len() >= self.size.lo,
                        "hash_set strategy could not reach minimum size {} \
                         (element space too small?)",
                        self.size.lo
                    );
                    break;
                }
            }
            out
        }
    }
}

/// The usual single-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs each embedded `#[test] fn name(pat in strategy, ...) { body }`
/// against `ProptestConfig::cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner!(@cfg($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner!(
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])+
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                &__config,
                |__rng| {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_inner!(@cfg($cfg) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?} == {:?}`", __l, __r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?} == {:?}`: {}", __l, __r, format!($($fmt)+));
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?} != {:?}`", __l, __r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?} != {:?}`: {}", __l, __r, format!($($fmt)+));
    }};
}

/// Discards the current case (it is regenerated, not counted) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Picks uniformly among the listed strategies (all must share a value
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}
