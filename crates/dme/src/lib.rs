//! Deferred-merge embedding (DME) and candidate Steiner tree construction
//! for PACOR's length-matching cluster routing (Section 4.1).
//!
//! The DME algorithm — originally for zero-skew clock routing
//! (Chao, Hsu, Ho, Kahng 1992) — embeds a given connection topology such
//! that every sink lies at the *same* path length from the root, with
//! minimum total wirelength. PACOR reuses it to pre-balance the channel
//! lengths of a length-matching valve cluster:
//!
//! 1. [`balanced_bipartition`] computes the connection topology by
//!    recursively splitting the valve set into two equal halves with
//!    minimum sum of diameters (unit sink capacitance ⇒ balanced binary
//!    tree);
//! 2. the bottom-up phase computes *merging regions* — tilted rectangular
//!    regions ([`Trr`]) every equidistant embedding point lies in;
//! 3. the top-down phase picks concrete embedding points, snapping
//!    off-grid merging segments (Lemma 1) and sidestepping blocked cells
//!    by an expanding loop search, recording every introduced delta
//!    distance for later detour correction;
//! 4. [`candidates`] enumerates multiple embeddings (different merging
//!    node choices — Fig. 3 of the paper) for the MWCP-based selection.
//!
//! # Examples
//!
//! ```
//! use pacor_dme::{balanced_bipartition, DmeBuilder};
//! use pacor_grid::Point;
//!
//! let sinks = vec![
//!     Point::new(2, 2),
//!     Point::new(10, 2),
//!     Point::new(2, 10),
//!     Point::new(10, 10),
//! ];
//! let topo = balanced_bipartition(&sinks);
//! let tree = DmeBuilder::new(&sinks).embed(&topo);
//! // Perfectly symmetric sinks embed with zero mismatch.
//! assert_eq!(tree.mismatch(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod candidates;
mod embed;
mod topology;
mod tree;
mod trr;

pub use candidates::{candidates, candidates_with_alternates, CandidateConfig};
#[doc(hidden)]
pub use candidates::{candidates_reference, candidates_with_alternates_reference};
pub use embed::{DmeBuilder, EmbedPolicy};
pub use topology::{all_topologies, balanced_bipartition, Topology};
pub use tree::{SteinerTree, TreeNode};
pub use trr::Trr;
