//! Regenerates the paper's tables and figures from the reproduction.
//!
//! ```sh
//! cargo run --release -p pacor-bench --bin tables -- table1
//! cargo run --release -p pacor-bench --bin tables -- table2 [--full] [--parallel]
//! cargo run --release -p pacor-bench --bin tables -- fig3
//! cargo run --release -p pacor-bench --bin tables -- ablation
//! cargo run --release -p pacor-bench --bin tables -- stages [--full]
//! cargo run --release -p pacor-bench --bin tables -- heatmap [design]
//! cargo run --release -p pacor-bench --bin tables -- all [--full]
//! ```
//!
//! `--full` includes the Chip1/Chip2-scale designs (minutes instead of
//! seconds). `--parallel` runs table2 under the speculative-parallel
//! negotiation mode (4 threads), populating the Spec/Cnfl/Fallb
//! counter columns; the paper columns are identical either way.
//! `stages` prints the span-summed per-stage wall-clock breakdown
//! (clustering / LM / MST / escape / detour) per design, the same
//! attribution `bench_flow` records as `stage_ms`, so a wall-clock
//! movement can be pinned on the stage that caused it.
//! `heatmap` runs one design (default S5) with the flight recorder
//! installed and renders the ASCII congestion heatmap plus a post-mortem
//! summary.

use pacor::route::NegotiationMode;
use pacor::{BenchDesign, FlowConfig, FlowVariant, RouteReport};
use pacor_bench::{
    metrics_header, metrics_row, run_config, run_variant, table1_header, table1_row, StageMs,
    BENCH_SEED,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let parallel = args.iter().any(|a| a == "--parallel");
    let what = args.first().map(String::as_str).unwrap_or("all");

    match what {
        "table1" => table1(),
        "table2" => table2(full, parallel),
        "fig3" => fig3(),
        "ablation" => ablation(),
        "sweep" => sweep(),
        "stages" => stages(full),
        "heatmap" => heatmap(args.get(1).map(String::as_str)),
        "all" => {
            table1();
            println!();
            table2(full, parallel);
            println!();
            fig3();
            println!();
            ablation();
            println!();
            stages(full);
        }
        other => {
            eprintln!(
                "unknown experiment {other:?}; use table1|table2|fig3|ablation|stages|sweep|heatmap|all"
            );
            std::process::exit(2);
        }
    }
}

/// Table 1: benchmark design parameters.
fn table1() {
    println!("== Table 1: design parameters ==");
    println!("{}", table1_header());
    for d in BenchDesign::ALL {
        println!("{}", table1_row(d));
    }
}

/// Table 2: three-variant self-comparison over every design.
///
/// With `parallel`, every run uses the speculative-parallel negotiation
/// mode at 4 threads — the routed results (and so the paper columns)
/// are identical, but the Spec/Cnfl/Fallb counter columns light up.
fn table2(full: bool, parallel: bool) {
    println!("== Table 2: computational simulation (seed {BENCH_SEED}, δ=1) ==");
    println!("{}", RouteReport::table_header());
    let designs: Vec<BenchDesign> = if full {
        BenchDesign::ALL.to_vec()
    } else {
        BenchDesign::SYNTH.to_vec()
    };
    let mut matched = [0usize; 3];
    let mut total_len = [0u64; 3];
    let mut reports: Vec<RouteReport> = Vec::new();
    for d in designs {
        for (k, v) in FlowVariant::ALL.into_iter().enumerate() {
            let r = if parallel {
                let cfg = FlowConfig::for_variant(v)
                    .with_negotiation_mode(NegotiationMode::Parallel)
                    .with_threads(4);
                run_config(d, cfg, BENCH_SEED)
            } else {
                run_variant(d, v, BENCH_SEED)
            };
            matched[k] += r.matched_clusters;
            total_len[k] += r.total_length;
            println!("{}", r.table_row());
            reports.push(r);
        }
        println!();
    }
    println!("-- hot-path counters (pacor-obs) --");
    println!("{}", metrics_header());
    for r in &reports {
        println!("{}", metrics_row(r));
    }
    println!();
    println!("-- aggregate over designs --");
    for (k, v) in FlowVariant::ALL.into_iter().enumerate() {
        println!(
            "{:<13} matched {:>4}  total length {:>8}",
            v.label(),
            matched[k],
            total_len[k]
        );
    }
    if !full {
        println!("(run with --full to include Chip1/Chip2)");
    }
}

/// Figure 3: candidate Steiner trees for a four-valve cluster.
fn fig3() {
    use pacor::dme::{candidates, CandidateConfig};
    use pacor::grid::Point;
    println!("== Figure 3: DME candidate Steiner trees (4 sinks) ==");
    let sinks = vec![
        Point::new(2, 2),
        Point::new(14, 6),
        Point::new(4, 12),
        Point::new(12, 16),
    ];
    let cands = candidates(&sinks, None, CandidateConfig::default());
    println!(
        "{:<10} {:>10} {:>12} {:>10}",
        "candidate", "root", "total len", "ΔL"
    );
    for (k, t) in cands.iter().enumerate() {
        println!(
            "{:<10} {:>10} {:>12} {:>10}",
            k,
            t.root().to_string(),
            t.total_length(),
            t.mismatch()
        );
    }
    println!(
        "{} distinct candidates from one topology; every ΔL ≤ rounding",
        cands.len()
    );
}

/// Seed sweep: Table 2 metrics aggregated over 10 seeds per design —
/// robustness of the single-seed numbers.
fn sweep() {
    const SEEDS: std::ops::Range<u64> = 0..10;
    println!("== Seed sweep: 10 seeds per design, PACOR variant ==");
    println!(
        "{:<8} {:>14} {:>18} {:>10}",
        "Design", "matched (avg)", "completion (min)", "len (avg)"
    );
    for d in BenchDesign::SYNTH {
        let mut matched = 0usize;
        let mut total_len = 0u64;
        let mut min_completion = 1.0f64;
        let mut n = 0usize;
        for seed in SEEDS {
            let r = run_variant(d, FlowVariant::Pacor, seed);
            matched += r.matched_clusters;
            total_len += r.total_length;
            min_completion = min_completion.min(r.completion_rate());
            n += 1;
        }
        println!(
            "{:<8} {:>11.1}/{:<2} {:>17.0}% {:>10.0}",
            d.params().name,
            matched as f64 / n as f64,
            d.params().multi_clusters,
            min_completion * 100.0,
            total_len as f64 / n as f64
        );
    }
}

/// Per-stage wall-clock breakdown: where each design's flow run spends
/// its time, summed from the `stage.*` observability spans — the same
/// attribution `bench_flow` persists as `stage_ms` in BENCH_flow.json.
fn stages(full: bool) {
    println!("== Per-stage wall-clock, ms (PACOR variant, seed {BENCH_SEED}) ==");
    println!(
        "{:<8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Design", "wall", "cluster", "lm", "mst", "escape", "detour"
    );
    let designs: Vec<BenchDesign> = if full {
        BenchDesign::ALL.to_vec()
    } else {
        BenchDesign::SYNTH.to_vec()
    };
    let mut rows: Vec<(String, f64, StageMs)> = designs
        .into_iter()
        .map(|d| {
            // The outer session captures the flow's spans (its nested
            // session merges upward on finish).
            let session = pacor::obs::Session::begin();
            let r = run_variant(d, FlowVariant::Pacor, BENCH_SEED);
            let s = StageMs::of(&session.finish());
            (r.design.clone(), r.runtime.as_secs_f64() * 1e3, s)
        })
        .collect();
    // Costliest design first, so the design worth optimizing leads.
    let stage_total =
        |s: &StageMs| s.clustering + s.lm_routing + s.mst_routing + s.escape + s.detour;
    rows.sort_by(|a, b| stage_total(&b.2).total_cmp(&stage_total(&a.2)));
    let mut wall_sum = 0.0;
    let mut sums = StageMs::default();
    for (design, wall, s) in &rows {
        println!(
            "{:<8} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            design, wall, s.clustering, s.lm_routing, s.mst_routing, s.escape, s.detour
        );
        wall_sum += wall;
        sums.clustering += s.clustering;
        sums.lm_routing += s.lm_routing;
        sums.mst_routing += s.mst_routing;
        sums.escape += s.escape;
        sums.detour += s.detour;
    }
    println!(
        "{:<8} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
        "total",
        wall_sum,
        sums.clustering,
        sums.lm_routing,
        sums.mst_routing,
        sums.escape,
        sums.detour
    );
    if !full {
        println!("(run with --full to include Chip1/Chip2)");
    }
}

/// Congestion heatmap: one design under the flight recorder, rendered
/// as ASCII plus the post-mortem headline numbers.
fn heatmap(design: Option<&str>) {
    let name = design.unwrap_or("S5");
    let Some(d) = BenchDesign::ALL
        .into_iter()
        .find(|d| d.params().name == name)
    else {
        eprintln!("heatmap: unknown design {name:?}");
        std::process::exit(2);
    };
    let cfg = FlowConfig::default();
    pacor::obs::flight_install(cfg.recorder_config());
    let r = run_config(d, cfg, BENCH_SEED);
    let log = pacor::obs::flight_take().expect("recorder installed");
    println!("== Congestion heatmap: {name} (seed {BENCH_SEED}) ==");
    println!(
        "completion {:.0}%  matched {}  total length {}",
        r.completion_rate() * 100.0,
        r.matched_clusters,
        r.total_length
    );
    println!(
        "recorder: {} events ({} dropped), {} snapshots, {} sessions",
        log.events().len(),
        log.dropped_events(),
        log.snapshots().len(),
        log.sessions()
    );
    println!();
    print!("{}", pacor::obs::render_heatmap(&log));
}

/// Ablations: λ (Eq. 2/3 weighting) and negotiation parameters (γ, α).
fn ablation() {
    println!("== Ablation A1: λ weighting of mismatch vs overlap (S3–S5) ==");
    println!(
        "{:<8} {:>6} {:>9} {:>10}",
        "Design", "λ", "#Matched", "TotalLen"
    );
    for d in [BenchDesign::S3, BenchDesign::S4, BenchDesign::S5] {
        for lambda in [0.0, 0.1, 0.5, 0.9] {
            let cfg = FlowConfig {
                lambda,
                ..FlowConfig::default()
            };
            let r = run_config(d, cfg, BENCH_SEED);
            println!(
                "{:<8} {:>6.1} {:>9} {:>10}",
                r.design, lambda, r.matched_clusters, r.total_length
            );
        }
        println!();
    }

    println!("== Ablation A2: negotiation γ and history α (S5) ==");
    println!(
        "{:<6} {:>6} {:>9} {:>10} {:>7}",
        "γ", "α", "#Matched", "TotalLen", "Compl"
    );
    for gamma in [1u32, 3, 10] {
        for alpha in [0.05f64, 0.1, 0.5] {
            let cfg = FlowConfig {
                gamma,
                history_alpha: alpha,
                ..FlowConfig::default()
            };
            let r = run_config(BenchDesign::S5, cfg, BENCH_SEED);
            println!(
                "{:<6} {:>6.2} {:>9} {:>10} {:>6.0}%",
                gamma,
                alpha,
                r.matched_clusters,
                r.total_length,
                r.completion_rate() * 100.0
            );
        }
    }
}
