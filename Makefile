# Convenience targets for the PACOR reproduction workspace.

CARGO ?= cargo

.PHONY: verify build test clippy bench tables obs-smoke stream-smoke bench-flow bench-smoke negotiate-smoke escape-smoke hier-smoke bench-check ledger-smoke golden profile

# The acceptance gate: release build, full test suite, zero-warning
# lints, the golden end-to-end snapshots (all chips, release mode), a
# smoke-run of the observability exports, a smoke-run of the streaming
# telemetry, a smoke-run of the end-to-end flow benchmark harness, a
# serial-vs-parallel negotiation equivalence check, an
# incremental-vs-reference escape solver equivalence check, a
# flat-vs-hierarchical single-region equivalence check, a determinism
# check of the B1 and B4 benchmark tiers against the committed
# BENCH_flow.json baseline, and a smoke-run of the run-digest /
# ledger / differ loop.
verify: build test clippy golden obs-smoke stream-smoke bench-smoke negotiate-smoke escape-smoke hier-smoke bench-check ledger-smoke

build:
	$(CARGO) build --release --workspace

test:
	$(CARGO) test -q --workspace

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

bench:
	$(CARGO) bench -p pacor-bench --bench kernels
	$(CARGO) bench -p pacor-bench --bench escape_solve

# The full end-to-end flow benchmark: every chip under both rip-up
# policies, written to BENCH_flow.json at the repo root (takes minutes).
bench-flow:
	$(CARGO) run --release -p pacor-bench --bin bench_flow -- --repeat 5 --out BENCH_flow.json

# Determinism regression gate: re-run the smallest benchmark chip and
# compare every deterministic field (rounds, ripups, lengths,
# completion, speculation counters) against the committed
# BENCH_flow.json baseline. Wall-clock fields are machine-local and
# ignored — except the per-stage budget rule: a fresh stage_ms more
# than 25% AND more than 25 ms over its committed baseline fails (the
# absolute floor keeps sub-millisecond stages from flaking on
# scheduler jitter). The same rule gates the escape_ms sub-stages
# (net_build / net_solve / phase1-3), so an escape-internal regression
# cannot hide inside a stage that still fits its overall budget.
# Re-baseline with `make bench-flow` after an intentional routing or
# performance change.
#
# The second run gates the large-chip tier: B4-dense256's flat /
# hierarchical-serial / hierarchical-4-thread entries must match the
# baseline on the same deterministic fields (hierarchical results are
# thread-count invariant by design, so the fields hold on any host),
# and on hosts with >= 4 CPUs the 4-thread region-parallel entry must
# come in at >= 2x the hierarchical-serial wall-clock
# (scaling_efficiency >= 2.0). Hosts that cannot parallelize (the
# entry's own host_cpus says so) skip the scaling gate — every thread
# count serializes there, so the ratio only measures noise.
#
# The rules live in `tables regress` (crates/bench/src/bin/tables.rs),
# which re-runs the chip's schedule in-process; pass `--current FILE`
# to check an existing bench_flow output instead. The previous
# inline-Python implementation of the same rules is in this file's
# git history (`git log -- Makefile`) if a cross-check is ever needed.
bench-check:
	$(CARGO) run --release -p pacor-bench --bin tables -- regress BENCH_flow.json --chip B1-dense24
	$(CARGO) run --release -p pacor-bench --bin tables -- regress BENCH_flow.json --chip B4-dense256

# The run-digest / ledger / differ loop, end to end: route the same
# chip twice across an equivalence axis (serial 1-thread vs parallel
# 4-thread) — the two digests must be byte-identical up to the
# trailing `wall` object (it is rendered last precisely so this is a
# string-prefix check), the ledger must hold both runs, and `tables
# compare` must find no verdicts. Then a genuinely perturbed config
# (hierarchical routing with 8-cell tiles changes the routed result on
# this chip) must make `tables compare` exit non-zero.
ledger-smoke:
	rm -f target/ledger_smoke.jsonl
	$(CARGO) run --release --bin pacor-cli -- route --quiet \
		--digest-out target/ledger_smoke_a.json --ledger target/ledger_smoke.jsonl B1-dense24
	$(CARGO) run --release --bin pacor-cli -- route --quiet \
		--negotiation-mode parallel --threads 4 \
		--digest-out target/ledger_smoke_b.json --ledger target/ledger_smoke.jsonl B1-dense24
	python3 -c "\
	import json; \
	a = open('target/ledger_smoke_a.json').read(); \
	b = open('target/ledger_smoke_b.json').read(); \
	assert a[:a.index('\"wall\"')] == b[:b.index('\"wall\"')], 'digests diverge before the wall object'; \
	lines = [json.loads(l) for l in open('target/ledger_smoke.jsonl') if l.strip()]; \
	assert len(lines) == 2, len(lines); \
	assert all(l['schema'] == 'pacor-rundigest-v1' for l in lines), lines; \
	assert lines[0]['fingerprint'] == lines[1]['fingerprint'], 'ledger entries split fingerprints'; \
	print('ledger-smoke: wall-masked digests byte-identical,', len(lines), 'ledger entries')"
	$(CARGO) run --release -p pacor-bench --bin tables -- compare \
		target/ledger_smoke_a.json target/ledger_smoke_b.json
	$(CARGO) run --release --bin pacor-cli -- route --quiet \
		--routing-mode hierarchical --gcell-size 8 \
		--digest-out target/ledger_smoke_c.json B1-dense24
	! $(CARGO) run --release -p pacor-bench --bin tables -- compare \
		target/ledger_smoke_a.json target/ledger_smoke_c.json > target/ledger_smoke_diff.txt
	@echo "ledger-smoke: perturbed config flagged with non-zero exit"

# Cheap harness exercise for CI: one tiny chip (2 policies x 3
# negotiation configs = 6 entries), result discarded.
bench-smoke:
	$(CARGO) run --release -p pacor-bench --bin bench_flow -- --smoke --repeat 1 --out target/bench_flow_smoke.json
	python3 -c "import json; r = json.load(open('target/bench_flow_smoke.json')); assert len(r['entries']) == 6, r; print('bench-smoke: harness produced', len(r['entries']), 'entries')"

# Serial vs speculative-parallel negotiation must produce the identical
# routed report (wall-clock fields and work counters aside), and the
# parallel run must actually speculate.
negotiate-smoke:
	$(CARGO) run --release --bin pacor-cli -- route --negotiation-mode serial \
		--metrics-out target/neg_ser_metrics.json S2 > target/neg_ser_report.json
	$(CARGO) run --release --bin pacor-cli -- route --negotiation-mode parallel --threads 2 \
		--metrics-out target/neg_par_metrics.json S2 > target/neg_par_report.json
	python3 -c "\
	import json; \
	s = json.load(open('target/neg_ser_report.json')); \
	p = json.load(open('target/neg_par_report.json')); \
	[d.pop(k) for d in (s, p) for k in ('runtime', 'metrics')]; \
	assert s == p, 'serial and parallel reports diverge'; \
	m = json.load(open('target/neg_par_metrics.json')); \
	assert m['counters'].get('negotiate.speculative', 0) > 0, m['counters']; \
	print('negotiate-smoke: identical reports,', m['counters']['negotiate.speculative'], 'speculative routes')"

# The incremental escape solver (persistent network, warm-started
# min-cost flow, windowed recovery) must route the byte-identical
# report as the full-rebuild reference solver on the dense 48x48
# benchmark chip — the densest chip that still runs in seconds, with
# enough escape contention to exercise de-clustering, rip-up recovery
# and warm re-solves. Wall-clock fields and work counters aside, any
# diff is a solver-equivalence bug.
escape-smoke:
	$(CARGO) run --release --bin pacor-cli -- route --escape-solver reference \
		B2-dense48 > target/esc_ref_report.json
	$(CARGO) run --release --bin pacor-cli -- route --escape-solver incremental \
		B2-dense48 > target/esc_inc_report.json
	python3 -c "\
	import json; \
	r = json.load(open('target/esc_ref_report.json')); \
	i = json.load(open('target/esc_inc_report.json')); \
	[d.pop(k) for d in (r, i) for k in ('runtime', 'metrics')]; \
	assert r == i, 'reference and incremental escape reports diverge'; \
	print('escape-smoke: identical reports, completion', r['valves_routed'], '/', r['valves_total'])"

# A gcell larger than the chip degenerates the hierarchy to a single
# region, and DESIGN.md §15 promises that case is *byte-identical* to
# the flat flow — same stage pipeline, same report. Wall-clock fields
# aside, any diff is a mode-dispatch bug.
hier-smoke:
	$(CARGO) run --release --bin pacor-cli -- route --routing-mode flat \
		B0-smoke16 > target/hier_flat_report.json
	$(CARGO) run --release --bin pacor-cli -- route --routing-mode hierarchical \
		B0-smoke16 > target/hier_hier_report.json
	python3 -c "\
	import json; \
	f = json.load(open('target/hier_flat_report.json')); \
	h = json.load(open('target/hier_hier_report.json')); \
	[d.pop(k) for d in (f, h) for k in ('runtime', 'metrics')]; \
	assert f == h, 'flat and single-region hierarchical reports diverge'; \
	print('hier-smoke: identical reports, completion', f['valves_routed'], '/', f['valves_total'])"

# Golden end-to-end snapshots for every bench chip, including the
# debug-`#[ignore]`d B3-dense96 (minutes in debug, seconds in release).
# Regenerate fixtures after an intentional routing change with
# `UPDATE_GOLDEN=1 make golden`.
golden:
	$(CARGO) test --release --test golden_flow -- --include-ignored

# Per-stage wall-clock attribution for the largest bench chip: prints
# the top spans by exclusive time and writes a Perfetto-loadable Chrome
# trace. This profile decides which stage an optimization PR attacks.
profile:
	$(CARGO) run --release -p pacor-bench --bin profile_flow -- \
		--chip B3-dense96 --top 5 --trace-out target/profile_flow_trace.json

tables:
	$(CARGO) run --release -p pacor-bench --bin tables -- all

# Route one small design with both observability exports enabled and
# check that each output file parses as JSON.
obs-smoke:
	$(CARGO) run --release --bin pacor-cli -- route --quiet \
		--trace-out target/obs_smoke_trace.json \
		--metrics-out target/obs_smoke_metrics.json S1
	python3 -c "import json; json.load(open('target/obs_smoke_trace.json')); json.load(open('target/obs_smoke_metrics.json')); print('obs-smoke: both exports are valid JSON')"

# Route one small design with the telemetry stream (and metrics, for
# cross-checking) enabled: every line must parse as a versioned event,
# the envelope must be flow_started ... flow_finished with a seq chain
# and a correct terminal event count, every stage must exit, and the
# per-round events must match the run's negotiate.rounds counter.
stream-smoke:
	$(CARGO) run --release --bin pacor-cli -- route --quiet \
		--stream-out target/stream_smoke.jsonl \
		--metrics-out target/stream_smoke_metrics.json S2
	python3 -c "\
	import json; \
	events = [json.loads(l) for l in open('target/stream_smoke.jsonl') if l.strip()]; \
	assert all(e['schema'] == 'pacor-telemetry-v1' for e in events), 'unversioned event'; \
	assert [e['seq'] for e in events] == list(range(len(events))), 'seq chain broken'; \
	assert events[0]['kind'] == 'flow_started' and events[-1]['kind'] == 'flow_finished', [e['kind'] for e in events]; \
	assert events[-1]['events'] == len(events) - 1, (events[-1]['events'], len(events)); \
	exited = [e['stage'] for e in events if e['kind'] == 'stage_exited']; \
	assert exited == ['clustering', 'lm_routing', 'mst_routing', 'escape', 'detour'], exited; \
	rounds = sum(e['kind'] == 'round_progress' for e in events); \
	m = json.load(open('target/stream_smoke_metrics.json')); \
	assert rounds == m['counters']['negotiate.rounds'], (rounds, m['counters']['negotiate.rounds']); \
	print('stream-smoke:', len(events), 'events,', rounds, 'rounds, all valid pacor-telemetry-v1')"
