/root/repo/target/release/deps/pacor_dme-11a80c45523045aa.d: crates/dme/src/lib.rs crates/dme/src/candidates.rs crates/dme/src/embed.rs crates/dme/src/topology.rs crates/dme/src/tree.rs crates/dme/src/trr.rs

/root/repo/target/release/deps/libpacor_dme-11a80c45523045aa.rlib: crates/dme/src/lib.rs crates/dme/src/candidates.rs crates/dme/src/embed.rs crates/dme/src/topology.rs crates/dme/src/tree.rs crates/dme/src/trr.rs

/root/repo/target/release/deps/libpacor_dme-11a80c45523045aa.rmeta: crates/dme/src/lib.rs crates/dme/src/candidates.rs crates/dme/src/embed.rs crates/dme/src/topology.rs crates/dme/src/tree.rs crates/dme/src/trr.rs

crates/dme/src/lib.rs:
crates/dme/src/candidates.rs:
crates/dme/src/embed.rs:
crates/dme/src/topology.rs:
crates/dme/src/tree.rs:
crates/dme/src/trr.rs:
