//! Flow-level error type.

use std::error::Error;
use std::fmt;

/// Errors reported by the PACOR flow.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlowError {
    /// The problem definition is inconsistent (details in the message).
    InvalidProblem(String),
    /// The underlying grid could not be constructed.
    Grid(pacor_grid::GridError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::InvalidProblem(msg) => write!(f, "invalid problem: {msg}"),
            FlowError::Grid(e) => write!(f, "grid error: {e}"),
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Grid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pacor_grid::GridError> for FlowError {
    fn from(e: pacor_grid::GridError) -> Self {
        FlowError::Grid(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FlowError::InvalidProblem("valve off grid".into());
        assert!(e.to_string().contains("valve off grid"));
        let g = FlowError::from(pacor_grid::GridError::InvalidDimensions {
            width: 0,
            height: 0,
        });
        assert!(g.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<FlowError>();
    }
}
