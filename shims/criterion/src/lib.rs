//! Workspace-local stand-in for `criterion`.
//!
//! A minimal wall-clock benchmark harness exposing the criterion API
//! surface this workspace's benches use (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `iter_with_setup`, `criterion_group!`, `criterion_main!`). Each
//! benchmark is calibrated to a small time budget, then timed over
//! several samples; the median per-iteration time is printed.
//!
//! Knobs via environment variables:
//! * `PACOR_BENCH_BUDGET_MS` — per-benchmark sample budget
//!   (default 300 ms),
//! * `PACOR_BENCH_FILTER` — substring filter on benchmark ids.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Prevents the optimizer from const-folding a benchmarked value away.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver.
pub struct Criterion {
    budget: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let budget_ms = std::env::var("PACOR_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Self {
            budget: Duration::from_millis(budget_ms),
            filter: std::env::var("PACOR_BENCH_FILTER").ok().filter(|f| !f.is_empty()),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.into(), &mut f);
    }

    fn run<F>(&mut self, id: &str, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            budget: self.budget,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{id:<56} (no measurement)");
            return;
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        println!(
            "{id:<56} median {:>12}  min {:>12}  ({} samples)",
            format_ns(median),
            format_ns(min),
            samples.len()
        );
    }
}

fn format_ns(ns: u128) -> String {
    let mut out = String::new();
    if ns >= 1_000_000_000 {
        let _ = write!(out, "{:.3} s", ns as f64 / 1e9);
    } else if ns >= 1_000_000 {
        let _ = write!(out, "{:.3} ms", ns as f64 / 1e6);
    } else if ns >= 1_000 {
        let _ = write!(out, "{:.3} µs", ns as f64 / 1e3);
    } else {
        let _ = write!(out, "{ns} ns");
    }
    out
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; the stand-in derives its
    /// sample count from the time budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        self.criterion.run(&full, &mut f);
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        self.criterion.run(&full, &mut |b: &mut Bencher| f(b, input));
    }

    /// Ends the group (measurement already happened eagerly).
    pub fn finish(self) {}
}

/// A benchmark identifier.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    budget: Duration,
    samples: Vec<u128>,
}

impl Bencher {
    /// Times `routine`, amortizing over enough iterations to fill the
    /// sample budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: how many iterations fit a per-sample slice?
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let per_sample = self.budget / 12;
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let deadline = Instant::now() + self.budget;
        while self.samples.len() < 12 && Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t0.elapsed().as_nanos() / u128::from(iters));
        }
        if self.samples.is_empty() {
            // Budget too small for even one sample: keep the calibration.
            self.samples.push(once.as_nanos());
        }
    }

    /// Like [`iter`](Self::iter), but re-creates untimed input state
    /// before each timed run.
    pub fn iter_with_setup<S, I, O, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.budget;
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed().as_nanos());
            if self.samples.len() >= 12 || Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
            filter: None,
        };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_with_setup_passes_input() {
        let mut c = Criterion {
            budget: Duration::from_millis(2),
            filter: None,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| {
            b.iter_with_setup(|| x * 2, |y| y + 1)
        });
        group.finish();
    }

    #[test]
    fn filter_skips_benchmarks() {
        let mut c = Criterion {
            budget: Duration::from_millis(2),
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        c.bench_function("skipped", |b| {
            ran = true;
            b.iter(|| 1)
        });
        assert!(!ran);
    }
}
