/root/repo/target/debug/deps/pacor_cli-8648a13f4bfa1445.d: src/bin/pacor_cli.rs

/root/repo/target/debug/deps/pacor_cli-8648a13f4bfa1445: src/bin/pacor_cli.rs

src/bin/pacor_cli.rs:
