//! Greedy clique construction.

use crate::{CliqueSolution, WeightedGraph};

/// Greedy MWCP constructor: repeatedly add the feasible node with the
/// largest positive marginal gain.
///
/// Used as a warm start for [`BranchAndBound`](crate::BranchAndBound) and
/// as the first phase of [`TabuLocalSearch`](crate::TabuLocalSearch).
/// Deterministic: ties break toward the smaller node index.
#[derive(Debug, Clone, Copy, Default)]
pub struct Greedy;

impl Greedy {
    /// Builds a maximal clique greedily by weight gain.
    pub fn solve(self, graph: &WeightedGraph) -> CliqueSolution {
        let n = graph.len();
        let mut clique: Vec<usize> = Vec::new();
        let mut candidates: Vec<usize> = (0..n).collect();

        loop {
            let mut best: Option<(usize, f64)> = None;
            for &v in &candidates {
                let gain = graph.marginal_gain(&clique, v);
                let better = match best {
                    None => gain > 0.0,
                    Some((_, bg)) => gain > bg,
                };
                if better {
                    best = Some((v, gain));
                }
            }
            let Some((v, _)) = best else { break };
            clique.push(v);
            candidates.retain(|&u| u != v && graph.adjacent(u, v));
        }

        CliqueSolution::from_nodes(graph, clique)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_best_singleton_when_isolated() {
        let mut g = WeightedGraph::new(3);
        g.set_node_weight(0, 2.0);
        g.set_node_weight(1, 7.0);
        g.set_node_weight(2, 7.0); // tie: prefer lower index
        let s = Greedy.solve(&g);
        assert_eq!(s.nodes, vec![1]);
    }

    #[test]
    fn grows_through_positive_edges() {
        let mut g = WeightedGraph::new(3);
        for v in 0..3 {
            g.set_node_weight(v, 1.0);
        }
        g.add_edge(0, 1, 2.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(0, 2, 2.0);
        let s = Greedy.solve(&g);
        assert_eq!(s.nodes, vec![0, 1, 2]);
        assert_eq!(s.weight, 9.0);
    }

    #[test]
    fn stops_at_negative_gain() {
        let mut g = WeightedGraph::new(2);
        g.set_node_weight(0, 5.0);
        g.set_node_weight(1, 1.0);
        g.add_edge(0, 1, -3.0); // adding 1 would lose 2
        let s = Greedy.solve(&g);
        assert_eq!(s.nodes, vec![0]);
    }

    #[test]
    fn empty_when_all_negative() {
        let mut g = WeightedGraph::new(4);
        for v in 0..4 {
            g.set_node_weight(v, -1.0);
        }
        let s = Greedy.solve(&g);
        assert!(s.nodes.is_empty());
        assert_eq!(s.weight, 0.0);
    }

    #[test]
    fn result_is_always_a_clique() {
        let mut g = WeightedGraph::new(5);
        for v in 0..5 {
            g.set_node_weight(v, 1.0);
        }
        g.add_edge(0, 1, 0.5);
        g.add_edge(2, 3, 0.5);
        g.add_edge(3, 4, 0.5);
        let s = Greedy.solve(&g);
        assert!(g.is_clique(&s.nodes));
    }
}
