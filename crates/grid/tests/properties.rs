//! Property-based tests for the geometry substrate.

use pacor_grid::{olcost, Grid, GridPath, ObsMap, Point, Rect};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-200i32..200, -200i32..200).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn manhattan_is_a_metric(a in arb_point(), b in arb_point(), c in arb_point()) {
        // Identity of indiscernibles.
        prop_assert_eq!(a.manhattan(b) == 0, a == b);
        // Symmetry.
        prop_assert_eq!(a.manhattan(b), b.manhattan(a));
        // Triangle inequality.
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
    }

    #[test]
    fn chebyshev_bounds_manhattan(a in arb_point(), b in arb_point()) {
        let m = a.manhattan(b);
        let ch = a.chebyshev(b);
        prop_assert!(ch <= m);
        prop_assert!(m <= 2 * ch);
    }

    #[test]
    fn rect_intersection_is_contained(
        a in arb_point(), b in arb_point(), c in arb_point(), d in arb_point()
    ) {
        let r1 = Rect::from_corners(a, b);
        let r2 = Rect::from_corners(c, d);
        if let Some(i) = r1.intersect(&r2) {
            prop_assert!(i.area() <= r1.area());
            prop_assert!(i.area() <= r2.area());
            prop_assert!(i.contains(i.min()) && i.contains(i.max()));
            prop_assert!(r1.contains(i.min()) && r2.contains(i.min()));
        }
    }

    #[test]
    fn rect_union_contains_both(a in arb_point(), b in arb_point(), c in arb_point(), d in arb_point()) {
        let r1 = Rect::from_corners(a, b);
        let r2 = Rect::from_corners(c, d);
        let u = r1.union(&r2);
        prop_assert!(u.contains(r1.min()) && u.contains(r1.max()));
        prop_assert!(u.contains(r2.min()) && u.contains(r2.max()));
        prop_assert!(u.area() >= r1.area().max(r2.area()));
    }

    #[test]
    fn olcost_in_unit_interval(
        a in arb_point(), b in arb_point(), c in arb_point(), d in arb_point()
    ) {
        let cost = olcost((a, b), (c, d));
        prop_assert!((0.0..=1.0).contains(&cost));
        // Symmetry.
        prop_assert_eq!(cost, olcost((c, d), (a, b)));
    }

    #[test]
    fn olcost_self_is_one(a in arb_point(), b in arb_point()) {
        prop_assert!((olcost((a, b), (a, b)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grid_index_roundtrip(w in 1u32..64, h in 1u32..64) {
        let g = Grid::new(w, h).unwrap();
        for idx in 0..g.len() {
            prop_assert_eq!(g.index_of(g.point_of(idx)), Some(idx));
        }
    }

    #[test]
    fn boundary_count_formula(w in 1u32..40, h in 1u32..40) {
        let g = Grid::new(w, h).unwrap();
        let expected = if w == 1 || h == 1 {
            (w * h) as usize
        } else {
            (2 * w + 2 * h - 4) as usize
        };
        prop_assert_eq!(g.boundary_points().count(), expected);
    }

    #[test]
    fn obsmap_rollback_restores(
        cells in prop::collection::vec((0i32..16, 0i32..16), 0..40)
    ) {
        let g = Grid::new(16, 16).unwrap();
        let mut obs = ObsMap::new(&g);
        let before = obs.blocked_count();
        let cp = obs.checkpoint();
        obs.block_all(cells.iter().map(|&(x, y)| Point::new(x, y)));
        obs.rollback(cp);
        prop_assert_eq!(obs.blocked_count(), before);
    }

    #[test]
    fn staircase_path_is_valid(steps in prop::collection::vec(0u8..4, 1..60)) {
        // Random walk of unit steps is always a valid GridPath.
        let mut cells = vec![Point::new(0, 0)];
        for s in steps {
            let last = *cells.last().unwrap();
            cells.push(last.neighbors4()[s as usize % 4]);
        }
        let n = cells.len();
        let p = GridPath::new(cells).unwrap();
        prop_assert_eq!(p.len() as usize, n - 1);
        prop_assert!(p.contains(p.midpoint()));
        let bb = p.bbox();
        for c in p.iter() {
            prop_assert!(bb.contains(*c));
        }
    }
}
