//! Determinism guarantees of the flow (docs/GUIDE.md §"Determinism"):
//! for a fixed problem, the flow produces byte-identical reports and
//! routed geometry run-to-run AND at any worker-thread count. The only
//! nondeterministic fields are the wall-clock ones (`runtime`, the
//! stage durations and the configured `threads` inside `metrics`),
//! which are normalized away before comparing — the `metrics.counters`
//! totals and task counts are deterministic and compared in full.

use pacor_repro::pacor::route::{NegotiationMode, RipUpPolicy};
use pacor_repro::pacor::{
    synthesize_params, BenchDesign, DesignParams, FlowConfig, FlowMetrics, PacorFlow, RouteReport,
    RoutedCluster,
};
use std::time::Duration;

/// Serialized report with the wall-clock fields (and the machine-local
/// parallelism info they carry) zeroed out. Everything else — including
/// the full observability counter totals and the per-stage task counts —
/// stays in the comparison.
fn normalized(report: &RouteReport) -> String {
    let mut r = report.clone();
    r.runtime = Duration::ZERO;
    r.metrics = FlowMetrics {
        threads: 0,
        lm_candidate_tasks: r.metrics.lm_candidate_tasks,
        lm_scoring_tasks: r.metrics.lm_scoring_tasks,
        counters: r.metrics.counters.clone(),
        ..FlowMetrics::default()
    };
    serde_json::to_string(&r).expect("reports serialize")
}

/// The full routed geometry, printed deterministically.
fn geometry(routed: &[RoutedCluster]) -> String {
    format!("{routed:?}")
}

fn run(design: BenchDesign, threads: usize) -> (String, String) {
    let problem = design.synthesize(42);
    let flow = PacorFlow::new(FlowConfig::default().with_threads(threads));
    let (report, routed) = flow.run_detailed(&problem).expect("bench designs route");
    (normalized(&report), geometry(&routed))
}

#[test]
fn repeated_runs_are_byte_identical() {
    for design in [BenchDesign::S1, BenchDesign::S2, BenchDesign::S3] {
        let first = run(design, 1);
        let second = run(design, 1);
        assert_eq!(first.0, second.0, "{design:?} report drifted across runs");
        assert_eq!(first.1, second.1, "{design:?} geometry drifted across runs");
    }
}

#[test]
fn thread_count_does_not_change_the_result() {
    for design in [BenchDesign::S1, BenchDesign::S2, BenchDesign::S3] {
        let single = run(design, 1);
        let multi = run(design, 4);
        assert_eq!(
            single.0, multi.0,
            "{design:?} report differs between 1 and 4 threads"
        );
        assert_eq!(
            single.1, multi.1,
            "{design:?} geometry differs between 1 and 4 threads"
        );
    }
}

#[test]
fn flow_metrics_counters_are_thread_count_invariant() {
    // The counter totals come from per-task frames merged in item order,
    // so every total — A* expansions included — must agree exactly
    // between a sequential and a fanned-out run.
    for design in [BenchDesign::S1, BenchDesign::S2] {
        let problem = design.synthesize(42);
        let run = |threads: usize| {
            PacorFlow::new(FlowConfig::default().with_threads(threads))
                .run(&problem)
                .expect("bench designs route")
                .metrics
        };
        let single = run(1);
        let multi = run(4);
        assert_eq!(
            single.counters, multi.counters,
            "{design:?} counter totals differ between 1 and 4 threads"
        );
        assert_eq!(single.lm_candidate_tasks, multi.lm_candidate_tasks);
        assert_eq!(single.lm_scoring_tasks, multi.lm_scoring_tasks);
        assert!(
            single.counter("astar.expansions") > 0,
            "{design:?} must report A* work"
        );
        assert!(single.counter("astar.queries") > 0);
    }
}

#[test]
fn ripup_policies_are_thread_count_invariant() {
    // A chip dense enough that negotiation actually rips paths up, so
    // the incremental policy's owner-index bookkeeping is on the hook:
    // its victim selection and history bumps must be identical whether
    // the LM stage fans out across threads or runs sequentially.
    let dense = DesignParams {
        name: "D1-dense24",
        width: 24,
        height: 24,
        valves: 18,
        control_pins: 40,
        obstacles: 50,
        multi_clusters: 8,
        pairs_only: false,
    };
    let problem = synthesize_params(dense, 42);
    for policy in [RipUpPolicy::Full, RipUpPolicy::Incremental] {
        let run = |threads: usize| {
            let flow = PacorFlow::new(
                FlowConfig::default()
                    .with_threads(threads)
                    .with_ripup_policy(policy),
            );
            let (report, routed) = flow.run_detailed(&problem).expect("dense chip routes");
            (normalized(&report), geometry(&routed))
        };
        let single = run(1);
        let multi = run(4);
        assert_eq!(
            single.0, multi.0,
            "{policy:?} report differs between 1 and 4 threads"
        );
        assert_eq!(
            single.1, multi.1,
            "{policy:?} geometry differs between 1 and 4 threads"
        );
    }
}

#[test]
fn negotiation_modes_are_thread_count_invariant() {
    // The speculative-parallel negotiation mode commits results in
    // canonical attempt order against an immutable snapshot, so the
    // whole flow — report, geometry, and the observability counter
    // totals (speculation counters included) — must be byte-identical
    // at every worker-thread count, under both rip-up policies. The
    // same dense chip as `ripup_policies_are_thread_count_invariant`:
    // sparse designs converge in one round and would not exercise the
    // conflict/fallback machinery at all.
    let dense = DesignParams {
        name: "D1-dense24",
        width: 24,
        height: 24,
        valves: 18,
        control_pins: 40,
        obstacles: 50,
        multi_clusters: 8,
        pairs_only: false,
    };
    let problem = synthesize_params(dense, 42);
    for mode in [NegotiationMode::Serial, NegotiationMode::Parallel] {
        for policy in [RipUpPolicy::Full, RipUpPolicy::Incremental] {
            let run = |threads: usize| {
                let session = pacor_repro::pacor::obs::Session::begin();
                let flow = PacorFlow::new(
                    FlowConfig::default()
                        .with_threads(threads)
                        .with_ripup_policy(policy)
                        .with_negotiation_mode(mode),
                );
                let (report, routed) = flow.run_detailed(&problem).expect("dense chip routes");
                let metrics = pacor_repro::pacor::obs::metrics_json(&session.finish());
                (normalized(&report), geometry(&routed), metrics)
            };
            let baseline = run(1);
            for threads in [2, 4, 8] {
                let multi = run(threads);
                assert_eq!(
                    baseline.0, multi.0,
                    "{mode:?}/{policy:?} report differs between 1 and {threads} threads"
                );
                assert_eq!(
                    baseline.1, multi.1,
                    "{mode:?}/{policy:?} geometry differs between 1 and {threads} threads"
                );
                assert_eq!(
                    baseline.2, multi.2,
                    "{mode:?}/{policy:?} metrics bytes differ between 1 and {threads} threads"
                );
            }
        }
    }
}

#[test]
fn negotiation_modes_agree_on_routed_output() {
    // Serial and parallel modes walk different search schedules (a
    // rejected speculation is an A* query the serial mode never ran),
    // so their work counters legitimately differ — but the routed
    // geometry and every counter-free report field must match exactly.
    let dense = DesignParams {
        name: "D1-dense24",
        width: 24,
        height: 24,
        valves: 18,
        control_pins: 40,
        obstacles: 50,
        multi_clusters: 8,
        pairs_only: false,
    };
    let problem = synthesize_params(dense, 42);
    for policy in [RipUpPolicy::Full, RipUpPolicy::Incremental] {
        let run = |mode: NegotiationMode| {
            let flow = PacorFlow::new(
                FlowConfig::default()
                    .with_threads(4)
                    .with_ripup_policy(policy)
                    .with_negotiation_mode(mode),
            );
            let (mut report, routed) = flow.run_detailed(&problem).expect("dense chip routes");
            report.runtime = Duration::ZERO;
            report.metrics = FlowMetrics::default();
            (serde_json::to_string(&report).expect("reports serialize"), geometry(&routed))
        };
        let serial = run(NegotiationMode::Serial);
        let parallel = run(NegotiationMode::Parallel);
        assert_eq!(
            serial.0, parallel.0,
            "{policy:?} counter-free report differs between modes"
        );
        assert_eq!(serial.1, parallel.1, "{policy:?} geometry differs between modes");
    }
}

#[test]
fn normalization_only_hides_wall_clock_fields() {
    // Guard the normalizer itself: two different designs must still
    // produce different normalized reports.
    let a = run(BenchDesign::S1, 1);
    let b = run(BenchDesign::S2, 1);
    assert_ne!(a.0, b.0);
}
