//! The two-phase DME embedding: bottom-up merging regions, top-down
//! merging-node placement with grid snapping and obstacle avoidance.

use crate::{SteinerTree, Topology, TreeNode, Trr};
use pacor_grid::{ObsMap, Point};

/// Where inside a merging region the top-down phase places the merging
/// node. `Closest` is the classic DME choice (nearest point to the placed
/// parent, preserving the budgeted radius); the corner/center policies
/// generate the *different merging node choices* of Fig. 3 that seed the
/// candidate-tree pool. When a policy point would overdraw the radius
/// budget to the parent, the placement falls back to the closest point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EmbedPolicy {
    /// Nearest feasible point to the parent (canonical DME).
    Closest,
    /// Center of the merging region.
    Center,
    /// Corner with minimum `u`, minimum `v`.
    CornerLL,
    /// Corner with minimum `u`, maximum `v`.
    CornerLH,
    /// Corner with maximum `u`, minimum `v`.
    CornerHL,
    /// Corner with maximum `u`, maximum `v`.
    CornerHH,
}

impl EmbedPolicy {
    /// All policies, in candidate-generation order.
    pub const ALL: [EmbedPolicy; 6] = [
        EmbedPolicy::Closest,
        EmbedPolicy::Center,
        EmbedPolicy::CornerLL,
        EmbedPolicy::CornerLH,
        EmbedPolicy::CornerHL,
        EmbedPolicy::CornerHH,
    ];

    fn region_point(self, r: &Trr) -> (i64, i64) {
        match self {
            EmbedPolicy::Closest | EmbedPolicy::Center => r.center(),
            EmbedPolicy::CornerLL => (r.u_min, r.v_min),
            EmbedPolicy::CornerLH => (r.u_min, r.v_max),
            EmbedPolicy::CornerHL => (r.u_max, r.v_min),
            EmbedPolicy::CornerHH => (r.u_max, r.v_max),
        }
    }
}

/// Bottom-up merge bookkeeping for one topology node.
#[derive(Debug, Clone)]
struct MergeNode {
    region: Trr,
    /// Ideal path length from this node to every sink below, half-units.
    len: i64,
    /// Children: arena index plus assigned merge radius (half-units).
    children: Vec<(usize, i64)>,
    sink: Option<usize>,
    /// Half-units of skew introduced by odd-parity radius rounding here.
    rounding: i64,
}

/// Deferred-merge embedding builder for one cluster of sinks.
///
/// # Examples
///
/// ```
/// use pacor_dme::{balanced_bipartition, DmeBuilder};
/// use pacor_grid::Point;
///
/// let sinks = vec![Point::new(0, 0), Point::new(6, 0)];
/// let topo = balanced_bipartition(&sinks);
/// let tree = DmeBuilder::new(&sinks).embed(&topo);
/// assert_eq!(tree.mismatch(), 0); // both sinks equidistant to the root
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DmeBuilder<'a> {
    sinks: &'a [Point],
    obs: Option<&'a ObsMap>,
    policy: EmbedPolicy,
    /// Maximum loop-search radius when dodging obstacles.
    max_search_radius: u32,
}

impl<'a> DmeBuilder<'a> {
    /// Creates a builder over `sinks` with no obstacles and the canonical
    /// `Closest` policy.
    pub fn new(sinks: &'a [Point]) -> Self {
        Self {
            sinks,
            obs: None,
            policy: EmbedPolicy::Closest,
            max_search_radius: 64,
        }
    }

    /// Attaches an obstacle map; blocked merging nodes are displaced by an
    /// expanding loop search (the paper's top-down workaround).
    pub fn with_obstacles(mut self, obs: &'a ObsMap) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Selects the merging-node placement policy.
    pub fn with_policy(mut self, policy: EmbedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the obstacle loop-search radius cap.
    pub fn with_max_search_radius(mut self, r: u32) -> Self {
        self.max_search_radius = r;
        self
    }

    /// Runs both DME phases and returns the embedded tree.
    ///
    /// # Panics
    ///
    /// Panics when `topology` references a sink index outside the sink
    /// list, or when the sink list is empty.
    pub fn embed(&self, topology: &Topology) -> SteinerTree {
        self.embed_with_stats(topology).0
    }

    /// Like [`DmeBuilder::embed`], additionally returning the total
    /// radius-rounding slack accumulated across merges, in half grid
    /// units — the Lemma 1 "rounding error" that the detouring stage
    /// later eliminates. Zero means every merge radius was exact.
    ///
    /// # Panics
    ///
    /// Same conditions as [`DmeBuilder::embed`].
    pub fn embed_with_stats(&self, topology: &Topology) -> (SteinerTree, i64) {
        assert!(!self.sinks.is_empty(), "cannot embed without sinks");
        // Phase 1: bottom-up merging regions.
        let mut arena: Vec<MergeNode> = Vec::new();
        let root = self.merge_up(topology, &mut arena);

        // Phase 2: top-down placement.
        let mut nodes: Vec<TreeNode> = Vec::new();
        let mut sink_nodes = vec![usize::MAX; self.sinks.len()];
        let root_region = arena[root].region;
        let (ru, rv) = self.policy.region_point(&root_region);
        let mut snap_slack = 0i64;
        let root_point = self.materialize(&root_region, ru, rv, &mut snap_slack);
        self.place(
            root,
            root_point,
            None,
            &arena,
            &mut nodes,
            &mut sink_nodes,
            &mut snap_slack,
        );
        let root_idx = 0;
        debug_assert!(sink_nodes.iter().all(|&s| s != usize::MAX));
        let merge_rounding: i64 = arena.iter().map(|n| n.rounding).sum();
        (
            SteinerTree::new(nodes, root_idx, sink_nodes),
            merge_rounding + snap_slack,
        )
    }

    /// Bottom-up phase; returns the arena index of the subtree's merge
    /// node.
    fn merge_up(&self, topo: &Topology, arena: &mut Vec<MergeNode>) -> usize {
        match topo {
            Topology::Leaf(i) => {
                assert!(*i < self.sinks.len(), "sink index out of range");
                arena.push(MergeNode {
                    region: Trr::from_point(self.sinks[*i]),
                    len: 0,
                    children: Vec::new(),
                    sink: Some(*i),
                    rounding: 0,
                });
                arena.len() - 1
            }
            Topology::Internal(a, b) => {
                let ia = self.merge_up(a, arena);
                let ib = self.merge_up(b, arena);
                let (ra_region, la) = (arena[ia].region, arena[ia].len);
                let (rb_region, lb) = (arena[ib].region, arena[ib].len);
                let d = ra_region.distance(&rb_region);

                let (ra, rb, len, rounding) = if (la - lb).abs() <= d {
                    // Balanced merge; round odd budgets, recording skew.
                    let num = d + lb - la;
                    let ra = num / 2;
                    let rb = d - ra;
                    let rounding = (num % 2).abs();
                    (ra, rb, la + ra, rounding)
                } else if la > lb + d {
                    // Left subtree is longer: meet on the left region and
                    // budget the full gap to the right child (to be made
                    // up by detouring the actual wires).
                    (0, la - lb, la, 0)
                } else {
                    (lb - la, 0, lb, 0)
                };

                let region = ra_region
                    .inflate(ra)
                    .intersect(&rb_region.inflate(rb))
                    .expect("radii span the inter-region gap");
                arena.push(MergeNode {
                    region,
                    len,
                    children: vec![(ia, ra), (ib, rb)],
                    sink: None,
                    rounding,
                });
                arena.len() - 1
            }
        }
    }

    /// Top-down phase: place `node` at `point`, then each child at the
    /// feasible region point chosen by the policy.
    #[allow(clippy::too_many_arguments)]
    fn place(
        &self,
        node: usize,
        point: Point,
        parent: Option<usize>,
        arena: &[MergeNode],
        nodes: &mut Vec<TreeNode>,
        sink_nodes: &mut [usize],
        snap_slack: &mut i64,
    ) {
        let idx = nodes.len();
        nodes.push(TreeNode {
            point,
            parent,
            sink: arena[node].sink,
        });
        if let Some(s) = arena[node].sink {
            sink_nodes[s] = idx;
        }
        let trr = Trr::from_point(point);
        let (pu, pv) = (trr.u_min, trr.v_min);
        for &(child, radius) in &arena[node].children {
            let region = arena[child].region;
            let target = if arena[child].sink.is_some() {
                // Sinks are fixed valve positions: place verbatim.
                self.sinks[arena[child].sink.expect("leaf has sink")]
            } else {
                // Policy point if it stays within the radius budget, else
                // the closest point of the region to the parent.
                let (qu, qv) = {
                    let (cu, cv) = match self.policy {
                        EmbedPolicy::Closest => region.closest_to(pu, pv),
                        p => {
                            let cand = p.region_point(&region);
                            if region.distance_to(pu, pv).max(
                                (cand.0 - pu).abs().max((cand.1 - pv).abs()),
                            ) <= radius
                            {
                                cand
                            } else {
                                region.closest_to(pu, pv)
                            }
                        }
                    };
                    (cu, cv)
                };
                self.materialize(&region, qu, qv, snap_slack)
            };
            self.place(child, target, Some(idx), arena, nodes, sink_nodes, snap_slack);
        }
    }

    /// Converts a rotated half-unit point to a concrete free grid cell:
    /// snap to grid (Lemma 1 rounding), then loop-search around blockages.
    fn materialize(&self, region: &Trr, u: i64, v: i64, snap_slack: &mut i64) -> Point {
        let (p, err) = region.snap_into(u, v);
        *snap_slack += err;
        match self.obs {
            None => p,
            Some(obs) => {
                if !obs.is_blocked(p) {
                    return p;
                }
                // Expanding square loops (the paper's encircling loops).
                for r in 1..=self.max_search_radius as i32 {
                    let mut ring: Vec<Point> = Vec::new();
                    for dx in -r..=r {
                        ring.push(Point::new(p.x + dx, p.y - r));
                        ring.push(Point::new(p.x + dx, p.y + r));
                    }
                    for dy in (-r + 1)..r {
                        ring.push(Point::new(p.x - r, p.y + dy));
                        ring.push(Point::new(p.x + r, p.y + dy));
                    }
                    // Deterministic preference: closest Manhattan first.
                    ring.sort_by_key(|q| (p.manhattan(*q), q.x, q.y));
                    if let Some(q) = ring.into_iter().find(|q| !obs.is_blocked(*q)) {
                        return q;
                    }
                }
                p // fully enclosed: return the snap; routing will fail loudly
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balanced_bipartition;
    use pacor_grid::Grid;

    fn embed_simple(sinks: &[Point]) -> SteinerTree {
        let topo = balanced_bipartition(sinks);
        DmeBuilder::new(sinks).embed(&topo)
    }

    #[test]
    fn two_sinks_even_distance_zero_mismatch() {
        let t = embed_simple(&[Point::new(0, 0), Point::new(6, 0)]);
        assert_eq!(t.mismatch(), 0);
        assert_eq!(t.full_path_length(0), 3);
        assert_eq!(t.full_path_length(1), 3);
    }

    #[test]
    fn two_sinks_odd_distance_snaps_within_one() {
        // Manhattan distance 5: the exact midpoint is off-grid (Lemma 1).
        let t = embed_simple(&[Point::new(0, 0), Point::new(5, 0)]);
        assert!(t.mismatch() <= 1, "mismatch {} exceeds rounding", t.mismatch());
        assert_eq!(t.full_path_length(0) + t.full_path_length(1), 5);
    }

    #[test]
    fn symmetric_quad_is_perfectly_matched() {
        let t = embed_simple(&[
            Point::new(2, 2),
            Point::new(10, 2),
            Point::new(2, 10),
            Point::new(10, 10),
        ]);
        assert_eq!(t.mismatch(), 0);
        assert_eq!(t.sink_count(), 4);
        // Root should land at the center of symmetry.
        assert_eq!(t.root(), Point::new(6, 6));
    }

    #[test]
    fn asymmetric_sinks_balance_by_radius() {
        // Three sinks; the far one gets a longer branch from the merge
        // node, which DME balances via radii.
        let sinks = [Point::new(0, 0), Point::new(4, 0), Point::new(20, 0)];
        let t = embed_simple(&sinks);
        // ΔL small (rounding only, ≤ 2 from two merges).
        assert!(t.mismatch() <= 2, "mismatch {}", t.mismatch());
    }

    #[test]
    fn sink_positions_are_preserved() {
        let sinks = [
            Point::new(1, 7),
            Point::new(9, 3),
            Point::new(4, 12),
            Point::new(14, 8),
        ];
        let t = embed_simple(&sinks);
        for (i, &s) in sinks.iter().enumerate() {
            assert_eq!(t.sink_point(i), s, "sink {i} moved");
        }
    }

    #[test]
    fn detour_case_longer_subtree() {
        // Cluster where one pair is far apart and the other adjacent: the
        // short pair's subtree needs a detour budget; merging must not
        // panic and mismatch stays bounded by rounding.
        let sinks = [
            Point::new(0, 0),
            Point::new(30, 0),
            Point::new(15, 1),
            Point::new(15, 2),
        ];
        let t = embed_simple(&sinks);
        assert_eq!(t.sink_count(), 4);
        // Mismatch reflects the unbalanced geometry; the *budgeted*
        // lengths are equal but embedding distance can only under-deliver
        // (fixed later by wire detours). Sanity: mismatch is bounded by
        // the span of the cluster.
        assert!(t.mismatch() <= 31);
    }

    #[test]
    fn obstacle_displaces_merging_node() {
        let sinks = [Point::new(0, 4), Point::new(8, 4)];
        let mut grid = Grid::new(16, 16).unwrap();
        grid.set_obstacle(Point::new(4, 4)); // exact midpoint
        let obs = ObsMap::new(&grid);
        let topo = balanced_bipartition(&sinks);
        let t = DmeBuilder::new(&sinks).with_obstacles(&obs).embed(&topo);
        assert!(!obs.is_blocked(t.root()), "root must dodge the obstacle");
        assert!(t.root().manhattan(Point::new(4, 4)) <= 2);
    }

    #[test]
    fn policies_produce_valid_trees() {
        let sinks = [
            Point::new(0, 0),
            Point::new(12, 2),
            Point::new(3, 9),
            Point::new(10, 11),
        ];
        let topo = balanced_bipartition(&sinks);
        for policy in EmbedPolicy::ALL {
            let t = DmeBuilder::new(&sinks).with_policy(policy).embed(&topo);
            assert_eq!(t.sink_count(), 4, "{policy:?}");
            for (i, &s) in sinks.iter().enumerate() {
                assert_eq!(t.sink_point(i), s, "{policy:?} sink {i}");
            }
            // Tree must be connected: every full path ends at the root.
            for i in 0..4 {
                let path = t.full_path_nodes(i);
                assert_eq!(*path.last().unwrap(), t.root_index());
            }
        }
    }

    #[test]
    fn policies_differ_in_embedding() {
        // A diagonal pair has a genuine (non-degenerate) merging segment
        // from (0, 8) to (8, 0); axis-collinear pairs collapse to a point.
        let sinks = [Point::new(0, 0), Point::new(8, 8)];
        let topo = balanced_bipartition(&sinks);
        let roots: std::collections::HashSet<Point> = EmbedPolicy::ALL
            .iter()
            .map(|&p| DmeBuilder::new(&sinks).with_policy(p).embed(&topo).root())
            .collect();
        assert!(roots.len() >= 2, "policies should explore the merging region");
    }

    #[test]
    fn rounding_stats_reflect_parity() {
        // Even distance: zero rounding. Odd distance: one half-unit.
        let even = [Point::new(0, 0), Point::new(6, 0)];
        let topo = balanced_bipartition(&even);
        let (_, r) = DmeBuilder::new(&even).embed_with_stats(&topo);
        assert_eq!(r, 0);
        let odd = [Point::new(0, 0), Point::new(5, 0)];
        let topo = balanced_bipartition(&odd);
        let (_, r) = DmeBuilder::new(&odd).embed_with_stats(&topo);
        assert!(r > 0, "odd distance must round (Lemma 1)");
    }

    #[test]
    #[should_panic(expected = "cannot embed without sinks")]
    fn empty_sinks_panics() {
        let topo = Topology::Leaf(0);
        DmeBuilder::new(&[]).embed(&topo);
    }
}
