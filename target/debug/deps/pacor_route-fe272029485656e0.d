/root/repo/target/debug/deps/pacor_route-fe272029485656e0.d: crates/route/src/lib.rs crates/route/src/astar.rs crates/route/src/bounded.rs crates/route/src/history.rs crates/route/src/negotiation.rs

/root/repo/target/debug/deps/pacor_route-fe272029485656e0: crates/route/src/lib.rs crates/route/src/astar.rs crates/route/src/bounded.rs crates/route/src/history.rs crates/route/src/negotiation.rs

crates/route/src/lib.rs:
crates/route/src/astar.rs:
crates/route/src/bounded.rs:
crates/route/src/history.rs:
crates/route/src/negotiation.rs:
