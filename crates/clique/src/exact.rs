//! Exact branch-and-bound maximum weight clique.

use crate::{CliqueSolution, Greedy, WeightedGraph};

/// Exact MWCP solver by branch and bound.
///
/// Nodes are explored in descending *potential* order, where the potential
/// of `v` is `max(0, node_w(v)) + Σ_u max(0, edge_w(v, u))` — an
/// optimistic estimate of everything `v` could ever contribute. The sum of
/// potentials over the remaining candidate set upper-bounds any extension
/// of the current clique, which prunes aggressively when weights are
/// non-positive (the PACOR case) or mixed.
///
/// A greedy warm start seeds the incumbent so pruning bites immediately.
///
/// # Examples
///
/// ```
/// use pacor_clique::{BranchAndBound, WeightedGraph};
///
/// let mut g = WeightedGraph::new(4);
/// for v in 0..4 { g.set_node_weight(v, 1.0); }
/// g.add_edge(0, 1, 0.0);
/// g.add_edge(1, 2, 0.0);
/// g.add_edge(0, 2, 0.0);
/// let best = BranchAndBound::new().solve(&g);
/// assert_eq!(best.nodes, vec![0, 1, 2]);
/// assert_eq!(best.weight, 3.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BranchAndBound {
    /// Optional node-expansion budget; `None` = unlimited (fully exact).
    node_budget: Option<u64>,
}

impl BranchAndBound {
    /// Creates an unlimited (fully exact) solver.
    pub fn new() -> Self {
        Self { node_budget: None }
    }

    /// Creates a budgeted solver that degrades to "best found so far"
    /// after expanding `budget` search nodes. Useful as an anytime solver
    /// on adversarial instances.
    pub fn with_node_budget(budget: u64) -> Self {
        Self {
            node_budget: Some(budget),
        }
    }

    /// Solves the MWCP on `graph`. The empty clique (weight 0) is always a
    /// feasible answer, so the result weight is ≥ 0.
    pub fn solve(&self, graph: &WeightedGraph) -> CliqueSolution {
        let n = graph.len();
        if n == 0 {
            return CliqueSolution::empty();
        }

        // Optimistic per-node potential.
        let pot: Vec<f64> = (0..n)
            .map(|v| {
                let edge_pot: f64 = (0..n)
                    .filter_map(|u| graph.edge_weight(v, u))
                    .filter(|w| *w > 0.0)
                    .sum();
                (graph.node_weight(v) + edge_pot).max(0.0)
            })
            .collect();

        // Branch order: descending potential (most promising first).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| pot[b].partial_cmp(&pot[a]).expect("finite weights"));

        // Warm start with greedy.
        let warm = Greedy.solve(graph);
        let mut best = if warm.weight > 0.0 {
            warm
        } else {
            CliqueSolution::empty()
        };

        let mut current: Vec<usize> = Vec::new();
        let mut expanded: u64 = 0;
        self.branch(
            graph,
            &order,
            &pot,
            0,
            0.0,
            &mut current,
            &mut best,
            &mut expanded,
        );
        best.nodes.sort_unstable();
        best
    }

    #[allow(clippy::too_many_arguments)]
    fn branch(
        &self,
        g: &WeightedGraph,
        order: &[usize],
        pot: &[f64],
        start: usize,
        cur_weight: f64,
        current: &mut Vec<usize>,
        best: &mut CliqueSolution,
        expanded: &mut u64,
    ) {
        if let Some(b) = self.node_budget {
            if *expanded >= b {
                return;
            }
        }
        *expanded += 1;

        if cur_weight > best.weight {
            *best = CliqueSolution {
                nodes: current.clone(),
                weight: cur_weight,
            };
        }

        // Upper bound: everything remaining could at best add its potential.
        let mut remaining_pot: f64 = order[start..].iter().map(|&v| pot[v]).sum();
        if cur_weight + remaining_pot <= best.weight {
            return;
        }

        for i in start..order.len() {
            let v = order[i];
            remaining_pot -= pot[v];
            // Candidate must extend the clique.
            if !current.iter().all(|&u| g.adjacent(u, v)) {
                continue;
            }
            let gain = g.marginal_gain(current, v);
            // Prune this subtree if even optimistic extensions can't win.
            if cur_weight + gain + remaining_pot + pot[v].max(0.0) <= best.weight && gain <= 0.0 {
                continue;
            }
            current.push(v);
            self.branch(
                g,
                order,
                pot,
                i + 1,
                cur_weight + gain,
                current,
                best,
                expanded,
            );
            current.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force optimum over all subsets (n ≤ 20).
    fn brute_force(g: &WeightedGraph) -> f64 {
        let n = g.len();
        let mut best = 0.0f64;
        for mask in 0u32..(1 << n) {
            let nodes: Vec<usize> = (0..n).filter(|&v| mask & (1 << v) != 0).collect();
            if g.is_clique(&nodes) {
                best = best.max(g.weight_of(&nodes));
            }
        }
        best
    }

    #[test]
    fn empty_graph() {
        let g = WeightedGraph::new(0);
        let s = BranchAndBound::new().solve(&g);
        assert!(s.nodes.is_empty());
    }

    #[test]
    fn isolated_positive_nodes_pick_best_single() {
        let mut g = WeightedGraph::new(3);
        g.set_node_weight(0, 1.0);
        g.set_node_weight(1, 9.0);
        g.set_node_weight(2, 4.0);
        let s = BranchAndBound::new().solve(&g);
        assert_eq!(s.nodes, vec![1]);
        assert_eq!(s.weight, 9.0);
    }

    #[test]
    fn all_negative_prefers_empty() {
        let mut g = WeightedGraph::new(3);
        for v in 0..3 {
            g.set_node_weight(v, -1.0);
        }
        g.add_edge(0, 1, -1.0);
        let s = BranchAndBound::new().solve(&g);
        assert!(s.nodes.is_empty());
        assert_eq!(s.weight, 0.0);
    }

    #[test]
    fn negative_edge_breaks_triangle() {
        let mut g = WeightedGraph::new(3);
        for v in 0..3 {
            g.set_node_weight(v, 2.0);
        }
        g.add_edge(0, 1, 0.0);
        g.add_edge(1, 2, 0.0);
        g.add_edge(0, 2, -10.0); // 0 and 2 together are ruinous
        let s = BranchAndBound::new().solve(&g);
        assert_eq!(s.weight, 4.0);
        assert_eq!(s.nodes.len(), 2);
        assert!(s.nodes.contains(&1));
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        // Deterministic pseudo-random graphs via a simple LCG.
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        for trial in 0..20 {
            let n = 4 + trial % 7;
            let mut g = WeightedGraph::new(n);
            for v in 0..n {
                g.set_node_weight(v, next() * 10.0 - 4.0);
            }
            for u in 0..n {
                for v in (u + 1)..n {
                    if next() < 0.55 {
                        g.add_edge(u, v, next() * 6.0 - 4.0);
                    }
                }
            }
            let exact = BranchAndBound::new().solve(&g);
            let brute = brute_force(&g);
            assert!(
                (exact.weight - brute).abs() < 1e-9,
                "trial {trial}: b&b {} vs brute {}",
                exact.weight,
                brute
            );
            assert!(g.is_clique(&exact.nodes));
            assert!((g.weight_of(&exact.nodes) - exact.weight).abs() < 1e-9);
        }
    }

    #[test]
    fn budgeted_solver_is_feasible() {
        let mut g = WeightedGraph::new(12);
        for v in 0..12 {
            g.set_node_weight(v, 1.0);
            for u in 0..v {
                g.add_edge(u, v, 0.0);
            }
        }
        let s = BranchAndBound::with_node_budget(3).solve(&g);
        assert!(g.is_clique(&s.nodes));
        assert!(s.weight >= 1.0); // at least the greedy warm start
    }
}
