//! Tilted rectangular regions in rotated coordinates.
//!
//! A *tilted rectangular region* (TRR) is the Minkowski sum of a Manhattan
//! segment with a Manhattan ball — the shape of all DME merging regions.
//! Under the rotation `(u, v) = (x + y, y − x)` the Manhattan metric
//! becomes the Chebyshev metric and every TRR becomes an axis-aligned
//! rectangle, closed under the two operations DME needs: inflation by a
//! radius and intersection.
//!
//! Coordinates here are stored in **half-units** (doubled), so that the
//! merging radii — which are half-integral when Manhattan distances are
//! odd (Lemma 1 of the paper) — stay exactly representable as integers.

use pacor_grid::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle in doubled rotated coordinates; the image of
/// a tilted rectangular region of the routing plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Trr {
    /// Minimum `u = 2(x + y)`.
    pub u_min: i64,
    /// Maximum `u`.
    pub u_max: i64,
    /// Minimum `v = 2(y − x)`.
    pub v_min: i64,
    /// Maximum `v`.
    pub v_max: i64,
}

impl Trr {
    /// The TRR of a single grid point (a rotated point).
    pub fn from_point(p: Point) -> Self {
        let u = 2 * (p.x as i64 + p.y as i64);
        let v = 2 * (p.y as i64 - p.x as i64);
        Self {
            u_min: u,
            u_max: u,
            v_min: v,
            v_max: v,
        }
    }

    /// Returns `true` when the region is a single rotated point.
    pub fn is_point(&self) -> bool {
        self.u_min == self.u_max && self.v_min == self.v_max
    }

    /// Inflates by `r` half-units in the Chebyshev metric — the Minkowski
    /// sum with a Manhattan ball of radius `r/2` grid units.
    ///
    /// # Panics
    ///
    /// Panics when `r < 0`.
    pub fn inflate(&self, r: i64) -> Trr {
        assert!(r >= 0, "inflation radius must be non-negative");
        Trr {
            u_min: self.u_min - r,
            u_max: self.u_max + r,
            v_min: self.v_min - r,
            v_max: self.v_max + r,
        }
    }

    /// Intersection, or `None` when disjoint.
    pub fn intersect(&self, other: &Trr) -> Option<Trr> {
        let t = Trr {
            u_min: self.u_min.max(other.u_min),
            u_max: self.u_max.min(other.u_max),
            v_min: self.v_min.max(other.v_min),
            v_max: self.v_max.min(other.v_max),
        };
        (t.u_min <= t.u_max && t.v_min <= t.v_max).then_some(t)
    }

    /// Chebyshev distance to another region in half-units — equal to
    /// twice the minimum Manhattan distance between the underlying tilted
    /// regions.
    pub fn distance(&self, other: &Trr) -> i64 {
        let du = (other.u_min - self.u_max).max(self.u_min - other.u_max).max(0);
        let dv = (other.v_min - self.v_max).max(self.v_min - other.v_max).max(0);
        du.max(dv)
    }

    /// Chebyshev distance from a rotated point `(u, v)` in half-units.
    pub fn distance_to(&self, u: i64, v: i64) -> i64 {
        let du = (self.u_min - u).max(u - self.u_max).max(0);
        let dv = (self.v_min - v).max(v - self.v_max).max(0);
        du.max(dv)
    }

    /// The point of the region closest (Chebyshev) to `(u, v)`.
    pub fn closest_to(&self, u: i64, v: i64) -> (i64, i64) {
        (u.clamp(self.u_min, self.u_max), v.clamp(self.v_min, self.v_max))
    }

    /// Center of the region (rounded toward `u_min`/`v_min`).
    pub fn center(&self) -> (i64, i64) {
        (
            self.u_min + (self.u_max - self.u_min) / 2,
            self.v_min + (self.v_max - self.v_min) / 2,
        )
    }

    /// The four corners `(u, v)` of the region.
    pub fn corners(&self) -> [(i64, i64); 4] {
        [
            (self.u_min, self.v_min),
            (self.u_min, self.v_max),
            (self.u_max, self.v_min),
            (self.u_max, self.v_max),
        ]
    }

    /// Maps a rotated half-unit point back to the nearest grid point,
    /// returning the point and the snapping displacement in half-units
    /// (0 when the point was exactly on grid; Lemma 1 situations give a
    /// positive displacement).
    pub fn snap_to_grid(u: i64, v: i64) -> (Point, i64) {
        // Exact preimage: x = (u - v) / 4, y = (u + v) / 4. Rounding x
        // and y independently can slide diagonally off a merging segment
        // (both half-values rounding the same way change u by 2 while v
        // stays), so evaluate the four surrounding grid points and keep
        // the one with minimal rotated-space error.
        let (x4, y4) = (u - v, u + v);
        let xs = [x4.div_euclid(4), x4.div_euclid(4) + 1];
        let ys = [y4.div_euclid(4), y4.div_euclid(4) + 1];
        let mut best: Option<(Point, i64)> = None;
        for &x in &xs {
            for &y in &ys {
                let (pu, pv) = (2 * (x + y), 2 * (y - x));
                let err = (pu - u).abs().max((pv - v).abs());
                let p = Point::new(x as i32, y as i32);
                if best.map(|(_, e)| err < e).unwrap_or(true) {
                    best = Some((p, err));
                }
            }
        }
        best.expect("candidate set nonempty")
    }

    /// Region-aware snap: the grid point nearest to rotated target
    /// `(u, v)` whose rotated image lies *inside* this region, when one
    /// exists within a 2-cell neighbourhood; otherwise the plain
    /// [`Trr::snap_to_grid`] result. Keeping the merging node on the
    /// merging region preserves the equidistance DME budgeted, even when
    /// the region's center itself is off-lattice (Lemma 1).
    pub fn snap_into(&self, u: i64, v: i64) -> (Point, i64) {
        let (x4, y4) = (u - v, u + v);
        let (x0, y0) = (x4.div_euclid(4), y4.div_euclid(4));
        let mut best_inside: Option<(Point, i64)> = None;
        for dx in -2..=2i64 {
            for dy in -2..=2i64 {
                let (x, y) = (x0 + dx, y0 + dy);
                let (pu, pv) = (2 * (x + y), 2 * (y - x));
                if self.distance_to(pu, pv) != 0 {
                    continue;
                }
                let err = (pu - u).abs().max((pv - v).abs());
                let p = Point::new(x as i32, y as i32);
                let better = match best_inside {
                    None => true,
                    Some((bp, be)) => err < be || (err == be && (p.y, p.x) < (bp.y, bp.x)),
                };
                if better {
                    best_inside = Some((p, err));
                }
            }
        }
        best_inside.unwrap_or_else(|| Trr::snap_to_grid(u, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_roundtrip() {
        for p in [Point::new(0, 0), Point::new(3, -2), Point::new(7, 11)] {
            let t = Trr::from_point(p);
            assert!(t.is_point());
            let (q, err) = Trr::snap_to_grid(t.u_min, t.v_min);
            assert_eq!(q, p);
            assert_eq!(err, 0);
        }
    }

    #[test]
    fn distance_matches_manhattan() {
        let a = Trr::from_point(Point::new(0, 0));
        let b = Trr::from_point(Point::new(3, 4));
        // Half-units: distance = 2 × Manhattan.
        assert_eq!(a.distance(&b), 14);
        assert_eq!(a.distance(&a), 0);
    }

    #[test]
    fn inflate_then_distance() {
        let a = Trr::from_point(Point::new(0, 0)).inflate(6); // radius 3 grid units
        let b = Trr::from_point(Point::new(10, 0));
        // Manhattan gap: 10 − 3 = 7 grid units = 14 half-units.
        assert_eq!(a.distance(&b), 14);
    }

    #[test]
    fn intersect_balls_is_merging_segment() {
        // Classic DME: two points at Manhattan distance 6; radii 3 and 3.
        let a = Trr::from_point(Point::new(0, 0)).inflate(6);
        let b = Trr::from_point(Point::new(6, 0)).inflate(6);
        let m = a.intersect(&b).expect("balls touch");
        // The merging segment is the diagonal through (3, 0): in rotated
        // half-units u ∈ [6−6, 6+6]∩[12−6,0+6] = [6,6]? compute: a = u,v ∈ [−6,6];
        // b: u ∈ [12−6, 12+6] = [6,18], v ∈ [−12−6, −12+6]+... just assert
        // it is a diagonal segment containing the midpoint (3, 0).
        let mid = Trr::from_point(Point::new(3, 0));
        assert!(m.intersect(&mid).is_some());
        // A segment: degenerate in exactly one axis.
        assert!(m.u_min == m.u_max || m.v_min == m.v_max);
    }

    #[test]
    fn disjoint_intersection_is_none() {
        let a = Trr::from_point(Point::new(0, 0)).inflate(2);
        let b = Trr::from_point(Point::new(9, 9)).inflate(2);
        assert!(a.intersect(&b).is_none());
    }

    #[test]
    fn closest_point_clamps() {
        let t = Trr {
            u_min: 0,
            u_max: 10,
            v_min: -4,
            v_max: 4,
        };
        assert_eq!(t.closest_to(20, 0), (10, 0));
        assert_eq!(t.closest_to(5, -9), (5, -4));
        assert_eq!(t.closest_to(5, 0), (5, 0));
        assert_eq!(t.distance_to(20, 0), 10);
        assert_eq!(t.distance_to(5, 0), 0);
    }

    #[test]
    fn snap_reports_half_unit_error() {
        // A rotated point between grid points: u=2, v=0 → x = 0.5, y = 0.5.
        let (p, err) = Trr::snap_to_grid(2, 0);
        assert!(err > 0);
        // The snapped point is within one grid unit of the exact preimage.
        assert!(p.manhattan(Point::new(0, 0)) <= 1 || p.manhattan(Point::new(1, 1)) <= 1);
    }

    #[test]
    fn corners_and_center_inside() {
        let t = Trr {
            u_min: 0,
            u_max: 8,
            v_min: 2,
            v_max: 6,
        };
        for (u, v) in t.corners() {
            assert_eq!(t.distance_to(u, v), 0);
        }
        let (cu, cv) = t.center();
        assert_eq!(t.distance_to(cu, cv), 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_inflation_panics() {
        Trr::from_point(Point::new(0, 0)).inflate(-1);
    }
}
