//! Exporters: Chrome trace-event JSON and a flat metrics document.
//!
//! Both are hand-written (the crate is zero-dependency). Event and
//! metric names are static identifiers, but the writers still escape
//! strings defensively so the output is always valid JSON.

use crate::{ObsReport, TraceEvent};
use std::fmt::Write;
use std::path::{Path, PathBuf};

/// Process id used for every trace event (the flow is one process).
const PID: u32 = 1;

pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_args(out: &mut String, args: &[(&str, u64)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(out, k);
        let _ = write!(out, ":{v}");
    }
    out.push('}');
}

fn push_meta_event(out: &mut String, first: &mut bool, kind: &str, tid: Option<u32>, label: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("\n  {\"name\":");
    push_json_string(out, kind);
    let _ = write!(out, ",\"ph\":\"M\",\"pid\":{PID}");
    if let Some(tid) = tid {
        let _ = write!(out, ",\"tid\":{tid}");
    }
    out.push_str(",\"args\":{\"name\":");
    push_json_string(out, label);
    out.push_str("}}");
}

/// Renders the report's event stream as Chrome trace-event JSON: an
/// array of objects each carrying `name`, `ph`, `ts`, `pid` and `tid`,
/// loadable directly in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
///
/// Spans become complete events (`ph: "X"` with `dur`), instants
/// `ph: "i"` markers, and counter samples `ph: "C"` series. The stream
/// is self-describing: it opens with `ph: "M"` metadata naming the
/// process (`pacor`) and every trace lane (`session` for tid 0, the
/// parallel `task-N` lanes otherwise), and closes with a synthetic
/// zero-duration `run.totals` span at tid 0 whose args carry every
/// counter total, so Perfetto shows the aggregate metrics without a
/// separate `--metrics-out` file.
pub fn chrome_trace(report: &ObsReport) -> String {
    let events = report.events();
    let has_counters = report.counters().next().is_some();
    if events.is_empty() && !has_counters {
        return String::from("[\n]\n");
    }
    let mut out = String::from("[");
    let mut first = true;
    push_meta_event(&mut out, &mut first, "process_name", None, "pacor");
    let mut tids: Vec<u32> = events
        .iter()
        .map(|e| match e {
            TraceEvent::Span { tid, .. }
            | TraceEvent::Instant { tid, .. }
            | TraceEvent::Counter { tid, .. } => *tid,
        })
        .collect();
    if has_counters {
        tids.push(0); // the synthetic run.totals span lives on lane 0
    }
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let label = if tid == 0 {
            "session".to_string()
        } else {
            format!("task-{tid}")
        };
        push_meta_event(&mut out, &mut first, "thread_name", Some(tid), &label);
    }
    for event in events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n  {");
        match event {
            TraceEvent::Span {
                name,
                ts,
                dur,
                tid,
                args,
            } => {
                out.push_str("\"name\":");
                push_json_string(&mut out, name);
                let _ = write!(
                    out,
                    ",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":{PID},\"tid\":{tid},\"args\":"
                );
                push_args(&mut out, args);
            }
            TraceEvent::Instant {
                name,
                ts,
                tid,
                args,
            } => {
                out.push_str("\"name\":");
                push_json_string(&mut out, name);
                let _ = write!(
                    out,
                    ",\"ph\":\"i\",\"ts\":{ts},\"pid\":{PID},\"tid\":{tid},\"s\":\"t\",\"args\":"
                );
                push_args(&mut out, args);
            }
            TraceEvent::Counter {
                name,
                ts,
                tid,
                value,
            } => {
                out.push_str("\"name\":");
                push_json_string(&mut out, name);
                let _ = write!(
                    out,
                    ",\"ph\":\"C\",\"ts\":{ts},\"pid\":{PID},\"tid\":{tid},\"args\":{{\"value\":{value}}}"
                );
            }
        }
        out.push('}');
    }
    if has_counters {
        let totals: Vec<(&str, u64)> = report.counters().collect();
        if !first {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"name\":\"run.totals\",\"ph\":\"X\",\"ts\":0,\"dur\":0,\"pid\":{PID},\"tid\":0,\"args\":"
        );
        push_args(&mut out, &totals);
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

/// Renders the report's aggregates as a flat metrics JSON document:
/// `{"counters": {...}, "histograms": {name: {count, sum, min, max,
/// buckets}}}`.
///
/// Deliberately contains **no wall-clock data** — no timestamps,
/// durations or thread counts — so for a deterministic flow the output
/// is byte-identical run-to-run and at any worker-thread count (keys
/// iterate in sorted `BTreeMap` order).
pub fn metrics_json(report: &ObsReport) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    for (i, (name, value)) in report.counters().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_json_string(&mut out, name);
        let _ = write!(out, ": {value}");
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, (name, hist)) in report.histograms().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_json_string(&mut out, name);
        let _ = write!(
            out,
            ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
            hist.count(),
            hist.sum(),
            hist.min(),
            hist.max(),
            hist.p50(),
            hist.p95(),
            hist.p99()
        );
        for (j, b) in hist.buckets().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{b}");
        }
        out.push_str("]}");
    }
    out.push_str("\n  }\n}\n");
    out
}

/// The staging sibling used by every atomic writer: `<path>.tmp`.
pub(crate) fn tmp_path_of(path: &Path) -> PathBuf {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    PathBuf::from(tmp)
}

/// Renames a fully-written staging file into place; a failed rename
/// removes the staging file so nothing lingers.
pub(crate) fn rename_or_cleanup(tmp: &Path, path: &Path) -> std::io::Result<()> {
    match std::fs::rename(tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(tmp);
            Err(e)
        }
    }
}

/// Writes `contents` to `path` atomically: the bytes go to a
/// `<path>.tmp` sibling first and are renamed into place, so an
/// interrupted run never leaves a truncated file behind. A missing
/// parent directory surfaces as an `Err` (`NotFound`) instead of a
/// panic; a failed rename cleans the temp file up.
///
/// This is the one temp+rename implementation in the workspace — the
/// trace/metrics/report exporters, the run digest and ledger writers,
/// and the streaming-telemetry [`crate::StreamWriter`] all go through
/// it (or through its [`tmp_path_of`]/[`rename_or_cleanup`] halves when
/// they stream into the staging file incrementally).
pub fn atomic_write(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> std::io::Result<()> {
    let path = path.as_ref();
    let tmp = tmp_path_of(path);
    std::fs::write(&tmp, contents)?;
    rename_or_cleanup(&tmp, path)
}

#[cfg(test)]
mod tests {
    use crate::Session;

    #[test]
    fn chrome_trace_has_required_fields_per_event() {
        let session = Session::begin();
        {
            let _s = crate::span_with("stage.test", &[("k", 1)]);
            crate::instant("mark", &[]);
        }
        crate::counter_add("c", 3);
        crate::counter_sample("c");
        let report = session.finish();
        let json = crate::chrome_trace(&report);
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        // Three recorded events + process/thread metadata + the
        // synthetic run.totals span, every object carrying pid.
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 2, "{json}");
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2, "{json}");
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"C\"").count(), 1);
        assert_eq!(json.matches("\"pid\":").count(), 6);
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("{\"name\":\"pacor\"}"));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("{\"name\":\"session\"}"));
        assert!(json.contains("\"value\":3"));
        assert!(json.contains("\"run.totals\""));
        assert!(json.contains("\"c\":3"), "totals carry the counter");
    }

    #[test]
    fn trace_metadata_names_every_task_lane() {
        let session = Session::begin();
        let (_, frame) = crate::task_frame(2, || {
            crate::instant("task.work", &[]);
        });
        crate::absorb(frame);
        let report = session.finish();
        let json = crate::chrome_trace(&report);
        assert!(json.contains("{\"name\":\"task-2\"}"), "{json}");
        assert!(
            !json.contains("\"run.totals\""),
            "no counters means no totals span"
        );
    }

    #[test]
    fn metrics_json_is_wall_clock_free_and_sorted() {
        let session = Session::begin();
        crate::counter_add("zeta", 1);
        crate::counter_add("alpha", 2);
        crate::record("h", 7);
        let report = session.finish();
        let json = crate::metrics_json(&report);
        assert!(!json.contains("\"ts\""));
        assert!(!json.contains("\"dur\""));
        let alpha = json.find("\"alpha\"").unwrap();
        let zeta = json.find("\"zeta\"").unwrap();
        assert!(alpha < zeta, "counters must be name-sorted");
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"sum\": 7"));
    }

    #[test]
    fn metrics_json_carries_quantiles() {
        let session = Session::begin();
        for i in 0..8u32 {
            crate::record("q", 1u64 << i);
        }
        let report = session.finish();
        let json = crate::metrics_json(&report);
        assert!(json.contains("\"p50\": 8"), "{json}");
        assert!(json.contains("\"p95\": 64"), "{json}");
        assert!(json.contains("\"p99\": 64"), "{json}");
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join("pacor_obs_atomic_write");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        crate::atomic_write(&path, "first").unwrap();
        crate::atomic_write(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        assert!(
            !dir.join("out.json.tmp").exists(),
            "temp file must not linger"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_errors_on_missing_parent() {
        let path = std::env::temp_dir()
            .join("pacor_obs_no_such_dir")
            .join("out.json");
        let err = crate::atomic_write(&path, "x").expect_err("parent is missing");
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }

    #[test]
    fn empty_report_exports_are_valid_shells() {
        let report = Session::begin().finish();
        assert_eq!(crate::chrome_trace(&report).trim(), "[\n]");
        let metrics = crate::metrics_json(&report);
        assert!(metrics.contains("\"counters\""));
        assert!(metrics.contains("\"histograms\""));
    }
}
