//! Run-digest integration tests: the deterministic document must be
//! byte-identical across every equivalence axis (threads × negotiation
//! mode × rip-up policy), and the structural differ must stay quiet
//! across those axes while flagging genuine quality regressions.

use pacor_repro::pacor::route::{NegotiationMode, RipUpPolicy};
use pacor_repro::pacor::{
    self, obs, synthesize_params, DesignParams, FlowConfig, PacorFlow,
};

/// A chip with more clusters than control pins: partial completion,
/// so the digest's cluster and outcome fields exercise the unrouted
/// paths too (same fixture as the post-mortem CLI test).
const STARVED: DesignParams = DesignParams {
    name: "T1-starved",
    width: 20,
    height: 20,
    valves: 8,
    control_pins: 2,
    obstacles: 0,
    multi_clusters: 3,
    pairs_only: true,
};

fn digest_with(config: FlowConfig) -> obs::RunDigest {
    let problem = synthesize_params(STARVED, 42);
    let session = obs::Session::begin();
    let report = PacorFlow::new(config).run(&problem).expect("routes");
    let obs_report = session.finish();
    pacor::run_digest(&problem, &config, &report, &obs_report)
}

#[test]
fn deterministic_json_is_byte_identical_across_the_full_equivalence_matrix() {
    let baseline = digest_with(FlowConfig::default()).deterministic_json();
    let mut combos = 0;
    for threads in [1usize, 2, 4, 8] {
        for mode in [NegotiationMode::Serial, NegotiationMode::Parallel] {
            for policy in [RipUpPolicy::Full, RipUpPolicy::Incremental] {
                let config = FlowConfig::default()
                    .with_threads(threads)
                    .with_negotiation_mode(mode)
                    .with_ripup_policy(policy);
                let doc = digest_with(config).deterministic_json();
                assert_eq!(
                    doc, baseline,
                    "deterministic digest diverged at threads={threads} \
                     mode={mode:?} policy={policy:?}"
                );
                combos += 1;
            }
        }
    }
    assert_eq!(combos, 16, "the matrix must cover all 16 combinations");
}

#[test]
fn differ_stays_quiet_across_equivalence_axes() {
    let serial = digest_with(FlowConfig::default());
    let parallel = digest_with(
        FlowConfig::default()
            .with_negotiation_mode(NegotiationMode::Parallel)
            .with_threads(4),
    );
    let diff = obs::diff_runs(&serial, &parallel);
    assert!(
        !diff.has_verdicts(),
        "equivalence-axis runs must diff clean:\n{}",
        obs::render_diff(&diff, 20)
    );
    // The wall section still reports the axis change as information.
    assert!(diff.wall.iter().any(|e| e.what == "wall.mode"));
}

#[test]
fn differ_flags_injected_quality_and_span_regressions() {
    let base = digest_with(FlowConfig::default());
    let mut bad = base.clone();
    // A quality drift and a +30% span blow-up well past both noise
    // gates (25% relative AND 25 ms absolute).
    bad.outcome.total_length += 17;
    let span = bad.wall.spans.first_mut().expect("run has root spans");
    span.excl_us = 200_000;
    let mut worse = bad.clone();
    worse.wall.spans[0].excl_us = 260_000;
    let diff = obs::diff_runs(&bad, &worse);
    assert!(
        diff.span_changed.iter().any(|s| s.regressed),
        "a +30%/+60ms exclusive-time jump must register as regressed"
    );
    let diff = obs::diff_runs(&base, &bad);
    assert!(diff.has_verdicts());
    assert!(
        diff.quality
            .iter()
            .any(|e| e.what == "outcome.total_length"),
        "total_length drift must surface as a quality verdict"
    );
}
