//! Routes a benchmark design and renders the result: ASCII art to the
//! terminal and an SVG file next to the target directory.
//!
//! ```sh
//! cargo run --release --example render_layout            # S1
//! cargo run --release --example render_layout -- S3      # any design
//! ```

use pacor_repro::pacor::{
    render_ascii, render_svg, BenchDesign, FlowConfig, PacorFlow, PropagationModel,
};
use pacor_repro::grid::DesignRules;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "S1".into());
    let design = match which.as_str() {
        "Chip1" => BenchDesign::Chip1,
        "Chip2" => BenchDesign::Chip2,
        "S1" => BenchDesign::S1,
        "S2" => BenchDesign::S2,
        "S3" => BenchDesign::S3,
        "S4" => BenchDesign::S4,
        "S5" => BenchDesign::S5,
        other => {
            eprintln!("unknown design {other}; use Chip1|Chip2|S1..S5");
            std::process::exit(2);
        }
    };

    let problem = design.synthesize(42);
    let (report, routed) = PacorFlow::new(FlowConfig::default()).run_detailed(&problem)?;
    println!("{report}");
    println!();
    if problem.width <= 60 {
        println!("{}", render_ascii(&problem, &routed));
    } else {
        println!("(grid too wide for ASCII; see the SVG)");
    }

    let svg = render_svg(&problem, &routed, 12);
    let path = format!("target/{}_layout.svg", problem.name);
    std::fs::write(&path, svg)?;
    println!("wrote {path}");

    // Physical interpretation of the matching quality.
    let model = PropagationModel::typical_pdms(DesignRules::typical_pdms());
    for (i, rc) in routed.iter().enumerate() {
        if let Some(skew) = model.cluster_skew_us(rc) {
            println!(
                "cluster {i}: switching skew {skew:.1} µs ({} grid tracks of mismatch)",
                rc.mismatch().unwrap_or(0)
            );
        }
    }
    Ok(())
}
