# Convenience targets for the PACOR reproduction workspace.

CARGO ?= cargo

.PHONY: verify build test clippy bench tables obs-smoke bench-flow bench-smoke negotiate-smoke

# The acceptance gate: release build, full test suite, zero-warning
# lints, a smoke-run of the observability exports, a smoke-run of the
# end-to-end flow benchmark harness, and a serial-vs-parallel
# negotiation equivalence check.
verify: build test clippy obs-smoke bench-smoke negotiate-smoke

build:
	$(CARGO) build --release --workspace

test:
	$(CARGO) test -q --workspace

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

bench:
	$(CARGO) bench -p pacor-bench --bench kernels

# The full end-to-end flow benchmark: every chip under both rip-up
# policies, written to BENCH_flow.json at the repo root (takes minutes).
bench-flow:
	$(CARGO) run --release -p pacor-bench --bin bench_flow -- --repeat 5 --out BENCH_flow.json

# Cheap harness exercise for CI: one tiny chip (2 policies x 3
# negotiation configs = 6 entries), result discarded.
bench-smoke:
	$(CARGO) run --release -p pacor-bench --bin bench_flow -- --smoke --repeat 1 --out target/bench_flow_smoke.json
	python3 -c "import json; r = json.load(open('target/bench_flow_smoke.json')); assert len(r['entries']) == 6, r; print('bench-smoke: harness produced', len(r['entries']), 'entries')"

# Serial vs speculative-parallel negotiation must produce the identical
# routed report (wall-clock fields and work counters aside), and the
# parallel run must actually speculate.
negotiate-smoke:
	$(CARGO) run --release --bin pacor-cli -- route --negotiation-mode serial \
		--metrics-out target/neg_ser_metrics.json S2 > target/neg_ser_report.json
	$(CARGO) run --release --bin pacor-cli -- route --negotiation-mode parallel --threads 2 \
		--metrics-out target/neg_par_metrics.json S2 > target/neg_par_report.json
	python3 -c "\
	import json; \
	s = json.load(open('target/neg_ser_report.json')); \
	p = json.load(open('target/neg_par_report.json')); \
	[d.pop(k) for d in (s, p) for k in ('runtime', 'metrics')]; \
	assert s == p, 'serial and parallel reports diverge'; \
	m = json.load(open('target/neg_par_metrics.json')); \
	assert m['counters'].get('negotiate.speculative', 0) > 0, m['counters']; \
	print('negotiate-smoke: identical reports,', m['counters']['negotiate.speculative'], 'speculative routes')"

tables:
	$(CARGO) run --release -p pacor-bench --bin tables -- all

# Route one small design with both observability exports enabled and
# check that each output file parses as JSON.
obs-smoke:
	$(CARGO) run --release --bin pacor-cli -- route --quiet \
		--trace-out target/obs_smoke_trace.json \
		--metrics-out target/obs_smoke_metrics.json S1
	python3 -c "import json; json.load(open('target/obs_smoke_trace.json')); json.load(open('target/obs_smoke_metrics.json')); print('obs-smoke: both exports are valid JSON')"
