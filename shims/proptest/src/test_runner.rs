//! Deterministic case runner.

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's assumptions don't hold; generate a fresh one.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self::Fail(message.into())
    }
}

/// Deterministic SplitMix64 stream used for all generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Unbiased uniform sample of `[0, span)`.
    ///
    /// # Panics
    ///
    /// Panics when `span` is zero.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "cannot sample an empty interval");
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 mantissa bits of a u64.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over the test's module path, so every test gets a distinct
/// but machine-independent seed.
fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one property: runs `config.cases` accepted cases, regenerating
/// rejected ones, and panics (without shrinking) on the first failure.
///
/// Like upstream proptest, the `PROPTEST_CASES` environment variable
/// overrides the configured case count, so CI or a developer can stress
/// a property harder without editing the test.
pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases);
    let seed = seed_for(name);
    let mut rng = TestRng::new(seed);
    let max_rejects = u64::from(cases) * 16 + 256;
    let mut rejects = 0u64;
    let mut accepted = 0u32;
    while accepted < cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "proptest `{name}`: too many rejected cases ({rejects}); \
                     weaken the prop_assume! conditions"
                );
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "proptest `{name}` failed at case {accepted} (seed {seed:#x}): {message}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases() {
        let mut n = 0u32;
        run_cases("t", &ProptestConfig::with_cases(17), |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 17);
    }

    #[test]
    fn rejects_are_regenerated() {
        let mut calls = 0u32;
        run_cases("t2", &ProptestConfig::with_cases(5), |rng| {
            calls += 1;
            if rng.below(2) == 0 {
                Err(TestCaseError::Reject)
            } else {
                Ok(())
            }
        });
        assert!(calls > 5);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failure_panics() {
        run_cases("t3", &ProptestConfig::with_cases(5), |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
