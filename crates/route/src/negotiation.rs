//! Negotiation-based detailed routing — Algorithm 1 of the paper.

use crate::{AStar, HistoryCost};
use pacor_grid::{GridPath, ObsMap, Point};

/// One tree edge to route: any source cell to any target cell.
///
/// For DME tree edges both sides are single points; for point-to-path and
/// path-to-path connections the cell lists carry the whole path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteRequest {
    /// Candidate start cells.
    pub sources: Vec<Point>,
    /// Candidate end cells.
    pub targets: Vec<Point>,
}

impl RouteRequest {
    /// A point-to-point request.
    pub fn point_to_point(source: Point, target: Point) -> Self {
        Self {
            sources: vec![source],
            targets: vec![target],
        }
    }
}

/// Result of a [`NegotiationRouter::route_all`] run.
#[derive(Debug, Clone)]
pub struct NegotiationOutcome {
    /// Routed paths, in request order; `None` for edges that still failed
    /// in the final iteration.
    pub paths: Vec<Option<GridPath>>,
    /// Number of negotiation iterations executed.
    pub iterations: u32,
    /// `true` when every edge routed.
    pub complete: bool,
}

impl NegotiationOutcome {
    /// Total routed length in grid units.
    pub fn total_length(&self) -> u64 {
        self.paths
            .iter()
            .flatten()
            .map(|p| p.len())
            .sum()
    }
}

/// Order in which edges are attempted within each negotiation iteration.
///
/// The paper routes edges "one by one" without specifying the order;
/// ordering is a classic detailed-routing lever (long nets first leaves
/// short nets the flexibility to dodge). Exposed for ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetOrdering {
    /// The caller's order (default; deterministic and paper-neutral).
    #[default]
    AsGiven,
    /// Longest estimated connection first.
    LongestFirst,
    /// Shortest estimated connection first.
    ShortestFirst,
}

impl NetOrdering {
    /// Computes the attempt order over `edges` (indices into the slice).
    fn order(self, edges: &[RouteRequest]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..edges.len()).collect();
        let estimate = |r: &RouteRequest| -> u64 {
            // Cheapest source/target pairing as the length estimate.
            r.sources
                .iter()
                .flat_map(|s| r.targets.iter().map(move |t| s.manhattan(*t)))
                .min()
                .unwrap_or(0)
        };
        match self {
            NetOrdering::AsGiven => {}
            NetOrdering::LongestFirst => {
                idx.sort_by_key(|&i| std::cmp::Reverse(estimate(&edges[i])))
            }
            NetOrdering::ShortestFirst => idx.sort_by_key(|&i| estimate(&edges[i])),
        }
        idx
    }
}

/// Negotiation-based router (Algorithm 1): sequentially route every edge,
/// treating earlier paths as obstacles; when some edge fails, bump the
/// history cost of every cell used by routed paths (Eq. 5), rip
/// everything up, and retry — at most `γ` iterations.
///
/// Unlike the original PathFinder, which negotiates *global-routing*
/// congestion, this is detailed routing: a cell holds at most one channel,
/// so "congestion" is binary and the history cost steers A\* toward
/// less-contended regions across iterations.
#[derive(Debug, Clone, Copy)]
pub struct NegotiationRouter {
    /// Maximum number of iterations (`γ`, paper default 10).
    pub gamma: u32,
    /// History base cost (`b`, paper default 1.0).
    pub base: f64,
    /// History decay (`α`, paper default 0.1).
    pub alpha: f64,
    /// Edge attempt order within an iteration.
    pub ordering: NetOrdering,
}

impl Default for NegotiationRouter {
    fn default() -> Self {
        Self {
            gamma: 10,
            base: 1.0,
            alpha: 0.1,
            ordering: NetOrdering::AsGiven,
        }
    }
}

impl NegotiationRouter {
    /// Creates a router with the paper's defaults (γ=10, b=1.0, α=0.1).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the iteration threshold γ.
    pub fn with_gamma(mut self, gamma: u32) -> Self {
        self.gamma = gamma;
        self
    }

    /// Overrides the history parameters.
    pub fn with_history_params(mut self, base: f64, alpha: f64) -> Self {
        self.base = base;
        self.alpha = alpha;
        self
    }

    /// Overrides the net attempt order.
    pub fn with_ordering(mut self, ordering: NetOrdering) -> Self {
        self.ordering = ordering;
        self
    }

    /// Routes every request in `edges`; successful paths are left blocked
    /// in `obs` **only** when the whole set completes (so the caller can
    /// stack stages); on failure `obs` is restored.
    pub fn route_all(&self, obs: &mut ObsMap, edges: &[RouteRequest]) -> NegotiationOutcome {
        let _span = pacor_obs::span_with("negotiate", &[("edges", edges.len() as u64)]);
        let mut history = HistoryCost::with_params(obs.width(), obs.height(), self.base, self.alpha);
        let outer_cp = obs.checkpoint();
        let mut iterations = 0u32;

        let order = self.ordering.order(edges);
        loop {
            iterations += 1;
            pacor_obs::counter_add("negotiate.rounds", 1);
            let _round = pacor_obs::span_with("negotiate.round", &[("round", iterations as u64)]);
            let cp = obs.checkpoint();
            let mut paths: Vec<Option<GridPath>> = vec![None; edges.len()];
            let mut done = true;

            for &e in &order {
                let req = &edges[e];
                let path = {
                    let astar = AStar::with_history(obs, &history);
                    astar.route(&req.sources, &req.targets)
                };
                match path {
                    Some(p) => {
                        obs.block_all(p.cells().iter().copied());
                        paths[e] = Some(p);
                    }
                    None => {
                        done = false;
                    }
                }
            }

            if done {
                return NegotiationOutcome {
                    paths,
                    iterations,
                    complete: true,
                };
            }
            if iterations >= self.gamma {
                // Leave the partial result blocked-out rolled back: the
                // caller decides what to do with the failure.
                obs.rollback(outer_cp);
                return NegotiationOutcome {
                    paths,
                    iterations,
                    complete: false,
                };
            }
            // Steps 17–19: bump history along every routed path, then rip
            // all paths up.
            pacor_obs::counter_add("negotiate.ripups", paths.iter().flatten().count() as u64);
            history.bump_all(paths.iter().flatten().map(|p| p.cells()));
            obs.rollback(cp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacor_grid::Grid;

    fn open(w: u32, h: u32) -> ObsMap {
        ObsMap::new(&Grid::new(w, h).unwrap())
    }

    #[test]
    fn independent_edges_route_first_try() {
        let mut obs = open(10, 10);
        let edges = vec![
            RouteRequest::point_to_point(Point::new(0, 0), Point::new(5, 0)),
            RouteRequest::point_to_point(Point::new(0, 5), Point::new(5, 5)),
        ];
        let out = NegotiationRouter::new().route_all(&mut obs, &edges);
        assert!(out.complete);
        assert_eq!(out.iterations, 1);
        assert_eq!(out.total_length(), 10);
    }

    #[test]
    fn routed_paths_stay_blocked_on_success() {
        let mut obs = open(6, 6);
        let edges = vec![RouteRequest::point_to_point(Point::new(0, 0), Point::new(3, 0))];
        let out = NegotiationRouter::new().route_all(&mut obs, &edges);
        assert!(out.complete);
        for c in out.paths[0].as_ref().unwrap().iter() {
            assert!(obs.is_blocked(*c));
        }
    }

    #[test]
    fn negotiation_resolves_crossing_demand() {
        // Two nets whose straight routes would cross; the planar solution
        // sends the vertical net around the horizontal net's endpoints
        // (interior terminals leave room at x=0 and x=8).
        let mut obs = open(9, 9);
        let edges = vec![
            RouteRequest::point_to_point(Point::new(1, 4), Point::new(7, 4)),
            RouteRequest::point_to_point(Point::new(4, 1), Point::new(4, 7)),
        ];
        let out = NegotiationRouter::new().route_all(&mut obs, &edges);
        assert!(out.complete, "9x9 grid has room to dodge");
        // Disjointness.
        let a = out.paths[0].as_ref().unwrap();
        let b = out.paths[1].as_ref().unwrap();
        for c in a.iter() {
            assert!(!b.contains(*c));
        }
    }

    #[test]
    fn impossible_set_fails_and_restores_obsmap() {
        // A 1-cell-wide corridor cannot carry two nets.
        let mut g = Grid::new(7, 3).unwrap();
        for x in 0..7 {
            g.set_obstacle(Point::new(x, 0));
            g.set_obstacle(Point::new(x, 2));
        }
        let mut obs = ObsMap::new(&g);
        let before = obs.blocked_count();
        let edges = vec![
            RouteRequest::point_to_point(Point::new(0, 1), Point::new(6, 1)),
            RouteRequest::point_to_point(Point::new(1, 1), Point::new(5, 1)),
        ];
        let out = NegotiationRouter::new().with_gamma(3).route_all(&mut obs, &edges);
        assert!(!out.complete);
        assert_eq!(out.iterations, 3);
        assert_eq!(obs.blocked_count(), before, "failure must restore the map");
    }

    #[test]
    fn order_dependent_conflict_resolved_by_history() {
        // Edge 1 routed greedily blocks edge 2's only corridor; after a
        // failed iteration the history cost pushes edge 1 to its
        // alternative, freeing the corridor.
        let mut g = Grid::new(7, 5).unwrap();
        // Corridors at y=1 and y=3 between walls.
        for x in 1..6 {
            g.set_obstacle(Point::new(x, 2));
        }
        // Edge 2's terminals only connect through y=1: block its access
        // to other rows.
        g.set_obstacle(Point::new(0, 0));
        g.set_obstacle(Point::new(6, 0));
        let mut obs = ObsMap::new(&g);
        let edges = vec![
            // Edge 1 can use either corridor (terminals on open columns).
            RouteRequest::point_to_point(Point::new(0, 1), Point::new(6, 1)),
            // Edge 2 must use row 1 (terminals inside row 1).
            RouteRequest::point_to_point(Point::new(1, 0), Point::new(5, 0)),
        ];
        let out = NegotiationRouter::new().route_all(&mut obs, &edges);
        assert!(out.complete, "negotiation should converge");
        assert!(out.iterations >= 1);
    }

    #[test]
    fn orderings_preserve_request_alignment() {
        // Whatever the attempt order, paths[i] must answer edges[i].
        let edges = vec![
            RouteRequest::point_to_point(Point::new(0, 0), Point::new(9, 0)), // long
            RouteRequest::point_to_point(Point::new(0, 5), Point::new(2, 5)), // short
        ];
        for ordering in [
            NetOrdering::AsGiven,
            NetOrdering::LongestFirst,
            NetOrdering::ShortestFirst,
        ] {
            let mut obs = open(12, 12);
            let out = NegotiationRouter::new()
                .with_ordering(ordering)
                .route_all(&mut obs, &edges);
            assert!(out.complete, "{ordering:?}");
            let p0 = out.paths[0].as_ref().unwrap();
            let p1 = out.paths[1].as_ref().unwrap();
            assert_eq!(p0.source(), Point::new(0, 0), "{ordering:?}");
            assert_eq!(p1.source(), Point::new(0, 5), "{ordering:?}");
        }
    }

    #[test]
    fn longest_first_orders_by_estimate() {
        let edges = vec![
            RouteRequest::point_to_point(Point::new(0, 0), Point::new(1, 0)),
            RouteRequest::point_to_point(Point::new(0, 0), Point::new(9, 9)),
            RouteRequest::point_to_point(Point::new(0, 0), Point::new(4, 0)),
        ];
        assert_eq!(NetOrdering::LongestFirst.order(&edges), vec![1, 2, 0]);
        assert_eq!(NetOrdering::ShortestFirst.order(&edges), vec![0, 2, 1]);
        assert_eq!(NetOrdering::AsGiven.order(&edges), vec![0, 1, 2]);
    }

    #[test]
    fn empty_edge_list_is_trivially_complete() {
        let mut obs = open(4, 4);
        let out = NegotiationRouter::new().route_all(&mut obs, &[]);
        assert!(out.complete);
        assert_eq!(out.paths.len(), 0);
        assert_eq!(out.total_length(), 0);
    }

    #[test]
    fn gamma_one_gives_single_shot() {
        let mut obs = open(5, 5);
        let edges = vec![
            RouteRequest::point_to_point(Point::new(0, 2), Point::new(4, 2)),
            RouteRequest::point_to_point(Point::new(2, 0), Point::new(2, 4)),
        ];
        let out = NegotiationRouter::new().with_gamma(1).route_all(&mut obs, &edges);
        assert_eq!(out.iterations, 1);
        // On a 5x5 the second net may or may not complete in one shot —
        // but the call must report consistently.
        assert_eq!(out.complete, out.paths.iter().all(Option::is_some));
    }
}
