//! Runs all three flow variants over every Table 1 benchmark design and
//! prints a Table 2-style comparison — the paper's headline experiment.
//!
//! ```sh
//! cargo run --release --example benchmark_sweep            # S1–S5
//! cargo run --release --example benchmark_sweep -- --full  # + Chip1/2
//! ```

use pacor_repro::pacor::{BenchDesign, FlowConfig, FlowVariant, PacorFlow, RouteReport};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let designs: Vec<BenchDesign> = if full {
        BenchDesign::ALL.to_vec()
    } else {
        BenchDesign::SYNTH.to_vec()
    };

    println!("{}", RouteReport::table_header());
    for design in designs {
        let problem = design.synthesize(42);
        for variant in FlowVariant::ALL {
            let flow = PacorFlow::new(FlowConfig::for_variant(variant));
            match flow.run(&problem) {
                Ok(report) => println!("{}", report.table_row()),
                Err(e) => eprintln!("{:?} {variant:?}: {e}", design),
            }
        }
        println!();
    }

    println!("(δ = 1 grid unit; seed 42; see EXPERIMENTS.md for analysis)");
}
