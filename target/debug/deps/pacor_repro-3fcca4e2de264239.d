/root/repo/target/debug/deps/pacor_repro-3fcca4e2de264239.d: src/lib.rs

/root/repo/target/debug/deps/libpacor_repro-3fcca4e2de264239.rlib: src/lib.rs

/root/repo/target/debug/deps/libpacor_repro-3fcca4e2de264239.rmeta: src/lib.rs

src/lib.rs:
