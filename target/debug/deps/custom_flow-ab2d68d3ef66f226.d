/root/repo/target/debug/deps/custom_flow-ab2d68d3ef66f226.d: tests/custom_flow.rs

/root/repo/target/debug/deps/custom_flow-ab2d68d3ef66f226: tests/custom_flow.rs

tests/custom_flow.rs:
