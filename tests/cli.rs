//! End-to-end tests of the `pacor` command-line binary.

use std::process::Command;

fn pacor(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_pacor-cli"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn no_args_prints_usage() {
    let out = pacor(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn synth_emits_problem_json() {
    let out = pacor(&["synth", "S1", "7"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"name\": \"S1\""));
    assert!(text.contains("\"valves\""));
    assert!(text.contains("\"pins\""));
}

#[test]
fn synth_rejects_unknown_design() {
    let out = pacor(&["synth", "S99"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown design"));
}

#[test]
fn route_by_design_name() {
    let out = pacor(&["route", "S1"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"matched_clusters\""));
    assert!(text.contains("\"valves_routed\": 5"));
}

#[test]
fn synth_then_route_roundtrip() {
    let synth = pacor(&["synth", "S2", "3"]);
    assert!(synth.status.success());
    let dir = std::env::temp_dir().join("pacor_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("s2.json");
    std::fs::write(&path, &synth.stdout).unwrap();
    let route = pacor(&["route", path.to_str().unwrap()]);
    assert!(route.status.success());
    let text = String::from_utf8_lossy(&route.stdout);
    assert!(text.contains("\"design\": \"S2\""));
    assert!(text.contains("\"valves_total\": 10"));
}

#[test]
fn route_rejects_garbage_file() {
    let dir = std::env::temp_dir().join("pacor_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage.json");
    std::fs::write(&path, b"{ not json").unwrap();
    let out = pacor(&["route", path.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("parsing"));
}

#[test]
fn route_rejects_unknown_flag() {
    let out = pacor(&["route", "--tracee-out", "x.json", "S1"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown option --tracee-out"), "{err}");
    assert!(
        err.contains("--trace-out"),
        "should list supported flags: {err}"
    );
}

#[test]
fn synth_rejects_any_flag() {
    let out = pacor(&["synth", "--threads", "2", "S1"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option --threads"));
}

#[test]
fn route_quiet_suppresses_report() {
    let out = pacor(&["route", "--quiet", "S1"]);
    assert!(out.status.success());
    assert!(out.stdout.is_empty(), "--quiet must print nothing");
}

#[test]
fn route_writes_trace_and_metrics_files() {
    let dir = std::env::temp_dir().join("pacor_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("s1_trace.json");
    let metrics = dir.join("s1_metrics.json");
    let out = pacor(&[
        "route",
        "--quiet",
        "--trace-out",
        trace.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
        "S1",
    ]);
    assert!(out.status.success());
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    assert!(trace_text.trim_start().starts_with('['));
    assert!(trace_text.contains("\"ph\":\"X\""), "needs span events");
    assert!(trace_text.contains("stage.escape"));
    let metrics_text = std::fs::read_to_string(&metrics).unwrap();
    assert!(metrics_text.contains("\"counters\""));
    assert!(metrics_text.contains("astar.expansions"));
}

#[test]
fn metrics_out_identical_at_one_and_four_threads() {
    let dir = std::env::temp_dir().join("pacor_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let run = |threads: &str, file: &str| {
        let path = dir.join(file);
        let out = pacor(&[
            "route",
            "--quiet",
            "--threads",
            threads,
            "--metrics-out",
            path.to_str().unwrap(),
            "S2",
        ]);
        assert!(out.status.success());
        std::fs::read(&path).unwrap()
    };
    let single = run("1", "m1.json");
    let multi = run("4", "m4.json");
    assert_eq!(single, multi, "metrics bytes must not depend on --threads");
}

#[test]
fn route_accepts_both_ripup_policies() {
    for policy in ["full", "incremental"] {
        let out = pacor(&["route", "--ripup-policy", policy, "S1"]);
        assert!(out.status.success(), "--ripup-policy {policy} must route");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("\"valves_routed\": 5"), "{policy}: {text}");
    }
}

#[test]
fn route_rejects_bad_ripup_policy() {
    let out = pacor(&["route", "--ripup-policy", "sometimes", "S1"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("expected full or incremental"),
        "must name the accepted values: {err}"
    );
}

#[test]
fn route_accepts_both_negotiation_modes() {
    for mode in ["serial", "parallel"] {
        let out = pacor(&["route", "--negotiation-mode", mode, "--threads", "2", "S1"]);
        assert!(out.status.success(), "--negotiation-mode {mode} must route");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("\"valves_routed\": 5"), "{mode}: {text}");
    }
}

#[test]
fn route_rejects_bad_negotiation_mode() {
    let out = pacor(&["route", "--negotiation-mode", "speculative", "S1"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("expected serial or parallel"),
        "must name the accepted values: {err}"
    );
}

#[test]
fn route_rejects_bad_escape_solver() {
    let out = pacor(&["route", "--escape-solver", "warm", "S1"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("expected incremental or reference"),
        "must name the accepted values: {err}"
    );
}

#[test]
fn escape_solvers_agree_on_report() {
    // The incremental solver must route the identical result as the
    // full-rebuild reference; only wall-clock fields and work counters
    // may differ.
    let strip = |bytes: &[u8]| {
        let text = std::str::from_utf8(bytes).unwrap();
        let mut r: pacor_repro::pacor::RouteReport = serde_json::from_str(text).unwrap();
        r.runtime = std::time::Duration::ZERO;
        r.metrics = pacor_repro::pacor::FlowMetrics::default();
        r
    };
    let incremental = pacor(&["route", "--escape-solver", "incremental", "S2"]);
    let reference = pacor(&["route", "--escape-solver", "reference", "S2"]);
    assert!(incremental.status.success() && reference.status.success());
    assert_eq!(strip(&incremental.stdout), strip(&reference.stdout));
}

#[test]
fn negotiation_modes_agree_on_report() {
    // The parallel mode must land on the identical routed result; the
    // reports differ only in wall-clock fields and work counters (a
    // rejected speculation is an A* search the serial mode never ran),
    // so both are normalized away before comparing.
    let strip = |bytes: &[u8]| {
        let text = std::str::from_utf8(bytes).unwrap();
        let mut r: pacor_repro::pacor::RouteReport = serde_json::from_str(text).unwrap();
        r.runtime = std::time::Duration::ZERO;
        r.metrics = pacor_repro::pacor::FlowMetrics::default();
        r
    };
    let serial = pacor(&["route", "--negotiation-mode", "serial", "S2"]);
    let parallel = pacor(&[
        "route",
        "--negotiation-mode",
        "parallel",
        "--threads",
        "4",
        "S2",
    ]);
    assert!(serial.status.success() && parallel.status.success());
    assert_eq!(strip(&serial.stdout), strip(&parallel.stdout));
}

#[test]
fn render_emits_svg() {
    let out = pacor(&["render", "S1"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("<svg"));
    assert!(text.trim_end().ends_with("</svg>"));
}

#[test]
fn table2_prints_all_synth_designs() {
    let out = pacor(&["table2"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for d in ["S1", "S2", "S3", "S4", "S5"] {
        assert!(text.contains(d), "missing {d}");
    }
    assert!(text.contains("PACOR"));
    assert!(text.contains("w/o Sel"));
}

#[test]
fn route_writes_post_mortem_report() {
    let dir = std::env::temp_dir().join("pacor_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("s2_postmortem.json");
    let out = pacor(&[
        "route",
        "--quiet",
        "--report-out",
        path.to_str().unwrap(),
        "S2",
    ]);
    assert!(out.status.success());
    let text = std::fs::read_to_string(&path).unwrap();
    // The report round-trips through the serde layer and exposes its
    // sections as typed values.
    let v: serde::Value = serde_json::from_str(&text).unwrap();
    assert_eq!(
        v.field("schema").unwrap(),
        &serde::Value::Str("pacor-postmortem-v1".into())
    );
    let outcome = v.field("outcome").unwrap();
    assert_eq!(outcome.field("clusters").unwrap(), &serde::Value::Int(5));
    for section in [
        "unrouted_nets",
        "negotiation",
        "history",
        "hot_cells",
        "lm_clusters",
        "escape",
        "snapshots",
    ] {
        assert!(v.field(section).is_ok(), "report must carry {section}");
    }
}

#[test]
fn report_out_names_unrouted_nets_on_a_failing_chip() {
    // A chip with more clusters than control pins cannot fully escape;
    // the post-mortem must name the unrouted nets.
    let starved = pacor_repro::pacor::DesignParams {
        name: "T1-starved",
        width: 20,
        height: 20,
        valves: 8,
        control_pins: 2,
        obstacles: 0,
        multi_clusters: 3,
        pairs_only: true,
    };
    let problem = pacor_repro::pacor::synthesize_params(starved, 42);
    let dir = std::env::temp_dir().join("pacor_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let problem_path = dir.join("starved.json");
    std::fs::write(
        &problem_path,
        serde_json::to_string_pretty(&problem).unwrap(),
    )
    .unwrap();
    let report_path = dir.join("starved_postmortem.json");
    let out = pacor(&[
        "route",
        "--quiet",
        "--report-out",
        report_path.to_str().unwrap(),
        problem_path.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let text = std::fs::read_to_string(&report_path).unwrap();
    let v: serde::Value = serde_json::from_str(&text).unwrap();
    let unrouted = v.field("outcome").unwrap().field("unrouted").unwrap();
    match unrouted {
        serde::Value::Array(ids) => assert!(
            !ids.is_empty(),
            "starved chip must report unrouted nets: {text}"
        ),
        other => panic!("unrouted must be an array, got {other:?}"),
    }
    match v.field("unrouted_nets").unwrap() {
        serde::Value::Array(nets) => assert!(!nets.is_empty()),
        other => panic!("unrouted_nets must be an array, got {other:?}"),
    }
}

#[test]
fn stream_out_writes_versioned_jsonl() {
    let dir = std::env::temp_dir().join("pacor_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("s1_stream.jsonl");
    let out = pacor(&[
        "route",
        "--quiet",
        "--stream-out",
        path.to_str().unwrap(),
        "S1",
    ]);
    assert!(out.status.success());
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 2, "stream must carry events: {text}");
    for l in &lines {
        serde_json::from_str::<serde::Value>(l).expect("every line parses");
        assert!(l.contains("\"schema\":\"pacor-telemetry-v1\""), "{l}");
    }
    let first = lines.first().unwrap();
    assert!(first.contains("\"kind\":\"flow_started\""), "{first}");
    assert!(first.contains("\"design\":\"S1\""));
    let last = lines.last().unwrap();
    assert!(last.contains("\"kind\":\"flow_finished\""), "{last}");
    assert!(
        last.contains(&format!("\"events\":{}", lines.len() - 1)),
        "terminal event must count the stream: {last}"
    );
    // The temp file must be gone after a clean finish (atomic rename).
    assert!(
        !dir.join("s1_stream.jsonl.tmp").exists(),
        "clean finish must leave no temp file"
    );
}

#[test]
fn stream_out_dash_streams_to_stderr() {
    let out = pacor(&["route", "--quiet", "--stream-out", "-", "S1"]);
    assert!(out.status.success());
    assert!(out.stdout.is_empty(), "--quiet must keep stdout empty");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("\"kind\":\"flow_started\""), "{err}");
    assert!(err.contains("\"kind\":\"flow_finished\""), "{err}");
}

#[test]
fn quiet_suppresses_progress_ticker() {
    // `--progress` prints a human ticker on stderr; `--quiet` must
    // silence it entirely — stdout AND stderr stay empty.
    let loud = pacor(&["route", "--progress", "S1"]);
    assert!(loud.status.success());
    let loud_err = String::from_utf8_lossy(&loud.stderr);
    assert!(
        loud_err.contains("[pacor]"),
        "--progress must tick on stderr: {loud_err}"
    );
    let quiet = pacor(&["route", "--progress", "--quiet", "S1"]);
    assert!(quiet.status.success());
    assert!(quiet.stdout.is_empty(), "--quiet must print no report");
    assert!(
        quiet.stderr.is_empty(),
        "--quiet must silence the ticker and any heartbeat: {}",
        String::from_utf8_lossy(&quiet.stderr)
    );
}

#[test]
fn watchdog_derives_budgets_from_bench_baselines() {
    // Point the watchdog at the committed bench report: the run must
    // succeed and (being far under 4x budgets) emit no alarms.
    let dir = std::env::temp_dir().join("pacor_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("s1_watchdog.jsonl");
    let bench = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_flow.json");
    let out = pacor(&[
        "route",
        "--quiet",
        "--watchdog",
        bench,
        "--stream-out",
        path.to_str().unwrap(),
        "S1",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"kind\":\"flow_finished\""));
    assert!(
        !text.contains("\"kind\":\"budget_exceeded\""),
        "a tiny chip must stay within 4x bench budgets: {text}"
    );
}

#[test]
fn watchdog_rejects_unreadable_baseline() {
    let out = pacor(&["route", "--watchdog", "/no/such/bench.json", "S1"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("reading"), "must name the failure: {err}");
}

#[test]
fn digest_out_writes_versioned_digest() {
    let dir = std::env::temp_dir().join("pacor_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("s2_digest.json");
    let out = pacor(&[
        "route",
        "--quiet",
        "--digest-out",
        path.to_str().unwrap(),
        "S2",
    ]);
    assert!(out.status.success());
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"schema\": \"pacor-rundigest-v1\""), "{text}");
    for section in [
        "\"fingerprint\"",
        "\"outcome\"",
        "\"clusters\"",
        "\"counters\"",
        "\"histograms\"",
        "\"wall\"",
    ] {
        assert!(text.contains(section), "digest must carry {section}");
    }
    // The wall-clock sub-object renders last, so everything before it
    // is the deterministic prefix other runs can be byte-compared on.
    assert!(
        text.find("\"wall\"").unwrap() > text.find("\"histograms\"").unwrap(),
        "wall must render last: {text}"
    );
}

#[test]
fn digest_deterministic_prefix_identical_across_threads_and_modes() {
    let dir = std::env::temp_dir().join("pacor_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let run = |extra: &[&str], file: &str| {
        let path = dir.join(file);
        let mut args = vec!["route", "--quiet", "--digest-out", path.to_str().unwrap()];
        args.extend_from_slice(extra);
        args.push("S2");
        let out = pacor(&args);
        assert!(out.status.success(), "{extra:?} must route");
        let text = std::fs::read_to_string(&path).unwrap();
        let wall = text.find("\"wall\"").expect("digest has a wall object");
        text[..wall].to_string()
    };
    let base = run(&[], "d_base.json");
    let threaded = run(&["--threads", "4"], "d_t4.json");
    let parallel = run(
        &["--negotiation-mode", "parallel", "--threads", "2"],
        "d_par.json",
    );
    let full = run(&["--ripup-policy", "full"], "d_full.json");
    assert_eq!(base, threaded, "threads must not move the digest prefix");
    assert_eq!(base, parallel, "negotiation mode must not move the prefix");
    assert_eq!(base, full, "rip-up policy must not move the prefix");
}

#[test]
fn ledger_accumulates_one_line_per_run() {
    let dir = std::env::temp_dir().join("pacor_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("runs.jsonl");
    let _ = std::fs::remove_file(&path);
    for threads in ["1", "4"] {
        let out = pacor(&[
            "route",
            "--quiet",
            "--threads",
            threads,
            "--ledger",
            path.to_str().unwrap(),
            "S1",
        ]);
        assert!(out.status.success());
    }
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(lines.len(), 2, "one compact line per run: {text}");
    for l in &lines {
        assert!(l.contains("\"schema\": \"pacor-rundigest-v1\""), "{l}");
        serde_json::from_str::<serde::Value>(l).expect("every ledger line parses");
    }
    assert!(
        !dir.join("runs.jsonl.tmp").exists(),
        "atomic append must leave no temp file"
    );
}

#[test]
fn export_flags_error_cleanly_on_missing_parent_dir() {
    let missing = std::env::temp_dir()
        .join("pacor_cli_no_such_dir")
        .join("out.json");
    let _ = std::fs::remove_dir_all(missing.parent().unwrap());
    for flag in [
        "--report-out",
        "--metrics-out",
        "--trace-out",
        "--stream-out",
        "--digest-out",
        "--ledger",
    ] {
        let out = pacor(&["route", "--quiet", flag, missing.to_str().unwrap(), "S1"]);
        assert!(!out.status.success(), "{flag} must fail, not succeed");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("writing"),
            "{flag} must report the path: {err}"
        );
        assert!(
            !err.contains("panicked"),
            "{flag} must error, not panic: {err}"
        );
    }
}
