/root/repo/target/debug/examples/assay_pipeline-4420c97be9cbe8be.d: examples/assay_pipeline.rs

/root/repo/target/debug/examples/assay_pipeline-4420c97be9cbe8be: examples/assay_pipeline.rs

examples/assay_pipeline.rs:
