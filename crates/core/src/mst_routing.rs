//! MST-based routing of clusters without the length-matching constraint
//! (paper Section 3, "MST-based cluster routing").

use crate::{RoutedCluster, RoutedKind};
use pacor_grid::{GridPath, ObsMap, Point};
use pacor_route::{AStar, AStarScratch};
use pacor_valves::Cluster;

/// Routes one ordinary cluster: valves are connected in minimum-spanning-
/// tree order, each new valve joining the already-routed net by
/// point-to-path A\* (which subsumes the point-to-point and path-to-path
/// modes of the paper). Successful paths are blocked in `obs`.
///
/// Returns `None` — with `obs` untouched — when some valve cannot reach
/// the net; the caller de-clusters and retries.
pub fn route_mst_cluster(
    obs: &mut ObsMap,
    cluster: &Cluster,
    positions: &[Point],
) -> Option<RoutedCluster> {
    let mut scratch = AStarScratch::new();
    route_mst_owned(obs, cluster.clone(), positions.to_vec(), &mut scratch).ok()
}

/// Owned-input worker behind [`route_mst_cluster`]: consumes the cluster
/// and positions (handing them back on failure, so the batch loop never
/// clones) and reuses the caller's A\* scratch across clusters.
fn route_mst_owned(
    obs: &mut ObsMap,
    cluster: Cluster,
    positions: Vec<Point>,
    scratch: &mut AStarScratch,
) -> Result<RoutedCluster, (Cluster, Vec<Point>)> {
    assert_eq!(cluster.len(), positions.len(), "positions per member");
    if cluster.len() == 1 {
        // No internal net; the valve cell itself is the terminal. Block it
        // so other nets cannot run through the valve.
        obs.block(positions[0]);
        return Ok(RoutedCluster {
            cluster,
            member_positions: positions,
            kind: RoutedKind::Singleton,
            escape: None,
        });
    }

    // Prim order: start at valve 0, repeatedly take the valve closest to
    // the connected set (by Manhattan distance).
    let n = positions.len();
    let mut in_net = vec![false; n];
    in_net[0] = true;
    let mut order: Vec<usize> = Vec::with_capacity(n - 1);
    for _ in 1..n {
        let next = (0..n)
            .filter(|&i| !in_net[i])
            .min_by_key(|&i| {
                (0..n)
                    .filter(|&j| in_net[j])
                    .map(|j| positions[i].manhattan(positions[j]))
                    .min()
                    .unwrap_or(u64::MAX)
            })
            .expect("some valve remains");
        in_net[next] = true;
        order.push(next);
    }

    let cp = obs.checkpoint();
    let mut net_cells: Vec<Point> = vec![positions[0]];
    let mut paths: Vec<GridPath> = Vec::new();
    for &i in &order {
        let path = AStar::new(obs).route_with_scratch(&[positions[i]], &net_cells, scratch);
        match path {
            Some(p) => {
                obs.block_all(p.cells().iter().copied());
                net_cells.extend(p.cells().iter().copied());
                paths.push(p);
            }
            None => {
                obs.rollback(cp);
                return Err((cluster, positions));
            }
        }
    }
    // Ensure the lone starting valve cell is blocked even when every path
    // attached elsewhere.
    obs.block(positions[0]);

    Ok(RoutedCluster {
        cluster,
        member_positions: positions,
        kind: RoutedKind::Mst { paths },
        escape: None,
    })
}

/// Routes a batch of ordinary clusters with de-clustering on failure:
/// a cluster that fails is split in half (recursively, down to
/// singletons, which always succeed). Cluster ids of split-off parts are
/// assigned from `next_id` upward.
pub fn route_ordinary_clusters(
    obs: &mut ObsMap,
    clusters: Vec<(Cluster, Vec<Point>)>,
    next_id: &mut u32,
) -> Vec<RoutedCluster> {
    pacor_obs::counter_add("mst.clusters", clusters.len() as u64);
    let mut queue: std::collections::VecDeque<(Cluster, Vec<Point>)> = clusters.into();
    let mut out = Vec::new();
    let mut scratch = AStarScratch::new();
    while let Some((cluster, positions)) = queue.pop_front() {
        match route_mst_owned(obs, cluster, positions, &mut scratch) {
            Ok(rc) => {
                pacor_obs::counter_add(
                    "mst.edges",
                    match &rc.kind {
                        RoutedKind::Mst { paths } => paths.len() as u64,
                        _ => 0,
                    },
                );
                out.push(rc)
            }
            Err((cluster, positions)) => match cluster.split(*next_id) {
                Some((a, b)) => {
                    *next_id += 2;
                    pacor_obs::counter_add("mst.splits", 1);
                    let pos_of = |c: &Cluster| {
                        c.members()
                            .iter()
                            .map(|m| {
                                let k = cluster
                                    .members()
                                    .iter()
                                    .position(|x| x == m)
                                    .expect("member of parent");
                                positions[k]
                            })
                            .collect::<Vec<_>>()
                    };
                    let (pa, pb) = (pos_of(&a), pos_of(&b));
                    queue.push_back((a, pa));
                    queue.push_back((b, pb));
                }
                None => {
                    // A singleton can never fail above; defensive fallback.
                    unreachable!("singleton cluster routing cannot fail");
                }
            },
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacor_grid::Grid;
    use pacor_valves::{ClusterId, ValveId};

    fn open(w: u32, h: u32) -> ObsMap {
        ObsMap::new(&Grid::new(w, h).unwrap())
    }

    fn cluster(n: u32) -> Cluster {
        Cluster::new(ClusterId(0), (0..n).map(ValveId).collect(), false)
    }

    #[test]
    fn singleton_blocks_valve_cell() {
        let mut obs = open(6, 6);
        let rc = route_mst_cluster(&mut obs, &cluster(1), &[Point::new(3, 3)]).unwrap();
        assert!(matches!(rc.kind, RoutedKind::Singleton));
        assert!(obs.is_blocked(Point::new(3, 3)));
    }

    #[test]
    fn pair_routes_direct() {
        let mut obs = open(10, 10);
        let rc = route_mst_cluster(
            &mut obs,
            &cluster(2),
            &[Point::new(1, 1), Point::new(7, 1)],
        )
        .unwrap();
        assert_eq!(rc.total_length(), 6);
        for c in rc.net_cells() {
            assert!(obs.is_blocked(c));
        }
    }

    #[test]
    fn steiner_sharing_via_point_to_path() {
        // The third valve may connect anywhere on the existing *path*, so
        // the total can never exceed the plain MST bound (7 + 7 = 14) and
        // often beats it by attaching mid-path.
        let mut obs = open(12, 12);
        let rc = route_mst_cluster(
            &mut obs,
            &cluster(3),
            &[Point::new(1, 5), Point::new(9, 5), Point::new(5, 8)],
        )
        .unwrap();
        assert!(rc.total_length() <= 14, "length {}", rc.total_length());
        // The second connection terminates on the first path's cells
        // (point-to-path), not necessarily on a valve.
        match &rc.kind {
            RoutedKind::Mst { paths } => {
                assert_eq!(paths.len(), 2);
                assert!(paths[0].contains(paths[1].target()));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn blocked_cluster_returns_none_and_restores() {
        let mut grid = Grid::new(9, 9).unwrap();
        for y in 0..9 {
            grid.set_obstacle(Point::new(4, y));
        }
        let mut obs = ObsMap::new(&grid);
        let before = obs.blocked_count();
        let r = route_mst_cluster(
            &mut obs,
            &cluster(2),
            &[Point::new(1, 1), Point::new(7, 1)],
        );
        assert!(r.is_none());
        assert_eq!(obs.blocked_count(), before);
    }

    #[test]
    fn declustering_splits_unroutable() {
        let mut grid = Grid::new(9, 9).unwrap();
        for y in 0..9 {
            grid.set_obstacle(Point::new(4, y));
        }
        let mut obs = ObsMap::new(&grid);
        let mut next_id = 10;
        let out = route_ordinary_clusters(
            &mut obs,
            vec![(
                cluster(2),
                vec![Point::new(1, 1), Point::new(7, 1)],
            )],
            &mut next_id,
        );
        // Split into two singletons.
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|rc| matches!(rc.kind, RoutedKind::Singleton)));
        assert_eq!(next_id, 12);
    }

    #[test]
    fn batch_routes_in_order() {
        let mut obs = open(14, 14);
        let mut next_id = 5;
        let out = route_ordinary_clusters(
            &mut obs,
            vec![
                (
                    Cluster::new(ClusterId(0), vec![ValveId(0), ValveId(1)], false),
                    vec![Point::new(1, 1), Point::new(5, 1)],
                ),
                (
                    Cluster::new(ClusterId(1), vec![ValveId(2)], false),
                    vec![Point::new(10, 10)],
                ),
            ],
            &mut next_id,
        );
        assert_eq!(out.len(), 2);
        assert_eq!(next_id, 5);
    }

    #[test]
    #[should_panic(expected = "positions per member")]
    fn mismatched_positions_panic() {
        let mut obs = open(6, 6);
        route_mst_cluster(&mut obs, &cluster(2), &[Point::new(1, 1)]);
    }
}
