//! Fixed-bucket histograms for hot-path value distributions.

/// Number of power-of-two buckets; values ≥ 2^(BUCKETS−2) share the last.
const BUCKETS: usize = 17;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `0` counts zeros, bucket `i ≥ 1` counts values in
/// `[2^(i−1), 2^i)`, and the final bucket absorbs everything larger.
/// All state is integral, so merging and exporting are exactly
/// reproducible — no floating-point quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl Histogram {
    /// Records one sample. The sum saturates rather than wraps.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    fn bucket_of(value: u64) -> usize {
        ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The bucket counts, low to high.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_follow_powers_of_two() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1024, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.buckets()[0], 1); // 0
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 2); // 2, 3
        assert_eq!(h.buckets()[3], 1); // 4
        assert_eq!(h.buckets()[11], 1); // 1024
        assert_eq!(h.buckets()[BUCKETS - 1], 1); // overflow bucket
    }

    #[test]
    fn empty_histogram_reports_zero_min() {
        let h = Histogram::default();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn merge_matches_sequential_observation() {
        let mut all = Histogram::default();
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in 0..100u64 {
            all.observe(v * 31 % 257);
            if v % 2 == 0 {
                a.observe(v * 31 % 257);
            } else {
                b.observe(v * 31 % 257);
            }
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn merging_empty_is_identity() {
        let mut h = Histogram::default();
        h.observe(5);
        let before = h.clone();
        h.merge(&Histogram::default());
        assert_eq!(h, before);
    }
}
