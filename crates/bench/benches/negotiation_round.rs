//! Negotiation-router benchmark: serial vs speculative-parallel round
//! execution, under both rip-up policies, on a dense crossing workload.
//!
//! The two modes produce byte-identical routed results (see
//! `crates/route/tests/properties.rs` and `tests/determinism.rs`), so
//! these numbers compare cost only. On a single-core host the parallel
//! mode cannot win wall-clock — it measures the speculation overhead
//! (snapshot searches plus commit bookkeeping) that a multi-core host
//! would amortize across workers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pacor::grid::{Grid, ObsMap, Point};
use pacor::route::{NegotiationMode, NegotiationRouter, RipUpPolicy, RouteRequest};

/// Deterministic scattered obstacles, ~5% density (the kernels bench's
/// recipe), on a 48×48 grid — the B2-dense48 scale where negotiation
/// genuinely collides and re-rounds.
fn obstacle_grid(n: u32) -> ObsMap {
    let mut grid = Grid::new(n, n).unwrap();
    for k in 0..(n * n / 20) {
        let x = (k * 37) % n;
        let y = (k * 61) % n;
        grid.set_obstacle(Point::new(x as i32, y as i32));
    }
    ObsMap::new(&grid)
}

/// A deterministic mix of long crossing nets and short local nets whose
/// straight routes collide, forcing multi-round negotiation.
fn crossing_requests(n: i32, count: usize) -> Vec<RouteRequest> {
    let mut reqs = Vec::with_capacity(count);
    for k in 0..count as i32 {
        let a = 1 + (k * 7) % (n - 2);
        let b = 1 + (k * 11) % (n - 2);
        let req = if k % 2 == 0 {
            // Horizontal span at row `a`.
            RouteRequest::point_to_point(Point::new(1, a), Point::new(n - 2, b))
        } else {
            // Vertical span at column `a`.
            RouteRequest::point_to_point(Point::new(a, 1), Point::new(b, n - 2))
        };
        reqs.push(req);
    }
    reqs
}

fn bench_negotiation_round(c: &mut Criterion) {
    let n = 48u32;
    let obs = obstacle_grid(n);
    let edges = crossing_requests(n as i32, 40);
    let mut group = c.benchmark_group("negotiation_round");
    for policy in [RipUpPolicy::Full, RipUpPolicy::Incremental] {
        for (mode, threads) in [
            (NegotiationMode::Serial, 1usize),
            (NegotiationMode::Parallel, 4),
        ] {
            let label = format!("{}-{}", policy.label(), mode.label());
            let router = NegotiationRouter::new()
                .with_ripup_policy(policy)
                .with_mode(mode)
                .with_threads(threads);
            group.bench_with_input(BenchmarkId::new(label, n), &obs, |b, obs| {
                b.iter(|| {
                    let mut fresh = obs.clone();
                    router.route_all(&mut fresh, &edges)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_negotiation_round);
criterion_main!(benches);
