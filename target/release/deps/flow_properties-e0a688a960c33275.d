/root/repo/target/release/deps/flow_properties-e0a688a960c33275.d: tests/flow_properties.rs

/root/repo/target/release/deps/flow_properties-e0a688a960c33275: tests/flow_properties.rs

tests/flow_properties.rs:
