//! A\* search over the routing grid: point-to-point, point-to-path and
//! path-to-path modes.
//!
//! Two kernels back the public API:
//!
//! * the **flat-array kernel** ([`AStar::route_with_scratch`]) keeps
//!   g-scores, parents and visited/target marks in grid-indexed vectors
//!   inside a reusable [`AStarScratch`], invalidated in O(1) between
//!   queries by a generation counter. Unit-cost searches use a bucket
//!   queue indexed by the f-score (f only grows under the consistent
//!   Manhattan heuristic); history-weighted searches keep a binary heap
//!   because fractional penalties break the bucket structure.
//! * the **reference kernel** ([`AStar::route_reference`]) is the
//!   original `HashMap`/`BinaryHeap` implementation, kept as the
//!   executable specification for equivalence tests and benchmarks.
//!
//! Both kernels expand cells in the exact same order — ties on f are
//! broken by smaller g, then smaller [`Point`] (x, then y) — so they
//! return bit-identical paths, not merely equal-cost ones.

use crate::HistoryCost;
use pacor_grid::{GridPath, ObsMap, Point};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Fixed-point scale for fractional history costs inside the integer A\*
/// priority queue.
const SCALE: u64 = 1024;

/// "No parent" marker in [`AStarScratch::parent`].
const NO_PARENT: u32 = u32::MAX;

/// An open-list entry of the bucket queue: candidate cell `idx` with
/// tentative cost `g`, plus its Point-order `key` for tie-breaking.
#[derive(Debug, Clone, Copy)]
struct Open {
    g: u64,
    key: u64,
    idx: u32,
}

/// Per-query kernel counters, accumulated locally (plain integer adds)
/// and flushed to `pacor-obs` once per query — the hot loops never
/// touch thread-local state, so an unconfigured run pays only one
/// `pacor_obs::active()` check per query.
#[derive(Debug, Clone, Copy, Default)]
struct KernelStats {
    expansions: u64,
    bucket_pushes: u64,
    heap_pushes: u64,
}

impl KernelStats {
    /// Flushes the per-query counts into the active recording frame,
    /// if any. `resets` distinguishes flat-kernel queries (which bump
    /// the scratch generation) from reference-kernel queries.
    fn flush(&self, resets: u64) {
        if !pacor_obs::active() {
            return;
        }
        pacor_obs::counter_add("astar.queries", 1);
        pacor_obs::counter_add("astar.scratch_resets", resets);
        pacor_obs::counter_add("astar.expansions", self.expansions);
        pacor_obs::counter_add("astar.bucket_pushes", self.bucket_pushes);
        pacor_obs::counter_add("astar.heap_pushes", self.heap_pushes);
    }
}

/// Orders like [`Point`]'s derived `Ord` (x, then y) for in-bounds
/// (non-negative) coordinates.
#[inline]
fn point_key(p: Point) -> u64 {
    ((p.x as u64) << 32) | (p.y as u32 as u64)
}

/// Reusable per-thread search state for the flat-array A\* kernel.
///
/// Allocates grid-sized vectors once and reuses them across queries; a
/// generation counter makes cross-query invalidation free (a cell's
/// `g`/`parent` entries are live only when its `stamp` equals the
/// current generation). Create one per worker thread and feed it to
/// [`AStar::route_with_scratch`], or use [`AStar::route`] which keeps
/// one in thread-local storage.
#[derive(Debug, Default)]
pub struct AStarScratch {
    width: usize,
    height: usize,
    generation: u32,
    g: Vec<u64>,
    parent: Vec<u32>,
    stamp: Vec<u32>,
    target_stamp: Vec<u32>,
    /// Cells the query actually *popped* (expanded), as opposed to merely
    /// stamped into the open list — the speculative negotiation commit
    /// rule is built on this set (see [`AStarScratch::expanded_cells`]).
    expanded_stamp: Vec<u32>,
    /// Bucket queue for unit-cost searches, indexed by f / SCALE.
    buckets: Vec<Vec<Open>>,
    /// Heap for history-weighted searches: `(f, g, point key, idx)`.
    heap: BinaryHeap<Reverse<(u64, u64, u64, u32)>>,
    /// Per-query kernel counters, reset by [`AStarScratch::begin`].
    stats: KernelStats,
}

impl AStarScratch {
    /// Creates an empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a query over a `width × height` grid: resizes buffers if
    /// the grid changed and advances the generation counter.
    fn begin(&mut self, width: usize, height: usize) {
        if self.width != width || self.height != height {
            let n = width * height;
            self.width = width;
            self.height = height;
            self.g = vec![0; n];
            self.parent = vec![NO_PARENT; n];
            self.stamp = vec![0; n];
            self.target_stamp = vec![0; n];
            self.expanded_stamp = vec![0; n];
            self.generation = 0;
        }
        if self.generation == u32::MAX {
            // Stamp wrap-around: pay one full clear every 2^32 queries.
            self.stamp.fill(0);
            self.target_stamp.fill(0);
            self.expanded_stamp.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.heap.clear();
        self.stats = KernelStats::default();
    }

    #[inline]
    fn point_of(&self, idx: usize) -> Point {
        Point::new((idx % self.width) as i32, (idx / self.width) as i32)
    }

    /// Iterates every cell the most recent query reached (stamped with a
    /// tentative g-score). After a *failed* search this is the entire
    /// free region reachable from the sources — the cells the query
    /// contended for — which the incremental negotiation rip-up uses to
    /// decide which routed nets actually wall a failed net in.
    ///
    /// Only meaningful directly after [`AStar::route_with_scratch`] ran
    /// the flat kernel on this scratch; the out-of-bounds reference
    /// fallback does not stamp the scratch, so callers must check
    /// terminal bounds themselves before trusting this view.
    pub fn touched_cells(&self) -> impl Iterator<Item = Point> + '_ {
        let generation = self.generation;
        self.stamp
            .iter()
            .enumerate()
            .filter(move |(_, &s)| s == generation)
            .map(|(i, _)| self.point_of(i))
    }

    /// Iterates every cell the most recent query *expanded* (popped off
    /// its open list), a subset of [`AStarScratch::touched_cells`].
    ///
    /// The search only reads the obstacle map at cells it expands and at
    /// their immediate neighbors it steps into — so two runs of the same
    /// query against obstacle maps that differ *only on cells outside
    /// this set* pop the identical cell sequence and return the
    /// identical result. That containment is exactly what the parallel
    /// negotiation mode's commit rule checks (DESIGN.md §10). After a
    /// *failed* search the expanded set equals the touched set (the open
    /// list drains completely).
    ///
    /// Same caveat as [`AStarScratch::touched_cells`]: only meaningful
    /// directly after the flat kernel ran on this scratch.
    pub fn expanded_cells(&self) -> impl Iterator<Item = Point> + '_ {
        let generation = self.generation;
        self.expanded_stamp
            .iter()
            .enumerate()
            .filter(move |(_, &s)| s == generation)
            .map(|(i, _)| self.point_of(i))
    }

    /// Follows the parent chain from `idx` back to a source and returns
    /// the forward (source → target) path.
    fn reconstruct(&self, mut idx: usize) -> GridPath {
        let mut cells = vec![self.point_of(idx)];
        while self.parent[idx] != NO_PARENT {
            idx = self.parent[idx] as usize;
            cells.push(self.point_of(idx));
        }
        cells.reverse();
        GridPath::new(cells).expect("A* path is connected")
    }
}

thread_local! {
    /// Per-thread default scratch used by [`AStar::route`].
    static THREAD_SCRATCH: RefCell<AStarScratch> = RefCell::new(AStarScratch::new());
}

/// A\* router over an [`ObsMap`].
///
/// The MST-based cluster routing of the paper uses "point-to-point,
/// point-to-path, and path-to-path A\* search algorithms" — all are
/// special cases of multi-source / multi-target search, provided here by
/// [`AStar::route`]. Source and target cells are exempt from blockage
/// (they usually lie on the net's own already-routed cells); all transit
/// cells must be free.
///
/// An optional [`HistoryCost`] adds the negotiation penalty: entering
/// cell `g` costs `1 + Ch(g)` instead of 1. Path *length* reported by the
/// returned [`GridPath`] is always the plain edge count.
#[derive(Debug, Clone, Copy)]
pub struct AStar<'a> {
    obs: &'a ObsMap,
    history: Option<&'a HistoryCost>,
}

impl<'a> AStar<'a> {
    /// Creates a router without history costs.
    pub fn new(obs: &'a ObsMap) -> Self {
        Self { obs, history: None }
    }

    /// Attaches negotiation history costs.
    pub fn with_history(obs: &'a ObsMap, history: &'a HistoryCost) -> Self {
        Self {
            obs,
            history: Some(history),
        }
    }

    #[inline]
    fn step_cost(&self, p: Point) -> u64 {
        match self.history {
            Some(h) => SCALE + (h.cost(p) * SCALE as f64).round() as u64,
            None => SCALE,
        }
    }

    /// Routes from any cell of `sources` to any cell of `targets`,
    /// minimizing total (history-weighted) cost. Returns `None` when no
    /// path exists.
    ///
    /// The returned path starts on a source cell and ends on a target
    /// cell. When a source *is* a target, the result is that single cell.
    ///
    /// Runs the flat-array kernel on a thread-local [`AStarScratch`];
    /// use [`AStar::route_with_scratch`] to manage the scratch yourself.
    pub fn route(&self, sources: &[Point], targets: &[Point]) -> Option<GridPath> {
        THREAD_SCRATCH.with(|scratch| {
            self.route_with_scratch(sources, targets, &mut scratch.borrow_mut())
        })
    }

    /// [`AStar::route`] with an explicit scratch, for callers that hold
    /// one per worker thread.
    ///
    /// Terminals outside the obstacle map cannot be grid-indexed and
    /// fall back to the reference kernel (which treats out-of-bounds
    /// cells as blocked-but-targetable, like any other blocked cell).
    pub fn route_with_scratch(
        &self,
        sources: &[Point],
        targets: &[Point],
        scratch: &mut AStarScratch,
    ) -> Option<GridPath> {
        if sources.is_empty() || targets.is_empty() {
            return None;
        }
        let width = self.obs.width() as usize;
        let height = self.obs.height() as usize;
        let in_bounds = |p: Point| {
            p.x >= 0 && p.y >= 0 && (p.x as usize) < width && (p.y as usize) < height
        };
        if !sources.iter().chain(targets).all(|&p| in_bounds(p)) {
            return self.route_reference(sources, targets);
        }

        scratch.begin(width, height);
        // Monomorphize on whether a recording frame is listening: the
        // untracked instantiation compiles the counter updates away
        // entirely, so unconfigured runs keep the pre-obs codegen. The
        // tracked twin stays outlined so only one copy of the search
        // loop lands in this (hot) function body.
        if pacor_obs::active() {
            self.flat_search_tracked(sources, targets, scratch)
        } else {
            self.flat_search::<false>(sources, targets, scratch)
        }
    }

    /// The recording variant of the kernel: counts expansions and queue
    /// pushes, then flushes them into the active `pacor-obs` frame.
    #[cold]
    #[inline(never)]
    fn flat_search_tracked(
        &self,
        sources: &[Point],
        targets: &[Point],
        scratch: &mut AStarScratch,
    ) -> Option<GridPath> {
        let result = self.flat_search::<true>(sources, targets, scratch);
        scratch.stats.flush(1);
        result
    }

    /// The flat-kernel search body, monomorphized on `TRACK`: the
    /// `false` instantiation carries no counter updates at all.
    #[inline(always)]
    fn flat_search<const TRACK: bool>(
        &self,
        sources: &[Point],
        targets: &[Point],
        scratch: &mut AStarScratch,
    ) -> Option<GridPath> {
        let width = scratch.width;
        let generation = scratch.generation;
        let index = |p: Point| p.y as usize * width + p.x as usize;

        for &t in targets {
            scratch.target_stamp[index(t)] = generation;
        }
        for &s in sources {
            if scratch.target_stamp[index(s)] == generation {
                return Some(GridPath::singleton(s));
            }
        }

        let h = |p: Point| -> u64 {
            // Admissible: cheapest conceivable remaining cost is one SCALE
            // per grid step of the nearest target.
            targets
                .iter()
                .map(|&t| p.manhattan(t))
                .min()
                .unwrap_or(0)
                * SCALE
        };

        for &s in sources {
            let i = index(s);
            if scratch.stamp[i] == generation {
                continue; // duplicate source
            }
            scratch.stamp[i] = generation;
            scratch.g[i] = 0;
            scratch.parent[i] = NO_PARENT;
            let f = h(s);
            match self.history {
                None => {
                    let fu = (f / SCALE) as usize;
                    if fu >= scratch.buckets.len() {
                        scratch.buckets.resize_with(fu + 1, Vec::new);
                    }
                    scratch.buckets[fu].push(Open {
                        g: 0,
                        key: point_key(s),
                        idx: i as u32,
                    });
                    if TRACK {
                        scratch.stats.bucket_pushes += 1;
                    }
                }
                Some(_) => {
                    scratch.heap.push(Reverse((f, 0, point_key(s), i as u32)));
                    if TRACK {
                        scratch.stats.heap_pushes += 1;
                    }
                }
            }
        }

        match self.history {
            None => self.drain_buckets::<TRACK>(scratch, generation, h),
            Some(_) => self.drain_heap::<TRACK>(scratch, generation, h),
        }
    }

    /// Unit-cost search: bucket queue keyed by f / SCALE. The Manhattan
    /// heuristic is consistent, so f never decreases and a single cursor
    /// sweeps the buckets front to back.
    fn drain_buckets<const TRACK: bool>(
        &self,
        scratch: &mut AStarScratch,
        generation: u32,
        h: impl Fn(Point) -> u64,
    ) -> Option<GridPath> {
        let width = scratch.width;
        let mut cursor = 0usize;
        loop {
            while cursor < scratch.buckets.len() && scratch.buckets[cursor].is_empty() {
                cursor += 1;
            }
            if cursor == scratch.buckets.len() {
                return None;
            }
            // Pop the entry the reference heap would pop: among live
            // entries of the lowest-f bucket, the smallest (g, Point).
            // Stale entries (superseded by a better g) are dropped as the
            // scan passes them, keeping buckets compact.
            let mut best: Option<(usize, u64, u64)> = None;
            {
                let AStarScratch { buckets, g, .. } = scratch;
                let bucket = &mut buckets[cursor];
                let mut i = 0;
                while i < bucket.len() {
                    let e = bucket[i];
                    if g[e.idx as usize] < e.g {
                        bucket.swap_remove(i);
                        continue;
                    }
                    if best.is_none_or(|(_, bg, bk)| (e.g, e.key) < (bg, bk)) {
                        best = Some((i, e.g, e.key));
                    }
                    i += 1;
                }
            }
            let Some((pos, g, _)) = best else {
                continue; // bucket held only stale entries
            };
            let e = scratch.buckets[cursor].swap_remove(pos);
            let p_idx = e.idx as usize;
            scratch.expanded_stamp[p_idx] = generation;
            if TRACK {
                scratch.stats.expansions += 1;
            }
            if scratch.target_stamp[p_idx] == generation {
                return Some(scratch.reconstruct(p_idx));
            }
            let p = scratch.point_of(p_idx);
            for q in p.neighbors4() {
                if q.x < 0
                    || q.y < 0
                    || (q.x as usize) >= width
                    || (q.y as usize) >= scratch.height
                {
                    continue; // off-map neighbors are never in-bounds targets
                }
                let qi = q.y as usize * width + q.x as usize;
                // Transit must be free; targets are exempt from blockage.
                if self.obs.is_blocked(q) && scratch.target_stamp[qi] != generation {
                    continue;
                }
                let ng = g + SCALE;
                let cur = if scratch.stamp[qi] == generation {
                    scratch.g[qi]
                } else {
                    u64::MAX
                };
                if ng < cur {
                    scratch.stamp[qi] = generation;
                    scratch.g[qi] = ng;
                    scratch.parent[qi] = p_idx as u32;
                    let fu = ((ng + h(q)) / SCALE) as usize;
                    debug_assert!(fu >= cursor, "consistent heuristic keeps f monotone");
                    if fu >= scratch.buckets.len() {
                        scratch.buckets.resize_with(fu + 1, Vec::new);
                    }
                    scratch.buckets[fu].push(Open {
                        g: ng,
                        key: point_key(q),
                        idx: qi as u32,
                    });
                    if TRACK {
                        scratch.stats.bucket_pushes += 1;
                    }
                }
            }
        }
    }

    /// History-weighted search: fractional step costs leave the bucket
    /// grid, so fall back to a heap over `(f, g, point key, idx)` — the
    /// same ordering as the reference kernel's `(f, g, Point)`.
    fn drain_heap<const TRACK: bool>(
        &self,
        scratch: &mut AStarScratch,
        generation: u32,
        h: impl Fn(Point) -> u64,
    ) -> Option<GridPath> {
        let width = scratch.width;
        while let Some(Reverse((_, g, _, idx))) = scratch.heap.pop() {
            let p_idx = idx as usize;
            if scratch.g[p_idx] < g {
                continue; // stale entry
            }
            scratch.expanded_stamp[p_idx] = generation;
            if TRACK {
                scratch.stats.expansions += 1;
            }
            if scratch.target_stamp[p_idx] == generation {
                return Some(scratch.reconstruct(p_idx));
            }
            let p = scratch.point_of(p_idx);
            for q in p.neighbors4() {
                if q.x < 0
                    || q.y < 0
                    || (q.x as usize) >= width
                    || (q.y as usize) >= scratch.height
                {
                    continue;
                }
                let qi = q.y as usize * width + q.x as usize;
                if self.obs.is_blocked(q) && scratch.target_stamp[qi] != generation {
                    continue;
                }
                let ng = g + self.step_cost(q);
                let cur = if scratch.stamp[qi] == generation {
                    scratch.g[qi]
                } else {
                    u64::MAX
                };
                if ng < cur {
                    scratch.stamp[qi] = generation;
                    scratch.g[qi] = ng;
                    scratch.parent[qi] = p_idx as u32;
                    scratch
                        .heap
                        .push(Reverse((ng + h(q), ng, point_key(q), qi as u32)));
                    if TRACK {
                        scratch.stats.heap_pushes += 1;
                    }
                }
            }
        }
        None
    }

    /// The original `HashMap`/`HashSet`/`BinaryHeap` kernel, kept as the
    /// executable specification: equivalence proptests and the kernel
    /// benchmarks compare the flat-array kernel against it.
    pub fn route_reference(&self, sources: &[Point], targets: &[Point]) -> Option<GridPath> {
        if sources.is_empty() || targets.is_empty() {
            return None;
        }
        if pacor_obs::active() {
            self.reference_search_tracked(sources, targets)
        } else {
            let mut stats = KernelStats::default();
            self.reference_search::<false>(sources, targets, &mut stats)
        }
    }

    /// The recording variant of the reference kernel; see
    /// [`AStar::flat_search_tracked`].
    #[cold]
    #[inline(never)]
    fn reference_search_tracked(
        &self,
        sources: &[Point],
        targets: &[Point],
    ) -> Option<GridPath> {
        let mut stats = KernelStats::default();
        let result = self.reference_search::<true>(sources, targets, &mut stats);
        stats.flush(0);
        result
    }

    /// The reference-kernel search body, split out so its counters
    /// flush on every exit path.
    #[inline(always)]
    fn reference_search<const TRACK: bool>(
        &self,
        sources: &[Point],
        targets: &[Point],
        stats: &mut KernelStats,
    ) -> Option<GridPath> {
        let target_set: HashSet<Point> = targets.iter().copied().collect();
        for &s in sources {
            if target_set.contains(&s) {
                return Some(GridPath::singleton(s));
            }
        }

        let h = |p: Point| -> u64 {
            targets
                .iter()
                .map(|&t| p.manhattan(t))
                .min()
                .unwrap_or(0)
                * SCALE
        };

        let mut dist: HashMap<Point, u64> = HashMap::new();
        let mut prev: HashMap<Point, Point> = HashMap::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64, Point)>> = BinaryHeap::new();
        for &s in sources {
            dist.insert(s, 0);
            heap.push(Reverse((h(s), 0, s)));
            if TRACK {
                stats.heap_pushes += 1;
            }
        }

        while let Some(Reverse((_, g, p))) = heap.pop() {
            if dist.get(&p).copied().unwrap_or(u64::MAX) < g {
                continue;
            }
            if TRACK {
                stats.expansions += 1;
            }
            if target_set.contains(&p) {
                // Reconstruct.
                let mut cells = vec![p];
                let mut cur = p;
                while let Some(&q) = prev.get(&cur) {
                    cells.push(q);
                    cur = q;
                }
                cells.reverse();
                return Some(GridPath::new(cells).expect("A* path is connected"));
            }
            for q in p.neighbors4() {
                // Transit must be free; targets are exempt from blockage.
                if self.obs.is_blocked(q) && !target_set.contains(&q) {
                    continue;
                }
                let ng = g + self.step_cost(q);
                if ng < dist.get(&q).copied().unwrap_or(u64::MAX) {
                    dist.insert(q, ng);
                    prev.insert(q, p);
                    heap.push(Reverse((ng + h(q), ng, q)));
                    if TRACK {
                        stats.heap_pushes += 1;
                    }
                }
            }
        }
        None
    }

    /// Point-to-point routing.
    pub fn point_to_point(&self, source: Point, target: Point) -> Option<GridPath> {
        self.route(&[source], &[target])
    }

    /// Point-to-path routing: connect `source` to the nearest cell of an
    /// existing path.
    pub fn point_to_path(&self, source: Point, path: &GridPath) -> Option<GridPath> {
        self.route(&[source], path.cells())
    }

    /// Path-to-path routing: connect two existing paths by the cheapest
    /// bridge.
    pub fn path_to_path(&self, a: &GridPath, b: &GridPath) -> Option<GridPath> {
        self.route(a.cells(), b.cells())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacor_grid::Grid;

    fn open(w: u32, h: u32) -> ObsMap {
        ObsMap::new(&Grid::new(w, h).unwrap())
    }

    #[test]
    fn straight_line_is_manhattan_optimal() {
        let obs = open(10, 10);
        let p = AStar::new(&obs)
            .point_to_point(Point::new(1, 1), Point::new(7, 4))
            .unwrap();
        assert_eq!(p.len(), 9);
        assert_eq!(p.source(), Point::new(1, 1));
        assert_eq!(p.target(), Point::new(7, 4));
    }

    #[test]
    fn detours_around_wall() {
        let mut g = Grid::new(9, 9).unwrap();
        for y in 0..8 {
            g.set_obstacle(Point::new(4, y));
        }
        let obs = ObsMap::new(&g);
        let p = AStar::new(&obs)
            .point_to_point(Point::new(1, 1), Point::new(7, 1))
            .unwrap();
        assert!(p.len() > 6);
        for c in p.iter() {
            assert!(!obs.is_blocked(*c));
        }
    }

    #[test]
    fn fully_walled_is_unroutable() {
        let mut g = Grid::new(9, 9).unwrap();
        for y in 0..9 {
            g.set_obstacle(Point::new(4, y));
        }
        let obs = ObsMap::new(&g);
        assert!(AStar::new(&obs)
            .point_to_point(Point::new(1, 1), Point::new(7, 1))
            .is_none());
    }

    #[test]
    fn source_equals_target() {
        let obs = open(5, 5);
        let p = AStar::new(&obs)
            .point_to_point(Point::new(2, 2), Point::new(2, 2))
            .unwrap();
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn empty_terminals_return_none() {
        let obs = open(5, 5);
        let astar = AStar::new(&obs);
        assert!(astar.route(&[], &[Point::new(0, 0)]).is_none());
        assert!(astar.route(&[Point::new(0, 0)], &[]).is_none());
    }

    #[test]
    fn point_to_path_hits_nearest_cell() {
        let obs = open(12, 12);
        let path = GridPath::new((0..10).map(|x| Point::new(x, 8)).collect()).unwrap();
        let p = AStar::new(&obs)
            .point_to_path(Point::new(3, 2), &path)
            .unwrap();
        assert_eq!(p.target(), Point::new(3, 8));
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn path_to_path_bridges_shortest_gap() {
        let obs = open(12, 12);
        let a = GridPath::new((0..5).map(|x| Point::new(x, 1)).collect()).unwrap();
        let b = GridPath::new((0..5).map(|x| Point::new(x, 9)).collect()).unwrap();
        let p = AStar::new(&obs).path_to_path(&a, &b).unwrap();
        assert_eq!(p.len(), 8);
        assert!(a.contains(p.source()));
        assert!(b.contains(p.target()));
    }

    #[test]
    fn blocked_targets_are_reachable_endpoints() {
        // Target on an occupied cell (its own net) must still terminate.
        let mut g = Grid::new(7, 7).unwrap();
        g.set_obstacle(Point::new(5, 5));
        let obs = ObsMap::new(&g);
        let p = AStar::new(&obs)
            .point_to_point(Point::new(1, 1), Point::new(5, 5))
            .unwrap();
        assert_eq!(p.target(), Point::new(5, 5));
        assert_eq!(p.len(), 8);
    }

    #[test]
    fn history_cost_diverts_route() {
        // Two equal-length corridors; poison one with history.
        let mut g = Grid::new(7, 5).unwrap();
        for x in 1..6 {
            g.set_obstacle(Point::new(x, 2)); // wall between rows 1 and 3
        }
        let obs = ObsMap::new(&g);
        let mut hist = HistoryCost::new(7, 5);
        // Poison row 1 (the y=1 corridor).
        for x in 0..7 {
            for _ in 0..5 {
                hist.bump(Point::new(x, 1));
            }
        }
        let astar = AStar::with_history(&obs, &hist);
        // From (0,2)?? blocked col... route from (0,1)..(6,1) area: choose
        // endpoints reachable via both corridors: (0,0) to (6,4) forces a
        // corridor choice at x=0 or x=6.
        let p = astar.point_to_point(Point::new(0, 0), Point::new(6, 4)).unwrap();
        // The route must dodge the poisoned row-1 interior when possible;
        // count poisoned-row cells used.
        let row1 = p.iter().filter(|c| c.y == 1).count();
        let p_plain = AStar::new(&obs)
            .point_to_point(Point::new(0, 0), Point::new(6, 4))
            .unwrap();
        assert_eq!(p.len(), p_plain.len()); // same geometric length exists
        assert!(row1 <= 1, "history should steer away from row 1, used {row1} cells");
    }

    #[test]
    fn multi_source_picks_closest() {
        let obs = open(10, 10);
        let p = AStar::new(&obs)
            .route(
                &[Point::new(0, 0), Point::new(8, 8)],
                &[Point::new(9, 9)],
            )
            .unwrap();
        assert_eq!(p.source(), Point::new(8, 8));
        assert_eq!(p.len(), 2);
    }

    /// A scattering of obstacles that leaves the grid connected.
    fn peppered(w: u32, h: u32) -> ObsMap {
        let mut g = Grid::new(w, h).unwrap();
        for y in 0..h as i32 {
            for x in 0..w as i32 {
                // Deterministic pseudo-random sprinkle, ~30% density.
                if (x * 7 + y * 13) % 10 < 3 && (x + y) % 4 != 0 {
                    g.set_obstacle(Point::new(x, y));
                }
            }
        }
        ObsMap::new(&g)
    }

    #[test]
    fn kernel_matches_reference_geometry() {
        let obs = peppered(24, 18);
        let astar = AStar::new(&obs);
        let mut scratch = AStarScratch::new();
        for (s, t) in [
            (Point::new(0, 0), Point::new(23, 17)),
            (Point::new(5, 16), Point::new(20, 1)),
            (Point::new(12, 9), Point::new(12, 9)),
        ] {
            let flat = astar.route_with_scratch(&[s], &[t], &mut scratch);
            let reference = astar.route_reference(&[s], &[t]);
            assert_eq!(flat, reference, "kernels diverge for {s} -> {t}");
        }
    }

    #[test]
    fn kernel_matches_reference_with_history() {
        let obs = peppered(20, 20);
        let mut hist = HistoryCost::new(20, 20);
        for i in 0..20 {
            hist.bump(Point::new(i, (i * 3) % 20));
            hist.bump(Point::new(10, i));
        }
        let astar = AStar::with_history(&obs, &hist);
        let mut scratch = AStarScratch::new();
        let sources = [Point::new(0, 0), Point::new(19, 0)];
        let targets = [Point::new(0, 19), Point::new(19, 19)];
        let flat = astar.route_with_scratch(&sources, &targets, &mut scratch);
        let reference = astar.route_reference(&sources, &targets);
        assert_eq!(flat, reference);
    }

    #[test]
    fn scratch_reuse_across_grids_and_queries() {
        let mut scratch = AStarScratch::new();
        let small = open(6, 6);
        let large = peppered(30, 10);
        for _ in 0..3 {
            let p = AStar::new(&small)
                .route_with_scratch(&[Point::new(0, 0)], &[Point::new(5, 5)], &mut scratch)
                .unwrap();
            assert_eq!(p.len(), 10);
            let q = AStar::new(&large).route_with_scratch(
                &[Point::new(0, 0)],
                &[Point::new(29, 9)],
                &mut scratch,
            );
            assert_eq!(
                q,
                AStar::new(&large).route_reference(&[Point::new(0, 0)], &[Point::new(29, 9)])
            );
        }
    }

    #[test]
    fn expanded_cells_contain_path_and_drain_on_failure() {
        use std::collections::HashSet;
        let mut g = Grid::new(9, 9).unwrap();
        for y in 0..8 {
            g.set_obstacle(Point::new(4, y));
        }
        let obs = ObsMap::new(&g);
        let astar = AStar::new(&obs);
        let mut scratch = AStarScratch::new();
        let p = astar
            .route_with_scratch(&[Point::new(1, 1)], &[Point::new(7, 1)], &mut scratch)
            .unwrap();
        let expanded: HashSet<Point> = scratch.expanded_cells().collect();
        let touched: HashSet<Point> = scratch.touched_cells().collect();
        assert!(expanded.is_subset(&touched));
        for c in p.iter() {
            assert!(expanded.contains(c), "path cell {c} was never expanded");
        }
        // Failed search: the open list drains, so every reached cell is
        // also expanded.
        for y in 0..9 {
            g.set_obstacle(Point::new(4, y));
        }
        let obs = ObsMap::new(&g);
        assert!(AStar::new(&obs)
            .route_with_scratch(&[Point::new(1, 1)], &[Point::new(7, 1)], &mut scratch)
            .is_none());
        let expanded: HashSet<Point> = scratch.expanded_cells().collect();
        let touched: HashSet<Point> = scratch.touched_cells().collect();
        assert_eq!(expanded, touched, "failed search must drain its queue");
        assert!(!expanded.is_empty());
    }

    #[test]
    fn out_of_bounds_terminals_fall_back() {
        // The reference kernel treats an out-of-bounds target like any
        // blocked cell: reachable as an endpoint. The flat kernel must
        // give the same answer through its fallback.
        let obs = open(5, 5);
        let astar = AStar::new(&obs);
        let oob = Point::new(5, 2); // one column past the right edge
        let flat = astar.point_to_point(Point::new(0, 2), oob);
        let reference = astar.route_reference(&[Point::new(0, 2)], &[oob]);
        assert_eq!(flat, reference);
        assert_eq!(flat.unwrap().target(), oob);
    }
}
