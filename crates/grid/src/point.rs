//! Integer grid points with Manhattan metrics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point on the routing grid, in grid coordinates.
///
/// Coordinates are signed so that intermediate geometric constructions
/// (e.g. tilted-rectangle corners in the DME algorithm) may temporarily
/// leave the chip area; the [`Grid`](crate::Grid) clamps when rasterizing.
///
/// # Examples
///
/// ```
/// use pacor_grid::Point;
///
/// let a = Point::new(1, 2);
/// let b = Point::new(4, 6);
/// assert_eq!(a.manhattan(b), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal grid coordinate.
    pub x: i32,
    /// Vertical grid coordinate.
    pub y: i32,
}

impl Point {
    /// Creates a point at `(x, y)`.
    #[inline]
    pub const fn new(x: i32, y: i32) -> Self {
        Self { x, y }
    }

    /// Manhattan (L1) distance to `other`.
    ///
    /// This is the metric used for all channel-length estimation in PACOR
    /// (Section 4.2: "the path length is estimated by Manhattan distance").
    #[inline]
    pub fn manhattan(self, other: Point) -> u64 {
        (self.x as i64 - other.x as i64).unsigned_abs()
            + (self.y as i64 - other.y as i64).unsigned_abs()
    }

    /// Chebyshev (L∞) distance to `other`; used by the loop search that
    /// expands square rings around a blocked merging node.
    #[inline]
    pub fn chebyshev(self, other: Point) -> u64 {
        (self.x as i64 - other.x as i64)
            .unsigned_abs()
            .max((self.y as i64 - other.y as i64).unsigned_abs())
    }

    /// The four axis-aligned neighbors, in deterministic order
    /// (left, right, down, up).
    #[inline]
    pub fn neighbors4(self) -> [Point; 4] {
        [
            Point::new(self.x - 1, self.y),
            Point::new(self.x + 1, self.y),
            Point::new(self.x, self.y - 1),
            Point::new(self.x, self.y + 1),
        ]
    }

    /// Returns `true` if `other` is an axis-aligned unit-distance neighbor.
    #[inline]
    pub fn is_adjacent(self, other: Point) -> bool {
        self.manhattan(other) == 1
    }

    /// Rotated coordinates `(x + y, y - x)` used for Manhattan-to-Chebyshev
    /// transforms when manipulating tilted rectangular regions (TRRs) in
    /// the DME merging-segment computation.
    #[inline]
    pub fn to_rotated(self) -> (i64, i64) {
        (self.x as i64 + self.y as i64, self.y as i64 - self.x as i64)
    }

    /// Inverse of [`Point::to_rotated`], rounding to the nearest grid point
    /// when the rotated coordinates have mismatched parity (Lemma 1 of the
    /// paper: odd Manhattan distance makes merging segments off-grid).
    ///
    /// Returns the snapped point and `true` when snapping introduced a
    /// half-unit rounding (the "rounding error" the paper eliminates by
    /// detouring afterwards).
    #[inline]
    pub fn from_rotated_snapped(u: i64, v: i64) -> (Point, bool) {
        // x = (u - v)/2, y = (u + v)/2; integral iff u, v share parity.
        let exact = (u - v).rem_euclid(2) == 0;
        let x = (u - v).div_euclid(2);
        let y = (u + v + ((u + v).rem_euclid(2))) / 2; // round y up on odd sum
        let x = if exact { x } else { (u - v + 1).div_euclid(2) };
        (
            Point::new(x as i32, y as i32),
            !exact,
        )
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i32, i32)> for Point {
    fn from((x, y): (i32, i32)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_basic() {
        assert_eq!(Point::new(0, 0).manhattan(Point::new(0, 0)), 0);
        assert_eq!(Point::new(0, 0).manhattan(Point::new(3, 4)), 7);
        assert_eq!(Point::new(-2, -3).manhattan(Point::new(2, 3)), 10);
    }

    #[test]
    fn manhattan_is_symmetric() {
        let a = Point::new(17, -4);
        let b = Point::new(-3, 12);
        assert_eq!(a.manhattan(b), b.manhattan(a));
    }

    #[test]
    fn chebyshev_basic() {
        assert_eq!(Point::new(0, 0).chebyshev(Point::new(3, 4)), 4);
        assert_eq!(Point::new(1, 1).chebyshev(Point::new(1, 1)), 0);
    }

    #[test]
    fn neighbors_are_adjacent() {
        let p = Point::new(5, 5);
        for n in p.neighbors4() {
            assert!(p.is_adjacent(n));
            assert_eq!(p.manhattan(n), 1);
        }
    }

    #[test]
    fn neighbors_are_distinct() {
        let p = Point::new(0, 0);
        let ns = p.neighbors4();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(ns[i], ns[j]);
            }
        }
    }

    #[test]
    fn rotated_roundtrip_even() {
        let p = Point::new(7, 11);
        let (u, v) = p.to_rotated();
        let (q, snapped) = Point::from_rotated_snapped(u, v);
        assert_eq!(p, q);
        assert!(!snapped);
    }

    #[test]
    fn rotated_snap_reports_rounding() {
        // u, v of mismatched parity cannot come from a grid point.
        let (q, snapped) = Point::from_rotated_snapped(3, 0);
        assert!(snapped);
        // The snapped point must be within 1 unit of the exact preimage
        // (1.5, 1.5) in both axes.
        assert!((q.x - 1).abs() <= 1 && (q.y - 1).abs() <= 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Point::new(-1, 2).to_string(), "(-1, 2)");
    }

    #[test]
    fn from_tuple() {
        let p: Point = (3, 4).into();
        assert_eq!(p, Point::new(3, 4));
    }
}
