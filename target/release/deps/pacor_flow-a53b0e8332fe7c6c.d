/root/repo/target/release/deps/pacor_flow-a53b0e8332fe7c6c.d: crates/flow/src/lib.rs crates/flow/src/escape.rs crates/flow/src/mcf.rs

/root/repo/target/release/deps/libpacor_flow-a53b0e8332fe7c6c.rlib: crates/flow/src/lib.rs crates/flow/src/escape.rs crates/flow/src/mcf.rs

/root/repo/target/release/deps/libpacor_flow-a53b0e8332fe7c6c.rmeta: crates/flow/src/lib.rs crates/flow/src/escape.rs crates/flow/src/mcf.rs

crates/flow/src/lib.rs:
crates/flow/src/escape.rs:
crates/flow/src/mcf.rs:
