//! Gcell coarsening for hierarchical global routing.
//!
//! The hierarchical routing mode (DESIGN §15) plans on a coarse grid
//! before any detailed routing happens: the chip is tiled into square
//! *gcells* of a configurable size, and each pair of edge-adjacent
//! gcells carries a **capacity** — the number of free cell pairs
//! straddling their shared border, i.e. how many disjoint detailed
//! routes could cross between them. A congestion-aware Dijkstra over
//! this graph assigns every cluster a *corridor* from its bounding-box
//! center to the nearest top or bottom boundary gcell (where the escape
//! stage's control pins live), committing usage onto every edge it
//! crosses so later corridors route around saturated borders.
//!
//! The graph is tiny (a 256×256 chip at tile 32 is an 8×8 graph), so
//! the global stage costs microseconds while exposing where detailed
//! routing will fight: edges whose committed usage exceeds capacity are
//! reported through [`GcellGrid::overflowed_edges`] and surface as the
//! `global.overflows` counter.

use crate::{ObsMap, Point, Rect};
use std::collections::BinaryHeap;

/// Per-edge base cost of one corridor crossing (fixed-point; see
/// [`GcellGrid::route_to_boundary`]).
const BASE_COST: u64 = 1000;
/// Additional cost per unit of overflow past an edge's capacity.
const OVERFLOW_COST: u64 = 8000;

/// The coarse capacity-tracked gcell graph over an obstacle map.
///
/// # Examples
///
/// ```
/// use pacor_grid::{GcellGrid, Grid, ObsMap, Point};
///
/// let grid = Grid::new(64, 64)?;
/// let obs = ObsMap::new(&grid);
/// let mut gcells = GcellGrid::new(&obs, 16);
/// assert_eq!((gcells.cols(), gcells.rows()), (4, 4));
/// let corridor = gcells.route_to_boundary(gcells.gcell_of(Point::new(33, 33)));
/// assert!(!corridor.is_empty());
/// # Ok::<(), pacor_grid::GridError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GcellGrid {
    tile: u32,
    cols: u32,
    rows: u32,
    width: u32,
    height: u32,
    /// Capacity of the border between `(c, r)` and `(c+1, r)`, indexed
    /// `r * (cols-1) + c`.
    hcap: Vec<u32>,
    /// Capacity of the border between `(c, r)` and `(c, r+1)`, indexed
    /// `r * cols + c`.
    vcap: Vec<u32>,
    /// Committed corridor crossings per horizontal border.
    huse: Vec<u32>,
    /// Committed corridor crossings per vertical border.
    vuse: Vec<u32>,
}

impl GcellGrid {
    /// Coarsens `obs` into gcells of `tile × tile` cells (clamped to at
    /// least 1; the last row/column may be narrower when the chip size
    /// is not a multiple of `tile`). Edge capacities count the free
    /// crossing slots of each shared border in the map's *current*
    /// blocked state, so valve blocks and already-routed nets reduce
    /// the budget.
    pub fn new(obs: &ObsMap, tile: u32) -> Self {
        let tile = tile.max(1);
        let (width, height) = (obs.width(), obs.height());
        let cols = width.div_ceil(tile).max(1);
        let rows = height.div_ceil(tile).max(1);
        let mut g = Self {
            tile,
            cols,
            rows,
            width,
            height,
            hcap: vec![0; (cols.saturating_sub(1) * rows) as usize],
            vcap: vec![0; (cols * rows.saturating_sub(1)) as usize],
            huse: vec![0; (cols.saturating_sub(1) * rows) as usize],
            vuse: vec![0; (cols * rows.saturating_sub(1)) as usize],
        };
        // A crossing slot is a pair of free cells straddling the border.
        for r in 0..rows {
            let rect = g.rect_of(0, r);
            for c in 0..cols.saturating_sub(1) {
                let xl = ((c + 1) * tile) as i32 - 1;
                let xr = xl + 1;
                let free = (rect.min().y..=rect.max().y)
                    .filter(|&y| {
                        !obs.is_blocked(Point::new(xl, y)) && !obs.is_blocked(Point::new(xr, y))
                    })
                    .count();
                g.hcap[(r * (cols - 1) + c) as usize] = free as u32;
            }
        }
        for c in 0..cols {
            let rect = g.rect_of(c, 0);
            for r in 0..rows.saturating_sub(1) {
                let yb = ((r + 1) * tile) as i32 - 1;
                let yt = yb + 1;
                let free = (rect.min().x..=rect.max().x)
                    .filter(|&x| {
                        !obs.is_blocked(Point::new(x, yb)) && !obs.is_blocked(Point::new(x, yt))
                    })
                    .count();
                g.vcap[(r * cols + c) as usize] = free as u32;
            }
        }
        g
    }

    /// The configured tile size in cells.
    pub fn tile(&self) -> u32 {
        self.tile
    }

    /// Gcell columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Gcell rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Total gcell count.
    pub fn len(&self) -> usize {
        (self.cols * self.rows) as usize
    }

    /// `true` when the graph has no gcells (impossible for a valid map;
    /// kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The gcell containing `p` (coordinates are clamped into the chip,
    /// so an out-of-bounds point maps to the nearest border gcell).
    pub fn gcell_of(&self, p: Point) -> (u32, u32) {
        let x = p.x.clamp(0, self.width as i32 - 1) as u32;
        let y = p.y.clamp(0, self.height as i32 - 1) as u32;
        (x / self.tile, y / self.tile)
    }

    /// The gcell column containing chip column `x` (clamped).
    pub fn column_of(&self, x: i32) -> u32 {
        (x.clamp(0, self.width as i32 - 1) as u32) / self.tile
    }

    /// The cell rectangle of gcell `(c, r)` (the last row/column may be
    /// truncated by the chip boundary).
    pub fn rect_of(&self, c: u32, r: u32) -> Rect {
        let min = Point::new((c * self.tile) as i32, (r * self.tile) as i32);
        let max = Point::new(
            (((c + 1) * self.tile).min(self.width) as i32) - 1,
            (((r + 1) * self.tile).min(self.height) as i32) - 1,
        );
        Rect::from_corners(min, max)
    }

    /// The full-chip-height stripe of gcell column `c` — the detailed
    /// routing region the hierarchical flow assigns to clusters whose
    /// haloed bounding box fits a single column.
    pub fn column_rect(&self, c: u32) -> Rect {
        Rect::from_corners(
            Point::new((c * self.tile) as i32, 0),
            Point::new(
                (((c + 1) * self.tile).min(self.width) as i32) - 1,
                self.height as i32 - 1,
            ),
        )
    }

    /// Capacity of the border between edge-adjacent gcells `a` and `b`
    /// (0 when the gcells are not edge-adjacent).
    pub fn edge_capacity(&self, a: (u32, u32), b: (u32, u32)) -> u32 {
        self.edge_index(a, b).map_or(0, |(h, i)| {
            if h {
                self.hcap[i]
            } else {
                self.vcap[i]
            }
        })
    }

    /// Committed corridor crossings of the border between `a` and `b`.
    pub fn edge_usage(&self, a: (u32, u32), b: (u32, u32)) -> u32 {
        self.edge_index(a, b).map_or(0, |(h, i)| {
            if h {
                self.huse[i]
            } else {
                self.vuse[i]
            }
        })
    }

    /// Borders whose committed usage exceeds their capacity — the
    /// coarse predictor of detailed-routing contention.
    pub fn overflowed_edges(&self) -> usize {
        self.huse.iter().zip(&self.hcap).filter(|(u, c)| u > c).count()
            + self.vuse.iter().zip(&self.vcap).filter(|(u, c)| u > c).count()
    }

    /// `(horizontal?, index)` of the border between `a` and `b`, if
    /// they are edge-adjacent.
    fn edge_index(&self, a: (u32, u32), b: (u32, u32)) -> Option<(bool, usize)> {
        let ((ax, ay), (bx, by)) = (a, b);
        if ax >= self.cols || ay >= self.rows || bx >= self.cols || by >= self.rows {
            return None;
        }
        if ay == by && ax.abs_diff(bx) == 1 {
            let c = ax.min(bx);
            Some((true, (ay * (self.cols - 1) + c) as usize))
        } else if ax == bx && ay.abs_diff(by) == 1 {
            let r = ay.min(by);
            Some((false, (r * self.cols + ax) as usize))
        } else {
            None
        }
    }

    /// Congestion cost of crossing one border: a fixed base plus a term
    /// proportional to the committed-use fraction, plus a steep penalty
    /// once usage reaches capacity (zero-capacity borders are treated
    /// as fully overflowed from the first crossing).
    fn edge_cost(&self, h: bool, i: usize) -> u64 {
        let (cap, used) = if h {
            (self.hcap[i], self.huse[i])
        } else {
            (self.vcap[i], self.vuse[i])
        };
        let (cap64, used64) = (cap as u64, used as u64);
        let mut cost = BASE_COST + BASE_COST * used64 / cap64.max(1);
        if used64 >= cap64 {
            cost += OVERFLOW_COST * (used64 + 1 - cap64);
        }
        cost
    }

    /// Routes a corridor from `from` to the nearest gcell on the top or
    /// bottom boundary row (where the escape stage's control pins are
    /// densest), returns the gcell path including both endpoints, and
    /// commits one unit of usage onto every border it crosses.
    ///
    /// Deterministic: Dijkstra with `(cost, node index)` ordering, so
    /// ties always break toward the smaller row-major gcell index.
    pub fn route_to_boundary(&mut self, from: (u32, u32)) -> Vec<(u32, u32)> {
        let (cols, rows) = (self.cols as usize, self.rows as usize);
        let start = from.1 as usize * cols + from.0 as usize;
        if from.1 == 0 || from.1 + 1 == self.rows {
            return vec![from];
        }
        let mut dist = vec![u64::MAX; cols * rows];
        let mut prev = vec![usize::MAX; cols * rows];
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = BinaryHeap::new();
        dist[start] = 0;
        heap.push(std::cmp::Reverse((0, start)));
        let mut goal = usize::MAX;
        while let Some(std::cmp::Reverse((d, node))) = heap.pop() {
            if d > dist[node] {
                continue;
            }
            let (c, r) = (node % cols, node / cols);
            if r == 0 || r + 1 == rows {
                goal = node;
                break;
            }
            let mut relax = |this: &mut Self, nc: usize, nr: usize| {
                let (h, i) = this
                    .edge_index((c as u32, r as u32), (nc as u32, nr as u32))
                    .expect("neighbors are edge-adjacent");
                let nd = d.saturating_add(this.edge_cost(h, i));
                let n = nr * cols + nc;
                if nd < dist[n] {
                    dist[n] = nd;
                    prev[n] = node;
                    heap.push(std::cmp::Reverse((nd, n)));
                }
            };
            if c > 0 {
                relax(self, c - 1, r);
            }
            if c + 1 < cols {
                relax(self, c + 1, r);
            }
            if r > 0 {
                relax(self, c, r - 1);
            }
            if r + 1 < rows {
                relax(self, c, r + 1);
            }
        }
        if goal == usize::MAX {
            // Unreachable boundary (single-row graphs return early above,
            // so this cannot happen on a connected 4-neighbor lattice).
            return vec![from];
        }
        let mut path = Vec::new();
        let mut node = goal;
        while node != usize::MAX {
            path.push(((node % cols) as u32, (node / cols) as u32));
            node = prev[node];
        }
        path.reverse();
        for pair in path.windows(2) {
            let (h, i) = self
                .edge_index(pair[0], pair[1])
                .expect("corridor steps are edge-adjacent");
            if h {
                self.huse[i] += 1;
            } else {
                self.vuse[i] += 1;
            }
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Grid;

    fn open_map(w: u32, h: u32) -> ObsMap {
        ObsMap::new(&Grid::new(w, h).expect("valid size"))
    }

    #[test]
    fn tiling_covers_the_chip() {
        let obs = open_map(50, 30);
        let g = GcellGrid::new(&obs, 16);
        assert_eq!((g.cols(), g.rows()), (4, 2));
        assert_eq!(g.len(), 8);
        assert!(!g.is_empty());
        // Last column/row are truncated.
        assert_eq!(g.rect_of(3, 1).max(), Point::new(49, 29));
        assert_eq!(g.rect_of(0, 0).max(), Point::new(15, 15));
        assert_eq!(g.gcell_of(Point::new(49, 29)), (3, 1));
        assert_eq!(g.column_of(16), 1);
        let stripe = g.column_rect(3);
        assert_eq!(stripe.min(), Point::new(48, 0));
        assert_eq!(stripe.max(), Point::new(49, 29));
    }

    #[test]
    fn open_borders_have_full_capacity() {
        let obs = open_map(32, 32);
        let g = GcellGrid::new(&obs, 16);
        // Every border is 16 cells of free crossings.
        assert_eq!(g.edge_capacity((0, 0), (1, 0)), 16);
        assert_eq!(g.edge_capacity((0, 0), (0, 1)), 16);
        // Non-adjacent pairs have no border.
        assert_eq!(g.edge_capacity((0, 0), (1, 1)), 0);
        assert_eq!(g.edge_usage((0, 0), (1, 0)), 0);
    }

    #[test]
    fn blocked_cells_reduce_capacity() {
        let mut obs = open_map(32, 32);
        // Wall off most of the vertical border between columns 0 and 1.
        for y in 0..12 {
            obs.block(Point::new(15, y));
        }
        let g = GcellGrid::new(&obs, 16);
        assert_eq!(g.edge_capacity((0, 0), (1, 0)), 4);
        // The other side of the chip is untouched.
        assert_eq!(g.edge_capacity((0, 1), (1, 1)), 16);
    }

    #[test]
    fn corridors_reach_a_boundary_row_and_commit_usage() {
        let obs = open_map(64, 64);
        let mut g = GcellGrid::new(&obs, 16);
        let path = g.route_to_boundary((1, 2));
        assert_eq!(path.first(), Some(&(1, 2)));
        let (_, last_r) = *path.last().expect("nonempty corridor");
        assert!(last_r == 0 || last_r + 1 == g.rows());
        // Each step consumed one crossing slot.
        for pair in path.windows(2) {
            assert_eq!(g.edge_usage(pair[0], pair[1]), 1);
        }
        // A gcell already on the boundary routes trivially.
        assert_eq!(g.route_to_boundary((2, 0)), vec![(2, 0)]);
    }

    #[test]
    fn congestion_steers_later_corridors() {
        let obs = open_map(12, 12);
        let mut g = GcellGrid::new(&obs, 4);
        // 3×3 graph with capacity-4 borders: 40 corridors from the center
        // must overflow its incident borders (total capacity 16) and
        // swerve through more than one column along the way.
        let mut columns = std::collections::HashSet::new();
        for _ in 0..40 {
            for step in g.route_to_boundary((1, 1)) {
                columns.insert(step.0);
            }
        }
        assert!(
            columns.len() > 1,
            "40 corridors from one gcell never spread: {columns:?}"
        );
        assert!(g.overflowed_edges() > 0, "saturation must register");
    }

    #[test]
    fn corridors_are_deterministic() {
        let mut obs = open_map(64, 64);
        for y in 20..40 {
            obs.block(Point::new(31, y));
        }
        let runs: Vec<Vec<Vec<(u32, u32)>>> = (0..2)
            .map(|_| {
                let mut g = GcellGrid::new(&obs, 16);
                (0..g.cols())
                    .flat_map(|c| (1..g.rows() - 1).map(move |r| (c, r)))
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|from| g.route_to_boundary(from))
                    .collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn single_gcell_graph_degenerates() {
        let obs = open_map(8, 8);
        let mut g = GcellGrid::new(&obs, 32);
        assert_eq!((g.cols(), g.rows()), (1, 1));
        assert_eq!(g.route_to_boundary((0, 0)), vec![(0, 0)]);
        assert_eq!(g.overflowed_edges(), 0);
    }
}
