//! Deterministic scoped-thread fan-out.
//!
//! The flow's data-parallel stages (DME candidate generation, MWCP
//! pair scoring) fan work out through [`parallel_map`]: scoped worker
//! threads claim items off a shared atomic counter and the results are
//! merged back **by item index**, so the output vector is identical to
//! the sequential map at any thread count. Determinism therefore needs
//! nothing from the workers beyond the mapped function itself being
//! pure — scheduling order never leaks into the result.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Caps a requested thread count at the host's available parallelism.
///
/// Fanning out wider than the hardware cannot win — the workers just
/// timeslice one another plus pay spawn overhead — so the flow routes
/// its [`FlowConfig::thread_count`](crate::FlowConfig) through this
/// before fanning out. Results are unaffected either way (the merge is
/// index-ordered); only wall-clock time is.
pub fn effective_threads(requested: usize) -> usize {
    let hardware = thread::available_parallelism().map_or(1, |n| n.get());
    requested.clamp(1, hardware)
}

/// Maps `f` over `items` on up to `threads` scoped worker threads,
/// returning results in item order.
///
/// `f` receives `(index, &item)`. With `threads <= 1` or fewer than two
/// items the map runs inline on the caller's thread — the parallel path
/// produces the exact same vector, just wall-clock faster.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(items.len());
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        produced.push((i, f(i, &items[i])));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("parallel_map worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every item is claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(4, &items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_at_any_thread_count() {
        let items: Vec<u64> = (0..37).map(|i| i * 17 % 23).collect();
        let work = |_: usize, &x: &u64| -> u64 {
            // Uneven per-item cost, so workers interleave differently
            // from run to run.
            (0..x * 50).fold(x, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
        };
        let sequential = parallel_map(1, &items, work);
        for threads in [2, 3, 4, 8] {
            assert_eq!(parallel_map(threads, &items, work), sequential);
        }
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let calls = AtomicUsize::new(0);
        let items: Vec<i32> = (0..64).collect();
        let out = parallel_map(5, &items, |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 64);
        assert_eq!(calls.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn handles_degenerate_inputs() {
        let empty: Vec<u8> = vec![];
        assert!(parallel_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(0, &[7u8], |_, &x| x), vec![7]);
        assert_eq!(parallel_map(16, &[1u8, 2], |_, &x| x + 1), vec![2, 3]);
    }
}
