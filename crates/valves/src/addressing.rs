//! Broadcast-addressing support: the merged driver sequence of a cluster
//! and pin-count accounting.
//!
//! Under the broadcast addressing scheme (paper Section 3, following
//! Minhass et al.'s control synthesis), every cluster of pairwise
//! compatible valves is driven by one control pin. The pressure source
//! behind that pin must emit a sequence compatible with *every* member —
//! the fold of [`ActivationSequence::unify`] over the cluster. This
//! module computes those driver sequences and the pin-count statistics
//! the clustering stage optimizes.

use crate::{ActivationSequence, Cluster, ValveSet};

/// The control-pin program for one cluster: the most specific activation
/// sequence compatible with every member valve.
///
/// # Examples
///
/// ```
/// use pacor_valves::{driver_sequence, Valve, ValveId, ValveSet};
/// use pacor_grid::Point;
///
/// let mut set = ValveSet::new();
/// set.insert(Valve::new(ValveId(0), Point::new(0, 0), "0X1".parse()?));
/// set.insert(Valve::new(ValveId(1), Point::new(1, 0), "X01".parse()?));
/// let clusters = set.cluster_greedy(&[]);
/// let driver = driver_sequence(&set, &clusters[0]).expect("compatible");
/// assert_eq!(driver.to_string(), "001");
/// # Ok::<(), pacor_valves::ParseSequenceError>(())
/// ```
pub fn driver_sequence(valves: &ValveSet, cluster: &Cluster) -> Option<ActivationSequence> {
    let mut iter = cluster.members().iter();
    let first = valves.get(*iter.next()?)?;
    let mut acc = first.sequence().clone();
    for id in iter {
        let v = valves.get(*id)?;
        acc = acc.unify(v.sequence())?;
    }
    Some(acc)
}

/// Pin-count statistics of a clustering — the quantity valve clustering
/// minimizes ("minimize the number of clusters so as to minimize the
/// number of control pins").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressingStats {
    /// Number of control pins needed (= number of clusters).
    pub pins: usize,
    /// Number of valves addressed.
    pub valves: usize,
    /// Largest cluster size.
    pub max_cluster: usize,
    /// Number of singleton clusters (valves with a private pin).
    pub singletons: usize,
}

impl AddressingStats {
    /// Computes the statistics for a clustering.
    pub fn of(clusters: &[Cluster]) -> Self {
        Self {
            pins: clusters.len(),
            valves: clusters.iter().map(Cluster::len).sum(),
            max_cluster: clusters.iter().map(Cluster::len).max().unwrap_or(0),
            singletons: clusters.iter().filter(|c| c.len() == 1).count(),
        }
    }

    /// Pin savings versus direct addressing (one pin per valve), in
    /// `[0, 1)`.
    pub fn pin_savings(&self) -> f64 {
        if self.valves == 0 {
            0.0
        } else {
            1.0 - self.pins as f64 / self.valves as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Valve, ValveId};
    use pacor_grid::Point;

    fn set(seqs: &[&str]) -> ValveSet {
        seqs.iter()
            .enumerate()
            .map(|(i, s)| Valve::new(ValveId(i as u32), Point::new(i as i32, 0), s.parse().unwrap()))
            .collect()
    }

    #[test]
    fn driver_is_most_specific() {
        let s = set(&["0XX", "X1X", "XX0"]);
        let clusters = s.cluster_greedy(&[]);
        assert_eq!(clusters.len(), 1);
        let d = driver_sequence(&s, &clusters[0]).unwrap();
        assert_eq!(d.to_string(), "010");
    }

    #[test]
    fn driver_of_singleton_is_its_sequence() {
        let s = set(&["01X"]);
        let clusters = s.cluster_greedy(&[]);
        let d = driver_sequence(&s, &clusters[0]).unwrap();
        assert_eq!(d.to_string(), "01X");
    }

    #[test]
    fn driver_compatible_with_every_member() {
        let s = set(&["0XX1", "X0X1", "00XX"]);
        let clusters = s.cluster_greedy(&[]);
        for c in &clusters {
            let d = driver_sequence(&s, c).unwrap();
            for m in c.members() {
                assert!(d.is_compatible(s.get(*m).unwrap().sequence()));
            }
        }
    }

    #[test]
    fn driver_none_for_unknown_member() {
        use crate::ClusterId;
        let s = set(&["0"]);
        let c = Cluster::new(ClusterId(0), vec![ValveId(9)], false);
        assert!(driver_sequence(&s, &c).is_none());
    }

    #[test]
    fn stats_basic() {
        let s = set(&["0X", "X0", "11", "1X"]);
        let clusters = s.cluster_greedy(&[]);
        let stats = AddressingStats::of(&clusters);
        assert_eq!(stats.valves, 4);
        assert_eq!(stats.pins, clusters.len());
        assert!(stats.pins < 4, "compatible valves must share pins");
        assert!(stats.pin_savings() > 0.0);
        assert!(stats.max_cluster >= 2);
    }

    #[test]
    fn stats_empty() {
        let stats = AddressingStats::of(&[]);
        assert_eq!(stats.pins, 0);
        assert_eq!(stats.pin_savings(), 0.0);
        assert_eq!(stats.max_cluster, 0);
    }
}
