//! Detour-stage guarantees (Algorithm 2 + the bounded router backing it):
//! after detouring, every member of a matched cluster carries a channel
//! length inside `[maxL − δ, maxL]`, and no detoured path ever crosses a
//! cell that is blocked for it in the obstacle map.

use pacor_repro::grid::{Grid, GridPath, ObsMap, Point};
use pacor_repro::pacor::{
    detour_cluster, BenchDesign, FlowConfig, PacorFlow, RoutedCluster, RoutedKind,
};
use pacor_repro::route::BoundedAStar;
use pacor_repro::valves::{Cluster, ClusterId, ValveId};

/// Asserts the length-matching window for every complete, matched
/// length-constrained cluster: `maxL − δ ≤ len_i ≤ maxL`.
fn assert_window(rc: &RoutedCluster, delta: u64, context: &str) {
    let Some(lens) = rc.member_lengths() else {
        return;
    };
    let max_l = *lens.iter().max().expect("nonempty cluster");
    for (i, &len) in lens.iter().enumerate() {
        assert!(
            len + delta >= max_l && len <= max_l,
            "{context}: member {i} length {len} outside [{} - {delta}, {}]",
            max_l,
            max_l
        );
    }
}

#[test]
fn flow_detours_land_in_the_matching_window() {
    for design in [BenchDesign::S1, BenchDesign::S2, BenchDesign::S4] {
        let problem = design.synthesize(42);
        let (_, routed) = PacorFlow::new(FlowConfig::default())
            .run_detailed(&problem)
            .expect("bench designs route");
        let mut checked = 0usize;
        for rc in &routed {
            if rc.cluster.is_length_matched() && rc.is_complete() && rc.is_matched(problem.delta)
            {
                assert_window(rc, problem.delta, &format!("{design:?}"));
                checked += 1;
            }
        }
        assert!(checked > 0, "{design:?} produced no matched clusters to check");
    }
}

#[test]
fn flow_detours_never_cross_foreign_obstacles() {
    // Rebuild the obstacle map from scratch (permanent obstacles plus
    // every OTHER net's cells) and check each cluster's geometry against
    // it — a detoured path may touch its own net, never anyone else's.
    let problem = BenchDesign::S4.synthesize(42);
    let (_, routed) = PacorFlow::new(FlowConfig::default())
        .run_detailed(&problem)
        .expect("S4 routes");
    let grid = problem.grid().unwrap();
    for (i, rc) in routed.iter().enumerate() {
        let mut obs = ObsMap::new(&grid);
        for (j, other) in routed.iter().enumerate() {
            if i == j {
                continue;
            }
            obs.block_all(other.net_cells());
            if let Some((esc, _)) = &other.escape {
                obs.block_all(esc.cells().iter().copied());
            }
        }
        for c in rc.net_cells() {
            assert!(
                !obs.is_blocked(c),
                "cluster {i} cell {c} overlaps an obstacle or foreign net"
            );
        }
    }
}

/// A hand-built pair whose halves are 2 and 6 units long (mismatch 4).
fn asymmetric_pair(obs: &mut ObsMap) -> RoutedCluster {
    let cells: Vec<Point> = (0..=8).map(|x| Point::new(x, 8)).collect();
    obs.block_all(cells.iter().copied());
    let junction = Point::new(2, 8);
    let half_a = GridPath::new(cells[..=2].to_vec()).unwrap();
    let mut rev = cells[2..].to_vec();
    rev.reverse();
    let half_b = GridPath::new(rev).unwrap();
    RoutedCluster {
        cluster: Cluster::new(ClusterId(0), vec![ValveId(0), ValveId(1)], true),
        member_positions: vec![Point::new(0, 8), Point::new(8, 8)],
        kind: RoutedKind::LmPair {
            junction,
            half_a,
            half_b,
        },
        escape: None,
    }
}

#[test]
fn detour_cluster_respects_window_and_obstacles() {
    for delta in [0u64, 1, 2] {
        let mut grid = Grid::new(18, 18).unwrap();
        // Scatter obstacles near the short half so the detour has to
        // steer around them.
        for p in [
            Point::new(1, 6),
            Point::new(2, 10),
            Point::new(3, 7),
            Point::new(0, 10),
        ] {
            grid.set_obstacle(p);
        }
        let mut obs = ObsMap::new(&grid);
        let mut rc = asymmetric_pair(&mut obs);
        let matched = detour_cluster(&mut obs, &mut rc, delta, &FlowConfig::default());
        assert!(matched, "δ={delta}: pair should match on an open grid");
        assert_window(&rc, delta, &format!("δ={delta}"));
        // The rewired net must avoid the permanent obstacles entirely.
        let clean = ObsMap::new(&grid);
        for c in rc.net_cells() {
            assert!(!clean.is_blocked(c), "δ={delta}: net crosses obstacle {c}");
        }
        // And the map must account for exactly the new net.
        for c in rc.net_cells() {
            assert!(obs.is_blocked(c), "δ={delta}: net cell {c} left unblocked");
        }
    }
}

#[test]
fn bounded_router_overshoot_stays_within_delta_window() {
    // The detour stage calls route_at_least(lt) with overshoot δ+2 and
    // lt = len + deficit ≤ maxL − δ: the result must never exceed the
    // window the stage is trying to hit.
    let obs = ObsMap::new(&Grid::new(24, 24).unwrap());
    for (lt, overshoot) in [(8u64, 2u64), (13, 3), (20, 4)] {
        let router = BoundedAStar::new(&obs).with_max_overshoot(overshoot);
        let path = router
            .route_at_least(Point::new(4, 12), Point::new(10, 12), lt)
            .expect("open grid detours");
        assert!(
            path.len() >= lt && path.len() <= lt + overshoot,
            "length {} outside [{lt}, {}]",
            path.len(),
            lt + overshoot
        );
        // Self-avoiding: no cell twice.
        let mut seen = std::collections::HashSet::new();
        for c in path.cells() {
            assert!(seen.insert(*c), "cell {c} repeated");
        }
    }
}

#[test]
fn bounded_router_avoids_obstacles_under_length_pressure() {
    // Force the detour through a slit: the lengthened path must thread
    // it without ever touching a blocked cell.
    let mut grid = Grid::new(20, 20).unwrap();
    for y in 0..20 {
        if y != 10 {
            grid.set_obstacle(Point::new(9, y));
        }
    }
    let obs = ObsMap::new(&grid);
    let path = BoundedAStar::new(&obs)
        .with_max_overshoot(4)
        .route_at_least(Point::new(5, 10), Point::new(14, 10), 15)
        .expect("slit admits a lengthened path");
    assert!(path.len() >= 15);
    for c in path.cells() {
        assert!(!obs.is_blocked(*c), "path crosses blocked cell {c}");
    }
}
