/root/repo/target/debug/examples/render_layout-da338d8d5d19476b.d: examples/render_layout.rs

/root/repo/target/debug/examples/render_layout-da338d8d5d19476b: examples/render_layout.rs

examples/render_layout.rs:
