//! Path detouring for length matching — Algorithm 2 of the paper.

use crate::{FlowConfig, RoutedCluster, RoutedKind};
use pacor_grid::{GridLen, GridPath, ObsMap};
use pacor_route::BoundedAStar;

/// Detours the short full paths of one routed length-matching cluster so
/// that every member's channel length lands in `[maxL − δ, maxL]`
/// (Algorithm 2). Returns `true` when the cluster ends up matched.
///
/// Segments closest to the valves are detoured first (Definition 6 path
/// sequences) because they affect no other member. A segment that was
/// already detoured in this round satisfies the member immediately (its
/// length grew). On a member whose every segment fails to detour, all
/// changes are rolled back and the function returns the original
/// matching state, exactly as the algorithm's restore step prescribes.
///
/// Unconstrained clusters ([`RoutedKind::Mst`] / singleton) and clusters
/// without escape-independent member lengths return their current
/// matching state unchanged.
pub fn detour_cluster(
    obs: &mut ObsMap,
    rc: &mut RoutedCluster,
    delta: GridLen,
    config: &FlowConfig,
) -> bool {
    if rc.member_lengths().is_none() {
        return rc.is_matched(delta);
    }
    // Pre-step: compact over-long segments. The negotiation router may
    // have wired an edge far beyond its Manhattan length to dodge
    // congestion that has since been resolved (or that settled
    // elsewhere); matching everyone up to such an outlier would snake the
    // whole cluster. Rip each inflated segment and rewire it shortest.
    compact_segments(obs, rc);

    // Snapshot for the restore step.
    let original_kind = rc.kind.clone();
    let mut touched: Vec<usize> = Vec::new(); // replaced segment indices

    let mut r = 0u32;
    loop {
        // checkEqual.
        let lens = rc.member_lengths().expect("LM kind checked above");
        let max_l = *lens.iter().max().expect("nonempty cluster");
        let shorts: Vec<usize> = (0..lens.len())
            .filter(|&i| lens[i] + delta < max_l)
            .collect();
        if shorts.is_empty() {
            return true;
        }
        r += 1;
        if r > config.theta {
            return rc.is_matched(delta);
        }

        let mut detoured_this_round = vec![false; segment_count(&rc.kind)];
        for &member in &shorts {
            // Lengths may have shifted after detouring a shared segment.
            let lens = rc.member_lengths().expect("LM kind");
            let max_l = *lens.iter().max().expect("nonempty");
            if lens[member] + delta >= max_l {
                continue;
            }
            let deficit = (max_l - delta) - lens[member];
            let seq = path_sequence(&rc.kind, member);
            let mut success = false;
            for seg_idx in seq {
                if detoured_this_round[seg_idx] {
                    success = true;
                    break;
                }
                // Lengthening a segment lengthens every member routed
                // through it. Cap the detour so no such member overshoots
                // maxL — otherwise maxL itself grows and the targets chase
                // their own tail (runaway snaking).
                let headroom = (0..lens.len())
                    .filter(|&m| m != member && path_sequence(&rc.kind, m).contains(&seg_idx))
                    .map(|m| max_l - lens[m])
                    .min()
                    .unwrap_or(u64::MAX);
                if headroom < deficit {
                    continue; // shared segment cannot absorb the deficit
                }
                let seg = segment(&rc.kind, seg_idx).clone();
                let lt = seg.len() + deficit;
                // Sanity cap: a detour blowing a segment up to several
                // times its length would congest the layer for everyone
                // else; prefer reporting the cluster unmatched (the
                // paper's Detour-First column shows exactly this trade).
                if lt > 4 * seg.len() + 16 {
                    continue;
                }
                // Rip the segment's interior so the detour may reuse the
                // corridor; endpoints stay blocked (shared junctions).
                let old_interior: Vec<_> = interior(&seg).to_vec();
                obs.unblock_all(old_interior.iter().copied());
                let result = BoundedAStar::new(obs)
                    .with_node_budget(config.detour_node_budget)
                    .with_max_overshoot(delta + 2)
                    .route_at_least(seg.source(), seg.target(), lt);
                match result {
                    Some(new_path) => {
                        pacor_obs::counter_add("detour.segments", 1);
                        pacor_obs::record("detour.delta", new_path.len().saturating_sub(seg.len()));
                        pacor_obs::flight(|| pacor_obs::FlightEvent::DetourSegment {
                            cluster: rc.cluster.id().0,
                            added: new_path.len().saturating_sub(seg.len()),
                        });
                        obs.block_all(interior(&new_path).iter().copied());
                        *segment_mut(&mut rc.kind, seg_idx) = new_path;
                        detoured_this_round[seg_idx] = true;
                        touched.push(seg_idx);
                        success = true;
                        break;
                    }
                    None => {
                        // Re-block the old interior and try the next
                        // segment up the path sequence.
                        obs.block_all(old_interior.iter().copied());
                    }
                }
            }
            if !success {
                // Restore every replaced segment (Algorithm 2 step 23).
                restore(obs, rc, original_kind, &touched);
                return rc.is_matched(delta);
            }
        }
    }
}


/// Interior cells of a segment (everything but the two endpoints); empty
/// for segments of fewer than three cells, including the zero-length
/// segments a degenerate tree edge produces.
fn interior(path: &GridPath) -> &[pacor_grid::Point] {
    let c = path.cells();
    if c.len() >= 3 {
        &c[1..c.len() - 1]
    } else {
        &[]
    }
}

/// Rips each segment wired longer than its Manhattan distance and tries
/// to rewire it shortest with plain A\*; keeps the shorter wiring.
fn compact_segments(obs: &mut ObsMap, rc: &mut RoutedCluster) {
    use pacor_route::AStar;
    for i in 0..segment_count(&rc.kind) {
        let seg = segment(&rc.kind, i).clone();
        let best = seg.source().manhattan(seg.target());
        if seg.len() <= best {
            continue;
        }
        let old_interior: Vec<_> = interior(&seg).to_vec();
        obs.unblock_all(old_interior.iter().copied());
        let rerouted = AStar::new(obs).point_to_point(seg.source(), seg.target());
        match rerouted {
            Some(new_path) if new_path.len() < seg.len() => {
                obs.block_all(interior(&new_path).iter().copied());
                *segment_mut(&mut rc.kind, i) = new_path;
            }
            _ => {
                obs.block_all(old_interior.iter().copied());
            }
        }
    }
}

/// Rolls back all replaced segments to their original paths.
fn restore(obs: &mut ObsMap, rc: &mut RoutedCluster, original: RoutedKind, touched: &[usize]) {
    for &i in touched {
        let cur = segment(&rc.kind, i).clone();
        obs.unblock_all(interior(&cur).iter().copied());
    }
    rc.kind = original;
    for &i in touched {
        let orig = segment(&rc.kind, i).clone();
        obs.block_all(interior(&orig).iter().copied());
    }
}

fn segment_count(kind: &RoutedKind) -> usize {
    match kind {
        RoutedKind::LmTree { edge_paths, .. } => edge_paths.len(),
        RoutedKind::LmPair { .. } => 2,
        _ => 0,
    }
}

fn segment(kind: &RoutedKind, i: usize) -> &GridPath {
    match kind {
        RoutedKind::LmTree { edge_paths, .. } => &edge_paths[i],
        RoutedKind::LmPair { half_a, half_b, .. } => {
            if i == 0 {
                half_a
            } else {
                half_b
            }
        }
        _ => unreachable!("no segments on unconstrained clusters"),
    }
}

fn segment_mut(kind: &mut RoutedKind, i: usize) -> &mut GridPath {
    match kind {
        RoutedKind::LmTree { edge_paths, .. } => &mut edge_paths[i],
        RoutedKind::LmPair { half_a, half_b, .. } => {
            if i == 0 {
                half_a
            } else {
                half_b
            }
        }
        _ => unreachable!("no segments on unconstrained clusters"),
    }
}

/// Definition 6: segment indices from the member's valve toward the root.
fn path_sequence(kind: &RoutedKind, member: usize) -> Vec<usize> {
    match kind {
        RoutedKind::LmTree { tree, .. } => {
            // Edges are (child, parent): the child node keys its edge.
            let mut edge_of_child = vec![usize::MAX; tree.nodes().len()];
            for (i, (child, _)) in tree.edge_indices().into_iter().enumerate() {
                edge_of_child[child] = i;
            }
            tree.full_path_nodes(member)
                .windows(2)
                .map(|w| edge_of_child[w[0]])
                .collect()
        }
        RoutedKind::LmPair { .. } => vec![member],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacor_grid::{Grid, Point};
    use pacor_valves::{Cluster, ClusterId, ValveId};

    /// A pair with asymmetric halves: valve a 2 units from the junction,
    /// valve b 6 units. δ=1 requires detouring half_a by ~4.
    fn asymmetric_pair(obs: &mut ObsMap) -> RoutedCluster {
        let cells: Vec<Point> = (0..=8).map(|x| Point::new(x, 5)).collect();
        obs.block_all(cells.iter().copied());
        let junction = Point::new(2, 5);
        let half_a = GridPath::new(cells[..=2].to_vec()).unwrap();
        let mut rev = cells[2..].to_vec();
        rev.reverse();
        let half_b = GridPath::new(rev).unwrap();
        RoutedCluster {
            cluster: Cluster::new(ClusterId(0), vec![ValveId(0), ValveId(1)], true),
            member_positions: vec![Point::new(0, 5), Point::new(8, 5)],
            kind: RoutedKind::LmPair {
                junction,
                half_a,
                half_b,
            },
            escape: None,
        }
    }

    #[test]
    fn detours_short_half_to_match() {
        let grid = Grid::new(16, 16).unwrap();
        let mut obs = ObsMap::new(&grid);
        let mut rc = asymmetric_pair(&mut obs);
        assert_eq!(rc.mismatch(), Some(4));
        let matched = detour_cluster(&mut obs, &mut rc, 1, &FlowConfig::default());
        assert!(matched);
        assert!(rc.mismatch().unwrap() <= 1);
        // Endpoints unchanged.
        match &rc.kind {
            RoutedKind::LmPair {
                junction, half_a, ..
            } => {
                assert_eq!(half_a.source(), Point::new(0, 5));
                assert_eq!(half_a.target(), *junction);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn detoured_cells_are_blocked() {
        let grid = Grid::new(16, 16).unwrap();
        let mut obs = ObsMap::new(&grid);
        let mut rc = asymmetric_pair(&mut obs);
        detour_cluster(&mut obs, &mut rc, 1, &FlowConfig::default());
        for c in rc.net_cells() {
            assert!(obs.is_blocked(c), "net cell {c} unblocked after detour");
        }
    }

    #[test]
    fn already_matched_is_untouched() {
        let grid = Grid::new(16, 16).unwrap();
        let mut obs = ObsMap::new(&grid);
        let cells: Vec<Point> = (0..=4).map(|x| Point::new(x, 5)).collect();
        obs.block_all(cells.iter().copied());
        let half_a = GridPath::new(cells[..=2].to_vec()).unwrap();
        let mut rev = cells[2..].to_vec();
        rev.reverse();
        let half_b = GridPath::new(rev).unwrap();
        let mut rc = RoutedCluster {
            cluster: Cluster::new(ClusterId(0), vec![ValveId(0), ValveId(1)], true),
            member_positions: vec![Point::new(0, 5), Point::new(4, 5)],
            kind: RoutedKind::LmPair {
                junction: Point::new(2, 5),
                half_a: half_a.clone(),
                half_b,
            },
            escape: None,
        };
        assert!(detour_cluster(&mut obs, &mut rc, 1, &FlowConfig::default()));
        match &rc.kind {
            RoutedKind::LmPair { half_a: a, .. } => assert_eq!(a, &half_a),
            _ => unreachable!(),
        }
    }

    #[test]
    fn enclosed_segment_restores_and_reports() {
        // The short half is walled in: no detour room at all.
        let mut grid = Grid::new(16, 16).unwrap();
        // Wall a tight box around the first half (0..2, y=5).
        for x in 0..=3 {
            grid.set_obstacle(Point::new(x, 4));
            grid.set_obstacle(Point::new(x, 6));
        }
        grid.set_obstacle(Point::new(3, 5)); // also wall the junction side?
        // Build the asymmetric pair at y=5 with a 1-wide corridor that
        // cannot absorb any detour.
        let mut grid = Grid::new(16, 16).unwrap();
        for x in 0..=2 {
            grid.set_obstacle(Point::new(x, 4));
            grid.set_obstacle(Point::new(x, 6));
        }
        grid.set_obstacle(Point::new(0, 4));
        let mut obs = ObsMap::new(&grid);
        let mut rc = asymmetric_pair(&mut obs);
        let before = rc.mismatch();
        let matched = detour_cluster(&mut obs, &mut rc, 1, &FlowConfig::default());
        // half_a cannot stretch inside its 1-wide corridor, and the only
        // shared segment fallback is half_b (already the long one, not in
        // member 0's sequence) — so the cluster stays unmatched with its
        // original paths restored.
        assert!(!matched);
        assert_eq!(rc.mismatch(), before);
    }

    #[test]
    fn mst_cluster_is_a_noop() {
        let grid = Grid::new(8, 8).unwrap();
        let mut obs = ObsMap::new(&grid);
        let mut rc = RoutedCluster {
            cluster: Cluster::new(ClusterId(0), vec![ValveId(0)], false),
            member_positions: vec![Point::new(2, 2)],
            kind: RoutedKind::Singleton,
            escape: None,
        };
        assert!(!detour_cluster(&mut obs, &mut rc, 1, &FlowConfig::default()));
    }

    #[test]
    fn tree_cluster_detours_leaf_edges() {
        // Build a small tree by hand: root (5,5); two sinks at unequal
        // wired distances.
        use pacor_dme::{SteinerTree, TreeNode};
        let grid = Grid::new(20, 20).unwrap();
        let mut obs = ObsMap::new(&grid);
        let nodes = vec![
            TreeNode {
                point: Point::new(5, 5),
                parent: None,
                sink: None,
            },
            TreeNode {
                point: Point::new(2, 5),
                parent: Some(0),
                sink: Some(0),
            },
            TreeNode {
                point: Point::new(12, 5),
                parent: Some(0),
                sink: Some(1),
            },
        ];
        let tree = SteinerTree::new(nodes, 0, vec![1, 2]);
        // Wire the two edges as straight paths: lengths 3 and 7.
        let e0 = GridPath::new((2..=5).map(|x| Point::new(x, 5)).collect()).unwrap();
        let mut cells: Vec<Point> = (5..=12).map(|x| Point::new(x, 5)).collect();
        cells.reverse(); // child (12,5) → parent (5,5)
        let e1 = GridPath::new(cells).unwrap();
        obs.block_all(e0.cells().iter().copied());
        obs.block_all(e1.cells().iter().copied());
        let mut rc = RoutedCluster {
            cluster: Cluster::new(ClusterId(0), vec![ValveId(0), ValveId(1)], true),
            member_positions: vec![Point::new(2, 5), Point::new(12, 5)],
            kind: RoutedKind::LmTree {
                tree,
                edge_paths: vec![e0, e1],
            },
            escape: None,
        };
        assert_eq!(rc.mismatch(), Some(4));
        let matched = detour_cluster(&mut obs, &mut rc, 1, &FlowConfig::default());
        assert!(matched);
        assert!(rc.mismatch().unwrap() <= 1);
    }
}
