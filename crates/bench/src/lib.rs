//! Shared helpers for the PACOR benchmark harness.
//!
//! The binaries and criterion benches in this crate regenerate every
//! table and figure of the paper's evaluation (see DESIGN.md §5):
//!
//! * `tables table1` — design parameters (Table 1),
//! * `tables table2` — the three-variant self-comparison (Table 2),
//! * `tables fig3`   — DME candidate Steiner trees (Figure 3),
//! * `tables ablation` — λ / negotiation-parameter ablations (A1/A2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pacor::route::{NegotiationMode, RipUpPolicy};
use pacor::{
    synthesize_params, BenchDesign, DesignParams, FlowConfig, FlowVariant, PacorFlow, RouteReport,
    RoutingMode,
};
use serde::{Deserialize, Serialize};

/// The seed every reported experiment uses, for reproducibility.
pub const BENCH_SEED: u64 = 42;

/// Chips at or above this width get the reduced large-chip benchmark
/// schedule (routing-mode comparison at capped repeats instead of the
/// full policy × mode matrix), and the large-tier rules in
/// `tables regress` (completion + scaling gates instead of per-stage
/// wall-clock budgets).
pub const LARGE_WIDTH: u32 = 256;

/// Runs one design under one variant and returns its report.
///
/// # Panics
///
/// Panics when the synthesized problem fails to route-validate — a
/// harness bug rather than an experiment outcome.
pub fn run_variant(design: BenchDesign, variant: FlowVariant, seed: u64) -> RouteReport {
    let problem = design.synthesize(seed);
    PacorFlow::new(FlowConfig::for_variant(variant))
        .run(&problem)
        .expect("synthesized designs are valid")
}

/// Runs one design under a custom configuration.
///
/// # Panics
///
/// Same as [`run_variant`].
pub fn run_config(design: BenchDesign, config: FlowConfig, seed: u64) -> RouteReport {
    let problem = design.synthesize(seed);
    PacorFlow::new(config)
        .run(&problem)
        .expect("synthesized designs are valid")
}

/// Formats a Table 1 row for a design.
pub fn table1_row(design: BenchDesign) -> String {
    let p = design.params();
    format!(
        "{:<8} {:>4}x{:<4} {:>8} {:>12} {:>6}",
        p.name, p.width, p.height, p.valves, p.control_pins, p.obstacles
    )
}

/// The Table 1 header matching [`table1_row`].
pub fn table1_header() -> String {
    format!(
        "{:<8} {:>9} {:>8} {:>12} {:>6}",
        "Design", "Size", "#Valves", "#ControlPin", "#Obs"
    )
}

/// The hot-path counters printed alongside Table 2, in column order.
/// The last three are the speculative-negotiation counters — all zero
/// under the default serial mode, populated under
/// `--negotiation-mode parallel` (see docs/GUIDE.md §"Threads").
const METRIC_COLUMNS: [(&str, &str); 9] = [
    ("astar.queries", "A*qry"),
    ("astar.expansions", "A*exp"),
    ("negotiate.rounds", "NegRnd"),
    ("negotiate.ripups", "RipUp"),
    ("escape.declustered", "Declus"),
    ("detour.segments", "DetSeg"),
    ("negotiate.speculative", "Spec"),
    ("negotiate.conflicts", "Cnfl"),
    ("negotiate.serial_fallbacks", "Fallb"),
];

/// Formats a counter row for a report: the deterministic hot-path
/// totals the flow's observability layer collected during the run.
pub fn metrics_row(report: &RouteReport) -> String {
    let mut row = format!("{:<8} {:<13}", report.design, report.variant);
    for (name, _) in METRIC_COLUMNS {
        row.push_str(&format!(" {:>9}", report.metrics.counter(name)));
    }
    row
}

/// The header matching [`metrics_row`].
pub fn metrics_header() -> String {
    let mut row = format!("{:<8} {:<13}", "Design", "Method");
    for (_, label) in METRIC_COLUMNS {
        row.push_str(&format!(" {label:>9}"));
    }
    row
}

// ---------------------------------------------------------------------------
// End-to-end flow benchmark (`bench_flow` binary → BENCH_flow.json).

// The dense flow-benchmark chip definitions live in `pacor`'s bench
// suite (next to `DesignParams` and the Table 1 designs) so the CLI can
// synthesize and route them by name; re-exported here for the harness.
pub use pacor::{FLOW_BENCH_CHIPS, FLOW_HUGE_CHIP, FLOW_SMOKE_CHIP};

/// One (chip × rip-up policy × negotiation mode) measurement of the
/// end-to-end flow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowBenchEntry {
    /// Chip name (see [`FLOW_BENCH_CHIPS`]).
    pub chip: String,
    /// Grid width.
    pub width: u32,
    /// Grid height.
    pub height: u32,
    /// Valve count.
    pub valves: u32,
    /// Rip-up policy label (`full` / `incremental`).
    pub policy: String,
    /// Negotiation mode label (`serial` / `parallel`).
    pub mode: String,
    /// Routing mode label (`flat` / `hierarchical`).
    pub routing: String,
    /// Worker threads configured for the run.
    pub threads: usize,
    /// CPUs the measuring host exposed. The scaling gate in
    /// `make bench-check` only applies where the hardware can actually
    /// parallelize — a 1-CPU container serializes every thread count.
    pub host_cpus: usize,
    /// End-to-end wall-clock of the best repeat, in milliseconds.
    pub wall_ms: f64,
    /// Serial-baseline wall-clock divided by this entry's: the speedup
    /// earned by this entry's extra threads over the 1-thread entry with
    /// the same chip, policy and routing mode (1.0 for that baseline
    /// itself, and for entries with no baseline in the same run).
    pub scaling_efficiency: f64,
    /// Wall-clock spent inside `negotiate` spans on the best-negotiate
    /// repeat, in milliseconds (the phase the parallel mode targets).
    pub negotiate_ms: f64,
    /// `negotiate.rounds` counter total.
    pub rounds: u64,
    /// `negotiate.ripups` counter total.
    pub ripups: u64,
    /// `astar.scratch_resets` counter total.
    pub scratch_resets: u64,
    /// `negotiate.speculative` counter total (0 in serial mode).
    pub speculative: u64,
    /// `negotiate.conflicts` counter total (0 in serial mode).
    pub conflicts: u64,
    /// `negotiate.serial_fallbacks` counter total (0 in serial mode).
    pub serial_fallbacks: u64,
    /// Total routed control-channel length, grid units.
    pub total_length: u64,
    /// Fraction of valves connected (1.0 = everything routed).
    pub completion_rate: f64,
    /// Span-summed wall-clock per flow stage (best across repeats, like
    /// `wall_ms`), so speedups can be attributed to the stage that
    /// earned them.
    pub stage_ms: StageMs,
    /// Escape-stage sub-breakdown (best across repeats, like
    /// `stage_ms`), attributing the escape wall-clock to network
    /// construction, min-cost-flow solves, and the three phases.
    pub escape_ms: EscapeMs,
}

/// Per-stage wall-clock breakdown of one flow run, in milliseconds.
/// Each field sums the durations of the matching `stage.*` span
/// (inclusive — escape includes its flow solves, detour its A\* calls).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct StageMs {
    /// `stage.clustering` spans.
    pub clustering: f64,
    /// `stage.lm_routing` spans (includes negotiation rounds).
    pub lm_routing: f64,
    /// `stage.mst_routing` spans.
    pub mst_routing: f64,
    /// `stage.escape` spans.
    pub escape: f64,
    /// `stage.detour` spans (both detour passes).
    pub detour: f64,
}

impl StageMs {
    /// Extracts the breakdown from an observability report.
    pub fn of(report: &pacor::obs::ObsReport) -> Self {
        Self {
            clustering: span_ms_of(report, "stage.clustering"),
            lm_routing: span_ms_of(report, "stage.lm_routing"),
            mst_routing: span_ms_of(report, "stage.mst_routing"),
            escape: span_ms_of(report, "stage.escape"),
            detour: span_ms_of(report, "stage.detour"),
        }
    }

    /// Field-wise minimum, mirroring the best-of-repeats `wall_ms` rule.
    fn min(self, other: Self) -> Self {
        Self {
            clustering: self.clustering.min(other.clustering),
            lm_routing: self.lm_routing.min(other.lm_routing),
            mst_routing: self.mst_routing.min(other.mst_routing),
            escape: self.escape.min(other.escape),
            detour: self.detour.min(other.detour),
        }
    }
}

/// Escape-stage wall-clock sub-breakdown of one flow run, in
/// milliseconds. Each field sums the durations of the matching
/// `escape.*` span, so an escape regression (or speedup) attributes to
/// network construction, flow solves, or a specific phase. The two
/// axes overlap: `net_build`/`net_solve` slice the stage by activity,
/// `phase1`–`phase3` slice it by protocol phase (each phase span
/// encloses its build and solve spans, plus phase-local work such as
/// blocker analysis and delta application).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct EscapeMs {
    /// `escape.net_build` spans (full and windowed network builds).
    pub net_build: f64,
    /// `escape.net_solve` spans (cold and warm min-cost-flow solves).
    pub net_solve: f64,
    /// `escape.phase1` spans (global rounds with de-clustering).
    pub phase1: f64,
    /// `escape.phase2` spans (pending-only solves plus rip-up recovery).
    pub phase2: f64,
    /// `escape.phase3` spans (last-resort global re-solves).
    pub phase3: f64,
}

impl EscapeMs {
    /// Extracts the sub-breakdown from an observability report.
    pub fn of(report: &pacor::obs::ObsReport) -> Self {
        Self {
            net_build: span_ms_of(report, "escape.net_build"),
            net_solve: span_ms_of(report, "escape.net_solve"),
            phase1: span_ms_of(report, "escape.phase1"),
            phase2: span_ms_of(report, "escape.phase2"),
            phase3: span_ms_of(report, "escape.phase3"),
        }
    }

    /// Field-wise minimum, mirroring the best-of-repeats `wall_ms` rule.
    fn min(self, other: Self) -> Self {
        Self {
            net_build: self.net_build.min(other.net_build),
            net_solve: self.net_solve.min(other.net_solve),
            phase1: self.phase1.min(other.phase1),
            phase2: self.phase2.min(other.phase2),
            phase3: self.phase3.min(other.phase3),
        }
    }
}

/// The `BENCH_flow.json` document: one entry per chip × policy × mode.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowBenchReport {
    /// Synthesis seed shared by every entry.
    pub seed: u64,
    /// Repeats per entry (wall-clock is the minimum across them).
    pub repeat: u32,
    /// Measurements, in chip-then-policy order.
    pub entries: Vec<FlowBenchEntry>,
}

/// CPUs the current host exposes to this process.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Fills in `scaling_efficiency` across one run's entries: each
/// multi-thread entry is related to the 1-thread entry sharing its chip,
/// policy and routing mode. Returns the (chip, policy, routing, threads,
/// efficiency) tuples of every entry that scaled *backwards* — parallel
/// slower than serial — on a host that could have parallelized, so the
/// caller can warn about them.
pub fn fill_scaling_efficiency(
    entries: &mut [FlowBenchEntry],
) -> Vec<(String, String, String, usize, f64)> {
    let serial_walls: Vec<(String, String, String, f64)> = entries
        .iter()
        .filter(|e| e.threads == 1)
        .map(|e| (e.chip.clone(), e.policy.clone(), e.routing.clone(), e.wall_ms))
        .collect();
    let mut regressions = Vec::new();
    for e in entries.iter_mut().filter(|e| e.threads > 1) {
        let Some((_, _, _, serial)) = serial_walls
            .iter()
            .find(|(c, p, r, _)| *c == e.chip && *p == e.policy && *r == e.routing)
        else {
            continue;
        };
        e.scaling_efficiency = serial / e.wall_ms;
        if e.scaling_efficiency < 1.0 && e.host_cpus > 1 {
            regressions.push((
                e.chip.clone(),
                e.policy.clone(),
                e.routing.clone(),
                e.threads,
                e.scaling_efficiency,
            ));
        }
    }
    regressions
}

/// Sums the durations of every span with the given name in an
/// observability report, in milliseconds.
fn span_ms_of(report: &pacor::obs::ObsReport, span: &str) -> f64 {
    report
        .events()
        .iter()
        .filter_map(|e| match e {
            pacor::obs::TraceEvent::Span { name, dur, .. } if *name == span => Some(*dur),
            _ => None,
        })
        .sum::<u64>() as f64
        / 1e3
}

/// Runs the full flow on one synthesized chip under one rip-up policy
/// and negotiation mode, `repeat` times, and reports the best
/// wall-clock (end-to-end, and inside the `negotiate` spans) alongside
/// the (repeat-invariant) counter totals. One untimed warm-up run
/// precedes the timed repeats so first-touch costs (page faults,
/// allocator growth) don't land on whichever configuration happens to
/// run first.
///
/// # Panics
///
/// Panics when the flow errors out or the counters differ between
/// repeats — both harness bugs, not experiment outcomes.
pub fn run_flow_bench(
    params: DesignParams,
    policy: RipUpPolicy,
    mode: NegotiationMode,
    routing: RoutingMode,
    threads: usize,
    seed: u64,
    repeat: u32,
) -> FlowBenchEntry {
    run_flow_bench_with_digest(params, policy, mode, routing, threads, seed, repeat).0
}

/// [`run_flow_bench`], additionally returning the `pacor-rundigest-v1`
/// record of the *last* timed repeat (deterministic fields are
/// repeat-invariant; the wall-clock facts are that repeat's). This is
/// what `bench_flow --ledger` appends to the run ledger so bench
/// entries can be diffed with `tables compare`.
///
/// # Panics
///
/// Same as [`run_flow_bench`].
pub fn run_flow_bench_with_digest(
    params: DesignParams,
    policy: RipUpPolicy,
    mode: NegotiationMode,
    routing: RoutingMode,
    threads: usize,
    seed: u64,
    repeat: u32,
) -> (FlowBenchEntry, pacor::obs::RunDigest) {
    let problem = synthesize_params(params, seed);
    let config = FlowConfig::default()
        .with_ripup_policy(policy)
        .with_negotiation_mode(mode)
        .with_routing_mode(routing)
        .with_threads(threads);
    PacorFlow::new(config)
        .run(&problem)
        .expect("synthesized designs are valid");
    let mut entry: Option<FlowBenchEntry> = None;
    let mut digest: Option<pacor::obs::RunDigest> = None;
    for _ in 0..repeat.max(1) {
        // An outer observability session captures the run's spans (the
        // flow's nested session merges upward into it on finish), so the
        // negotiation phase can be timed without touching the flow.
        let session = pacor::obs::Session::begin();
        let report = PacorFlow::new(config)
            .run(&problem)
            .expect("synthesized designs are valid");
        let obs = session.finish();
        digest = Some(pacor::run_digest(&problem, &config, &report, &obs));
        let negotiate_ms = span_ms_of(&obs, "negotiate");
        let stage_ms = StageMs::of(&obs);
        let escape_ms = EscapeMs::of(&obs);
        let wall_ms = report.runtime.as_secs_f64() * 1e3;
        match &mut entry {
            None => {
                entry = Some(FlowBenchEntry {
                    chip: params.name.to_string(),
                    width: params.width,
                    height: params.height,
                    valves: params.valves,
                    policy: policy.label().to_string(),
                    mode: mode.label().to_string(),
                    routing: routing.label().to_string(),
                    threads,
                    host_cpus: host_cpus(),
                    wall_ms,
                    scaling_efficiency: 1.0,
                    negotiate_ms,
                    rounds: report.metrics.counter("negotiate.rounds"),
                    ripups: report.metrics.counter("negotiate.ripups"),
                    scratch_resets: report.metrics.counter("astar.scratch_resets"),
                    speculative: report.metrics.counter("negotiate.speculative"),
                    conflicts: report.metrics.counter("negotiate.conflicts"),
                    serial_fallbacks: report.metrics.counter("negotiate.serial_fallbacks"),
                    total_length: report.total_length,
                    completion_rate: report.completion_rate(),
                    stage_ms,
                    escape_ms,
                });
            }
            Some(e) => {
                assert_eq!(e.ripups, report.metrics.counter("negotiate.ripups"));
                e.wall_ms = e.wall_ms.min(wall_ms);
                e.negotiate_ms = e.negotiate_ms.min(negotiate_ms);
                e.stage_ms = e.stage_ms.min(stage_ms);
                e.escape_ms = e.escape_ms.min(escape_ms);
            }
        }
    }
    (entry.expect("repeat >= 1"), digest.expect("repeat >= 1"))
}

/// Runs the flow once with a deterministic in-memory telemetry stream
/// installed and returns the raw JSONL lines. This is the event stream
/// the invariance tests byte-compare across thread counts and modes,
/// and the one `bench_flow --events` sanity-checks against the entry's
/// counters.
///
/// # Panics
///
/// Panics when the flow errors out — a harness bug, not an experiment
/// outcome.
pub fn collect_telemetry(
    params: DesignParams,
    policy: RipUpPolicy,
    mode: NegotiationMode,
    threads: usize,
    seed: u64,
) -> Vec<String> {
    let problem = synthesize_params(params, seed);
    let config = FlowConfig::default()
        .with_ripup_policy(policy)
        .with_negotiation_mode(mode)
        .with_threads(threads);
    let sink = pacor::obs::MemorySink::new();
    let lines = sink.lines();
    pacor::obs::telemetry_install(
        pacor::obs::TelemetryConfig::deterministic(),
        vec![Box::new(sink)],
    );
    let result = PacorFlow::new(config).run(&problem);
    pacor::obs::telemetry_take()
        .expect("telemetry installed")
        .expect("a memory sink cannot fail");
    result.expect("synthesized designs are valid");
    let collected = lines.lock().expect("telemetry sink lock").clone();
    collected
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_variant_completes_s1() {
        let r = run_variant(BenchDesign::S1, FlowVariant::Pacor, BENCH_SEED);
        assert_eq!(r.completion_rate(), 1.0);
    }

    #[test]
    fn table1_row_contains_params() {
        let row = table1_row(BenchDesign::S3);
        assert!(row.contains("S3"));
        assert!(row.contains("52x52"));
        assert!(row.contains("93"));
    }

    #[test]
    fn metrics_row_prints_counter_totals() {
        let r = run_variant(BenchDesign::S1, FlowVariant::Pacor, BENCH_SEED);
        let row = metrics_row(&r);
        assert!(row.contains("S1"));
        assert!(
            row.contains(&r.metrics.counter("astar.expansions").to_string()),
            "row must carry the expansion total: {row}"
        );
        let header = metrics_header();
        assert!(header.contains("A*exp"));
    }
}
