//! Axis-aligned rectangles (bounding boxes).

use crate::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned, inclusive rectangle of grid cells.
///
/// `Rect` is used for edge bounding boxes in the overlap cost of Eq. (4)
/// and for obstacle regions. Both corners are inclusive, so a rectangle
/// degenerate to a single point has area 1.
///
/// # Examples
///
/// ```
/// use pacor_grid::{Point, Rect};
///
/// let r = Rect::from_corners(Point::new(2, 5), Point::new(0, 1));
/// assert_eq!(r.min(), Point::new(0, 1));
/// assert_eq!(r.max(), Point::new(2, 5));
/// assert_eq!(r.area(), 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates the bounding rectangle of two (unordered) corner points.
    pub fn from_corners(a: Point, b: Point) -> Self {
        Self {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The rectangle covering exactly one cell.
    pub fn from_point(p: Point) -> Self {
        Self { min: p, max: p }
    }

    /// Lower-left (minimum) corner.
    #[inline]
    pub fn min(&self) -> Point {
        self.min
    }

    /// Upper-right (maximum) corner.
    #[inline]
    pub fn max(&self) -> Point {
        self.max
    }

    /// Width in cells (inclusive of both edges).
    #[inline]
    pub fn width(&self) -> u64 {
        (self.max.x as i64 - self.min.x as i64) as u64 + 1
    }

    /// Height in cells (inclusive of both edges).
    #[inline]
    pub fn height(&self) -> u64 {
        (self.max.y as i64 - self.min.y as i64) as u64 + 1
    }

    /// Area in cells; never zero because corners are inclusive.
    #[inline]
    pub fn area(&self) -> u64 {
        self.width() * self.height()
    }

    /// Returns `true` when `p` lies inside the rectangle (inclusive).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Intersection of two rectangles, or `None` when they are disjoint.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let min = Point::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y));
        let max = Point::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y));
        if min.x <= max.x && min.y <= max.y {
            Some(Rect { min, max })
        } else {
            None
        }
    }

    /// The smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Grows the rectangle by `margin` cells on every side.
    pub fn inflate(&self, margin: i32) -> Rect {
        Rect::from_corners(
            Point::new(self.min.x - margin, self.min.y - margin),
            Point::new(self.max.x + margin, self.max.y + margin),
        )
    }

    /// Iterates over every cell in the rectangle in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = Point> + '_ {
        let (min, max) = (self.min, self.max);
        (min.y..=max.y).flat_map(move |y| (min.x..=max.x).map(move |x| Point::new(x, y)))
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_normalize() {
        let r = Rect::from_corners(Point::new(5, 0), Point::new(1, 3));
        assert_eq!(r.min(), Point::new(1, 0));
        assert_eq!(r.max(), Point::new(5, 3));
    }

    #[test]
    fn point_rect_has_area_one() {
        let r = Rect::from_point(Point::new(2, 2));
        assert_eq!(r.area(), 1);
        assert!(r.contains(Point::new(2, 2)));
        assert!(!r.contains(Point::new(2, 3)));
    }

    #[test]
    fn intersection_overlapping() {
        let a = Rect::from_corners(Point::new(0, 0), Point::new(4, 4));
        let b = Rect::from_corners(Point::new(2, 2), Point::new(6, 6));
        let i = a.intersect(&b).expect("rects overlap");
        assert_eq!(i, Rect::from_corners(Point::new(2, 2), Point::new(4, 4)));
        assert_eq!(i.area(), 9);
    }

    #[test]
    fn intersection_touching_edges_counts() {
        // Inclusive rectangles sharing a line of cells do intersect.
        let a = Rect::from_corners(Point::new(0, 0), Point::new(2, 2));
        let b = Rect::from_corners(Point::new(2, 0), Point::new(4, 2));
        let i = a.intersect(&b).expect("shared column");
        assert_eq!(i.area(), 3);
    }

    #[test]
    fn intersection_disjoint() {
        let a = Rect::from_corners(Point::new(0, 0), Point::new(1, 1));
        let b = Rect::from_corners(Point::new(3, 3), Point::new(4, 4));
        assert!(a.intersect(&b).is_none());
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::from_point(Point::new(0, 0));
        let b = Rect::from_point(Point::new(3, -2));
        let u = a.union(&b);
        assert!(u.contains(Point::new(0, 0)));
        assert!(u.contains(Point::new(3, -2)));
        assert_eq!(u.area(), 12);
    }

    #[test]
    fn inflate_grows_all_sides() {
        let r = Rect::from_point(Point::new(0, 0)).inflate(2);
        assert_eq!(r.min(), Point::new(-2, -2));
        assert_eq!(r.max(), Point::new(2, 2));
        assert_eq!(r.area(), 25);
    }

    #[test]
    fn cells_enumerates_area() {
        let r = Rect::from_corners(Point::new(0, 0), Point::new(2, 1));
        let cells: Vec<_> = r.cells().collect();
        assert_eq!(cells.len() as u64, r.area());
        assert_eq!(cells[0], Point::new(0, 0));
        assert_eq!(*cells.last().unwrap(), Point::new(2, 1));
    }
}
