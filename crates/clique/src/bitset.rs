//! Bitset-accelerated exact maximum weight clique for graphs of up to
//! 128 nodes — the fast path for PACOR-sized selection instances.
//!
//! Same optimality guarantee as [`BranchAndBound`](crate::BranchAndBound),
//! but candidate sets are `u128` masks: adjacency filtering is a single
//! AND, and the upper bound over a candidate set is a popcount-bounded
//! prefix sum. On selection-shaped instances (dense cross-group
//! adjacency) this is typically an order of magnitude faster than the
//! vector-based solver.

use crate::{CliqueSolution, Greedy, WeightedGraph};

/// Exact MWCP solver over `u128` node masks (graphs of ≤ 128 nodes).
///
/// # Examples
///
/// ```
/// use pacor_clique::{BitBranchAndBound, WeightedGraph};
///
/// let mut g = WeightedGraph::new(3);
/// g.set_node_weight(0, 2.0);
/// g.set_node_weight(1, 2.0);
/// g.set_node_weight(2, 3.0);
/// g.add_edge(0, 1, 0.5);
/// let best = BitBranchAndBound::new().solve(&g);
/// assert_eq!(best.nodes, vec![0, 1]); // 4.5 beats 3.0
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BitBranchAndBound;

impl BitBranchAndBound {
    /// Creates the solver.
    pub fn new() -> Self {
        Self
    }

    /// Solves the MWCP exactly.
    ///
    /// # Panics
    ///
    /// Panics when the graph has more than 128 nodes; use
    /// [`BranchAndBound`](crate::BranchAndBound) beyond that.
    pub fn solve(&self, graph: &WeightedGraph) -> CliqueSolution {
        let n = graph.len();
        assert!(n <= 128, "bitset solver supports at most 128 nodes");
        if n == 0 {
            return CliqueSolution::empty();
        }

        // Branch order: descending optimistic potential, as in the
        // vector solver; `order[i]` is the node branched at depth rank i.
        let pot: Vec<f64> = (0..n)
            .map(|v| {
                let edge_pot: f64 = (0..n)
                    .filter_map(|u| graph.edge_weight(v, u))
                    .filter(|w| *w > 0.0)
                    .sum();
                (graph.node_weight(v) + edge_pot).max(0.0)
            })
            .collect();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| pot[b].partial_cmp(&pot[a]).expect("finite weights"));

        // Adjacency masks live in *rank space* so candidate pruning is a
        // single mask intersection.
        let mut adj = vec![0u128; n]; // by rank
        for (r, &v) in order.iter().enumerate() {
            for (q, &u) in order.iter().enumerate() {
                if graph.adjacent(v, u) {
                    adj[r] |= 1 << q;
                }
            }
        }
        let pot_ranked: Vec<f64> = order.iter().map(|&v| pot[v]).collect();

        let warm = Greedy.solve(graph);
        let mut best = if warm.weight > 0.0 {
            warm
        } else {
            CliqueSolution::empty()
        };

        let mut current: Vec<usize> = Vec::new(); // node ids
        let all = if n == 128 { u128::MAX } else { (1u128 << n) - 1 };
        self.branch(
            graph,
            &order,
            &pot_ranked,
            &adj,
            all,
            0.0,
            &mut current,
            &mut best,
        );
        best.nodes.sort_unstable();
        best
    }

    /// `candidates` holds the ranks still eligible; every member is
    /// adjacent to everything in `current`.
    #[allow(clippy::too_many_arguments)]
    fn branch(
        &self,
        g: &WeightedGraph,
        order: &[usize],
        pot_ranked: &[f64],
        adj: &[u128],
        candidates: u128,
        cur_weight: f64,
        current: &mut Vec<usize>,
        best: &mut CliqueSolution,
    ) {
        if cur_weight > best.weight {
            *best = CliqueSolution {
                nodes: current.clone(),
                weight: cur_weight,
            };
        }
        // Coloring bound: partition the candidates into classes of
        // mutually non-adjacent ranks; any clique takes at most one node
        // per class, so Σ (max potential per class) bounds every
        // extension. Far tighter than the plain potential sum on the
        // dense multipartite graphs the selection front-end produces.
        let mut bound = cur_weight;
        let mut rem = candidates;
        while rem != 0 {
            let mut class_members = 0u128;
            let mut class_max = 0.0f64;
            let mut avail = rem;
            while avail != 0 {
                let r = avail.trailing_zeros() as usize;
                avail &= avail - 1;
                if adj[r] & class_members == 0 {
                    class_members |= 1 << r;
                    class_max = class_max.max(pot_ranked[r]);
                }
            }
            rem &= !class_members;
            bound += class_max;
        }
        if bound <= best.weight {
            return;
        }

        let mut m = candidates;
        while m != 0 {
            let r = m.trailing_zeros() as usize;
            m &= m - 1; // ranks > r remain in m
            let v = order[r];
            let gain = g.marginal_gain(current, v);
            current.push(v);
            self.branch(
                g,
                order,
                pot_ranked,
                adj,
                m & adj[r],
                cur_weight + gain,
                current,
                best,
            );
            current.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BranchAndBound;

    fn random_graph(seed: u128, n: usize, density: f64) -> WeightedGraph {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u128 << 53) as f64
        };
        let mut g = WeightedGraph::new(n);
        for v in 0..n {
            g.set_node_weight(v, next() * 10.0 - 3.0);
        }
        for u in 0..n {
            for v in (u + 1)..n {
                if next() < density {
                    g.add_edge(u, v, next() * 4.0 - 2.0);
                }
            }
        }
        g
    }

    #[test]
    fn agrees_with_vector_solver() {
        for seed in 0..20 {
            let n = 6 + (seed as usize % 9);
            let g = random_graph(seed, n, 0.55);
            let a = BitBranchAndBound::new().solve(&g);
            let b = BranchAndBound::new().solve(&g);
            assert!(
                (a.weight - b.weight).abs() < 1e-9,
                "seed {seed}: bitset {} vs vector {}",
                a.weight,
                b.weight
            );
            assert!(g.is_clique(&a.nodes));
        }
    }

    #[test]
    fn empty_and_singleton() {
        let s = BitBranchAndBound::new().solve(&WeightedGraph::new(0));
        assert!(s.nodes.is_empty());
        let mut g = WeightedGraph::new(1);
        g.set_node_weight(0, 5.0);
        let s = BitBranchAndBound::new().solve(&g);
        assert_eq!(s.nodes, vec![0]);
        assert_eq!(s.weight, 5.0);
    }

    #[test]
    fn all_negative_prefers_empty() {
        let mut g = WeightedGraph::new(4);
        for v in 0..4 {
            g.set_node_weight(v, -1.0);
        }
        let s = BitBranchAndBound::new().solve(&g);
        assert!(s.nodes.is_empty());
    }

    #[test]
    fn dense_64_node_selection_instance() {
        // 16 groups × 4 candidates with cardinality bonus: the coloring
        // bound makes this near-instant (the potential-sum bound cannot
        // prune multipartite instances at all).
        let (groups, items) = (16usize, 4usize);
        let n = groups * items;
        let mut g = WeightedGraph::new(n);
        for v in 0..n {
            g.set_node_weight(v, 100.0 - (v % items) as f64);
        }
        for u in 0..n {
            for v in (u + 1)..n {
                if u / items != v / items {
                    g.add_edge(u, v, if (u * v) % 7 == 0 { -1.0 } else { 0.0 });
                }
            }
        }
        let s = BitBranchAndBound::new().solve(&g);
        assert_eq!(s.nodes.len(), groups, "one pick per group");
        assert!(g.is_clique(&s.nodes));
    }

    #[test]
    #[should_panic(expected = "at most 128 nodes")]
    fn too_large_panics() {
        BitBranchAndBound::new().solve(&WeightedGraph::new(129));
    }
}
