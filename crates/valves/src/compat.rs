//! The valve compatibility graph.

use crate::{Valve, ValveId};
use serde::{Deserialize, Serialize};

/// Undirected compatibility graph over a set of valves.
///
/// Node `i` is the valve at index `i` of the construction order; an edge
/// `(i, j)` means the valves' activation sequences are compatible
/// (Definition 4) and hence may share a control pin.
///
/// # Examples
///
/// ```
/// use pacor_valves::{CompatGraph, Valve, ValveId};
/// use pacor_grid::Point;
///
/// let valves = vec![
///     Valve::new(ValveId(0), Point::new(0, 0), "0X".parse()?),
///     Valve::new(ValveId(1), Point::new(1, 0), "01".parse()?),
///     Valve::new(ValveId(2), Point::new(2, 0), "10".parse()?),
/// ];
/// let g = CompatGraph::from_valves(&valves);
/// assert!(g.are_compatible(ValveId(0), ValveId(1)));
/// assert!(!g.are_compatible(ValveId(1), ValveId(2)));
/// # Ok::<(), pacor_valves::ParseSequenceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompatGraph {
    ids: Vec<ValveId>,
    /// Row-major upper-triangular adjacency, indexed by position in `ids`.
    adj: Vec<bool>,
    n: usize,
}

impl CompatGraph {
    /// Builds the graph from pairwise sequence compatibility.
    pub fn from_valves(valves: &[Valve]) -> Self {
        let n = valves.len();
        let mut adj = vec![false; n * n];
        for i in 0..n {
            for j in 0..n {
                adj[i * n + j] = i != j && valves[i].is_compatible(&valves[j]);
            }
        }
        Self {
            ids: valves.iter().map(|v| v.id()).collect(),
            adj,
            n,
        }
    }

    /// Builds the graph from an explicit edge list (the paper's problem
    /// statement supplies "the valve compatibility information, i.e.,
    /// pairs of valves that are compatible with each other").
    pub fn from_pairs(ids: Vec<ValveId>, pairs: &[(ValveId, ValveId)]) -> Self {
        let n = ids.len();
        let pos = |id: ValveId| ids.iter().position(|x| *x == id);
        let mut adj = vec![false; n * n];
        for &(a, b) in pairs {
            if let (Some(i), Some(j)) = (pos(a), pos(b)) {
                if i != j {
                    adj[i * n + j] = true;
                    adj[j * n + i] = true;
                }
            }
        }
        Self { ids, adj, n }
    }

    /// Number of valves (nodes).
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for the empty graph.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The valve ids in node order.
    #[inline]
    pub fn ids(&self) -> &[ValveId] {
        &self.ids
    }

    fn pos(&self, id: ValveId) -> Option<usize> {
        self.ids.iter().position(|x| *x == id)
    }

    /// Returns `true` when the two valves are compatible. Unknown ids are
    /// never compatible.
    pub fn are_compatible(&self, a: ValveId, b: ValveId) -> bool {
        match (self.pos(a), self.pos(b)) {
            (Some(i), Some(j)) => i != j && self.adj[i * self.n + j],
            _ => false,
        }
    }

    /// Degree (number of compatible partners) of a valve.
    pub fn degree(&self, id: ValveId) -> usize {
        match self.pos(id) {
            Some(i) => (0..self.n).filter(|&j| self.adj[i * self.n + j]).count(),
            None => 0,
        }
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().filter(|b| **b).count() / 2
    }

    /// Returns `true` when every pair in `members` is compatible — the
    /// validity condition for a cluster.
    pub fn is_clique(&self, members: &[ValveId]) -> bool {
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if !self.are_compatible(members[i], members[j]) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacor_grid::Point;

    fn valves(seqs: &[&str]) -> Vec<Valve> {
        seqs.iter()
            .enumerate()
            .map(|(i, s)| Valve::new(ValveId(i as u32), Point::new(i as i32, 0), s.parse().unwrap()))
            .collect()
    }

    #[test]
    fn from_valves_edges() {
        let g = CompatGraph::from_valves(&valves(&["0X", "01", "10"]));
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 1);
        assert!(g.are_compatible(ValveId(0), ValveId(1)));
        assert!(!g.are_compatible(ValveId(0), ValveId(2)));
    }

    #[test]
    fn self_loops_excluded() {
        let g = CompatGraph::from_valves(&valves(&["XX"]));
        assert!(!g.are_compatible(ValveId(0), ValveId(0)));
        assert_eq!(g.degree(ValveId(0)), 0);
    }

    #[test]
    fn from_pairs_symmetric() {
        let ids: Vec<_> = (0..3).map(ValveId).collect();
        let g = CompatGraph::from_pairs(ids, &[(ValveId(0), ValveId(2))]);
        assert!(g.are_compatible(ValveId(0), ValveId(2)));
        assert!(g.are_compatible(ValveId(2), ValveId(0)));
        assert!(!g.are_compatible(ValveId(0), ValveId(1)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn from_pairs_ignores_unknown() {
        let g = CompatGraph::from_pairs(vec![ValveId(0)], &[(ValveId(0), ValveId(9))]);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.are_compatible(ValveId(0), ValveId(9)));
    }

    #[test]
    fn clique_check() {
        let g = CompatGraph::from_valves(&valves(&["XX", "0X", "X1", "10"]));
        assert!(g.is_clique(&[ValveId(0), ValveId(1)]));
        assert!(g.is_clique(&[ValveId(0), ValveId(1), ValveId(2)]));
        // v1="0X" vs v3="10" clash at step 0.
        assert!(!g.is_clique(&[ValveId(1), ValveId(3)]));
        // Empty and singleton member lists are trivially cliques.
        assert!(g.is_clique(&[]));
        assert!(g.is_clique(&[ValveId(2)]));
    }

    #[test]
    fn degree_counts_partners() {
        let g = CompatGraph::from_valves(&valves(&["XX", "00", "11"]));
        assert_eq!(g.degree(ValveId(0)), 2);
        assert_eq!(g.degree(ValveId(1)), 1);
        assert_eq!(g.degree(ValveId(9)), 0);
    }
}
