/root/repo/target/debug/deps/properties-eb735686b82c4bdf.d: crates/valves/tests/properties.rs

/root/repo/target/debug/deps/properties-eb735686b82c4bdf: crates/valves/tests/properties.rs

crates/valves/tests/properties.rs:
