//! Routing-engine kernel benchmarks: the flat-array A\* kernel against
//! the `HashMap` reference kernel it replaced, the DME candidate fan-out
//! at different worker-thread counts, and the whole flow 1-vs-N threads.
//!
//! The kernels return bit-identical paths (see the equivalence proptests
//! in `crates/route/tests/astar_equivalence.rs`), so these numbers
//! compare cost only.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pacor::dme::{candidates, CandidateConfig};
use pacor::grid::{Grid, ObsMap, Point};
use pacor::route::{AStar, AStarScratch};
use pacor::{effective_threads, parallel_map, BenchDesign, FlowConfig, PacorFlow};

fn obstacle_grid(n: u32) -> ObsMap {
    let mut grid = Grid::new(n, n).unwrap();
    // Deterministic scattered obstacles, ~5% density.
    for k in 0..(n * n / 20) {
        let x = (k * 37) % n;
        let y = (k * 61) % n;
        grid.set_obstacle(Point::new(x as i32, y as i32));
    }
    ObsMap::new(&grid)
}

/// Flat-array kernel vs reference kernel on the corner-to-corner and
/// point-to-path queries the MST/negotiation stages issue. Grid sizes
/// bracket the Table 2 designs (Chip1 is 120×120).
fn bench_astar_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("astar_kernel");
    for n in [32u32, 64, 128] {
        let obs = obstacle_grid(n);
        let far = Point::new(n as i32 - 2, n as i32 - 2);
        group.bench_with_input(BenchmarkId::new("flat", n), &obs, |b, obs| {
            let astar = AStar::new(obs);
            let mut scratch = AStarScratch::new();
            b.iter(|| {
                astar
                    .route_with_scratch(&[Point::new(1, 1)], &[far], &mut scratch)
                    .expect("scattered obstacles leave a path")
            })
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &obs, |b, obs| {
            let astar = AStar::new(obs);
            b.iter(|| {
                astar
                    .route_reference(&[Point::new(1, 1)], &[far])
                    .expect("scattered obstacles leave a path")
            })
        });
    }
    // Multi-target form (point-to-path): many targets stress the target
    // bookkeeping that moved from a HashSet to stamped flat arrays.
    let n = 64u32;
    let obs = obstacle_grid(n);
    let targets: Vec<Point> = (1..63).map(|x| Point::new(x, 60)).collect();
    group.bench_with_input(BenchmarkId::new("flat_multi", n), &obs, |b, obs| {
        let astar = AStar::new(obs);
        let mut scratch = AStarScratch::new();
        b.iter(|| {
            astar
                .route_with_scratch(&[Point::new(31, 2)], &targets, &mut scratch)
                .expect("row is reachable")
        })
    });
    group.bench_with_input(BenchmarkId::new("reference_multi", n), &obs, |b, obs| {
        let astar = AStar::new(obs);
        b.iter(|| {
            astar
                .route_reference(&[Point::new(31, 2)], &targets)
                .expect("row is reachable")
        })
    });
    group.finish();
}

/// DME candidate generation fanned out over worker threads — the
/// dominant data-parallel work item of the LM routing stage. The width
/// is capped at the host's parallelism, exactly as the flow caps it, so
/// on a single-core box every entry measures the sequential path.
fn bench_candidate_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_fanout");
    let obs = obstacle_grid(96);
    // Twelve 4-sink clusters scattered over the chip.
    let clusters: Vec<Vec<Point>> = (0..12)
        .map(|k| {
            let bx = 4 + (k % 4) * 22;
            let by = 4 + (k / 4) * 28;
            vec![
                Point::new(bx, by),
                Point::new(bx + 14, by + 2),
                Point::new(bx + 3, by + 17),
                Point::new(bx + 15, by + 15),
            ]
        })
        .collect();
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    parallel_map(effective_threads(threads), &clusters, |_, sinks| {
                        candidates(sinks, Some(&obs), CandidateConfig::default())
                    })
                })
            },
        );
    }
    group.finish();
}

/// The whole flow at 1, 2 and 4 worker threads — same RouteReport at
/// every value, only the wall clock may move.
fn bench_flow_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_threads");
    group.sample_size(10);
    let problem = BenchDesign::S3.synthesize(42);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let flow = PacorFlow::new(FlowConfig::default().with_threads(threads));
                b.iter(|| flow.run(&problem).expect("S3 routes"))
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_astar_kernels,
    bench_candidate_fanout,
    bench_flow_threads
);
criterion_main!(benches);
