/root/repo/target/debug/deps/chips-52c69d959aeef716.d: tests/chips.rs

/root/repo/target/debug/deps/chips-52c69d959aeef716: tests/chips.rs

tests/chips.rs:
