/root/repo/target/debug/deps/pacor_dme-5fd42566196d6a87.d: crates/dme/src/lib.rs crates/dme/src/candidates.rs crates/dme/src/embed.rs crates/dme/src/topology.rs crates/dme/src/tree.rs crates/dme/src/trr.rs

/root/repo/target/debug/deps/libpacor_dme-5fd42566196d6a87.rlib: crates/dme/src/lib.rs crates/dme/src/candidates.rs crates/dme/src/embed.rs crates/dme/src/topology.rs crates/dme/src/tree.rs crates/dme/src/trr.rs

/root/repo/target/debug/deps/libpacor_dme-5fd42566196d6a87.rmeta: crates/dme/src/lib.rs crates/dme/src/candidates.rs crates/dme/src/embed.rs crates/dme/src/topology.rs crates/dme/src/tree.rs crates/dme/src/trr.rs

crates/dme/src/lib.rs:
crates/dme/src/candidates.rs:
crates/dme/src/embed.rs:
crates/dme/src/topology.rs:
crates/dme/src/tree.rs:
crates/dme/src/trr.rs:
