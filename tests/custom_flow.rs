//! Composing a custom flow from the public stage API — the use case
//! docs/GUIDE.md §6 documents: reorder stages, skip stages, instrument
//! between them.

use pacor_repro::grid::ObsMap;
use pacor_repro::pacor::stages::{escape_all, route_lm_clusters, route_ordinary_clusters};
use pacor_repro::pacor::{
    detour_cluster, verify_layout, BenchDesign, FlowConfig, Problem,
};
use pacor_repro::valves::{driver_sequence, AddressingStats, Cluster};

/// A "no-detour" flow: everything PACOR does except stage 6.
fn run_without_detour(problem: &Problem) -> Vec<pacor_repro::pacor::RoutedCluster> {
    let cfg = FlowConfig::default();
    let grid = problem.grid().unwrap();
    let mut obs = ObsMap::new(&grid);
    for v in problem.valves.iter() {
        obs.block(v.position());
    }
    let clusters = problem.valves.cluster_greedy(&problem.lm_clusters);
    let positions_of = |c: &Cluster| {
        c.members()
            .iter()
            .map(|m| problem.valves.get(*m).unwrap().position())
            .collect::<Vec<_>>()
    };
    let mut next_id = clusters.len() as u32;
    let (lm, ordinary): (Vec<_>, Vec<_>) = clusters
        .into_iter()
        .partition(|c| c.is_length_matched() && c.len() >= 2);
    let lm_input: Vec<_> = lm
        .into_iter()
        .map(|c| {
            let p = positions_of(&c);
            (c, p)
        })
        .collect();
    let lm_out = route_lm_clusters(&mut obs, lm_input, &cfg);
    let mut routed = lm_out.routed;
    let mut ord: Vec<_> = ordinary
        .into_iter()
        .map(|c| {
            let p = positions_of(&c);
            (c, p)
        })
        .collect();
    for (c, p) in lm_out.failed {
        ord.push((Cluster::new(c.id(), c.members().to_vec(), false), p));
    }
    routed.extend(route_ordinary_clusters(&mut obs, ord, &mut next_id, &cfg));
    escape_all(&mut obs, &mut routed, &problem.pins, &cfg, &mut next_id);
    routed
}

#[test]
fn detour_stage_is_what_creates_matches() {
    // Without detouring, wired mismatches remain; adding a manual detour
    // pass afterwards recovers them — demonstrating stage composition.
    let problem = BenchDesign::S4.synthesize(42);
    let mut routed = run_without_detour(&problem);
    assert!(verify_layout(&problem, &routed).is_empty());

    let before: usize = routed
        .iter()
        .filter(|rc| rc.cluster.is_length_matched() && rc.is_matched(problem.delta))
        .count();

    // Manual stage 6.
    let grid = problem.grid().unwrap();
    let mut obs = ObsMap::new(&grid);
    for v in problem.valves.iter() {
        obs.block(v.position());
    }
    for rc in &routed {
        obs.block_all(rc.net_cells());
        if let Some((esc, _)) = &rc.escape {
            obs.block_all(esc.cells().iter().skip(1).copied());
        }
    }
    let cfg = FlowConfig::default();
    for rc in routed.iter_mut() {
        if rc.cluster.is_length_matched() && rc.is_complete() {
            detour_cluster(&mut obs, rc, problem.delta, &cfg);
        }
    }
    let after: usize = routed
        .iter()
        .filter(|rc| rc.cluster.is_length_matched() && rc.is_matched(problem.delta))
        .count();
    assert!(after >= before, "detour must never lose matches");
    assert!(
        verify_layout(&problem, &routed).is_empty(),
        "manual detour keeps geometry clean"
    );
}

#[test]
fn addressing_stats_of_the_final_clustering() {
    let problem = BenchDesign::S3.synthesize(42);
    let clusters = problem.valves.cluster_greedy(&problem.lm_clusters);
    let stats = AddressingStats::of(&clusters);
    assert_eq!(stats.valves, problem.valve_count());
    assert!(stats.pins <= stats.valves);
    // Every cluster must have a consistent driver sequence.
    for c in &clusters {
        let d = driver_sequence(&problem.valves, c).expect("clusters are compatible");
        for m in c.members() {
            assert!(d.is_compatible(problem.valves.get(*m).unwrap().sequence()));
        }
    }
}

#[test]
fn escape_only_flow_for_pre_routed_singletons() {
    // Skip LM and MST stages entirely: treat every valve as a singleton
    // and run escape alone — a legitimate minimal flow for chips without
    // synchronization requirements.
    let problem = BenchDesign::S3.synthesize(7);
    let grid = problem.grid().unwrap();
    let mut obs = ObsMap::new(&grid);
    for v in problem.valves.iter() {
        obs.block(v.position());
    }
    let mut routed: Vec<_> = problem
        .valves
        .iter()
        .enumerate()
        .map(|(i, v)| pacor_repro::pacor::RoutedCluster {
            cluster: Cluster::new(
                pacor_repro::valves::ClusterId(i as u32),
                vec![v.id()],
                false,
            ),
            member_positions: vec![v.position()],
            kind: pacor_repro::pacor::RoutedKind::Singleton,
            escape: None,
        })
        .collect();
    let mut next_id = routed.len() as u32;
    escape_all(
        &mut obs,
        &mut routed,
        &problem.pins,
        &FlowConfig::default(),
        &mut next_id,
    );
    // One pin per valve: needs enough pins (S3 has 93 pins for 15 valves).
    assert!(routed.iter().all(|rc| rc.is_complete()));
    assert!(verify_layout(&problem, &routed).is_empty());
}
