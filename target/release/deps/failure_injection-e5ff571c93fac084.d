/root/repo/target/release/deps/failure_injection-e5ff571c93fac084.d: tests/failure_injection.rs

/root/repo/target/release/deps/failure_injection-e5ff571c93fac084: tests/failure_injection.rs

tests/failure_injection.rs:
