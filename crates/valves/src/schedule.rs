//! A miniature control-synthesis front-end: from a scheduled bioassay to
//! "0-1-X" valve activation sequences.
//!
//! The paper takes the activation sequences as given — "obtained by the
//! resource binding and scheduling process" of Minhass et al.'s
//! system-level synthesis. This module reproduces that upstream step in
//! its simplest faithful form: devices (mixers, pumps, gates) own valves
//! with a per-device actuation pattern; a schedule activates devices
//! over discrete time steps; every valve's activation sequence falls out
//! as *pattern when active, don't-care (or a configured idle state) when
//! inactive*. Compatibility — and therefore the clustering the routing
//! flow consumes — emerges from the schedule instead of being hand-written.

use crate::{ActivationSequence, ActivationStatus, ValveId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a device in a control program.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct DeviceId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// What a valve does while its device is idle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum IdlePolicy {
    /// The valve state is irrelevant when the device is idle ("X").
    #[default]
    DontCare,
    /// The valve must stay closed when idle (isolation valves).
    Closed,
    /// The valve must stay open when idle.
    Open,
}

impl IdlePolicy {
    fn status(self) -> ActivationStatus {
        match self {
            IdlePolicy::DontCare => ActivationStatus::DontCare,
            IdlePolicy::Closed => ActivationStatus::Closed,
            IdlePolicy::Open => ActivationStatus::Open,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Device {
    /// Valves with their status while the device is active.
    actuation: Vec<(ValveId, ActivationStatus)>,
    idle: IdlePolicy,
}

/// A scheduled control program over discrete time steps.
///
/// # Examples
///
/// ```
/// use pacor_valves::{ControlProgram, ActivationStatus, IdlePolicy, ValveId};
///
/// let mut prog = ControlProgram::new(4);
/// let mixer = prog.add_device(
///     vec![(ValveId(0), ActivationStatus::Closed), (ValveId(1), ActivationStatus::Closed)],
///     IdlePolicy::DontCare,
/// );
/// prog.activate(mixer, 1..3)?;
/// let seqs = prog.sequences();
/// assert_eq!(seqs[&ValveId(0)].to_string(), "X11X");
/// # Ok::<(), pacor_valves::ScheduleError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ControlProgram {
    steps: usize,
    devices: Vec<Device>,
    /// `active[d][t]` — device `d` is active at step `t`.
    active: Vec<Vec<bool>>,
}

/// Errors in control-program construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// The activation interval leaves the program's step range.
    StepOutOfRange {
        /// Requested step.
        step: usize,
        /// Number of steps in the program.
        steps: usize,
    },
    /// The device id is unknown.
    UnknownDevice(DeviceId),
    /// Two devices demand conflicting states for a shared valve at the
    /// same step.
    Conflict {
        /// The contested valve.
        valve: ValveId,
        /// The step at which demands clash.
        step: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::StepOutOfRange { step, steps } => {
                write!(f, "step {step} outside program of {steps} steps")
            }
            ScheduleError::UnknownDevice(d) => write!(f, "unknown device {d}"),
            ScheduleError::Conflict { valve, step } => {
                write!(f, "conflicting demands on valve {valve} at step {step}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl ControlProgram {
    /// Creates an empty program of `steps` time steps.
    ///
    /// # Panics
    ///
    /// Panics when `steps == 0`.
    pub fn new(steps: usize) -> Self {
        assert!(steps > 0, "a program needs at least one step");
        Self {
            steps,
            devices: Vec::new(),
            active: Vec::new(),
        }
    }

    /// Number of time steps.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Registers a device with its actuation pattern and idle policy;
    /// returns its id.
    pub fn add_device(
        &mut self,
        actuation: Vec<(ValveId, ActivationStatus)>,
        idle: IdlePolicy,
    ) -> DeviceId {
        self.devices.push(Device { actuation, idle });
        self.active.push(vec![false; self.steps]);
        DeviceId(self.devices.len() as u32 - 1)
    }

    /// Activates `device` over `steps` (half-open range).
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::StepOutOfRange`] or
    /// [`ScheduleError::UnknownDevice`].
    pub fn activate(
        &mut self,
        device: DeviceId,
        steps: std::ops::Range<usize>,
    ) -> Result<(), ScheduleError> {
        let d = device.0 as usize;
        if d >= self.devices.len() {
            return Err(ScheduleError::UnknownDevice(device));
        }
        if steps.end > self.steps {
            return Err(ScheduleError::StepOutOfRange {
                step: steps.end,
                steps: self.steps,
            });
        }
        for t in steps {
            self.active[d][t] = true;
        }
        Ok(())
    }

    /// Derives each valve's activation sequence. Conflicting demands are
    /// resolved by [`ActivationStatus::unify`]; a genuine clash is an
    /// error.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::Conflict`] when two devices demand
    /// incompatible states for a shared valve at the same step.
    pub fn try_sequences(&self) -> Result<BTreeMap<ValveId, ActivationSequence>, ScheduleError> {
        let mut table: BTreeMap<ValveId, Vec<ActivationStatus>> = BTreeMap::new();
        // Start everything as don't-care, then constrain.
        for dev in &self.devices {
            for &(v, _) in &dev.actuation {
                table
                    .entry(v)
                    .or_insert_with(|| vec![ActivationStatus::DontCare; self.steps]);
            }
        }
        for (d, dev) in self.devices.iter().enumerate() {
            for t in 0..self.steps {
                let demanded = if self.active[d][t] {
                    None // per-valve pattern below
                } else {
                    Some(dev.idle.status())
                };
                for &(v, when_active) in &dev.actuation {
                    let want = demanded.unwrap_or(when_active);
                    let slot = &mut table.get_mut(&v).expect("inserted above")[t];
                    match slot.unify(want) {
                        Some(s) => *slot = s,
                        None => return Err(ScheduleError::Conflict { valve: v, step: t }),
                    }
                }
            }
        }
        Ok(table
            .into_iter()
            .map(|(v, steps)| (v, ActivationSequence::new(steps)))
            .collect())
    }

    /// Like [`ControlProgram::try_sequences`] but panicking on conflict —
    /// convenient when the schedule is known consistent.
    ///
    /// # Panics
    ///
    /// Panics on conflicting demands; see [`ControlProgram::try_sequences`].
    pub fn sequences(&self) -> BTreeMap<ValveId, ActivationSequence> {
        self.try_sequences().expect("consistent schedule")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ActivationStatus::*;

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_panics() {
        ControlProgram::new(0);
    }

    #[test]
    fn single_device_pattern() {
        let mut prog = ControlProgram::new(5);
        let d = prog.add_device(vec![(ValveId(0), Closed)], IdlePolicy::DontCare);
        prog.activate(d, 1..4).unwrap();
        let seqs = prog.sequences();
        assert_eq!(seqs[&ValveId(0)].to_string(), "X111X");
    }

    #[test]
    fn idle_policy_closed() {
        let mut prog = ControlProgram::new(3);
        let d = prog.add_device(vec![(ValveId(0), Open)], IdlePolicy::Closed);
        prog.activate(d, 0..1).unwrap();
        assert_eq!(prog.sequences()[&ValveId(0)].to_string(), "011");
    }

    #[test]
    fn two_devices_same_phase_are_compatible() {
        let mut prog = ControlProgram::new(4);
        let a = prog.add_device(vec![(ValveId(0), Closed)], IdlePolicy::DontCare);
        let b = prog.add_device(vec![(ValveId(1), Closed)], IdlePolicy::DontCare);
        prog.activate(a, 0..2).unwrap();
        prog.activate(b, 0..2).unwrap();
        let seqs = prog.sequences();
        assert!(seqs[&ValveId(0)].is_compatible(&seqs[&ValveId(1)]));
    }

    #[test]
    fn alternating_devices_are_incompatible() {
        let mut prog = ControlProgram::new(2);
        let a = prog.add_device(vec![(ValveId(0), Closed)], IdlePolicy::Open);
        let b = prog.add_device(vec![(ValveId(1), Closed)], IdlePolicy::Open);
        prog.activate(a, 0..1).unwrap();
        prog.activate(b, 1..2).unwrap();
        let seqs = prog.sequences();
        // v0 = "10", v1 = "01": incompatible → separate pins.
        assert!(!seqs[&ValveId(0)].is_compatible(&seqs[&ValveId(1)]));
    }

    #[test]
    fn shared_valve_unifies() {
        // Two devices share an isolation valve demanded closed by both.
        let mut prog = ControlProgram::new(2);
        let a = prog.add_device(vec![(ValveId(7), Closed)], IdlePolicy::DontCare);
        let b = prog.add_device(vec![(ValveId(7), Closed)], IdlePolicy::DontCare);
        prog.activate(a, 0..1).unwrap();
        prog.activate(b, 0..2).unwrap();
        assert_eq!(prog.sequences()[&ValveId(7)].to_string(), "11");
    }

    #[test]
    fn shared_valve_conflict_detected() {
        let mut prog = ControlProgram::new(1);
        let a = prog.add_device(vec![(ValveId(7), Closed)], IdlePolicy::DontCare);
        let b = prog.add_device(vec![(ValveId(7), Open)], IdlePolicy::DontCare);
        prog.activate(a, 0..1).unwrap();
        prog.activate(b, 0..1).unwrap();
        let err = prog.try_sequences().unwrap_err();
        assert!(matches!(err, ScheduleError::Conflict { valve: ValveId(7), step: 0 }));
        assert!(err.to_string().contains("v7"));
    }

    #[test]
    fn out_of_range_activation_rejected() {
        let mut prog = ControlProgram::new(3);
        let d = prog.add_device(vec![(ValveId(0), Closed)], IdlePolicy::DontCare);
        let err = prog.activate(d, 2..5).unwrap_err();
        assert!(matches!(err, ScheduleError::StepOutOfRange { step: 5, steps: 3 }));
    }

    #[test]
    fn unknown_device_rejected() {
        let mut prog = ControlProgram::new(3);
        let err = prog.activate(DeviceId(9), 0..1).unwrap_err();
        assert!(matches!(err, ScheduleError::UnknownDevice(DeviceId(9))));
    }

    #[test]
    fn sequences_feed_clustering() {
        use crate::{Valve, ValveSet};
        use pacor_grid::Point;
        // Two synchronized pump valves + one independent gate.
        let mut prog = ControlProgram::new(4);
        let pump = prog.add_device(
            vec![(ValveId(0), Closed), (ValveId(1), Closed)],
            IdlePolicy::DontCare,
        );
        let gate = prog.add_device(vec![(ValveId(2), Open)], IdlePolicy::Closed);
        prog.activate(pump, 0..2).unwrap();
        prog.activate(gate, 2..4).unwrap();
        let seqs = prog.sequences();
        let set: ValveSet = seqs
            .iter()
            .enumerate()
            .map(|(i, (&id, seq))| Valve::new(id, Point::new(i as i32 * 3, 0), seq.clone()))
            .collect();
        let clusters = set.cluster_greedy(&[]);
        // Pump valves share a pin; the gate is separate or shares only if
        // compatible — here gate "1100"→ wait compute: gate active 2..4,
        // open when active, closed idle → "1100"?? idle closed steps 0,1:
        // "11" then active open: "00" → "1100". Pump: "11XX". Compatible!
        // So clustering may merge them — just assert full coverage and
        // pairwise compatibility.
        let g = set.compat_graph();
        for c in &clusters {
            assert!(g.is_clique(c.members()));
        }
        let covered: usize = clusters.iter().map(|c| c.len()).sum();
        assert_eq!(covered, 3);
    }
}
