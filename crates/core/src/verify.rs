//! Post-route verification: independent design-rule and constraint
//! checking of a routed layout.
//!
//! The checker re-derives every guarantee the flow claims — channel
//! disjointness (minimum spacing, paper constraint (12)), obstacle
//! avoidance, connectivity of every net, pin validity and exclusivity,
//! and the length-matching constraint on matched clusters — from the raw
//! geometry, sharing no code with the router. Use it in tests, in CI, or
//! on imported layouts.

use crate::{Problem, RoutedCluster};
use pacor_grid::{GridLen, Point};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// Two clusters occupy the same routing cell.
    SharedCell {
        /// The contested cell.
        cell: Point,
        /// Indices (into the routed slice) of the two owners.
        clusters: (usize, usize),
    },
    /// A channel runs through a hard obstacle.
    ObstructedCell {
        /// The violating cell.
        cell: Point,
        /// Owning cluster index.
        cluster: usize,
    },
    /// A channel leaves the chip.
    OutOfBounds {
        /// The violating cell.
        cell: Point,
        /// Owning cluster index.
        cluster: usize,
    },
    /// An escape ends somewhere that is not a candidate control pin.
    BadPin {
        /// Where the escape ended.
        at: Point,
        /// Owning cluster index.
        cluster: usize,
    },
    /// Two clusters drive the same control pin.
    SharedPin {
        /// The contested pin.
        pin: Point,
        /// Indices of the two clusters.
        clusters: (usize, usize),
    },
    /// A complete length-matching cluster violates `δ`.
    LengthMismatch {
        /// Cluster index.
        cluster: usize,
        /// Measured `max − min` channel length.
        mismatch: GridLen,
        /// The allowed threshold.
        delta: GridLen,
    },
    /// An escape path does not start on its cluster's net.
    DetachedEscape {
        /// Cluster index.
        cluster: usize,
        /// Where the escape starts.
        at: Point,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::SharedCell { cell, clusters } => write!(
                f,
                "cell {cell} shared by clusters {} and {}",
                clusters.0, clusters.1
            ),
            Violation::ObstructedCell { cell, cluster } => {
                write!(f, "cluster {cluster} routes through obstacle at {cell}")
            }
            Violation::OutOfBounds { cell, cluster } => {
                write!(f, "cluster {cluster} leaves the chip at {cell}")
            }
            Violation::BadPin { at, cluster } => {
                write!(f, "cluster {cluster} escape ends off-pin at {at}")
            }
            Violation::SharedPin { pin, clusters } => write!(
                f,
                "pin {pin} driven by clusters {} and {}",
                clusters.0, clusters.1
            ),
            Violation::LengthMismatch {
                cluster,
                mismatch,
                delta,
            } => write!(
                f,
                "cluster {cluster} mismatch {mismatch} exceeds δ = {delta}"
            ),
            Violation::DetachedEscape { cluster, at } => {
                write!(f, "cluster {cluster} escape starts off-net at {at}")
            }
        }
    }
}

/// Verifies a routed layout against its problem. Returns every violation
/// found (empty = clean). The length-matching check validates only the
/// clusters the layout *claims* as matched; use
/// [`verify_layout_strict`] to also flag every complete constrained
/// cluster whose mismatch exceeds `δ`.
///
/// # Examples
///
/// ```
/// use pacor::{verify_layout, BenchDesign, FlowConfig, PacorFlow};
///
/// let problem = BenchDesign::S1.synthesize(42);
/// let (_, routed) = PacorFlow::new(FlowConfig::default()).run_detailed(&problem)?;
/// assert!(verify_layout(&problem, &routed).is_empty());
/// # Ok::<(), pacor::FlowError>(())
/// ```
pub fn verify_layout(problem: &Problem, routed: &[RoutedCluster]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let obstacle_set: HashSet<Point> = problem.obstacles.iter().copied().collect();
    let in_bounds = |p: Point| {
        p.x >= 0 && p.y >= 0 && (p.x as u32) < problem.width && (p.y as u32) < problem.height
    };
    let pin_set: HashSet<Point> = problem.pins.iter().copied().collect();

    let mut owner: HashMap<Point, usize> = HashMap::new();
    let mut pin_owner: HashMap<Point, usize> = HashMap::new();

    for (i, rc) in routed.iter().enumerate() {
        let net = rc.net_cells();
        let mut cells: Vec<Point> = net.clone();
        if let Some((esc, pin)) = &rc.escape {
            // Escape must start on the net (its T-junction).
            if !net.contains(&esc.source()) {
                violations.push(Violation::DetachedEscape {
                    cluster: i,
                    at: esc.source(),
                });
            }
            if esc.target() != *pin || !pin_set.contains(pin) {
                violations.push(Violation::BadPin {
                    at: esc.target(),
                    cluster: i,
                });
            }
            if let Some(&prev) = pin_owner.get(pin) {
                violations.push(Violation::SharedPin {
                    pin: *pin,
                    clusters: (prev, i),
                });
            } else {
                pin_owner.insert(*pin, i);
            }
            cells.extend(esc.cells().iter().skip(1).copied());
        }

        for c in cells {
            if !in_bounds(c) {
                violations.push(Violation::OutOfBounds { cell: c, cluster: i });
                continue;
            }
            if obstacle_set.contains(&c) {
                violations.push(Violation::ObstructedCell { cell: c, cluster: i });
            }
            if let Some(&prev) = owner.get(&c) {
                if prev != i {
                    violations.push(Violation::SharedCell {
                        cell: c,
                        clusters: (prev, i),
                    });
                }
            } else {
                owner.insert(c, i);
            }
        }

        // Length matching: a complete, constrained cluster that the flow
        // would report as matched must actually satisfy δ; we flag any
        // complete LM cluster beyond δ whose report would claim matching.
        if rc.cluster.is_length_matched() && rc.is_complete() {
            if let Some(m) = rc.mismatch() {
                if rc.is_matched(problem.delta) && m > problem.delta {
                    violations.push(Violation::LengthMismatch {
                        cluster: i,
                        mismatch: m,
                        delta: problem.delta,
                    });
                }
            }
        }
    }
    violations
}

/// Strict variant: additionally reports every complete length-matching
/// cluster whose mismatch exceeds `δ` (useful for measuring how far an
/// unmatched cluster is from matching).
pub fn verify_layout_strict(problem: &Problem, routed: &[RoutedCluster]) -> Vec<Violation> {
    let mut v = verify_layout(problem, routed);
    for (i, rc) in routed.iter().enumerate() {
        if rc.cluster.is_length_matched() && rc.is_complete() {
            if let Some(m) = rc.mismatch() {
                if m > problem.delta {
                    v.push(Violation::LengthMismatch {
                        cluster: i,
                        mismatch: m,
                        delta: problem.delta,
                    });
                }
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BenchDesign, FlowConfig, PacorFlow, RoutedKind};
    use pacor_grid::GridPath;
    use pacor_valves::{Cluster, ClusterId, ValveId};

    #[test]
    fn clean_layouts_verify_clean() {
        for seed in [1, 7, 42] {
            let problem = BenchDesign::S2.synthesize(seed);
            let (_, routed) = PacorFlow::new(FlowConfig::default())
                .run_detailed(&problem)
                .expect("valid");
            let v = verify_layout(&problem, &routed);
            assert!(v.is_empty(), "seed {seed}: {v:?}");
        }
    }

    fn toy_problem() -> Problem {
        use pacor_valves::Valve;
        Problem::builder("toy", 10, 10)
            .valve(Valve::new(ValveId(0), Point::new(3, 3), "0".parse().unwrap()))
            .valve(Valve::new(ValveId(1), Point::new(6, 3), "0".parse().unwrap()))
            .pin(Point::new(0, 3))
            .pin(Point::new(0, 5))
            .obstacle(Point::new(5, 5))
            .build()
            .unwrap()
    }

    fn singleton_with_escape(id: u32, at: Point, esc: Vec<Point>, pin: Point) -> RoutedCluster {
        RoutedCluster {
            cluster: Cluster::new(ClusterId(id), vec![ValveId(id)], false),
            member_positions: vec![at],
            kind: RoutedKind::Singleton,
            escape: Some((GridPath::new(esc).unwrap(), pin)),
        }
    }

    #[test]
    fn detects_shared_cells() {
        let problem = toy_problem();
        let a = singleton_with_escape(
            0,
            Point::new(3, 3),
            (0..=3).rev().map(|x| Point::new(x, 3)).collect(),
            Point::new(0, 3),
        );
        let mut cells: Vec<Point> = (0..=6).rev().map(|x| Point::new(x, 3)).collect();
        cells[6] = Point::new(0, 3); // same route, overlapping a's cells
        let b = singleton_with_escape(1, Point::new(6, 3), cells, Point::new(0, 3));
        let v = verify_layout(&problem, &[a, b]);
        assert!(v.iter().any(|x| matches!(x, Violation::SharedCell { .. })));
        assert!(v.iter().any(|x| matches!(x, Violation::SharedPin { .. })));
    }

    #[test]
    fn detects_obstructed_and_bad_pin() {
        let problem = toy_problem();
        // Escape wanders through the obstacle at (5,5) and ends off-pin.
        let esc = vec![
            Point::new(6, 3),
            Point::new(6, 4),
            Point::new(6, 5),
            Point::new(5, 5),
            Point::new(4, 5),
        ];
        let rc = singleton_with_escape(1, Point::new(6, 3), esc, Point::new(4, 5));
        let v = verify_layout(&problem, &[rc]);
        assert!(v.iter().any(|x| matches!(x, Violation::ObstructedCell { .. })));
        assert!(v.iter().any(|x| matches!(x, Violation::BadPin { .. })));
    }

    #[test]
    fn detects_detached_escape() {
        let problem = toy_problem();
        // Escape starts one cell away from the valve.
        let esc = vec![Point::new(2, 3), Point::new(1, 3), Point::new(0, 3)];
        let rc = singleton_with_escape(0, Point::new(3, 3), esc, Point::new(0, 3));
        let v = verify_layout(&problem, &[rc]);
        assert!(v.iter().any(|x| matches!(x, Violation::DetachedEscape { .. })));
    }

    #[test]
    fn strict_reports_unmatched_lm_clusters() {
        let problem = BenchDesign::S2.synthesize(42);
        let (report, routed) = PacorFlow::new(FlowConfig::default())
            .run_detailed(&problem)
            .expect("valid");
        let strict = verify_layout_strict(&problem, &routed);
        let unmatched_lm = report
            .clusters
            .iter()
            .filter(|c| c.length_constrained && c.complete && !c.matched)
            .count();
        let mismatches = strict
            .iter()
            .filter(|v| matches!(v, Violation::LengthMismatch { .. }))
            .count();
        assert_eq!(mismatches, unmatched_lm);
    }

    #[test]
    fn violations_display() {
        let v = Violation::SharedCell {
            cell: Point::new(1, 2),
            clusters: (0, 3),
        };
        assert!(v.to_string().contains("shared by clusters 0 and 3"));
    }
}
