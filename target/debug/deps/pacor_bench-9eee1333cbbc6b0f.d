/root/repo/target/debug/deps/pacor_bench-9eee1333cbbc6b0f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/pacor_bench-9eee1333cbbc6b0f: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
