//! Rendering of routed control layers: ASCII art for terminals and SVG
//! for documentation. Purely an output aid — nothing here feeds back
//! into the flow.

use crate::{Problem, RoutedCluster, RoutedKind};
use pacor_grid::Point;
use std::fmt::Write as _;

/// Renders the routed layout as ASCII art.
///
/// Legend: `■` valve, `#` obstacle, `*` control channel, `+` escape
/// channel, `P` control pin in use, `·` free. Row `y = height-1` prints
/// first so the origin sits bottom-left.
///
/// # Examples
///
/// ```
/// use pacor::{BenchDesign, FlowConfig, PacorFlow, render_ascii};
///
/// let problem = BenchDesign::S1.synthesize(42);
/// let (_, routed) = PacorFlow::new(FlowConfig::default()).run_detailed(&problem)?;
/// let art = render_ascii(&problem, &routed);
/// assert!(art.contains('■'));
/// # Ok::<(), pacor::FlowError>(())
/// ```
pub fn render_ascii(problem: &Problem, routed: &[RoutedCluster]) -> String {
    let (w, h) = (problem.width as usize, problem.height as usize);
    let mut canvas = vec![vec!['·'; w]; h];
    let put = |p: Point, ch: char, canvas: &mut Vec<Vec<char>>| {
        if p.x >= 0 && p.y >= 0 && (p.x as usize) < w && (p.y as usize) < h {
            canvas[p.y as usize][p.x as usize] = ch;
        }
    };
    for &o in &problem.obstacles {
        put(o, '#', &mut canvas);
    }
    for rc in routed {
        for c in rc.net_cells() {
            put(c, '*', &mut canvas);
        }
        if let Some((esc, pin)) = &rc.escape {
            for c in esc.cells().iter().skip(1) {
                put(*c, '+', &mut canvas);
            }
            put(*pin, 'P', &mut canvas);
        }
    }
    for v in problem.valves.iter() {
        put(v.position(), '■', &mut canvas);
    }
    let mut out = String::with_capacity((w + 1) * h);
    for row in canvas.iter().rev() {
        out.extend(row.iter());
        out.push('\n');
    }
    out
}

/// Renders the routed layout as a standalone SVG document.
///
/// Valves are squares, obstacles gray blocks, internal nets opaque
/// strokes colored per cluster, escape channels the same hue dashed,
/// and control pins circles. `cell` is the SVG pixel size per grid cell.
///
/// # Examples
///
/// ```
/// use pacor::{BenchDesign, FlowConfig, PacorFlow, render_svg};
///
/// let problem = BenchDesign::S1.synthesize(42);
/// let (_, routed) = PacorFlow::new(FlowConfig::default()).run_detailed(&problem)?;
/// let svg = render_svg(&problem, &routed, 12);
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.ends_with("</svg>\n"));
/// # Ok::<(), pacor::FlowError>(())
/// ```
pub fn render_svg(problem: &Problem, routed: &[RoutedCluster], cell: u32) -> String {
    let cell = cell.max(2);
    let (w, h) = (problem.width * cell, problem.height * cell);
    // y flips so the grid origin is bottom-left, like the ASCII view.
    let cx = |p: Point| p.x as u32 * cell + cell / 2;
    let cy = |p: Point| (problem.height - 1 - p.y as u32) * cell + cell / 2;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
         viewBox=\"0 0 {w} {h}\">"
    );
    let _ = writeln!(
        svg,
        "  <rect width=\"{w}\" height=\"{h}\" fill=\"#fcfcf8\" stroke=\"#888\"/>"
    );
    for &o in &problem.obstacles {
        let _ = writeln!(
            svg,
            "  <rect x=\"{}\" y=\"{}\" width=\"{cell}\" height=\"{cell}\" fill=\"#c8c8c0\"/>",
            o.x as u32 * cell,
            (problem.height - 1 - o.y as u32) * cell
        );
    }

    const PALETTE: [&str; 10] = [
        "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#e377c2", "#17becf",
        "#bcbd22", "#7f7f7f",
    ];
    let polyline = |path: &pacor_grid::GridPath, color: &str, dashed: bool| -> String {
        let pts: Vec<String> = path
            .corners()
            .iter()
            .map(|&p| format!("{},{}", cx(p), cy(p)))
            .collect();
        format!(
            "  <polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"{}\"{}/>\n",
            pts.join(" "),
            cell / 3,
            if dashed {
                format!(" stroke-dasharray=\"{},{}\"", cell / 2, cell / 4)
            } else {
                String::new()
            }
        )
    };

    for (i, rc) in routed.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        match &rc.kind {
            RoutedKind::LmTree { edge_paths, .. } => {
                for p in edge_paths {
                    svg.push_str(&polyline(p, color, false));
                }
            }
            RoutedKind::LmPair { half_a, half_b, .. } => {
                svg.push_str(&polyline(half_a, color, false));
                svg.push_str(&polyline(half_b, color, false));
            }
            RoutedKind::Mst { paths } => {
                for p in paths {
                    svg.push_str(&polyline(p, color, false));
                }
            }
            RoutedKind::Singleton => {}
        }
        if let Some((esc, pin)) = &rc.escape {
            svg.push_str(&polyline(esc, color, true));
            let _ = writeln!(
                svg,
                "  <circle cx=\"{}\" cy=\"{}\" r=\"{}\" fill=\"{color}\" stroke=\"#000\"/>",
                cx(*pin),
                cy(*pin),
                cell / 2
            );
        }
    }
    for v in problem.valves.iter() {
        let p = v.position();
        let _ = writeln!(
            svg,
            "  <rect x=\"{}\" y=\"{}\" width=\"{cell}\" height=\"{cell}\" \
             fill=\"#222\" stroke=\"#000\"/>",
            p.x as u32 * cell,
            (problem.height - 1 - p.y as u32) * cell
        );
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BenchDesign, FlowConfig, PacorFlow};

    fn routed_s1() -> (Problem, Vec<RoutedCluster>) {
        let problem = BenchDesign::S1.synthesize(42);
        let (_, routed) = PacorFlow::new(FlowConfig::default())
            .run_detailed(&problem)
            .expect("valid design");
        (problem, routed)
    }

    #[test]
    fn ascii_has_grid_dimensions() {
        let (problem, routed) = routed_s1();
        let art = render_ascii(&problem, &routed);
        assert_eq!(art.lines().count(), problem.height as usize);
        assert!(art.lines().all(|l| l.chars().count() == problem.width as usize));
    }

    #[test]
    fn ascii_marks_all_valves() {
        let (problem, routed) = routed_s1();
        let art = render_ascii(&problem, &routed);
        let valves = art.chars().filter(|&c| c == '■').count();
        assert_eq!(valves, problem.valve_count());
    }

    #[test]
    fn ascii_shows_pins_for_complete_routes() {
        let (problem, routed) = routed_s1();
        let art = render_ascii(&problem, &routed);
        let pins = art.chars().filter(|&c| c == 'P').count();
        assert_eq!(pins, routed.iter().filter(|rc| rc.is_complete()).count());
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let (problem, routed) = routed_s1();
        let svg = render_svg(&problem, &routed, 10);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<polyline").count(), svg.matches("/>").count() - svg.matches("<rect").count() - svg.matches("<circle").count());
        // One valve rect per valve (plus background + obstacle rects).
        let rects = svg.matches("<rect").count();
        assert_eq!(
            rects,
            1 + problem.obstacles.len() + problem.valve_count()
        );
    }

    #[test]
    fn svg_min_cell_clamped() {
        let (problem, routed) = routed_s1();
        let svg = render_svg(&problem, &routed, 0);
        assert!(svg.contains("width=\"24\"")); // 12 cells × clamped 2px
    }
}
