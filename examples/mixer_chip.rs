//! A domain-specific scenario: the control layer of a rotary-mixer
//! biochip (the workload class the paper's introduction motivates).
//!
//! A PDMS rotary mixer is driven by three peristaltic pump valves that
//! must actuate in a precise phase pattern — their control channels need
//! matched lengths so pressure edges arrive simultaneously — plus input
//! selection valves that switch independently. This example builds that
//! control layer, routes it with PACOR, and verifies the synchronization
//! constraint on the result.
//!
//! ```sh
//! cargo run --example mixer_chip
//! ```

use pacor_repro::grid::{DesignRules, Point};
use pacor_repro::pacor::{FlowConfig, PacorFlow, Problem};
use pacor_repro::valves::{Valve, ValveId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Physical design rules: 100 μm channels with 100 μm spacing.
    let rules = DesignRules::typical_pdms();
    // An 8 mm × 6 mm control layer.
    let (w, h) = (rules.grid_cells(8000.0), rules.grid_cells(6000.0));
    println!("control layer: {w}×{h} tracks at {rules}");

    // Peristaltic pump: three valves around the mixing ring. All three
    // share the actuation pattern "101X" (they are driven from one pin in
    // a peristaltic sequence generated off-chip), and — critically — must
    // see the pressure edge at the same time: a length-matching cluster.
    let pump = [
        (ValveId(0), Point::new(12, 14)),
        (ValveId(1), Point::new(26, 18)),
        (ValveId(2), Point::new(12, 22)),
    ];

    // Input multiplexer: two valve pairs selecting sample or buffer.
    // Each pair switches together (compatible sequences) but has no
    // timing-critical synchronization.
    let mux = [
        (ValveId(3), Point::new(5, 6), "01XX"),
        (ValveId(4), Point::new(5, 10), "01XX"),
        (ValveId(5), Point::new(32, 6), "10XX"),
        (ValveId(6), Point::new(32, 10), "10XX"),
    ];

    let mut builder = Problem::builder("rotary-mixer", w, h).delta(1);
    for (id, pos) in pump {
        builder = builder.valve(Valve::new(id, pos, "101X".parse()?));
    }
    for (id, pos, seq) in mux {
        builder = builder.valve(Valve::new(id, pos, seq.parse()?));
    }
    // The mixing ring itself is a flow-layer feature the control channels
    // must not cross: an obstacle annulus around the pump valves.
    let ring_center = Point::new(18, 18);
    let mut obstacle_count = 0;
    let mut ring = Vec::new();
    for x in 0..w as i32 {
        for y in 0..h as i32 {
            let p = Point::new(x, y);
            let d = p.manhattan(ring_center);
            // The annulus has three-track north/south gaps (flow-channel
            // vias) so the interior stays reachable: the tree needs two
            // crossings and the escape channel a third.
            if (5..=6).contains(&d)
                && (p.x - ring_center.x).abs() > 1
                && !pump.iter().any(|(_, v)| *v == p)
            {
                ring.push(p);
                obstacle_count += 1;
            }
        }
    }
    builder = builder.obstacles(ring);
    // Pressure ports (candidate pins) sit along the south edge.
    builder = builder.pins((1..w as i32 - 1).step_by(3).map(|x| Point::new(x, 0)));

    let problem = builder
        .lm_cluster(vec![ValveId(0), ValveId(1), ValveId(2)])
        .build()?;
    println!("{obstacle_count} obstacle cells (mixing ring)");

    let report = PacorFlow::new(FlowConfig::default()).run(&problem)?;
    println!("{report}");

    let pump_cluster = report
        .clusters
        .iter()
        .find(|c| c.length_constrained)
        .expect("pump cluster present");
    println!();
    println!(
        "pump synchronization: mismatch {:?} grid tracks (δ = 1) → {}",
        pump_cluster.mismatch,
        if pump_cluster.matched {
            "pressure edges aligned ✓"
        } else {
            "NOT matched ✗"
        }
    );
    if let Some(m) = pump_cluster.mismatch {
        println!(
            "worst-case arrival skew corresponds to {:.0} μm of channel",
            rules.physical_length_um(m)
        );
    }
    assert_eq!(report.completion_rate(), 1.0);
    Ok(())
}
