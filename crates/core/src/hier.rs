//! Hierarchical global-then-detailed routing (ROADMAP item 4).
//!
//! Large valve arrays (256², 512²) overwhelm a single flat pass: every
//! negotiation round touches the whole chip, and the fine-grained
//! speculative parallelism of `--negotiation-mode parallel` pays more
//! in conflict retries than it wins (DESIGN §10). The hierarchical
//! mode splits the problem the way classical VLSI routers do:
//!
//! 1. **Global stage** — coarsen the chip into a [`GcellGrid`] of
//!    `gcell_size`-sided tiles whose edges carry boundary-crossing
//!    capacities, and plan one congestion-aware corridor per cluster
//!    from its bounding-box tile to the nearest open boundary row (the
//!    pin rows). Corridor usage is committed edge by edge, so later
//!    corridors steer around saturated tiles; the whole plan is
//!    reported through `global.*` counters/histograms.
//! 2. **Region partition** — each gcell column spans a full-height
//!    stripe of the chip. A cluster whose halo-inflated bounding box
//!    (plus any column its corridor was pushed through) fits a single
//!    stripe is assigned to it; everything else is deferred to the
//!    stitch phase. Stripes are disjoint by construction — cluster
//!    geometry, pins and obstacles never overlap across regions.
//! 3. **Region-parallel detailed routing** — every stripe runs the
//!    ordinary PACOR pipeline ([`run_stage_pipeline`]) against a
//!    region-windowed [`ObsMap`] view, fanned out over
//!    [`parallel_map_with`](crate::parallel_map_with). Results merge
//!    in canonical column order; cluster ids come from per-region
//!    id blocks sized up front. Telemetry and the flight recorder are
//!    paused for the fan-out (worker threads have neither installed,
//!    so pausing the session thread makes the inline one-thread path
//!    emit the same nothing), while counters/histograms ride the
//!    deterministic task-frame absorption of the fan-out itself —
//!    the merged result is byte-identical at any thread count.
//! 4. **Stitch + repair** — deferred clusters spanning two adjacent
//!    columns route in two *waves* of disjoint paired-column windows
//!    (even pairs, then odd pairs), each wave fanned out like the
//!    regions; wider spans finish serially on the live merged map.
//!    Then a two-round repair pass re-attempts every cluster its
//!    region could not connect: first a windowed escape over the
//!    still-unused pins, then — if failures remain — a whole-chip
//!    round that also re-enters the committed clusters near the
//!    failures (counted as `global.widened`), so the escape stage's
//!    rip machinery can attribute and move the walls that boxed them
//!    in. The usual final detour covers the newly completed clusters.

use crate::escape_stage::{escape_all, EscapeStats};
use crate::flow::run_stage_pipeline;
use crate::{detour_cluster, FlowConfig, FlowMetrics, FlowVariant, Problem, RoutedCluster};
use pacor_grid::{GcellGrid, GridLen, ObsMap, Point, Rect};
use pacor_valves::Cluster;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// One cluster paired with its valve positions — the unit of work every
/// phase hands around.
type ClusterJob = (Cluster, Vec<Point>);

/// One full-height region stripe (a gcell column) with its assigned
/// clusters, the pins on its boundary, and a pre-reserved cluster-id
/// block so regions can allocate ids without coordination.
struct Region {
    rect: Rect,
    pins: Vec<Point>,
    clusters: Vec<ClusterJob>,
    id_base: u32,
    id_block: u32,
}

/// Upper bound on cluster ids a detailed run over `clusters` can
/// allocate: MST splitting consumes at most `2n` ids per `n`-valve
/// cluster (binary split tree), escape de-clustering at most `n` more
/// (each valve becomes at most one singleton); `+16` is slack.
fn id_block_of(clusters: &[ClusterJob]) -> u32 {
    clusters.iter().map(|(c, _)| 4 * c.len() as u32 + 16).sum()
}

fn add_stats(into: &mut EscapeStats, s: EscapeStats) {
    into.rounds += s.rounds;
    into.declustered += s.declustered;
    into.ripped += s.ripped;
}

/// Folds a region run's per-stage metrics into the flow totals (the
/// duration fields sum worker wall-clock; the task counts are exact
/// and thread-count-invariant because regions run single-threaded).
fn add_metrics(into: &mut FlowMetrics, m: &FlowMetrics) {
    into.lm_routing += m.lm_routing;
    into.mst_routing += m.mst_routing;
    into.escape += m.escape;
    into.detour += m.detour;
    into.lm_candidate_tasks += m.lm_candidate_tasks;
    into.lm_scoring_tasks += m.lm_scoring_tasks;
}

/// The control pins no cluster in `claimed` has escaped to.
fn unclaimed_pins<'a>(
    pins: &[Point],
    claimed: impl IntoIterator<Item = &'a RoutedCluster>,
) -> Vec<Point> {
    let used: BTreeSet<Point> = claimed
        .into_iter()
        .filter_map(|rc| rc.escape.as_ref().map(|(_, pin)| *pin))
        .collect();
    pins.iter().copied().filter(|p| !used.contains(p)).collect()
}

/// Bounding box of `positions` grown by `radius` on every side — the
/// neighbourhood a pocketed valve's widened repair may rip within.
fn inflated_bbox(positions: &[Point], radius: i32) -> Rect {
    let first = positions.first().copied().unwrap_or(Point::new(0, 0));
    let bbox = positions
        .iter()
        .skip(1)
        .fold(Rect::from_point(first), |r, p| {
            r.union(&Rect::from_point(*p))
        });
    Rect::from_corners(
        Point::new(bbox.min().x - radius, bbox.min().y - radius),
        Point::new(bbox.max().x + radius, bbox.max().y + radius),
    )
}

/// Whether any cell of the cluster's committed geometry (internal nets
/// or escape path) lies inside one of the repair windows.
fn touches_any(rc: &RoutedCluster, windows: &[Rect]) -> bool {
    let in_any = |c: Point| windows.iter().any(|w| w.contains(c));
    rc.net_cells().into_iter().any(in_any)
        || rc
            .escape
            .as_ref()
            .is_some_and(|(esc, _)| esc.cells().iter().any(|&c| in_any(c)))
}

/// Blocks a routed cluster's geometry on the shared map when merging a
/// region result back. Re-blocking cells the region already saw is a
/// no-op, so the merge is idempotent.
fn commit_geometry(obs: &mut ObsMap, rc: &RoutedCluster) {
    obs.block_all(rc.net_cells());
    if let Some((esc, _)) = &rc.escape {
        obs.block_all(esc.cells().iter().copied());
    }
}

/// Fans a batch of disjoint regions out over the worker pool, each
/// running the full detailed pipeline against its own windowed view of
/// `base_obs`. The session thread's telemetry stream and flight
/// recorder are suspended for the fan-out: worker threads have neither
/// installed, so this makes the inline (single-thread) path emit
/// exactly what the parallel path does — nothing — while
/// counters/histograms still merge deterministically through the
/// fan-out's task frames.
fn route_regions(
    base_obs: &ObsMap,
    regions: &[Region],
    threads: usize,
    config: &FlowConfig,
    delta: GridLen,
) -> Vec<(Vec<RoutedCluster>, EscapeStats, FlowMetrics)> {
    let _tp = pacor_obs::telemetry_pause();
    let _fp = pacor_obs::flight_pause();
    crate::parallel_map_with(
        threads,
        regions,
        || (),
        |(), _i, region: &Region| {
            let mut robs = base_obs.windowed(region.rect);
            let mut next = region.id_base;
            let mut m = FlowMetrics::default();
            let (routed, stats) = run_stage_pipeline(
                &mut robs,
                region.clusters.clone(),
                &region.pins,
                delta,
                config,
                &mut next,
                &mut m,
            );
            assert!(
                next - region.id_base <= region.id_block,
                "region cluster-id block overflow: {} > {}",
                next - region.id_base,
                region.id_block
            );
            (routed, stats, m)
        },
    )
}

/// Merges a fan-out batch back into the shared map and the flow-level
/// accumulators, in the deterministic item order of the batch.
fn merge_results(
    obs: &mut ObsMap,
    results: Vec<(Vec<RoutedCluster>, EscapeStats, FlowMetrics)>,
    routed_all: &mut Vec<RoutedCluster>,
    stats: &mut EscapeStats,
    timings: &mut FlowMetrics,
) {
    for (batch_routed, batch_stats, m) in results {
        for rc in &batch_routed {
            commit_geometry(obs, rc);
        }
        add_stats(stats, batch_stats);
        add_metrics(timings, &m);
        routed_all.extend(batch_routed);
    }
}

/// Stages 2–6 in hierarchical mode: global corridor planning, region
/// partition, region-parallel detailed routing, stitch, and repair.
///
/// With a single gcell column (tile ≥ chip width) the hierarchy
/// degenerates to exactly the flat pipeline — same calls, same
/// observability — which the equivalence proptests pin down.
pub(crate) fn run_hierarchical(
    obs: &mut ObsMap,
    clusters: Vec<(Cluster, Vec<Point>)>,
    problem: &Problem,
    config: &FlowConfig,
    next_cluster_id: &mut u32,
    timings: &mut FlowMetrics,
) -> (Vec<RoutedCluster>, EscapeStats) {
    let mut gc = GcellGrid::new(obs, config.gcell_size);
    if gc.cols() <= 1 {
        return run_stage_pipeline(
            obs,
            clusters,
            &problem.pins,
            problem.delta,
            config,
            next_cluster_id,
            timings,
        );
    }

    // ---- Global stage: corridors on the gcell graph -------------------
    pacor_obs::telemetry_stage_enter("global");
    let span = pacor_obs::span_with(
        "stage.global",
        &[
            ("gcells", gc.len() as u64),
            ("clusters", clusters.len() as u64),
        ],
    );
    pacor_obs::counter_add("global.gcells", gc.len() as u64);
    let halo = config.region_halo as i32;
    let mut local: Vec<Vec<ClusterJob>> =
        (0..gc.cols()).map(|_| Vec::new()).collect();
    let mut deferred: BTreeMap<(u32, u32), Vec<ClusterJob>> = BTreeMap::new();
    for (c, positions) in clusters {
        let Some(&first) = positions.first() else {
            local[0].push((c, positions));
            continue;
        };
        let bbox = positions
            .iter()
            .skip(1)
            .fold(Rect::from_point(first), |r, p| {
                r.union(&Rect::from_point(*p))
            });
        let center = Point::new(
            (bbox.min().x + bbox.max().x) / 2,
            (bbox.min().y + bbox.max().y) / 2,
        );
        let corridor = gc.route_to_boundary(gc.gcell_of(center));
        pacor_obs::counter_add("global.corridors", 1);
        pacor_obs::record("global.corridor_len", corridor.len() as u64);
        // The stripe span covers the halo-inflated bounding box plus
        // every column congestion pushed the corridor through, so the
        // detailed window can realize the planned escape.
        let mut c0 = gc.column_of(bbox.min().x - halo);
        let mut c1 = gc.column_of(bbox.max().x + halo);
        for &(cc, _) in &corridor {
            c0 = c0.min(cc);
            c1 = c1.max(cc);
        }
        if c0 == c1 {
            local[c0 as usize].push((c, positions));
        } else {
            pacor_obs::counter_add("global.deferred", 1);
            deferred.entry((c0, c1)).or_default().push((c, positions));
        }
    }
    pacor_obs::counter_add("global.overflows", gc.overflowed_edges() as u64);

    // ---- Region partition: one stripe per non-empty gcell column ------
    let mut regions: Vec<Region> = Vec::new();
    let mut base = *next_cluster_id;
    for (col, assigned) in local.into_iter().enumerate() {
        if assigned.is_empty() {
            continue;
        }
        let rect = gc.column_rect(col as u32);
        let pins: Vec<Point> = problem
            .pins
            .iter()
            .copied()
            .filter(|p| rect.contains(*p))
            .collect();
        let id_block = id_block_of(&assigned);
        regions.push(Region {
            rect,
            pins,
            clusters: assigned,
            id_base: base,
            id_block,
        });
        base += id_block;
    }
    *next_cluster_id = base;
    pacor_obs::counter_add("global.regions", regions.len() as u64);
    drop(span);
    pacor_obs::telemetry_stage_exit("global", regions.len() as u64);

    // ---- Phase A: region-parallel detailed routing --------------------
    pacor_obs::telemetry_stage_enter("regions");
    let span = pacor_obs::span_with("stage.regions", &[("regions", regions.len() as u64)]);
    let region_config = config.with_threads(1).with_escape_windowed(true);
    let threads = crate::effective_threads(config.thread_count);
    timings.threads = threads;
    let delta = problem.delta;
    let results = route_regions(obs, &regions, threads, &region_config, delta);
    let region_count = regions.len() as u64;
    drop(span);

    let mut routed_all: Vec<RoutedCluster> = Vec::new();
    let mut stats = EscapeStats::default();
    merge_results(obs, results, &mut routed_all, &mut stats, timings);
    pacor_obs::telemetry_stage_exit("regions", region_count);

    // ---- Phase B: stitch deferred (cross-region) clusters -------------
    // Deferred spans are almost always two adjacent columns (a bounding
    // box straddling one stripe border), so two parallel waves of
    // paired-column super-stripes cover them: wave 0 pairs columns
    // (0,1)(2,3)…, wave 1 pairs (1,2)(3,4)…. Windows within a wave are
    // disjoint — the wave fans out over the worker pool exactly like
    // Phase A — and the waves merge sequentially, so wave 1 sees wave
    // 0's committed geometry. Spans wider than two columns (rare) run
    // serially at the end against their own window.
    if !deferred.is_empty() {
        let total: usize = deferred.values().map(Vec::len).sum();
        let span = pacor_obs::span_with("stage.stitch", &[("clusters", total as u64)]);
        let mut waves: [BTreeMap<u32, Vec<ClusterJob>>; 2] =
            [BTreeMap::new(), BTreeMap::new()];
        let mut rest: Vec<((u32, u32), Vec<ClusterJob>)> = Vec::new();
        for ((c0, c1), group) in deferred {
            if c0 / 2 == c1 / 2 {
                waves[0].entry(c0 / 2).or_default().extend(group);
            } else if c0.div_ceil(2) == c1.div_ceil(2) {
                waves[1].entry(c0.div_ceil(2)).or_default().extend(group);
            } else {
                rest.push(((c0, c1), group));
            }
        }
        for (wave, groups) in waves.into_iter().enumerate() {
            if groups.is_empty() {
                continue;
            }
            let used: BTreeSet<Point> = routed_all
                .iter()
                .filter_map(|rc| rc.escape.as_ref().map(|(_, pin)| *pin))
                .collect();
            let mut batch: Vec<Region> = Vec::new();
            let mut base = *next_cluster_id;
            for (k, group) in groups {
                let (lo, hi) = if wave == 0 {
                    (2 * k, (2 * k + 1).min(gc.cols() - 1))
                } else {
                    (2 * k - 1, 2 * k)
                };
                let rect =
                    Rect::from_corners(gc.column_rect(lo).min(), gc.column_rect(hi).max());
                let pins: Vec<Point> = problem
                    .pins
                    .iter()
                    .copied()
                    .filter(|p| rect.contains(*p) && !used.contains(p))
                    .collect();
                let id_block = id_block_of(&group);
                batch.push(Region {
                    rect,
                    pins,
                    clusters: group,
                    id_base: base,
                    id_block,
                });
                base += id_block;
            }
            *next_cluster_id = base;
            let results = route_regions(obs, &batch, threads, &region_config, delta);
            merge_results(obs, results, &mut routed_all, &mut stats, timings);
        }
        for ((c0, c1), group) in rest {
            let used: BTreeSet<Point> = routed_all
                .iter()
                .filter_map(|rc| rc.escape.as_ref().map(|(_, pin)| *pin))
                .collect();
            let window = Rect::from_corners(gc.column_rect(c0).min(), gc.column_rect(c1).max());
            let pins: Vec<Point> = problem
                .pins
                .iter()
                .copied()
                .filter(|p| window.contains(*p) && !used.contains(p))
                .collect();
            let mut robs = obs.windowed(window);
            let mut m = FlowMetrics::default();
            let (group_routed, group_stats) = run_stage_pipeline(
                &mut robs,
                group,
                &pins,
                delta,
                &region_config,
                next_cluster_id,
                &mut m,
            );
            for rc in &group_routed {
                commit_geometry(obs, rc);
            }
            add_stats(&mut stats, group_stats);
            add_metrics(timings, &m);
            routed_all.extend(group_routed);
        }
        drop(span);
    }

    // ---- Phase C: flat repair of region-local failures ----------------
    // Round 1: clusters a windowed run could not connect get one
    // whole-chip escape attempt with the pins nobody claimed. Only
    // pending clusters enter `escape_all` — it rips every escape in its
    // input, so passing the completed ones would discard the region
    // work. Round 2 (when round 1 leaves failures): the escape stage's
    // rip-up machinery can only attribute walls to clusters *in its
    // input*, so a valve pocketed by committed neighbours is
    // unrecoverable to a pending-only call. Widen the retry set with
    // every committed cluster whose geometry touches a failure's
    // neighbourhood; their escapes become rippable and their pins
    // return to the pool.
    let (mut done, mut pending): (Vec<_>, Vec<_>) = routed_all
        .into_iter()
        .partition(|rc| rc.escape.is_some());
    if !pending.is_empty() {
        let free_pins = unclaimed_pins(&problem.pins, &done);
        pacor_obs::telemetry_stage_enter("escape");
        let stage = Instant::now();
        let span = pacor_obs::span_with("stage.repair", &[("pending", pending.len() as u64)]);
        // Round 1 keeps the flood-limited builds (the pending few are
        // local failures); round 2 below restores the full machinery,
        // last-resort phase included, as the completion guarantee.
        let repair = escape_all(
            obs,
            &mut pending,
            &free_pins,
            &config.with_escape_windowed(true),
            next_cluster_id,
        );
        add_stats(&mut stats, repair);

        // Pocket walls sit immediately around the failed valve; a tight
        // radius keeps the widened retry (and its re-solve) local
        // instead of degenerating into a flat whole-chip pass.
        let radius = 16;
        let windows: Vec<Rect> = pending
            .iter()
            .filter(|rc| rc.escape.is_none())
            .map(|rc| inflated_bbox(&rc.member_positions, radius))
            .collect();
        if !windows.is_empty() {
            let (near, far): (Vec<_>, Vec<_>) = done
                .into_iter()
                .partition(|rc| touches_any(rc, &windows));
            done = far;
            if !near.is_empty() {
                pacor_obs::counter_add("global.widened", near.len() as u64);
                let (fixed, still): (Vec<_>, Vec<_>) =
                    pending.into_iter().partition(|rc| rc.escape.is_some());
                let mut retry = near;
                retry.extend(still);
                let pool = unclaimed_pins(&problem.pins, done.iter().chain(fixed.iter()));
                let widened = escape_all(obs, &mut retry, &pool, config, next_cluster_id);
                add_stats(&mut stats, widened);
                pending = fixed;
                pending.extend(retry);
            }
        }
        drop(span);
        timings.escape += stage.elapsed();
        pacor_obs::telemetry_stage_exit("escape", pending.len() as u64);
        if config.variant != FlowVariant::DetourFirst {
            pacor_obs::telemetry_stage_enter("detour");
            let stage = Instant::now();
            let span = pacor_obs::span("stage.detour");
            let mut detoured = 0u64;
            for rc in pending.iter_mut() {
                if rc.cluster.is_length_matched() && rc.is_complete() {
                    detour_cluster(obs, rc, delta, config);
                    detoured += 1;
                }
            }
            drop(span);
            timings.detour += stage.elapsed();
            pacor_obs::telemetry_stage_exit("detour", detoured);
        }
    }
    done.extend(pending);
    (done, stats)
}
