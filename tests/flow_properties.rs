//! Property-based end-to-end tests: random small problems through the
//! complete PACOR flow, checking structural invariants that must hold
//! for *any* input — report consistency, design-rule cleanliness, and
//! the length-matching guarantee on matched clusters.

use pacor_repro::grid::Point;
use pacor_repro::pacor::{EscapeSolver, FlowConfig, FlowVariant, PacorFlow, Problem};
use pacor_repro::route::RipUpPolicy;
use pacor_repro::valves::{ActivationSequence, ActivationStatus, Valve, ValveId};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// A random, always-valid problem on a 20×20 grid: valves on distinct
/// interior cells (with a one-cell moat), cluster structure implied by
/// the generated activation codes, pins on the west edge.
fn arb_problem() -> impl Strategy<Value = Problem> {
    let valve_cells = prop::collection::hash_set((2i32..18, 2i32..18), 2..8);
    let codes = prop::collection::vec(0u8..4, 8);
    let obstacles = prop::collection::hash_set((1i32..19, 1i32..19), 0..14);
    (valve_cells, codes, obstacles).prop_map(|(cells, codes, obstacles)| {
        // Sort for determinism (hash-set iteration order varies), then
        // enforce the moat by greedy filtering.
        let mut cells: Vec<(i32, i32)> = cells.into_iter().collect();
        cells.sort_unstable();
        let mut obstacles: Vec<(i32, i32)> = obstacles.into_iter().collect();
        obstacles.sort_unstable();
        let mut taken: Vec<Point> = Vec::new();
        for &(x, y) in &cells {
            let p = Point::new(x, y);
            let crowded = taken.iter().any(|q| q.chebyshev(p) <= 1);
            if !crowded {
                taken.push(p);
            }
        }
        if taken.is_empty() {
            taken.push(Point::new(9, 9));
        }
        let code_of = |k: u8| -> ActivationSequence {
            (0..3)
                .map(|b| {
                    if (k >> b) & 1 == 1 {
                        ActivationStatus::Closed
                    } else {
                        ActivationStatus::Open
                    }
                })
                .collect()
        };
        let mut builder = Problem::builder("prop", 20, 20).delta(1);
        let mut groups: HashMap<u8, Vec<ValveId>> = HashMap::new();
        for (i, &p) in taken.iter().enumerate() {
            let k = codes[i % codes.len()];
            let id = ValveId(i as u32);
            builder = builder.valve(Valve::new(id, p, code_of(k)));
            groups.entry(k).or_default().push(id);
        }
        // Every multi-valve compatibility class becomes an LM cluster.
        for ids in groups.into_values() {
            if ids.len() >= 2 {
                builder = builder.lm_cluster(ids);
            }
        }
        for &(x, y) in &obstacles {
            let p = Point::new(x, y);
            if !taken.iter().any(|q| q.chebyshev(p) <= 1) {
                builder = builder.obstacle(p);
            }
        }
        builder = builder.pins((1..19).step_by(2).map(|y| Point::new(0, y)));
        builder.build().expect("generated problems are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn report_is_internally_consistent(problem in arb_problem()) {
        let report = PacorFlow::new(FlowConfig::default())
            .run(&problem)
            .expect("valid problem");
        prop_assert!(report.valves_routed <= report.valves_total);
        prop_assert!(report.matched_clusters <= report.clusters_multi);
        prop_assert!(report.matched_length <= report.total_length);
        let sum: u64 = report.clusters.iter().map(|c| c.total_length).sum();
        prop_assert_eq!(sum, report.total_length);
        let routed_valves: usize = report
            .clusters
            .iter()
            .filter(|c| c.complete)
            .map(|c| c.size)
            .sum();
        prop_assert_eq!(routed_valves, report.valves_routed);
    }

    #[test]
    fn matched_clusters_obey_delta(problem in arb_problem()) {
        let report = PacorFlow::new(FlowConfig::default())
            .run(&problem)
            .expect("valid problem");
        for c in &report.clusters {
            if c.matched {
                prop_assert!(c.length_constrained);
                prop_assert!(c.complete);
                let m = c.mismatch.expect("matched implies per-member lengths");
                prop_assert!(m <= problem.delta);
            }
        }
    }

    #[test]
    fn geometry_is_design_rule_clean(problem in arb_problem()) {
        let (_, routed) = PacorFlow::new(FlowConfig::default())
            .run_detailed(&problem)
            .expect("valid problem");
        let obstacle_set: HashSet<Point> = problem.obstacles.iter().copied().collect();
        let mut owner: HashMap<Point, usize> = HashMap::new();
        for (i, rc) in routed.iter().enumerate() {
            let mut cells = rc.net_cells();
            if let Some((esc, pin)) = &rc.escape {
                cells.extend(esc.cells().iter().skip(1).copied());
                prop_assert!(problem.pins.contains(pin), "escape ends off-pin");
            }
            for c in cells {
                prop_assert!(!obstacle_set.contains(&c), "net through obstacle {c}");
                if let Some(prev) = owner.insert(c, i) {
                    prop_assert_eq!(prev, i, "cell {} shared by two nets", c);
                }
            }
        }
    }

    #[test]
    fn incremental_escape_matches_reference(problem in arb_problem()) {
        // The persistent-network escape solver (delta edits, warm-started
        // min-cost flow, windowed recovery) must route the *identical*
        // geometry as the full-rebuild reference, across the de-cluster
        // and rip-up sequences these dense random instances provoke,
        // under either negotiation rip-up policy.
        for policy in [RipUpPolicy::Incremental, RipUpPolicy::Full] {
            let base = FlowConfig::default().with_ripup_policy(policy);
            let (_, inc) = PacorFlow::new(base.with_escape_solver(EscapeSolver::Incremental))
                .run_detailed(&problem)
                .expect("valid problem");
            let (_, reference) = PacorFlow::new(base.with_escape_solver(EscapeSolver::Reference))
                .run_detailed(&problem)
                .expect("valid problem");
            prop_assert_eq!(inc.len(), reference.len());
            for (a, b) in inc.iter().zip(reference.iter()) {
                prop_assert_eq!(a.cluster.id(), b.cluster.id());
                prop_assert_eq!(a.net_cells(), b.net_cells(), "net geometry diverged");
                let esc = |rc: &pacor_repro::pacor::RoutedCluster| {
                    rc.escape.as_ref().map(|(p, pin)| (p.cells().to_vec(), *pin))
                };
                prop_assert_eq!(esc(a), esc(b), "escape geometry diverged");
            }
        }
    }

    #[test]
    fn variants_agree_on_completion_metrics(problem in arb_problem()) {
        // All variants must report consistent totals for the same input
        // (counts, not lengths — routing differs).
        let mut totals = Vec::new();
        for v in FlowVariant::ALL {
            let r = PacorFlow::new(FlowConfig::for_variant(v))
                .run(&problem)
                .expect("valid problem");
            prop_assert_eq!(r.valves_total, problem.valve_count());
            prop_assert_eq!(r.clusters_multi, problem.lm_clusters.len());
            totals.push(r.valves_routed);
        }
        // On a 20×20 with few valves, the strongest variant always
        // completes; adversarial generated instances (a full-height
        // "wall pair" crossing all traffic) may cost a weaker variant a
        // single valve. The benchmark designs (tests/full_flow.rs,
        // tests/chips.rs) assert strict 100 % completion.
        prop_assert!(
            totals.iter().any(|&t| t == problem.valve_count()),
            "no variant completed: {totals:?}"
        );
        prop_assert!(
            totals.iter().all(|&t| t + 1 >= problem.valve_count()),
            "variant lost more than one valve: {totals:?}"
        );
    }
}
