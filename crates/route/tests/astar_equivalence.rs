//! Property tests pinning the flat-array A\* kernel to its references.
//!
//! Two oracles, two strengths of claim:
//!
//! * against the retained `HashMap` kernel ([`AStar::route_reference`])
//!   the new kernel must be **bit-identical** — same cells, same order —
//!   because both break ties the same way (f, then g, then `Point`);
//! * against an independent textbook Dijkstra (written here, no
//!   heuristic, no shared code) the returned path must have the same
//!   **cost** — this guards against both kernels sharing a bug.

use pacor_grid::{Grid, GridPath, ObsMap, Point};
use pacor_route::{AStar, HistoryCost};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Mirrors the router's fixed-point scale for history costs.
const SCALE: u64 = 1024;

fn step_cost(hist: Option<&HistoryCost>, p: Point) -> u64 {
    match hist {
        Some(h) => SCALE + (h.cost(p) * SCALE as f64).round() as u64,
        None => SCALE,
    }
}

/// Plain multi-source Dijkstra under the router's rules (targets exempt
/// from blockage, cost charged on the entered cell). Returns the
/// minimum total cost, or `None` when unreachable.
fn dijkstra_cost(
    obs: &ObsMap,
    hist: Option<&HistoryCost>,
    sources: &[Point],
    targets: &[Point],
) -> Option<u64> {
    let target_set: HashSet<Point> = targets.iter().copied().collect();
    for &s in sources {
        if target_set.contains(&s) {
            return Some(0);
        }
    }
    let mut dist: HashMap<Point, u64> = sources.iter().map(|&s| (s, 0)).collect();
    let mut heap: BinaryHeap<Reverse<(u64, Point)>> =
        sources.iter().map(|&s| Reverse((0, s))).collect();
    while let Some(Reverse((d, p))) = heap.pop() {
        if dist.get(&p).is_some_and(|&best| best < d) {
            continue;
        }
        if target_set.contains(&p) {
            return Some(d);
        }
        for q in p.neighbors4() {
            if obs.is_blocked(q) && !target_set.contains(&q) {
                continue;
            }
            let nd = d + step_cost(hist, q);
            if nd < dist.get(&q).copied().unwrap_or(u64::MAX) {
                dist.insert(q, nd);
                heap.push(Reverse((nd, q)));
            }
        }
    }
    None
}

/// Total cost of a returned path under the same charging rule.
fn path_cost(hist: Option<&HistoryCost>, path: &GridPath) -> u64 {
    path.cells()
        .iter()
        .skip(1)
        .map(|&c| step_cost(hist, c))
        .sum()
}

struct Setup {
    obs: ObsMap,
    hist: HistoryCost,
    sources: Vec<Point>,
    targets: Vec<Point>,
}

/// Deterministically derives a random obstacle grid plus terminals from
/// the proptest-chosen scalars.
fn setup(w: u32, h: u32, seed: u64, density: u32, nsrc: usize, ntgt: usize) -> Setup {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut grid = Grid::new(w, h).unwrap();
    for y in 0..h as i32 {
        for x in 0..w as i32 {
            if rng.gen_range(0u32..100) < density {
                grid.set_obstacle(Point::new(x, y));
            }
        }
    }
    let rand_point =
        |rng: &mut StdRng| Point::new(rng.gen_range(0..w as i32), rng.gen_range(0..h as i32));
    let sources: Vec<Point> = (0..nsrc).map(|_| rand_point(&mut rng)).collect();
    let mut targets: Vec<Point> = (0..ntgt).map(|_| rand_point(&mut rng)).collect();
    if seed.is_multiple_of(5) {
        // Occasionally aim at an off-map target: the flat kernel must
        // fall back to the reference kernel and still agree with it.
        targets.push(Point::new(w as i32, rng.gen_range(0..h as i32)));
    }
    let mut hist = HistoryCost::new(w, h);
    for _ in 0..(w * h / 4) {
        let p = rand_point(&mut rng);
        for _ in 0..rng.gen_range(1u32..4) {
            hist.bump(p);
        }
    }
    Setup {
        obs: ObsMap::new(&grid),
        hist,
        sources,
        targets,
    }
}

proptest! {
    #[test]
    fn unit_cost_kernels_agree(
        w in 4u32..20,
        h in 4u32..20,
        seed in 0u64..u64::MAX,
        density in 0u32..45,
        nsrc in 1usize..4,
        ntgt in 1usize..4,
    ) {
        let s = setup(w, h, seed, density, nsrc, ntgt);
        let astar = AStar::new(&s.obs);
        let flat = astar.route(&s.sources, &s.targets);
        let reference = astar.route_reference(&s.sources, &s.targets);
        prop_assert_eq!(&flat, &reference, "kernels returned different paths");

        let oracle = dijkstra_cost(&s.obs, None, &s.sources, &s.targets);
        match (&flat, oracle) {
            (Some(path), Some(cost)) => {
                prop_assert_eq!(path_cost(None, path), cost, "suboptimal path");
            }
            (None, None) => {}
            (got, want) => {
                return Err(TestCaseError::fail(format!(
                    "reachability disagrees with Dijkstra: got {got:?}, want cost {want:?}"
                )));
            }
        }
    }

    #[test]
    fn history_weighted_kernels_agree(
        w in 4u32..18,
        h in 4u32..18,
        seed in 0u64..u64::MAX,
        density in 0u32..35,
        nsrc in 1usize..3,
        ntgt in 1usize..3,
    ) {
        let s = setup(w, h, seed, density, nsrc, ntgt);
        let astar = AStar::with_history(&s.obs, &s.hist);
        let flat = astar.route(&s.sources, &s.targets);
        let reference = astar.route_reference(&s.sources, &s.targets);
        prop_assert_eq!(&flat, &reference, "history kernels returned different paths");

        let oracle = dijkstra_cost(&s.obs, Some(&s.hist), &s.sources, &s.targets);
        match (&flat, oracle) {
            (Some(path), Some(cost)) => {
                prop_assert_eq!(path_cost(Some(&s.hist), path), cost, "suboptimal path");
            }
            (None, None) => {}
            (got, want) => {
                return Err(TestCaseError::fail(format!(
                    "reachability disagrees with Dijkstra: got {got:?}, want cost {want:?}"
                )));
            }
        }
    }
}
