//! Embedded Steiner trees and their length bookkeeping.

use pacor_grid::{GridLen, Point};
use serde::{Deserialize, Serialize};

/// A node of an embedded Steiner tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeNode {
    /// Embedded grid position.
    pub point: Point,
    /// Parent node index (`None` for the root).
    pub parent: Option<usize>,
    /// Sink index when this node is a leaf (valve), `None` for internal
    /// merging nodes.
    pub sink: Option<usize>,
}

/// An embedded Steiner tree over a cluster of valves.
///
/// Produced by [`DmeBuilder::embed`](crate::DmeBuilder::embed). Stores the
/// merging-node positions and parent links; edge geometry stays abstract
/// (lengths are estimated by Manhattan distance until the negotiation
/// router wires the edges).
///
/// The *full path* of a sink (Definition 5 of the paper) is the sequence
/// of edges from the sink up to the root; [`SteinerTree::full_path_length`]
/// and [`SteinerTree::mismatch`] implement Eq. (1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SteinerTree {
    nodes: Vec<TreeNode>,
    root: usize,
    /// node index of each sink, by sink index.
    sink_nodes: Vec<usize>,
}

impl SteinerTree {
    /// Assembles a tree from parts.
    ///
    /// # Panics
    ///
    /// Panics when `root` or any parent/sink index is out of range, or
    /// when the root has a parent.
    pub fn new(nodes: Vec<TreeNode>, root: usize, sink_nodes: Vec<usize>) -> Self {
        assert!(root < nodes.len(), "root index out of range");
        assert!(nodes[root].parent.is_none(), "root must not have a parent");
        for n in &nodes {
            if let Some(p) = n.parent {
                assert!(p < nodes.len(), "parent index out of range");
            }
        }
        for &s in &sink_nodes {
            assert!(s < nodes.len(), "sink node index out of range");
        }
        Self {
            nodes,
            root,
            sink_nodes,
        }
    }

    /// The nodes of the tree.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Index of the root node.
    pub fn root_index(&self) -> usize {
        self.root
    }

    /// Position of the root (the escape-routing source for the cluster).
    pub fn root(&self) -> Point {
        self.nodes[self.root].point
    }

    /// Number of sinks (valves).
    pub fn sink_count(&self) -> usize {
        self.sink_nodes.len()
    }

    /// Node index of sink `i`.
    pub fn sink_node(&self, i: usize) -> usize {
        self.sink_nodes[i]
    }

    /// Position of sink `i`.
    pub fn sink_point(&self, i: usize) -> Point {
        self.nodes[self.sink_nodes[i]].point
    }

    /// All tree edges as `(child point, parent point)` pairs, in node
    /// order.
    pub fn edges(&self) -> Vec<(Point, Point)> {
        self.nodes
            .iter()
            .filter_map(|n| n.parent.map(|p| (n.point, self.nodes[p].point)))
            .collect()
    }

    /// Tree edges as `(child node index, parent node index)` pairs.
    pub fn edge_indices(&self) -> Vec<(usize, usize)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.parent.map(|p| (i, p)))
            .collect()
    }

    /// The node indices along sink `i`'s full path, from the sink to the
    /// root inclusive (Definition 5 / Definition 6 ordering).
    pub fn full_path_nodes(&self, sink: usize) -> Vec<usize> {
        let mut out = vec![self.sink_nodes[sink]];
        while let Some(p) = self.nodes[*out.last().expect("nonempty")].parent {
            out.push(p);
        }
        out
    }

    /// Estimated (Manhattan) length of sink `i`'s full path.
    pub fn full_path_length(&self, sink: usize) -> GridLen {
        let path = self.full_path_nodes(sink);
        path.windows(2)
            .map(|w| self.nodes[w[0]].point.manhattan(self.nodes[w[1]].point))
            .sum()
    }

    /// Length mismatch `ΔL = max(full paths) − min(full paths)` (Eq. 1).
    /// Zero for single-sink trees.
    pub fn mismatch(&self) -> GridLen {
        let lens: Vec<GridLen> = (0..self.sink_count())
            .map(|i| self.full_path_length(i))
            .collect();
        match (lens.iter().max(), lens.iter().min()) {
            (Some(max), Some(min)) => max - min,
            _ => 0,
        }
    }

    /// Total estimated wirelength (sum of Manhattan edge lengths).
    pub fn total_length(&self) -> GridLen {
        self.edges().iter().map(|(a, b)| a.manhattan(*b)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built tree:      root(5,5)
    ///                        /         \
    ///                   m(2,5)        s2(9,5)   <- sink 2 directly
    ///                  /      \
    ///             s0(0,3)   s1(0,7)
    fn sample() -> SteinerTree {
        let nodes = vec![
            TreeNode {
                point: Point::new(5, 5),
                parent: None,
                sink: None,
            },
            TreeNode {
                point: Point::new(2, 5),
                parent: Some(0),
                sink: None,
            },
            TreeNode {
                point: Point::new(0, 3),
                parent: Some(1),
                sink: Some(0),
            },
            TreeNode {
                point: Point::new(0, 7),
                parent: Some(1),
                sink: Some(1),
            },
            TreeNode {
                point: Point::new(9, 5),
                parent: Some(0),
                sink: Some(2),
            },
        ];
        SteinerTree::new(nodes, 0, vec![2, 3, 4])
    }

    #[test]
    fn full_paths() {
        let t = sample();
        assert_eq!(t.full_path_nodes(0), vec![2, 1, 0]);
        assert_eq!(t.full_path_length(0), 4 + 3);
        assert_eq!(t.full_path_length(1), 4 + 3);
        assert_eq!(t.full_path_length(2), 4);
    }

    #[test]
    fn mismatch_is_max_minus_min() {
        let t = sample();
        assert_eq!(t.mismatch(), 3);
    }

    #[test]
    fn edges_and_total_length() {
        let t = sample();
        assert_eq!(t.edges().len(), 4);
        assert_eq!(t.total_length(), 3 + 4 + 4 + 4);
    }

    #[test]
    fn root_accessors() {
        let t = sample();
        assert_eq!(t.root(), Point::new(5, 5));
        assert_eq!(t.root_index(), 0);
        assert_eq!(t.sink_count(), 3);
        assert_eq!(t.sink_point(1), Point::new(0, 7));
    }

    #[test]
    #[should_panic(expected = "root must not have a parent")]
    fn parented_root_panics() {
        let nodes = vec![
            TreeNode {
                point: Point::new(0, 0),
                parent: Some(0),
                sink: None,
            },
        ];
        SteinerTree::new(nodes, 0, vec![]);
    }

    #[test]
    fn singleton_tree() {
        let nodes = vec![TreeNode {
            point: Point::new(4, 4),
            parent: None,
            sink: Some(0),
        }];
        let t = SteinerTree::new(nodes, 0, vec![0]);
        assert_eq!(t.mismatch(), 0);
        assert_eq!(t.total_length(), 0);
        assert_eq!(t.full_path_length(0), 0);
    }
}
