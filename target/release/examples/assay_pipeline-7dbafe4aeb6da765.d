/root/repo/target/release/examples/assay_pipeline-7dbafe4aeb6da765.d: examples/assay_pipeline.rs

/root/repo/target/release/examples/assay_pipeline-7dbafe4aeb6da765: examples/assay_pipeline.rs

examples/assay_pipeline.rs:
