//! Routing reports — the columns of Table 2.

use pacor_grid::GridLen;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// Flow-level performance summary: the wall-clock breakdown of the
/// stages (Fig. 2) plus the aggregated hot-path counters collected by
/// [`pacor_obs`] during the run; stages not run by a variant report
/// zero.
///
/// The `counters` totals are deterministic — byte-identical at any
/// worker-thread count — while the `Duration` fields and `threads` are
/// wall-clock/configuration facts that vary run to run.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FlowMetrics {
    /// Stage 1: valve clustering.
    pub clustering: Duration,
    /// Stage 2: length-matching cluster routing (DME + MWCP + negotiation).
    pub lm_routing: Duration,
    /// Stage 3: MST-based routing of unconstrained clusters.
    pub mst_routing: Duration,
    /// Stages 4–5: escape routing with rip-up / de-clustering.
    pub escape: Duration,
    /// Stage 6 (or 3.5 for Detour-First): path detouring.
    pub detour: Duration,
    /// Worker threads configured for the data-parallel stages
    /// ([`FlowConfig::thread_count`](crate::FlowConfig), floored at 1).
    pub threads: usize,
    /// Work items fanned out during DME candidate generation (one per
    /// ≥3-valve length-matching cluster, over all negotiation rounds).
    pub lm_candidate_tasks: usize,
    /// Work items fanned out during MWCP pair scoring (one per cluster
    /// pair, over all negotiation rounds).
    pub lm_scoring_tasks: usize,
    /// Name-sorted `(counter, total)` pairs from the observability layer
    /// (A\* expansions, queue pushes, rip-ups, detour deltas, …).
    ///
    /// Stored as a sorted vec rather than a map so the serialized form
    /// round-trips through the in-tree serde and stays ordered.
    pub counters: Vec<(String, u64)>,
}

impl FlowMetrics {
    /// Looks up a counter total by name; absent counters read as 0.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .map(|i| self.counters[i].1)
            .unwrap_or(0)
    }
}

/// Per-cluster routing result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Number of member valves.
    pub size: usize,
    /// Whether the cluster carried the length-matching constraint when it
    /// was routed.
    pub length_constrained: bool,
    /// Whether it ended up matched within δ.
    pub matched: bool,
    /// Whether every member reached a control pin.
    pub complete: bool,
    /// Total channel length (internal + escape), grid units.
    pub total_length: GridLen,
    /// Final mismatch `max − min` over member lengths (None for
    /// unconstrained clusters).
    pub mismatch: Option<GridLen>,
}

/// Whole-design routing result — one row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteReport {
    /// Design name.
    pub design: String,
    /// Variant label ("PACOR", "w/o Sel", "Detour First").
    pub variant: String,
    /// Number of clusters with at least two valves (the paper's
    /// "#Clusters" column counts only these).
    pub clusters_multi: usize,
    /// Number of length-matching clusters routed within δ
    /// ("#Matched Clusters").
    pub matched_clusters: usize,
    /// Total channel length of the matched clusters
    /// ("Total matched channel length").
    pub matched_length: GridLen,
    /// Total channel length over all clusters ("Total channel length").
    pub total_length: GridLen,
    /// Number of valves connected to a pin.
    pub valves_routed: usize,
    /// Total number of valves.
    pub valves_total: usize,
    /// Wall-clock runtime of the flow.
    pub runtime: Duration,
    /// Per-stage runtime breakdown and hot-path counter totals.
    pub metrics: FlowMetrics,
    /// Escape-stage recovery counters: (rounds, de-clustered, ripped).
    pub escape_recovery: (u32, usize, usize),
    /// Per-cluster details.
    pub clusters: Vec<ClusterReport>,
}

impl RouteReport {
    /// Routing completion rate in `[0, 1]` (the paper reports 100%
    /// everywhere).
    pub fn completion_rate(&self) -> f64 {
        if self.valves_total == 0 {
            1.0
        } else {
            self.valves_routed as f64 / self.valves_total as f64
        }
    }

    /// One row in the style of Table 2.
    pub fn table_row(&self) -> String {
        format!(
            "{:<8} {:<13} {:>9} {:>8} {:>14} {:>12} {:>9.2}s {:>6.0}%",
            self.design,
            self.variant,
            self.clusters_multi,
            self.matched_clusters,
            self.matched_length,
            self.total_length,
            self.runtime.as_secs_f64(),
            self.completion_rate() * 100.0
        )
    }

    /// The header matching [`RouteReport::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<8} {:<13} {:>9} {:>8} {:>14} {:>12} {:>10} {:>7}",
            "Design", "Method", "#Clusters", "#Matched", "MatchedLen", "TotalLen", "Runtime", "Compl"
        )
    }
}

impl fmt::Display for RouteReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", RouteReport::table_header())?;
        write!(f, "{}", self.table_row())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RouteReport {
        RouteReport {
            design: "S1".into(),
            variant: "PACOR".into(),
            clusters_multi: 2,
            matched_clusters: 2,
            matched_length: 28,
            total_length: 36,
            valves_routed: 5,
            valves_total: 5,
            runtime: Duration::from_millis(10),
            metrics: FlowMetrics::default(),
            escape_recovery: (1, 0, 0),
            clusters: vec![],
        }
    }

    #[test]
    fn completion_rate_full() {
        assert_eq!(report().completion_rate(), 1.0);
    }

    #[test]
    fn completion_rate_partial() {
        let mut r = report();
        r.valves_routed = 4;
        assert!((r.completion_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn completion_rate_empty_design() {
        let mut r = report();
        r.valves_total = 0;
        r.valves_routed = 0;
        assert_eq!(r.completion_rate(), 1.0);
    }

    #[test]
    fn table_row_contains_fields() {
        let row = report().table_row();
        assert!(row.contains("S1"));
        assert!(row.contains("PACOR"));
        assert!(row.contains("36"));
        assert!(row.contains("100%"));
    }

    #[test]
    fn counter_lookup_uses_sorted_names() {
        let m = FlowMetrics {
            counters: vec![
                ("astar.expansions".into(), 42),
                ("negotiate.rounds".into(), 3),
            ],
            ..FlowMetrics::default()
        };
        assert_eq!(m.counter("astar.expansions"), 42);
        assert_eq!(m.counter("negotiate.rounds"), 3);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn display_includes_header() {
        let s = report().to_string();
        assert!(s.contains("#Matched"));
        assert!(s.lines().count() >= 2);
    }
}
