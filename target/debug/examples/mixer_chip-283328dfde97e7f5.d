/root/repo/target/debug/examples/mixer_chip-283328dfde97e7f5.d: examples/mixer_chip.rs

/root/repo/target/debug/examples/mixer_chip-283328dfde97e7f5: examples/mixer_chip.rs

examples/mixer_chip.rs:
