//! Unconstrained-quadratic-programming (QUBO) formulation of the MWCP,
//! solved by simulated annealing.
//!
//! The paper evaluated three MWCP back-ends — "the graph-based algorithm,
//! ILP-based method, and unconstrained quadratic programming based
//! method" (citing Alidaee et al.) — before settling on the ILP. This
//! module supplies the third back-end: the clique constraint is folded
//! into the objective as a penalty on selecting non-adjacent pairs,
//!
//! ```text
//! maximize  Σᵥ wᵥ xᵥ + Σ_{(u,v)∈E} w_{uv} xᵤxᵥ − P · Σ_{(u,v)∉E} xᵤxᵥ
//! ```
//!
//! with `P` large enough that any constraint violation costs more than
//! the best possible gain, making optima of the unconstrained problem
//! exactly the maximum weight cliques.

use crate::{CliqueSolution, WeightedGraph};

/// Simulated-annealing QUBO solver for the MWCP.
///
/// Deterministic for a given seed (internal xorshift generator — no
/// external RNG dependency). An anytime heuristic: more sweeps yield
/// better cliques; the result is always a valid clique because violating
/// assignments are strictly dominated and repaired before returning.
///
/// # Examples
///
/// ```
/// use pacor_clique::{QuboAnnealer, WeightedGraph};
///
/// let mut g = WeightedGraph::new(3);
/// g.set_node_weight(0, 5.0);
/// g.set_node_weight(1, 4.0);
/// g.set_node_weight(2, 10.0);
/// g.add_edge(0, 1, -1.0);
/// let best = QuboAnnealer::new(42).with_sweeps(200).solve(&g);
/// // Heuristic: guaranteed a valid clique, near-optimal in practice —
/// // here either {2} (weight 10) or the local optimum {0, 1} (weight 8).
/// assert!(g.is_clique(&best.nodes));
/// assert!(best.weight >= 8.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct QuboAnnealer {
    seed: u64,
    sweeps: usize,
    t_start: f64,
    t_end: f64,
}

impl QuboAnnealer {
    /// Creates an annealer with the given seed and default schedule
    /// (300 sweeps, temperature 2.0 → 0.01 geometric).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            sweeps: 300,
            t_start: 2.0,
            t_end: 0.01,
        }
    }

    /// Sets the number of full-variable sweeps.
    pub fn with_sweeps(mut self, sweeps: usize) -> Self {
        self.sweeps = sweeps.max(1);
        self
    }

    /// Sets the temperature schedule endpoints.
    ///
    /// # Panics
    ///
    /// Panics unless `t_start >= t_end > 0`.
    pub fn with_schedule(mut self, t_start: f64, t_end: f64) -> Self {
        assert!(
            t_start >= t_end && t_end > 0.0,
            "schedule must cool from t_start to a positive t_end"
        );
        self.t_start = t_start;
        self.t_end = t_end;
        self
    }

    /// Runs the annealer on `graph`.
    pub fn solve(&self, graph: &WeightedGraph) -> CliqueSolution {
        let n = graph.len();
        if n == 0 {
            return CliqueSolution::empty();
        }
        // Penalty dominating any possible gain from one violated pair.
        let max_node: f64 = (0..n)
            .map(|v| graph.node_weight(v).abs())
            .fold(0.0, f64::max);
        let max_edge: f64 = (0..n)
            .flat_map(|u| (0..n).filter_map(move |v| graph.edge_weight(u, v)))
            .fold(0.0, |a, w| a.max(w.abs()));
        let penalty = (max_node + max_edge) * n as f64 + 1.0;

        // QUBO coupling for a pair: edge weight when adjacent, −P when not.
        let couple = |u: usize, v: usize| -> f64 {
            match graph.edge_weight(u, v) {
                Some(w) => w,
                None => -penalty,
            }
        };

        let mut rng = XorShift64::new(self.seed);
        let mut x = vec![false; n];
        let mut energy = 0.0f64;
        let mut best_x = x.clone();
        let mut best_energy = 0.0f64;

        let cooling = (self.t_end / self.t_start).powf(1.0 / self.sweeps as f64);
        let mut temp = self.t_start;
        for _ in 0..self.sweeps {
            for v in 0..n {
                // Energy delta of flipping x[v].
                let mut delta = graph.node_weight(v);
                for (u, &on) in x.iter().enumerate() {
                    if u != v && on {
                        delta += couple(u, v);
                    }
                }
                if !x[v] {
                    // adding v
                } else {
                    delta = -delta;
                }
                let accept = delta >= 0.0 || rng.next_f64() < (delta / temp).exp();
                if accept {
                    x[v] = !x[v];
                    energy += delta;
                    if energy > best_energy && is_clique_assignment(graph, &x) {
                        best_energy = energy;
                        best_x = x.clone();
                    }
                }
            }
            temp *= cooling;
        }

        // Repair: drop violated members greedily (defensive — penalties
        // make violations rare in the incumbent, but repair guarantees a
        // valid result regardless of schedule).
        let mut nodes: Vec<usize> = (0..n).filter(|&v| best_x[v]).collect();
        loop {
            let mut worst: Option<usize> = None;
            'outer: for (k, &u) in nodes.iter().enumerate() {
                for &v in &nodes {
                    if u != v && !graph.adjacent(u, v) {
                        worst = Some(k);
                        break 'outer;
                    }
                }
            }
            match worst {
                Some(k) => {
                    nodes.remove(k);
                }
                None => break,
            }
        }
        let candidate = CliqueSolution::from_nodes(graph, nodes);
        if candidate.weight >= 0.0 {
            candidate
        } else {
            CliqueSolution::empty()
        }
    }
}

fn is_clique_assignment(graph: &WeightedGraph, x: &[bool]) -> bool {
    let nodes: Vec<usize> = (0..x.len()).filter(|&v| x[v]).collect();
    graph.is_clique(&nodes)
}

/// Minimal deterministic xorshift64* generator.
#[derive(Debug, Clone, Copy)]
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> Self {
        Self {
            state: seed | 1, // avoid the all-zero fixed point
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BranchAndBound;

    fn random_graph(seed: u64, n: usize, density: f64) -> WeightedGraph {
        let mut rng = XorShift64::new(seed);
        let mut g = WeightedGraph::new(n);
        for v in 0..n {
            g.set_node_weight(v, rng.next_f64() * 10.0 - 2.0);
        }
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.next_f64() < density {
                    g.add_edge(u, v, rng.next_f64() * 4.0 - 2.0);
                }
            }
        }
        g
    }

    #[test]
    fn empty_graph() {
        let s = QuboAnnealer::new(1).solve(&WeightedGraph::new(0));
        assert!(s.nodes.is_empty());
    }

    #[test]
    fn result_is_always_a_clique() {
        for seed in 0..10 {
            let g = random_graph(seed, 12, 0.5);
            let s = QuboAnnealer::new(seed).solve(&g);
            assert!(g.is_clique(&s.nodes), "seed {seed}");
            assert!((g.weight_of(&s.nodes) - s.weight).abs() < 1e-9);
            assert!(s.weight >= 0.0);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let g = random_graph(3, 10, 0.6);
        let a = QuboAnnealer::new(7).solve(&g);
        let b = QuboAnnealer::new(7).solve(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn near_optimal_on_small_graphs() {
        let mut total_gap = 0.0;
        for seed in 0..8 {
            let g = random_graph(seed + 100, 10, 0.6);
            let exact = BranchAndBound::new().solve(&g);
            let sa = QuboAnnealer::new(seed).with_sweeps(500).solve(&g);
            assert!(sa.weight <= exact.weight + 1e-9);
            total_gap += (exact.weight - sa.weight).max(0.0);
        }
        // On average the annealer lands close to optimal.
        assert!(total_gap / 8.0 < 2.0, "mean gap {}", total_gap / 8.0);
    }

    #[test]
    #[should_panic(expected = "schedule must cool")]
    fn bad_schedule_panics() {
        QuboAnnealer::new(0).with_schedule(0.1, 1.0);
    }
}
