//! Connectivity analysis over the routing grid: connected components,
//! reachability, and corridor capacity — diagnostic primitives for
//! routability checks and rip-up planning.

use crate::{Grid, ObsMap, Point};
use std::collections::VecDeque;

/// Free-cell connected components of an obstacle map.
///
/// # Examples
///
/// ```
/// use pacor_grid::{Components, Grid, ObsMap, Point};
///
/// let mut grid = Grid::new(5, 5)?;
/// for y in 0..5 {
///     grid.set_obstacle(Point::new(2, y)); // full wall
/// }
/// let comps = Components::analyze(&ObsMap::new(&grid));
/// assert_eq!(comps.count(), 2);
/// assert!(!comps.connected(Point::new(0, 0), Point::new(4, 4)));
/// # Ok::<(), pacor_grid::GridError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Components {
    width: u32,
    /// Component id per cell; `u32::MAX` for blocked cells.
    label: Vec<u32>,
    /// Cell count per component.
    sizes: Vec<usize>,
}

impl Components {
    /// Labels the free-cell components of `obs` (4-connectivity).
    pub fn analyze(obs: &ObsMap) -> Self {
        let (w, h) = (obs.width(), obs.height());
        let idx = |p: Point| p.y as usize * w as usize + p.x as usize;
        let mut label = vec![u32::MAX; w as usize * h as usize];
        let mut sizes = Vec::new();
        for y in 0..h as i32 {
            for x in 0..w as i32 {
                let start = Point::new(x, y);
                if obs.is_blocked(start) || label[idx(start)] != u32::MAX {
                    continue;
                }
                let id = sizes.len() as u32;
                let mut size = 0usize;
                let mut queue = VecDeque::from([start]);
                label[idx(start)] = id;
                while let Some(p) = queue.pop_front() {
                    size += 1;
                    for n in p.neighbors4() {
                        if n.x >= 0
                            && n.y >= 0
                            && (n.x as u32) < w
                            && (n.y as u32) < h
                            && !obs.is_blocked(n)
                            && label[idx(n)] == u32::MAX
                        {
                            label[idx(n)] = id;
                            queue.push_back(n);
                        }
                    }
                }
                sizes.push(size);
            }
        }
        Self {
            width: w,
            label,
            sizes,
        }
    }

    /// Number of free components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Component id of a free cell, `None` for blocked / out-of-bounds.
    pub fn component(&self, p: Point) -> Option<u32> {
        if p.x < 0 || p.y < 0 || (p.x as u32) >= self.width {
            return None;
        }
        let i = p.y as usize * self.width as usize + p.x as usize;
        match self.label.get(i) {
            Some(&l) if l != u32::MAX => Some(l),
            _ => None,
        }
    }

    /// Size (free cells) of the component containing `p`.
    pub fn size_of(&self, p: Point) -> Option<usize> {
        self.component(p).map(|c| self.sizes[c as usize])
    }

    /// Returns `true` when two free cells share a component.
    pub fn connected(&self, a: Point, b: Point) -> bool {
        match (self.component(a), self.component(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }
}

/// The maximum number of vertex-disjoint free corridors between the
/// neighbourhoods of `a` and `b` — an upper bound on how many channels
/// can simultaneously pass between the two regions. Computed by
/// repeatedly carving vertex-disjoint shortest paths (a lower bound on
/// the true vertex cut, exact when paths don't interleave; good enough
/// for capacity diagnostics).
///
/// Endpoints themselves are exempt from blockage, mirroring router
/// semantics.
///
/// # Examples
///
/// ```
/// use pacor_grid::{corridor_capacity, Grid, ObsMap, Point};
///
/// let grid = Grid::new(7, 3)?;
/// let obs = ObsMap::new(&grid);
/// // A 3-row open grid carries 3 disjoint horizontal corridors.
/// let c = corridor_capacity(&obs, Point::new(0, 1), Point::new(6, 1), 8);
/// assert_eq!(c, 3);
/// # Ok::<(), pacor_grid::GridError>(())
/// ```
pub fn corridor_capacity(obs: &ObsMap, a: Point, b: Point, limit: usize) -> usize {
    let (w, h) = (obs.width() as i32, obs.height() as i32);
    let in_bounds = |p: Point| p.x >= 0 && p.y >= 0 && p.x < w && p.y < h;
    if !in_bounds(a) || !in_bounds(b) {
        // Out-of-bounds endpoints have no flat cell index; the point-keyed
        // reference handles them (they are blocked, so paths die there).
        return corridor_capacity_reference(obs, a, b, limit);
    }
    let idx = |p: Point| p.y as usize * w as usize + p.x as usize;
    let point_of = |i: u32| Point::new(i as i32 % w, i as i32 / w);
    let mut scratch = obs.clone();
    // BFS predecessor per cell (`u32::MAX` = unvisited), reset per wave.
    let mut prev = vec![u32::MAX; w as usize * h as usize];
    let mut queue = VecDeque::new();
    let mut count = 0usize;
    while count < limit {
        // BFS shortest path with endpoint exemption.
        prev.fill(u32::MAX);
        queue.clear();
        queue.push_back(a);
        prev[idx(a)] = idx(a) as u32;
        let mut found = false;
        while let Some(p) = queue.pop_front() {
            if p == b {
                found = true;
                break;
            }
            for n in p.neighbors4() {
                if !in_bounds(n) || prev[idx(n)] != u32::MAX {
                    continue;
                }
                if scratch.is_blocked(n) && n != b {
                    continue;
                }
                prev[idx(n)] = idx(p) as u32;
                queue.push_back(n);
            }
        }
        if !found {
            break;
        }
        // Carve the interior of the path out of the scratch map.
        let mut cur = b;
        while cur != a {
            let p = point_of(prev[idx(cur)]);
            if cur != b {
                scratch.block(cur);
            }
            cur = p;
        }
        count += 1;
    }
    count
}

/// Pre-rewrite [`corridor_capacity`]: `HashMap`-keyed BFS predecessors.
/// Kept as the reference for the equivalence test and as the fallback for
/// out-of-bounds endpoints, which have no flat cell index.
fn corridor_capacity_reference(obs: &ObsMap, a: Point, b: Point, limit: usize) -> usize {
    let mut scratch = obs.clone();
    let mut count = 0usize;
    while count < limit {
        // BFS shortest path with endpoint exemption.
        let mut prev: std::collections::HashMap<Point, Point> = std::collections::HashMap::new();
        let mut queue = VecDeque::from([a]);
        prev.insert(a, a);
        let mut found = false;
        while let Some(p) = queue.pop_front() {
            if p == b {
                found = true;
                break;
            }
            for n in p.neighbors4() {
                if prev.contains_key(&n) {
                    continue;
                }
                if scratch.is_blocked(n) && n != b {
                    continue;
                }
                prev.insert(n, p);
                queue.push_back(n);
            }
        }
        if !found {
            break;
        }
        // Carve the interior of the path out of the scratch map.
        let mut cur = b;
        while cur != a {
            let p = prev[&cur];
            if cur != b {
                scratch.block(cur);
            }
            cur = p;
        }
        count += 1;
    }
    count
}

/// Helper: the components of a plain grid (no transient blocks).
pub fn grid_components(grid: &Grid) -> Components {
    Components::analyze(&ObsMap::new(grid))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_grid_is_one_component() {
        let g = Grid::new(6, 6).unwrap();
        let c = grid_components(&g);
        assert_eq!(c.count(), 1);
        assert_eq!(c.size_of(Point::new(0, 0)), Some(36));
        assert!(c.connected(Point::new(0, 0), Point::new(5, 5)));
    }

    #[test]
    fn wall_splits_components() {
        let mut g = Grid::new(6, 6).unwrap();
        for y in 0..6 {
            g.set_obstacle(Point::new(3, y));
        }
        let c = grid_components(&g);
        assert_eq!(c.count(), 2);
        assert!(!c.connected(Point::new(0, 0), Point::new(5, 0)));
        assert_eq!(c.size_of(Point::new(0, 0)), Some(18));
        assert_eq!(c.component(Point::new(3, 3)), None);
    }

    #[test]
    fn pocket_component() {
        let mut g = Grid::new(6, 6).unwrap();
        for p in [
            Point::new(1, 2),
            Point::new(3, 2),
            Point::new(2, 1),
            Point::new(2, 3),
        ] {
            g.set_obstacle(p);
        }
        let c = grid_components(&g);
        assert_eq!(c.count(), 2);
        assert_eq!(c.size_of(Point::new(2, 2)), Some(1));
    }

    #[test]
    fn out_of_bounds_has_no_component() {
        let g = Grid::new(4, 4).unwrap();
        let c = grid_components(&g);
        assert_eq!(c.component(Point::new(-1, 0)), None);
        assert_eq!(c.component(Point::new(9, 9)), None);
    }

    #[test]
    fn corridor_capacity_open_rows() {
        // Disjoint paths between two *points* are capped by the endpoint
        // degree: a boundary cell has three neighbors.
        let g = Grid::new(9, 5).unwrap();
        let obs = ObsMap::new(&g);
        let c = corridor_capacity(&obs, Point::new(0, 2), Point::new(8, 2), 10);
        assert_eq!(c, 3);
    }

    #[test]
    fn corridor_capacity_through_gap() {
        let mut g = Grid::new(9, 5).unwrap();
        for y in 0..5 {
            if y != 2 {
                g.set_obstacle(Point::new(4, y));
            }
        }
        let obs = ObsMap::new(&g);
        let c = corridor_capacity(&obs, Point::new(0, 2), Point::new(8, 2), 10);
        assert_eq!(c, 1, "single-cell gap carries one channel");
    }

    #[test]
    fn corridor_capacity_zero_when_walled() {
        let mut g = Grid::new(9, 5).unwrap();
        for y in 0..5 {
            g.set_obstacle(Point::new(4, y));
        }
        let obs = ObsMap::new(&g);
        assert_eq!(
            corridor_capacity(&obs, Point::new(0, 2), Point::new(8, 2), 10),
            0
        );
    }

    #[test]
    fn corridor_capacity_respects_limit() {
        let g = Grid::new(9, 9).unwrap();
        let obs = ObsMap::new(&g);
        assert_eq!(
            corridor_capacity(&obs, Point::new(0, 4), Point::new(8, 4), 2),
            2
        );
    }

    #[test]
    fn corridor_capacity_oob_endpoints_use_reference_semantics() {
        let obs = ObsMap::new(&Grid::new(5, 5).unwrap());
        // Endpoints are exempt from blockage, and out-of-bounds cells are
        // merely "blocked": a start hugging the boundary still reaches in.
        assert_eq!(
            corridor_capacity(&obs, Point::new(-1, 2), Point::new(4, 2), 4),
            1
        );
        // An out-of-bounds target with no in-bounds neighbour is never
        // reached.
        assert_eq!(
            corridor_capacity(&obs, Point::new(0, 2), Point::new(7, 2), 4),
            0
        );
    }

    /// The flat-`Vec` BFS must carve the same shortest paths as the
    /// `HashMap`-keyed reference: capacities feed back through the carved
    /// scratch map, so equal counts across random instances pin the whole
    /// path sequence, not just the first wave.
    #[test]
    fn corridor_capacity_matches_reference() {
        let mut state = 0x0c0441d02u64;
        let mut next = |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for trial in 0..200 {
            let w = 4 + next(12) as u32;
            let h = 4 + next(12) as u32;
            let mut g = Grid::new(w, h).unwrap();
            let n_obs = next((w * h / 3 + 1) as u64);
            for _ in 0..n_obs {
                g.set_obstacle(Point::new(
                    next(w as u64) as i32,
                    next(h as u64) as i32,
                ));
            }
            let obs = ObsMap::new(&g);
            let a = Point::new(next(w as u64) as i32, next(h as u64) as i32);
            let b = Point::new(next(w as u64) as i32, next(h as u64) as i32);
            let limit = next(6) as usize;
            assert_eq!(
                corridor_capacity(&obs, a, b, limit),
                corridor_capacity_reference(&obs, a, b, limit),
                "trial {trial}: {w}x{h} a={a} b={b} limit={limit}"
            );
        }
    }
}
