//! End-to-end integration tests: the full PACOR flow on synthesized
//! benchmark designs, checked for completion, design-rule cleanliness,
//! and the length-matching guarantee.

use pacor_repro::grid::Point;
use pacor_repro::pacor::{BenchDesign, FlowConfig, FlowVariant, PacorFlow, Problem};
use pacor_repro::valves::{Valve, ValveId};

#[test]
fn s1_all_variants_complete() {
    let problem = BenchDesign::S1.synthesize(42);
    for variant in FlowVariant::ALL {
        let report = PacorFlow::new(FlowConfig::for_variant(variant))
            .run(&problem)
            .expect("valid problem");
        assert_eq!(
            report.completion_rate(),
            1.0,
            "{} failed completion on S1",
            variant.label()
        );
    }
}

#[test]
fn s2_and_s3_complete_with_matches() {
    for design in [BenchDesign::S2, BenchDesign::S3] {
        let problem = design.synthesize(42);
        let report = PacorFlow::new(FlowConfig::default())
            .run(&problem)
            .expect("valid problem");
        assert_eq!(report.completion_rate(), 1.0, "{:?}", design);
        assert!(
            report.matched_clusters >= problem.lm_clusters.len() / 2,
            "{:?}: only {}/{} matched",
            design,
            report.matched_clusters,
            problem.lm_clusters.len()
        );
    }
}

#[test]
fn matched_clusters_respect_delta() {
    let problem = BenchDesign::S3.synthesize(7);
    let report = PacorFlow::new(FlowConfig::default())
        .run(&problem)
        .expect("valid problem");
    for c in &report.clusters {
        if c.matched {
            let m = c.mismatch.expect("matched clusters have a mismatch value");
            assert!(m <= problem.delta, "matched cluster with mismatch {m}");
        }
    }
}

#[test]
fn matched_length_bounded_by_total() {
    for seed in [1, 2, 3] {
        let problem = BenchDesign::S2.synthesize(seed);
        let report = PacorFlow::new(FlowConfig::default())
            .run(&problem)
            .expect("valid problem");
        assert!(report.matched_length <= report.total_length);
        assert!(report.matched_clusters <= report.clusters_multi);
    }
}

#[test]
fn report_cluster_details_are_consistent() {
    let problem = BenchDesign::S4.synthesize(42);
    let report = PacorFlow::new(FlowConfig::default())
        .run(&problem)
        .expect("valid problem");
    let sum: u64 = report.clusters.iter().map(|c| c.total_length).sum();
    assert_eq!(sum, report.total_length);
    let valves: usize = report
        .clusters
        .iter()
        .filter(|c| c.complete)
        .map(|c| c.size)
        .sum();
    assert_eq!(valves, report.valves_routed);
    let total_valves: usize = report.clusters.iter().map(|c| c.size).sum();
    assert_eq!(total_valves, report.valves_total);
}

#[test]
fn seeds_vary_but_all_complete_on_s1() {
    for seed in 0..8 {
        let problem = BenchDesign::S1.synthesize(seed);
        let report = PacorFlow::new(FlowConfig::default())
            .run(&problem)
            .expect("valid problem");
        assert_eq!(report.completion_rate(), 1.0, "seed {seed}");
    }
}

#[test]
fn hand_built_problem_with_obstacle_field() {
    // A dense diagonal obstacle field; the flow must still connect both
    // pairs with matched lengths.
    let mut builder = Problem::builder("obstacle-field", 24, 24).delta(1);
    for k in 0..20 {
        builder = builder.obstacle(Point::new(k + 2, (k * 7) % 20 + 2));
    }
    let problem = builder
        .valve(Valve::new(ValveId(0), Point::new(4, 12), "01".parse().unwrap()))
        .valve(Valve::new(ValveId(1), Point::new(18, 12), "01".parse().unwrap()))
        .valve(Valve::new(ValveId(2), Point::new(12, 4), "10".parse().unwrap()))
        .valve(Valve::new(ValveId(3), Point::new(12, 18), "10".parse().unwrap()))
        .lm_cluster(vec![ValveId(0), ValveId(1)])
        .lm_cluster(vec![ValveId(2), ValveId(3)])
        .pins((1..23).step_by(2).map(|i| Point::new(i, 0)))
        .build()
        .expect("valid problem");
    let report = PacorFlow::new(FlowConfig::default())
        .run(&problem)
        .expect("flow runs");
    assert_eq!(report.completion_rate(), 1.0);
    assert_eq!(report.clusters_multi, 2);
}

#[test]
fn zero_delta_forces_exact_matching() {
    // δ = 0: lengths must be exactly equal; only even-distance pairs can
    // match perfectly (odd ones carry a parity-forced mismatch of 1).
    let problem = Problem::builder("exact", 20, 20)
        .delta(0)
        .valve(Valve::new(ValveId(0), Point::new(4, 10), "01".parse().unwrap()))
        .valve(Valve::new(ValveId(1), Point::new(12, 10), "01".parse().unwrap()))
        .lm_cluster(vec![ValveId(0), ValveId(1)])
        .pins((1..19).step_by(2).map(|i| Point::new(0, i)))
        .build()
        .expect("valid");
    let report = PacorFlow::new(FlowConfig::default()).run(&problem).unwrap();
    assert_eq!(report.completion_rate(), 1.0);
    // Distance 8 (even): the midpoint split is exact.
    assert_eq!(report.matched_clusters, 1);
    assert_eq!(report.clusters[0].mismatch, Some(0));
}

#[test]
fn incompatible_valves_get_separate_pins() {
    // Three mutually incompatible valves: three clusters, three pins.
    let problem = Problem::builder("pins", 16, 16)
        .valve(Valve::new(ValveId(0), Point::new(4, 4), "001".parse().unwrap()))
        .valve(Valve::new(ValveId(1), Point::new(8, 8), "010".parse().unwrap()))
        .valve(Valve::new(ValveId(2), Point::new(12, 4), "100".parse().unwrap()))
        .pins((1..15).step_by(2).map(|i| Point::new(i, 0)))
        .build()
        .expect("valid");
    let report = PacorFlow::new(FlowConfig::default()).run(&problem).unwrap();
    assert_eq!(report.completion_rate(), 1.0);
    assert_eq!(report.clusters.len(), 3);
}
