/root/repo/target/debug/deps/properties-01f68d5549ba8ceb.d: crates/flow/tests/properties.rs

/root/repo/target/debug/deps/properties-01f68d5549ba8ceb: crates/flow/tests/properties.rs

crates/flow/tests/properties.rs:
