//! Serde round-trip tests for every serializable public type — problems
//! and reports must survive the JSON interchange the CLI uses.

use pacor_repro::grid::{DesignRules, GridPath, Point, Rect};
use pacor_repro::pacor::{
    BenchDesign, FlowConfig, FlowMetrics, FlowVariant, PacorFlow, Problem, RouteReport,
};
use pacor_repro::valves::{ActivationSequence, Cluster, ClusterId, Valve, ValveId};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn point_and_rect() {
    let p = Point::new(-3, 17);
    assert_eq!(roundtrip(&p), p);
    let r = Rect::from_corners(Point::new(0, 0), Point::new(5, 9));
    assert_eq!(roundtrip(&r), r);
}

#[test]
fn grid_path() {
    let path = GridPath::new(vec![Point::new(0, 0), Point::new(1, 0), Point::new(1, 1)]).unwrap();
    let back = roundtrip(&path);
    assert_eq!(back, path);
    assert_eq!(back.len(), 2);
}

#[test]
fn design_rules() {
    let rules = DesignRules::new(80.0, 120.0).unwrap();
    let back = roundtrip(&rules);
    assert_eq!(back.pitch_um(), rules.pitch_um());
}

#[test]
fn activation_sequence_and_valve() {
    let seq: ActivationSequence = "01X10".parse().unwrap();
    assert_eq!(roundtrip(&seq), seq);
    let valve = Valve::new(ValveId(3), Point::new(7, 7), seq);
    assert_eq!(roundtrip(&valve), valve);
}

#[test]
fn cluster() {
    let c = Cluster::new(ClusterId(2), vec![ValveId(0), ValveId(5)], true);
    let back = roundtrip(&c);
    assert_eq!(back, c);
    assert!(back.is_length_matched());
}

#[test]
fn whole_problem() {
    let problem = BenchDesign::S2.synthesize(9);
    let back: Problem = roundtrip(&problem);
    assert_eq!(back.valve_count(), problem.valve_count());
    assert_eq!(back.lm_clusters, problem.lm_clusters);
    assert_eq!(back.pins, problem.pins);
    assert_eq!(back.obstacles, problem.obstacles);
    back.validate().expect("round-tripped problem stays valid");
}

#[test]
fn whole_report() {
    let problem = BenchDesign::S1.synthesize(42);
    let report = PacorFlow::new(FlowConfig::default()).run(&problem).unwrap();
    assert!(
        !report.metrics.counters.is_empty(),
        "a real run must carry counters through the round-trip"
    );
    let back: RouteReport = roundtrip(&report);
    assert_eq!(back, report);
}

#[test]
fn flow_metrics_roundtrip() {
    let metrics = FlowMetrics {
        clustering: std::time::Duration::from_micros(120),
        lm_routing: std::time::Duration::from_millis(3),
        threads: 4,
        lm_candidate_tasks: 2,
        lm_scoring_tasks: 1,
        counters: vec![
            ("astar.expansions".to_string(), 12345),
            ("negotiate.rounds".to_string(), 2),
        ],
        ..FlowMetrics::default()
    };
    let back = roundtrip(&metrics);
    assert_eq!(back, metrics);
    assert_eq!(back.counter("astar.expansions"), 12345);
}

#[test]
fn flow_config_roundtrip_preserves_variant() {
    for v in FlowVariant::ALL {
        let cfg = FlowConfig::for_variant(v);
        let back: FlowConfig = roundtrip(&cfg);
        assert_eq!(back, cfg);
    }
}

#[test]
fn routed_problem_from_roundtripped_input_matches() {
    // Routing the round-tripped problem gives the identical report —
    // serialization must not perturb anything the flow consumes.
    let problem = BenchDesign::S1.synthesize(3);
    let back: Problem = roundtrip(&problem);
    let a = PacorFlow::new(FlowConfig::default()).run(&problem).unwrap();
    let b = PacorFlow::new(FlowConfig::default()).run(&back).unwrap();
    assert_eq!(a.total_length, b.total_length);
    assert_eq!(a.matched_clusters, b.matched_clusters);
    assert_eq!(a.clusters, b.clusters);
}
