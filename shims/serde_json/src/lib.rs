//! Workspace-local stand-in for `serde_json`.
//!
//! Converts between JSON text and the vendored `serde` stand-in's
//! [`Value`] model. Floats are written with Rust's shortest
//! round-trippable `{}` formatting, so `to_string` → `from_str` is
//! lossless for every finite `f64`.

#![forbid(unsafe_code)]

use serde::{de::DeserializeOwned, Serialize};
use std::fmt;

pub use serde::Value;

/// A JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parses a value of type `T` from JSON text.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(
    value: &Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => {
            if !v.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            out.push_str(&v.to_string());
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<i32>("-42").unwrap(), -42);
        assert_eq!(from_str::<f64>("0.1").unwrap(), 0.1);
        let x: f64 = from_str(&to_string(&0.30000000000000004f64).unwrap()).unwrap();
        assert_eq!(x, 0.30000000000000004);
    }

    #[test]
    fn collection_roundtrips() {
        let v = vec![(1usize, -2i64), (3, 4)];
        let back: Vec<(usize, i64)> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{1}f 💧".to_owned();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
        let surrogate: String = from_str(r#""💧""#).unwrap();
        assert_eq!(surrogate, "💧");
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u32, 2], vec![], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true false").is_err());
        assert!(from_str::<Vec<u8>>("[1, 2").is_err());
    }

    #[test]
    fn duration_object_roundtrip() {
        use std::time::Duration;
        let d = Duration::new(3, 500);
        let json = to_string(&d).unwrap();
        assert_eq!(json, r#"{"secs":3,"nanos":500}"#);
        let back: Duration = from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
