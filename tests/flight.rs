//! Flight-recorder determinism (docs/OBSERVABILITY.md): the post-mortem
//! report and the ASCII heatmap are **byte-identical** at any worker
//! thread count and under either negotiation mode, because every event
//! is emitted at a session-thread commit point. They are additionally
//! identical across the two rip-up policies whenever the policies route
//! the same result (they coincide while every negotiation session
//! converges without a failed round — see DESIGN.md).

use pacor_repro::pacor::obs;
use pacor_repro::pacor::route::{NegotiationMode, RipUpPolicy};
use pacor_repro::pacor::{synthesize_params, DesignParams, FlowConfig, PacorFlow};

/// A chip with more clusters than control pins: negotiation converges
/// in its first round (sparse, pairs only), but escape routing *must*
/// leave nets unrouted — the post-mortem has real failures to explain.
const STARVED: DesignParams = DesignParams {
    name: "T1-starved",
    width: 20,
    height: 20,
    valves: 8,
    control_pins: 2,
    obstacles: 0,
    multi_clusters: 3,
    pairs_only: true,
};

/// The contended chip of `tests/determinism.rs`: negotiation rips up,
/// so the two rip-up policies legitimately diverge — each must still be
/// thread-count- and mode-invariant on its own.
const DENSE: DesignParams = DesignParams {
    name: "D1-dense24",
    width: 24,
    height: 24,
    valves: 18,
    control_pins: 40,
    obstacles: 50,
    multi_clusters: 8,
    pairs_only: false,
};

fn run_recorded(
    params: DesignParams,
    threads: usize,
    mode: NegotiationMode,
    policy: RipUpPolicy,
) -> (String, String) {
    let problem = synthesize_params(params, 42);
    let config = FlowConfig::default()
        .with_threads(threads)
        .with_negotiation_mode(mode)
        .with_ripup_policy(policy);
    obs::flight_install(config.recorder_config());
    PacorFlow::new(config).run(&problem).expect("chip runs");
    let log = obs::flight_take().expect("recorder installed");
    (obs::post_mortem_json(&log), obs::render_heatmap(&log))
}

#[test]
fn report_bytes_invariant_across_threads_modes_and_policies() {
    let (base_report, base_heat) = run_recorded(
        STARVED,
        1,
        NegotiationMode::Serial,
        RipUpPolicy::Incremental,
    );
    // The report must be non-trivial: a failing chip names its unrouted
    // nets, and the run produced events and snapshots.
    assert!(
        !base_report.contains("\"unrouted\": []"),
        "starved chip must leave nets unrouted:\n{base_report}"
    );
    assert!(base_report.contains("\"schema\": \"pacor-postmortem-v1\""));
    assert!(base_heat.contains("congestion heatmap"));
    for threads in [1usize, 2, 4, 8] {
        for mode in [NegotiationMode::Serial, NegotiationMode::Parallel] {
            for policy in [RipUpPolicy::Full, RipUpPolicy::Incremental] {
                let (report, heat) = run_recorded(STARVED, threads, mode, policy);
                assert_eq!(
                    report, base_report,
                    "report drifted at threads={threads} {mode:?} {policy:?}"
                );
                assert_eq!(
                    heat, base_heat,
                    "heatmap drifted at threads={threads} {mode:?} {policy:?}"
                );
            }
        }
    }
}

#[test]
fn report_bytes_invariant_per_policy_on_contended_chip() {
    for policy in [RipUpPolicy::Full, RipUpPolicy::Incremental] {
        let (base_report, base_heat) =
            run_recorded(DENSE, 1, NegotiationMode::Serial, policy);
        assert!(
            base_report.contains("\"ripups\""),
            "dense chip report must carry negotiation data"
        );
        for threads in [2usize, 4] {
            for mode in [NegotiationMode::Serial, NegotiationMode::Parallel] {
                let (report, heat) = run_recorded(DENSE, threads, mode, policy);
                assert_eq!(
                    report, base_report,
                    "{policy:?} report drifted at threads={threads} {mode:?}"
                );
                assert_eq!(
                    heat, base_heat,
                    "{policy:?} heatmap drifted at threads={threads} {mode:?}"
                );
            }
        }
    }
}

#[test]
fn no_recorder_means_no_log() {
    let problem = synthesize_params(STARVED, 42);
    PacorFlow::new(FlowConfig::default())
        .run(&problem)
        .expect("chip runs");
    assert!(
        obs::flight_take().is_none(),
        "a run without flight_install must leave no recorder behind"
    );
}

#[test]
fn tiny_capacity_drops_events_but_keeps_a_valid_report() {
    let problem = synthesize_params(DENSE, 42);
    let config = FlowConfig::default()
        .with_recorder_capacity(8)
        .with_recorder_cadence(1);
    obs::flight_install(config.recorder_config());
    PacorFlow::new(config).run(&problem).expect("chip runs");
    let log = obs::flight_take().expect("recorder installed");
    assert!(
        log.dropped_events() > 0,
        "a dense run must overflow an 8-event ring"
    );
    assert_eq!(log.events().len(), 8, "ring keeps exactly its capacity");
    let report = obs::post_mortem_json(&log);
    assert!(report.contains("\"dropped_events\": "));
    // Still well-formed JSON even with most of the run dropped.
    serde_json::from_str::<serde::Value>(&report).expect("report parses");
}

#[test]
fn report_is_a_pure_function_of_the_log() {
    let (a, ha) = run_recorded(
        STARVED,
        1,
        NegotiationMode::Serial,
        RipUpPolicy::Incremental,
    );
    let (b, hb) = run_recorded(
        STARVED,
        1,
        NegotiationMode::Serial,
        RipUpPolicy::Incremental,
    );
    assert_eq!(a, b, "same run, same bytes");
    assert_eq!(ha, hb);
}
