//! Routed clusters — the shared state the flow stages hand around.

use pacor_dme::SteinerTree;
use pacor_flow::{EscapeSource, SourceKind};
use pacor_grid::{GridLen, GridPath, Point};
use pacor_valves::{Cluster, ValveId};

/// How a cluster's internal net was realized.
#[derive(Debug, Clone)]
pub enum RoutedKind {
    /// Length-matching cluster of ≥ 3 valves: a DME Steiner tree whose
    /// edges were wired by the negotiation router. `edge_paths[i]` wires
    /// `tree.edge_indices()[i]`, oriented child → parent.
    LmTree {
        /// The selected candidate Steiner tree.
        tree: SteinerTree,
        /// Wired tree edges, aligned with [`SteinerTree::edge_indices`].
        edge_paths: Vec<GridPath>,
    },
    /// Length-matching pair: the direct valve-to-valve connection, split
    /// at its midpoint where the escape channel T-joins (Section 5 (2)).
    LmPair {
        /// Junction cell (the midpoint of the original path).
        junction: Point,
        /// First valve's half, oriented valve → junction.
        half_a: GridPath,
        /// Second valve's half, oriented valve → junction.
        half_b: GridPath,
    },
    /// Unconstrained multi-valve cluster: MST edges wired by A\*.
    Mst {
        /// Wired MST connections (point-to-point or point-to-path).
        paths: Vec<GridPath>,
    },
    /// Single valve; no internal net.
    Singleton,
}

/// A cluster with its internal net (and, once escape routing has run, its
/// connection to a control pin).
#[derive(Debug, Clone)]
pub struct RoutedCluster {
    /// The valve cluster.
    pub cluster: Cluster,
    /// Member valve positions, aligned with `cluster.members()`.
    pub member_positions: Vec<Point>,
    /// Internal net realization.
    pub kind: RoutedKind,
    /// Escape path (source cell → pin, inclusive) and the pin, when escape
    /// routing succeeded.
    pub escape: Option<(GridPath, Point)>,
}

impl RoutedCluster {
    /// All grid cells occupied by the internal net (escape excluded).
    pub fn net_cells(&self) -> Vec<Point> {
        let mut cells = Vec::new();
        match &self.kind {
            RoutedKind::LmTree { edge_paths, .. } => {
                for p in edge_paths {
                    cells.extend(p.cells().iter().copied());
                }
            }
            RoutedKind::LmPair { half_a, half_b, .. } => {
                cells.extend(half_a.cells().iter().copied());
                cells.extend(half_b.cells().iter().copied());
            }
            RoutedKind::Mst { paths } => {
                for p in paths {
                    cells.extend(p.cells().iter().copied());
                }
            }
            RoutedKind::Singleton => cells.extend(self.member_positions.iter().copied()),
        }
        cells.sort();
        cells.dedup();
        cells
    }

    /// The escape-routing source for this cluster (Section 5 cases).
    pub fn escape_source(&self) -> EscapeSource {
        match &self.kind {
            RoutedKind::LmTree { tree, .. } => EscapeSource::at(SourceKind::TreeRoot, tree.root()),
            RoutedKind::LmPair { half_a, half_b, .. } => {
                // The midpoint is preferred, but a tightly folded pair can
                // enclose its own midpoint with its own cells; offer the
                // cells within ±2 of the midpoint as alternative taps (the
                // detour stage re-balances the ±2k of induced mismatch).
                // Valve endpoints are never taps.
                let mut cells = Vec::new();
                let mut tap_costs = Vec::new();
                for k in 0..=2usize {
                    for half in [half_a, half_b] {
                        let c = half.cells();
                        // c runs valve → junction; offset k back from the
                        // junction end.
                        if c.len() >= k + 2 {
                            let cell = c[c.len() - 1 - k];
                            if !cells.contains(&cell) {
                                cells.push(cell);
                                // Tier k: the flow may tap k cells off the
                                // midpoint only when every closer tap is
                                // walled in (each step costs 2 of induced
                                // mismatch the detour stage must repair).
                                tap_costs.push(k as i64);
                            }
                        }
                    }
                }
                EscapeSource {
                    kind: SourceKind::PathMidpoint,
                    cells,
                    tap_costs,
                }
            }
            RoutedKind::Mst { .. } => EscapeSource {
                kind: SourceKind::AnyPathPoint,
                cells: self.net_cells(),
                tap_costs: Vec::new(),
            },
            RoutedKind::Singleton => {
                EscapeSource::at(SourceKind::SingleValve, self.member_positions[0])
            }
        }
    }

    /// Escape channel length (0 when escape has not run / failed).
    pub fn escape_length(&self) -> GridLen {
        self.escape.as_ref().map(|(p, _)| p.len()).unwrap_or(0)
    }

    /// Routed channel length from each member valve to the control pin,
    /// aligned with `cluster.members()`. `None` for kinds where the
    /// notion is per-cluster rather than per-valve (MST / singleton
    /// clusters have no length-matching constraint to check).
    pub fn member_lengths(&self) -> Option<Vec<GridLen>> {
        let esc = self.escape_length();
        match &self.kind {
            RoutedKind::LmTree { tree, edge_paths } => {
                // Edges are (child, parent): the child node keys its edge.
                let mut edge_of_child = vec![usize::MAX; tree.nodes().len()];
                for (i, (child, _)) in tree.edge_indices().into_iter().enumerate() {
                    edge_of_child[child] = i;
                }
                let mut out = Vec::with_capacity(tree.sink_count());
                for sink in 0..tree.sink_count() {
                    let nodes = tree.full_path_nodes(sink);
                    let mut len = esc;
                    for w in nodes.windows(2) {
                        len += edge_paths[edge_of_child[w[0]]].len();
                    }
                    out.push(len);
                }
                Some(out)
            }
            RoutedKind::LmPair { half_a, half_b, .. } => {
                Some(vec![half_a.len() + esc, half_b.len() + esc])
            }
            _ => None,
        }
    }

    /// Length mismatch `max − min` over member channel lengths, when the
    /// cluster carries the length-matching constraint.
    pub fn mismatch(&self) -> Option<GridLen> {
        let lens = self.member_lengths()?;
        let max = *lens.iter().max()?;
        let min = *lens.iter().min()?;
        Some(max - min)
    }

    /// Returns `true` when the cluster is length-matched within `delta`.
    /// Unconstrained clusters are vacuously unmatched (they don't count
    /// toward the paper's "#Matched Clusters").
    pub fn is_matched(&self, delta: GridLen) -> bool {
        matches!(self.mismatch(), Some(m) if m <= delta)
    }

    /// Total channel length: internal net plus escape, in grid units.
    pub fn total_length(&self) -> GridLen {
        let internal: GridLen = match &self.kind {
            RoutedKind::LmTree { edge_paths, .. } => edge_paths.iter().map(|p| p.len()).sum(),
            RoutedKind::LmPair { half_a, half_b, .. } => half_a.len() + half_b.len(),
            RoutedKind::Mst { paths } => paths.iter().map(|p| p.len()).sum(),
            RoutedKind::Singleton => 0,
        };
        internal + self.escape_length()
    }

    /// Returns `true` when every member valve is connected to a pin.
    pub fn is_complete(&self) -> bool {
        self.escape.is_some()
    }

    /// Member valve ids.
    pub fn members(&self) -> &[ValveId] {
        self.cluster.members()
    }

    /// Records a committed escape, re-splitting a pair's halves when the
    /// escape tapped the net off-midpoint (the junction moves to the tap
    /// cell; the detour stage re-balances the halves afterwards).
    ///
    /// # Panics
    ///
    /// Panics when a pair escape starts on a cell that is not on the
    /// pair's path — the escape solver guarantees it starts on a source
    /// cell.
    pub fn commit_escape(&mut self, path: GridPath, pin: Point) {
        if let RoutedKind::LmPair {
            junction,
            half_a,
            half_b,
        } = &mut self.kind
        {
            let tap = path.source();
            if tap != *junction {
                // Rebuild the full valve-to-valve path and re-split at the
                // tap. Halves run valve → junction, so the full path is
                // half_a forward plus half_b reversed.
                let mut full = half_a.cells().to_vec();
                let mut rev = half_b.cells().to_vec();
                rev.reverse();
                full.extend_from_slice(&rev[1..]);
                let at = full
                    .iter()
                    .position(|&c| c == tap)
                    .expect("pair escape starts on the pair's path");
                let new_a = GridPath::new(full[..=at].to_vec()).expect("prefix connected");
                let mut tail = full[at..].to_vec();
                tail.reverse();
                let new_b = GridPath::new(tail).expect("suffix connected");
                *junction = tap;
                *half_a = new_a;
                *half_b = new_b;
            }
        }
        self.escape = Some((path, pin));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacor_valves::ClusterId;

    fn pair_cluster() -> RoutedCluster {
        // Valves at (0,0) and (4,0); straight path; junction (2,0).
        let full: Vec<Point> = (0..=4).map(|x| Point::new(x, 0)).collect();
        let half_a = GridPath::new(full[..=2].to_vec()).unwrap();
        let mut bcells = full[2..].to_vec();
        bcells.reverse();
        let half_b = GridPath::new(bcells).unwrap();
        RoutedCluster {
            cluster: Cluster::new(ClusterId(0), vec![ValveId(0), ValveId(1)], true),
            member_positions: vec![Point::new(0, 0), Point::new(4, 0)],
            kind: RoutedKind::LmPair {
                junction: Point::new(2, 0),
                half_a,
                half_b,
            },
            escape: Some((
                GridPath::new(vec![Point::new(2, 0), Point::new(2, 1), Point::new(2, 2)]).unwrap(),
                Point::new(2, 2),
            )),
        }
    }

    #[test]
    fn pair_lengths_and_match() {
        let rc = pair_cluster();
        assert_eq!(rc.member_lengths(), Some(vec![4, 4]));
        assert_eq!(rc.mismatch(), Some(0));
        assert!(rc.is_matched(0));
        assert_eq!(rc.total_length(), 4 + 2);
        assert!(rc.is_complete());
    }

    #[test]
    fn pair_escape_source_prefers_junction_with_fallback_taps() {
        let rc = pair_cluster();
        let src = rc.escape_source();
        assert_eq!(src.kind, SourceKind::PathMidpoint);
        // The junction leads; nearby path cells follow as alternate taps;
        // valve endpoints are excluded.
        assert_eq!(src.cells[0], Point::new(2, 0));
        assert!(src.cells.contains(&Point::new(1, 0)));
        assert!(src.cells.contains(&Point::new(3, 0)));
        assert!(!src.cells.contains(&Point::new(0, 0)));
        assert!(!src.cells.contains(&Point::new(4, 0)));
    }

    #[test]
    fn commit_escape_retaps_off_midpoint() {
        let mut rc = pair_cluster();
        rc.escape = None;
        // Escape taps one cell east of the junction.
        let esc = GridPath::new(vec![Point::new(3, 0), Point::new(3, 1)]).unwrap();
        rc.commit_escape(esc, Point::new(3, 1));
        match &rc.kind {
            RoutedKind::LmPair {
                junction,
                half_a,
                half_b,
            } => {
                assert_eq!(*junction, Point::new(3, 0));
                assert_eq!(half_a.len(), 3);
                assert_eq!(half_b.len(), 1);
                assert_eq!(half_a.target(), *junction);
                assert_eq!(half_b.target(), *junction);
            }
            _ => unreachable!(),
        }
        // Lengths now reflect the new split (escape len 1 added to both).
        assert_eq!(rc.member_lengths(), Some(vec![4, 2]));
    }

    #[test]
    fn singleton_accounting() {
        let rc = RoutedCluster {
            cluster: Cluster::new(ClusterId(1), vec![ValveId(7)], false),
            member_positions: vec![Point::new(3, 3)],
            kind: RoutedKind::Singleton,
            escape: None,
        };
        assert_eq!(rc.total_length(), 0);
        assert_eq!(rc.mismatch(), None);
        assert!(!rc.is_matched(10));
        assert!(!rc.is_complete());
        assert_eq!(rc.net_cells(), vec![Point::new(3, 3)]);
        assert_eq!(rc.escape_source().kind, SourceKind::SingleValve);
    }

    #[test]
    fn mst_source_covers_all_cells() {
        let rc = RoutedCluster {
            cluster: Cluster::new(ClusterId(2), vec![ValveId(0), ValveId(1)], false),
            member_positions: vec![Point::new(0, 0), Point::new(2, 0)],
            kind: RoutedKind::Mst {
                paths: vec![GridPath::new(vec![
                    Point::new(0, 0),
                    Point::new(1, 0),
                    Point::new(2, 0),
                ])
                .unwrap()],
            },
            escape: None,
        };
        let src = rc.escape_source();
        assert_eq!(src.kind, SourceKind::AnyPathPoint);
        assert_eq!(src.cells.len(), 3);
        assert_eq!(rc.total_length(), 2);
    }

    #[test]
    fn net_cells_deduplicates() {
        let rc = pair_cluster();
        let cells = rc.net_cells();
        // Junction is shared by both halves but appears once.
        assert_eq!(cells.len(), 5);
    }
}
