//! Length-matching cluster routing (Section 4): candidate construction,
//! MWCP selection, negotiation-based wiring.

use crate::{FlowConfig, FlowVariant, RoutedCluster, RoutedKind};
use pacor_clique::{select_one_per_group, SelectionInstance};
use pacor_dme::{candidates, candidates_with_alternates, CandidateConfig, SteinerTree};
use pacor_grid::{olcost, GridPath, ObsMap, Point};
use pacor_route::{effective_threads, parallel_map, NegotiationRouter, RouteRequest};
use pacor_valves::Cluster;

/// Result of the length-matching routing stage.
#[derive(Debug)]
pub struct LmOutcome {
    /// Clusters routed with their internal nets wired (and blocked in the
    /// obstacle map).
    pub routed: Vec<RoutedCluster>,
    /// Clusters that could not be routed under the constraint; the caller
    /// re-routes them as ordinary clusters (paper Section 7).
    pub failed: Vec<(Cluster, Vec<Point>)>,
    /// Work items fanned out to the candidate-generation threads
    /// (one per ≥3-valve cluster).
    pub candidate_tasks: usize,
    /// Work items fanned out to the MWCP pair-scoring threads
    /// (one per cluster pair).
    pub scoring_tasks: usize,
}

/// Routes all length-matching clusters.
///
/// `clusters` carries each cluster with its member positions. Two-valve
/// clusters are wired directly (no DME); larger clusters go through
/// candidate construction and — unless the variant is
/// [`FlowVariant::WithoutSelection`] — MWCP-based selection. All edges
/// are then wired together by the negotiation router; clusters owning
/// unroutable edges are dropped to the failed list and the remainder is
/// retried.
pub fn route_lm_clusters(
    obs: &mut ObsMap,
    clusters: Vec<(Cluster, Vec<Point>)>,
    config: &FlowConfig,
) -> LmOutcome {
    // Phase 1: candidates for every ≥3-valve cluster. Generation is
    // independent per cluster (the obstacle map is only read), so it
    // fans out over the worker threads; merging by cluster index keeps
    // the result identical to the sequential loop.
    let big: Vec<(usize, &[Point])> = clusters
        .iter()
        .enumerate()
        .filter(|(_, (cluster, _))| cluster.len() >= 3)
        .map(|(i, (_, positions))| (i, positions.as_slice()))
        .collect();
    let candidate_tasks = big.len();
    let threads = effective_threads(config.thread_count);
    let obs_read: &ObsMap = obs;
    let tree_clusters: Vec<(usize, Vec<SteinerTree>)> =
        parallel_map(threads, &big, |_, &(i, positions)| {
            let cands = candidates(
                positions,
                Some(obs_read),
                CandidateConfig {
                    max_candidates: config.max_candidates,
                    ..CandidateConfig::default()
                },
            );
            pacor_obs::record("dme.candidates", cands.len() as u64);
            (i, cands)
        });
    // Telemetry emits on the session thread only (the fan-out workers
    // above record into private task frames), after the merge — so the
    // event lands at the same commit point at any thread count.
    if pacor_obs::telemetry_active() {
        let candidates_total: u64 = tree_clusters.iter().map(|(_, c)| c.len() as u64).sum();
        pacor_obs::progress(|| pacor_obs::ProgressEvent::DmeProgress {
            clusters: candidate_tasks as u64,
            candidates: candidates_total,
        });
    }

    // Phase 2: selection (Eqs. 2–4) or first-candidate. Either way the
    // picked tree is moved out of its candidate list, not cloned.
    let mut scoring_tasks = 0usize;
    let selected: Vec<(usize, SteinerTree)> = match config.variant {
        FlowVariant::WithoutSelection => tree_clusters
            .into_iter()
            .map(|(i, mut c)| (i, c.swap_remove(0)))
            .collect(),
        _ => select_trees(tree_clusters, config, &mut scoring_tasks),
    };

    // Phase 3: negotiation routing of all cluster edges together, dropping
    // clusters with unroutable edges until the set completes.
    let mut active: Vec<LmNet> = Vec::new();
    for (i, tree) in selected {
        active.push(LmNet::Tree {
            cluster_idx: i,
            tree,
        });
    }
    for (i, (cluster, positions)) in clusters.iter().enumerate() {
        if cluster.len() == 2 {
            active.push(LmNet::Pair {
                cluster_idx: i,
                a: positions[0],
                b: positions[1],
            });
        }
    }

    let router = NegotiationRouter::new()
        .with_gamma(config.gamma)
        .with_history_params(config.history_base, config.history_alpha)
        .with_ripup_policy(config.ripup_policy)
        .with_mode(config.negotiation_mode)
        .with_threads(config.thread_count);

    // Every cluster leaves this function exactly once — into `routed` or
    // into `failed` — so hold them in take-able slots instead of cloning
    // cluster + position vectors per materialization.
    let mut slots: Vec<Option<(Cluster, Vec<Point>)>> = clusters.into_iter().map(Some).collect();
    let mut failed_idx: Vec<usize> = Vec::new();
    // Per-slot "already retried with alternate topologies" flag.
    let mut retried = vec![false; slots.len()];
    let mut routed: Vec<RoutedCluster> = Vec::new();
    loop {
        // Build the edge list and the request → net mapping.
        let mut requests: Vec<RouteRequest> = Vec::new();
        let mut owner: Vec<usize> = Vec::new();
        for (ni, net) in active.iter().enumerate() {
            // Tag each request with its cluster id so the flight
            // recorder can attribute per-net outcomes to clusters.
            let cid = slots[net.cluster_idx()]
                .as_ref()
                .expect("cluster still pending")
                .0
                .id()
                .0;
            for (s, t) in net.edges() {
                requests.push(RouteRequest::point_to_point(s, t).with_net(cid));
                owner.push(ni);
            }
        }
        let outcome = router.route_all(obs, &requests);
        if outcome.complete {
            // Materialize RoutedClusters in `active` order, moving each
            // cluster out of its slot.
            let mut path_iter = outcome.paths.into_iter();
            for net in std::mem::take(&mut active) {
                let n_edges = net.edges().len();
                let paths: Vec<GridPath> = path_iter
                    .by_ref()
                    .take(n_edges)
                    .map(|p| p.expect("complete outcome"))
                    .collect();
                let (cluster, positions) = slots[net.cluster_idx()]
                    .take()
                    .expect("cluster materialized once");
                routed.push(net.materialize(cluster, positions, paths));
            }
            break;
        }
        // Clusters owning a failed edge get one *reconstruction* retry —
        // the paper's "the DME tree needs to be reconstructed" — with
        // candidates drawn from alternate connection topologies; a second
        // failure demotes them to ordinary routing.
        let mut dropped: Vec<usize> = outcome
            .paths
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(req, _)| owner[req])
            .collect();
        dropped.sort_unstable();
        dropped.dedup();
        for &ni in dropped.iter().rev() {
            let net = active.remove(ni);
            let ci = net.cluster_idx();
            let slot = slots[ci].as_ref().expect("cluster still pending");
            let cid = slot.0.id().0;
            let positions = &slot.1;
            let is_tree = matches!(net, LmNet::Tree { .. });
            if is_tree && !retried[ci] && positions.len() <= 6 {
                retried[ci] = true;
                pacor_obs::counter_add("lm.reconstructed", 1);
                pacor_obs::flight(|| pacor_obs::FlightEvent::LmReconstructed { cluster: cid });
                let alts = candidates_with_alternates(
                    positions,
                    Some(obs),
                    CandidateConfig {
                        max_candidates: config.max_candidates * 2,
                        ..CandidateConfig::default()
                    },
                    4,
                );
                if let Some(tree) = alts.into_iter().min_by_key(|t| t.total_length()) {
                    active.push(LmNet::Tree {
                        cluster_idx: ci,
                        tree,
                    });
                    continue;
                }
            }
            pacor_obs::counter_add("lm.demoted", 1);
            pacor_obs::instant("lm.demoted", &[("cluster", ci as u64)]);
            pacor_obs::flight(|| pacor_obs::FlightEvent::LmDemoted { cluster: cid });
            failed_idx.push(ci);
        }
        if active.is_empty() {
            break;
        }
    }

    let failed = failed_idx
        .into_iter()
        .map(|i| slots[i].take().expect("cluster failed once"))
        .collect();
    LmOutcome {
        routed,
        failed,
        candidate_tasks,
        scoring_tasks,
    }
}

/// Re-routes a single length-matching cluster in the current obstacle
/// state (used by the rip-up stage after its old net was ripped out).
/// Returns `None` when it cannot be wired; successful nets are blocked
/// in `obs`.
pub fn reroute_lm_cluster(
    obs: &mut ObsMap,
    cluster: Cluster,
    positions: Vec<Point>,
    config: &FlowConfig,
) -> Option<RoutedCluster> {
    let mut out = route_lm_clusters(obs, vec![(cluster, positions)], config);
    out.routed.pop()
}

/// Candidate Steiner tree selection via the MWCP (Section 4.2).
///
/// `scoring_tasks` reports how many cluster-pair scoring items were
/// fanned out (for the stage's parallelism accounting).
/// A scored candidate pair: (group, candidate) × 2 plus the `Co` cost.
type PairCost = ((usize, usize), (usize, usize), f64);

fn select_trees(
    tree_clusters: Vec<(usize, Vec<SteinerTree>)>,
    config: &FlowConfig,
    scoring_tasks: &mut usize,
) -> Vec<(usize, SteinerTree)> {
    if tree_clusters.is_empty() {
        return Vec::new();
    }
    // Normalizing constant: max ΔL over all candidates of all clusters.
    let max_dl = tree_clusters
        .iter()
        .flat_map(|(_, c)| c.iter().map(|t| t.mismatch()))
        .max()
        .unwrap_or(0)
        .max(1) as f64;

    // Node weights: Cm = −λ · ΔL / max ΔL  (Eq. 2).
    let groups: Vec<Vec<f64>> = tree_clusters
        .iter()
        .map(|(_, cands)| {
            cands
                .iter()
                .map(|t| -config.lambda * t.mismatch() as f64 / max_dl)
                .collect()
        })
        .collect();
    let mut inst = SelectionInstance::new(groups);

    // Pair costs: Co = −(1−λ) · Σ olcost over edge pairs (Eqs. 3–4).
    // Each cluster pair is an independent scoring task; the instance is
    // populated afterwards in pair order, so the fan-out does not
    // change which costs get added or in what order.
    let pairs: Vec<(usize, usize)> = (0..tree_clusters.len())
        .flat_map(|ga| ((ga + 1)..tree_clusters.len()).map(move |gb| (ga, gb)))
        .collect();
    *scoring_tasks = pairs.len();
    let scored = parallel_map(effective_threads(config.thread_count), &pairs, |_, &(ga, gb)| {
        let mut costs: Vec<PairCost> = Vec::new();
        for (ia, ta) in tree_clusters[ga].1.iter().enumerate() {
            for (ib, tb) in tree_clusters[gb].1.iter().enumerate() {
                let mut overlap = 0.0;
                for ea in ta.edges() {
                    for eb in tb.edges() {
                        overlap += olcost(ea, eb);
                    }
                }
                if overlap > 0.0 {
                    costs.push(((ga, ia), (gb, ib), -(1.0 - config.lambda) * overlap));
                }
            }
        }
        pacor_obs::counter_add("mwcp.pair_scores", costs.len() as u64);
        costs
    });
    for (a, b, cost) in scored.into_iter().flatten() {
        inst.add_pair_cost(a, b, cost);
    }

    let sel = select_one_per_group(&inst, config.exact_selection_limit);
    tree_clusters
        .into_iter()
        .zip(&sel.picks)
        .map(|((i, mut cands), &pick)| (i, cands.swap_remove(pick)))
        .collect()
}

/// Internal net under construction.
enum LmNet {
    Tree {
        cluster_idx: usize,
        tree: SteinerTree,
    },
    Pair {
        cluster_idx: usize,
        a: Point,
        b: Point,
    },
}

impl LmNet {
    fn cluster_idx(&self) -> usize {
        match self {
            LmNet::Tree { cluster_idx, .. } | LmNet::Pair { cluster_idx, .. } => *cluster_idx,
        }
    }

    /// Edge endpoints to wire, child → parent for trees.
    fn edges(&self) -> Vec<(Point, Point)> {
        match self {
            LmNet::Tree { tree, .. } => tree.edges(),
            LmNet::Pair { a, b, .. } => vec![(*a, *b)],
        }
    }

    fn materialize(
        self,
        cluster: Cluster,
        member_positions: Vec<Point>,
        paths: Vec<GridPath>,
    ) -> RoutedCluster {
        match self {
            LmNet::Tree { tree, .. } => RoutedCluster {
                cluster,
                member_positions,
                kind: RoutedKind::LmTree {
                    tree,
                    edge_paths: paths,
                },
                escape: None,
            },
            LmNet::Pair { .. } => {
                let full = paths.into_iter().next().expect("pair has one edge");
                let cells = full.cells();
                let mid = cells.len() / 2;
                let junction = cells[mid];
                let half_a = GridPath::new(cells[..=mid].to_vec()).expect("prefix connected");
                let mut rev = cells[mid..].to_vec();
                rev.reverse();
                let half_b = GridPath::new(rev).expect("suffix connected");
                RoutedCluster {
                    cluster,
                    member_positions,
                    kind: RoutedKind::LmPair {
                        junction,
                        half_a,
                        half_b,
                    },
                    escape: None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacor_grid::Grid;
    use pacor_valves::{ClusterId, ValveId};

    fn open(w: u32, h: u32) -> ObsMap {
        ObsMap::new(&Grid::new(w, h).unwrap())
    }

    fn cluster(id: u32, n: u32, lm: bool) -> Cluster {
        Cluster::new(ClusterId(id), (0..n).map(ValveId).collect(), lm)
    }

    #[test]
    fn pair_cluster_splits_at_midpoint() {
        let mut obs = open(12, 12);
        let positions = vec![Point::new(1, 5), Point::new(9, 5)];
        let out = route_lm_clusters(
            &mut obs,
            vec![(cluster(0, 2, true), positions)],
            &FlowConfig::default(),
        );
        assert!(out.failed.is_empty());
        assert_eq!(out.routed.len(), 1);
        match &out.routed[0].kind {
            RoutedKind::LmPair {
                junction,
                half_a,
                half_b,
            } => {
                assert_eq!(half_a.len() + half_b.len(), 8);
                assert!(half_a.len().abs_diff(half_b.len()) <= 1);
                assert_eq!(half_a.target(), *junction);
                assert_eq!(half_b.target(), *junction);
            }
            other => panic!("expected pair, got {other:?}"),
        }
        // Matched before escape: both halves within 1.
        assert!(out.routed[0].mismatch().unwrap() <= 1);
    }

    #[test]
    fn tree_cluster_routes_all_edges() {
        let mut obs = open(24, 24);
        let positions = vec![
            Point::new(2, 2),
            Point::new(20, 2),
            Point::new(2, 20),
            Point::new(20, 20),
        ];
        let out = route_lm_clusters(
            &mut obs,
            vec![(cluster(0, 4, true), positions)],
            &FlowConfig::default(),
        );
        assert_eq!(out.routed.len(), 1);
        match &out.routed[0].kind {
            RoutedKind::LmTree { tree, edge_paths } => {
                assert_eq!(edge_paths.len(), tree.edge_indices().len());
                // Symmetric cluster: wired lengths match estimates.
                assert!(out.routed[0].mismatch().unwrap() <= 2);
            }
            other => panic!("expected tree, got {other:?}"),
        }
        // Net cells are blocked in the obstacle map.
        for c in out.routed[0].net_cells() {
            assert!(obs.is_blocked(c));
        }
    }

    #[test]
    fn multiple_clusters_share_the_grid() {
        let mut obs = open(30, 30);
        let c0 = (
            cluster(0, 2, true),
            vec![Point::new(2, 5), Point::new(12, 5)],
        );
        let c1 = (
            cluster(1, 2, true),
            vec![Point::new(2, 10), Point::new(12, 10)],
        );
        let c2 = (
            cluster(2, 3, true),
            vec![Point::new(20, 20), Point::new(27, 20), Point::new(23, 27)],
        );
        let out = route_lm_clusters(
            &mut obs,
            vec![c0, c1, c2],
            &FlowConfig::default(),
        );
        assert_eq!(out.routed.len(), 3);
        assert!(out.failed.is_empty());
        // Nets are pairwise disjoint.
        for i in 0..3 {
            for j in (i + 1)..3 {
                let a = out.routed[i].net_cells();
                let b = out.routed[j].net_cells();
                for c in &a {
                    assert!(!b.contains(c), "nets {i}/{j} share {c}");
                }
            }
        }
    }

    #[test]
    fn unroutable_cluster_lands_in_failed() {
        // Split the chip with a full wall; a pair straddling it fails and a
        // local pair succeeds.
        let mut grid = Grid::new(15, 15).unwrap();
        for y in 0..15 {
            grid.set_obstacle(Point::new(7, y));
        }
        let mut obs = ObsMap::new(&grid);
        let out = route_lm_clusters(
            &mut obs,
            vec![
                (
                    cluster(0, 2, true),
                    vec![Point::new(2, 7), Point::new(12, 7)],
                ),
                (
                    cluster(1, 2, true),
                    vec![Point::new(1, 1), Point::new(5, 1)],
                ),
            ],
            &FlowConfig::default(),
        );
        assert_eq!(out.failed.len(), 1);
        assert_eq!(out.routed.len(), 1);
        assert_eq!(out.routed[0].cluster.id(), ClusterId(1));
    }

    #[test]
    fn without_selection_uses_first_candidate() {
        let mut obs = open(26, 26);
        let positions = vec![
            Point::new(2, 2),
            Point::new(22, 4),
            Point::new(4, 22),
            Point::new(20, 20),
        ];
        let cfg = FlowConfig::for_variant(FlowVariant::WithoutSelection);
        let out = route_lm_clusters(&mut obs, vec![(cluster(0, 4, true), positions)], &cfg);
        assert_eq!(out.routed.len(), 1);
    }

    #[test]
    fn empty_input_is_empty_outcome() {
        let mut obs = open(8, 8);
        let out = route_lm_clusters(&mut obs, vec![], &FlowConfig::default());
        assert!(out.routed.is_empty());
        assert!(out.failed.is_empty());
    }
}
