//! Ablation benches for the design choices DESIGN.md calls out:
//! A1 — the λ weighting between mismatch cost (Eq. 2) and overlap cost
//! (Eq. 3) in candidate selection; A2 — the negotiation parameters γ/α.
//!
//! These measure *runtime* sensitivity; the quality sensitivity is
//! reported by `tables -- ablation`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pacor::{BenchDesign, FlowConfig, PacorFlow};

fn bench_lambda(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_lambda");
    group.sample_size(10);
    let problem = BenchDesign::S3.synthesize(42);
    for lambda in [0.0f64, 0.1, 0.5, 0.9] {
        group.bench_with_input(
            BenchmarkId::from_parameter(lambda),
            &lambda,
            |b, &lambda| {
                let cfg = FlowConfig {
                    lambda,
                    ..FlowConfig::default()
                };
                let flow = PacorFlow::new(cfg);
                b.iter(|| flow.run(&problem).expect("valid"))
            },
        );
    }
    group.finish();
}

fn bench_negotiation_params(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_negotiation");
    group.sample_size(10);
    let problem = BenchDesign::S4.synthesize(42);
    for gamma in [1u32, 3, 10] {
        group.bench_with_input(BenchmarkId::new("gamma", gamma), &gamma, |b, &gamma| {
            let cfg = FlowConfig {
                gamma,
                ..FlowConfig::default()
            };
            let flow = PacorFlow::new(cfg);
            b.iter(|| flow.run(&problem).expect("valid"))
        });
    }
    for alpha in [0.05f64, 0.1, 0.5] {
        group.bench_with_input(BenchmarkId::new("alpha", alpha), &alpha, |b, &alpha| {
            let cfg = FlowConfig {
                history_alpha: alpha,
                ..FlowConfig::default()
            };
            let flow = PacorFlow::new(cfg);
            b.iter(|| flow.run(&problem).expect("valid"))
        });
    }
    group.finish();
}

fn bench_candidate_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_candidates");
    group.sample_size(10);
    let problem = BenchDesign::S5.synthesize(42);
    for k in [1usize, 3, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let cfg = FlowConfig {
                max_candidates: k,
                ..FlowConfig::default()
            };
            let flow = PacorFlow::new(cfg);
            b.iter(|| flow.run(&problem).expect("valid"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lambda,
    bench_negotiation_params,
    bench_candidate_count
);
criterion_main!(benches);
