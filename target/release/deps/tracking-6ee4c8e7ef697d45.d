/root/repo/target/release/deps/tracking-6ee4c8e7ef697d45.d: tests/tracking.rs

/root/repo/target/release/deps/tracking-6ee4c8e7ef697d45: tests/tracking.rs

tests/tracking.rs:
