//! Tabu local search refinement for the MWCP.

use crate::{CliqueSolution, Greedy, WeightedGraph};

/// Local search over clique space with add / drop / swap moves and a
/// short-term tabu list, seeded by [`Greedy`].
///
/// This is the anytime fallback for selection instances too large for the
/// exact branch and bound; PACOR's paper mentions having implemented
/// "graph-based" and "unconstrained quadratic programming based"
/// heuristics alongside the ILP — this plays that role.
#[derive(Debug, Clone, Copy)]
pub struct TabuLocalSearch {
    iterations: usize,
    tabu_tenure: usize,
}

impl TabuLocalSearch {
    /// Creates a search running `iterations` move steps.
    pub fn new(iterations: usize) -> Self {
        Self {
            iterations,
            tabu_tenure: 7,
        }
    }

    /// Overrides the tabu tenure (steps a reversed move stays forbidden).
    pub fn with_tenure(mut self, tenure: usize) -> Self {
        self.tabu_tenure = tenure;
        self
    }

    /// Runs the search.
    pub fn solve(self, graph: &WeightedGraph) -> CliqueSolution {
        let n = graph.len();
        if n == 0 {
            return CliqueSolution::empty();
        }
        let seed = Greedy.solve(graph);
        let mut current = seed.nodes.clone();
        let mut current_w = seed.weight;
        let mut best = seed;
        // tabu[v] = first iteration at which touching v is allowed again.
        let mut tabu = vec![0usize; n];

        for it in 1..=self.iterations {
            // Enumerate moves: add a feasible node, drop a member, or swap
            // (drop one member to admit an otherwise-infeasible node).
            let mut best_move: Option<(Vec<usize>, f64)> = None;
            let mut consider = |nodes: Vec<usize>, w: f64, touched: usize| {
                let aspiration = w > best.weight;
                if tabu[touched] > it && !aspiration {
                    return;
                }
                if best_move.as_ref().map(|(_, bw)| w > *bw).unwrap_or(true) {
                    best_move = Some((nodes, w));
                }
            };

            for v in 0..n {
                if current.contains(&v) {
                    // Drop v.
                    let rest: Vec<usize> = current.iter().copied().filter(|&u| u != v).collect();
                    let w = graph.weight_of(&rest);
                    consider(rest, w, v);
                } else {
                    let blockers: Vec<usize> = current
                        .iter()
                        .copied()
                        .filter(|&u| !graph.adjacent(u, v))
                        .collect();
                    match blockers.len() {
                        0 => {
                            // Add v.
                            let mut with = current.clone();
                            with.push(v);
                            let w = current_w + graph.marginal_gain(&current, v);
                            consider(with, w, v);
                        }
                        1 => {
                            // Swap blockers[0] -> v.
                            let mut with: Vec<usize> = current
                                .iter()
                                .copied()
                                .filter(|&u| u != blockers[0])
                                .collect();
                            with.push(v);
                            let w = graph.weight_of(&with);
                            consider(with, w, v);
                        }
                        _ => {}
                    }
                }
            }

            let Some((nodes, w)) = best_move else { break };
            // Mark the symmetric difference tabu.
            for &v in nodes.iter().chain(current.iter()) {
                let in_old = current.contains(&v);
                let in_new = nodes.contains(&v);
                if in_old != in_new {
                    tabu[v] = it + self.tabu_tenure;
                }
            }
            current = nodes;
            current_w = w;
            if current_w > best.weight {
                best = CliqueSolution {
                    nodes: current.clone(),
                    weight: current_w,
                };
            }
        }
        best.nodes.sort_unstable();
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BranchAndBound;

    #[test]
    fn refines_past_greedy_trap() {
        // Greedy grabs node 0 (weight 10) which blocks the pair {1,2}
        // (combined 14); local search must escape via drop/swap.
        let mut g = WeightedGraph::new(3);
        g.set_node_weight(0, 10.0);
        g.set_node_weight(1, 7.0);
        g.set_node_weight(2, 7.0);
        g.add_edge(1, 2, 0.0);
        let greedy = Greedy.solve(&g);
        assert_eq!(greedy.nodes, vec![0]);
        let refined = TabuLocalSearch::new(50).solve(&g);
        assert_eq!(refined.nodes, vec![1, 2]);
        assert_eq!(refined.weight, 14.0);
    }

    #[test]
    fn never_worse_than_greedy() {
        let mut seed = 7u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..10 {
            let n = 10;
            let mut g = WeightedGraph::new(n);
            for v in 0..n {
                g.set_node_weight(v, next() * 8.0 - 2.0);
            }
            for u in 0..n {
                for v in (u + 1)..n {
                    if next() < 0.5 {
                        g.add_edge(u, v, next() * 4.0 - 2.0);
                    }
                }
            }
            let greedy = Greedy.solve(&g);
            let tabu = TabuLocalSearch::new(100).solve(&g);
            assert!(tabu.weight + 1e-9 >= greedy.weight);
            assert!(g.is_clique(&tabu.nodes));
        }
    }

    #[test]
    fn close_to_exact_on_small_instances() {
        let mut g = WeightedGraph::new(8);
        for v in 0..8 {
            g.set_node_weight(v, (v as f64) / 2.0);
        }
        for u in 0..8usize {
            for v in (u + 1)..8 {
                if (u + v) % 3 != 0 {
                    g.add_edge(u, v, -0.1);
                }
            }
        }
        let exact = BranchAndBound::new().solve(&g);
        let tabu = TabuLocalSearch::new(300).solve(&g);
        assert!(tabu.weight <= exact.weight + 1e-9);
        assert!(tabu.weight >= 0.8 * exact.weight);
    }

    #[test]
    fn zero_iterations_returns_greedy() {
        let mut g = WeightedGraph::new(2);
        g.set_node_weight(0, 3.0);
        let s = TabuLocalSearch::new(0).solve(&g);
        assert_eq!(s.nodes, vec![0]);
    }
}
