//! Design rules: physical dimensions to routing-grid pitch.
//!
//! The paper partitions the chip into uniform routing grids "according to
//! the minimum channel width and spacing design rule" (Section 4.1). One
//! grid cell therefore represents a channel track of pitch
//! `width + spacing`; routing on distinct cells automatically satisfies
//! both rules.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Minimum channel width / spacing design rules, in micrometers.
///
/// # Examples
///
/// ```
/// use pacor_grid::DesignRules;
///
/// let rules = DesignRules::new(10.0, 10.0)?;
/// assert_eq!(rules.pitch_um(), 20.0);
/// // A 2 mm chip edge yields 100 routing tracks.
/// assert_eq!(rules.grid_cells(2000.0), 100);
/// # Ok::<(), pacor_grid::GridError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignRules {
    min_channel_width_um: f64,
    min_channel_spacing_um: f64,
}

impl DesignRules {
    /// Creates design rules from minimum channel width and spacing (μm).
    ///
    /// # Errors
    ///
    /// Returns [`crate::GridError::InvalidDimensions`] when either value is
    /// non-positive or non-finite.
    pub fn new(
        min_channel_width_um: f64,
        min_channel_spacing_um: f64,
    ) -> Result<Self, crate::GridError> {
        let valid = |v: f64| v.is_finite() && v > 0.0;
        if !valid(min_channel_width_um) || !valid(min_channel_spacing_um) {
            return Err(crate::GridError::InvalidDimensions {
                width: 0,
                height: 0,
            });
        }
        Ok(Self {
            min_channel_width_um,
            min_channel_spacing_um,
        })
    }

    /// Typical PDMS multilayer soft-lithography rules: 100 μm channels with
    /// 100 μm spacing (Unger et al. scale devices; see paper Section 1).
    pub fn typical_pdms() -> Self {
        Self {
            min_channel_width_um: 100.0,
            min_channel_spacing_um: 100.0,
        }
    }

    /// Minimum channel width (μm).
    #[inline]
    pub fn min_channel_width_um(&self) -> f64 {
        self.min_channel_width_um
    }

    /// Minimum channel spacing (μm).
    #[inline]
    pub fn min_channel_spacing_um(&self) -> f64 {
        self.min_channel_spacing_um
    }

    /// Routing pitch: one grid cell per `width + spacing` track.
    #[inline]
    pub fn pitch_um(&self) -> f64 {
        self.min_channel_width_um + self.min_channel_spacing_um
    }

    /// Number of whole routing cells that fit in `extent_um` micrometers.
    pub fn grid_cells(&self, extent_um: f64) -> u32 {
        if extent_um <= 0.0 {
            return 0;
        }
        (extent_um / self.pitch_um()).floor() as u32
    }

    /// Physical length (μm) of a routed channel of `grid_len` grid units.
    pub fn physical_length_um(&self, grid_len: u64) -> f64 {
        grid_len as f64 * self.pitch_um()
    }
}

impl Default for DesignRules {
    fn default() -> Self {
        Self::typical_pdms()
    }
}

impl fmt::Display for DesignRules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "w≥{}μm s≥{}μm (pitch {}μm)",
            self.min_channel_width_um,
            self.min_channel_spacing_um,
            self.pitch_um()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_nonpositive() {
        assert!(DesignRules::new(0.0, 5.0).is_err());
        assert!(DesignRules::new(5.0, -1.0).is_err());
        assert!(DesignRules::new(f64::NAN, 5.0).is_err());
        assert!(DesignRules::new(f64::INFINITY, 5.0).is_err());
    }

    #[test]
    fn pitch_is_sum() {
        let r = DesignRules::new(8.0, 12.0).unwrap();
        assert_eq!(r.pitch_um(), 20.0);
    }

    #[test]
    fn grid_cells_floor() {
        let r = DesignRules::new(10.0, 10.0).unwrap();
        assert_eq!(r.grid_cells(199.0), 9);
        assert_eq!(r.grid_cells(200.0), 10);
        assert_eq!(r.grid_cells(-5.0), 0);
    }

    #[test]
    fn physical_length_roundtrip() {
        let r = DesignRules::typical_pdms();
        assert_eq!(r.physical_length_um(5), 1000.0);
    }

    #[test]
    fn default_is_typical() {
        assert_eq!(DesignRules::default(), DesignRules::typical_pdms());
    }

    #[test]
    fn display_mentions_pitch() {
        let s = DesignRules::typical_pdms().to_string();
        assert!(s.contains("pitch 200"));
    }
}
