//! Observability-layer integration tests: trace/metrics exports of a
//! real flow run, their schema shape, and their determinism.

use pacor_repro::pacor::{obs, BenchDesign, FlowConfig, PacorFlow};
use serde::Value;

/// Runs a design under an outer observability session (the way the CLI
/// wires `--trace-out`) and returns the session's report.
fn traced_run(design: BenchDesign, threads: usize) -> obs::ObsReport {
    let problem = design.synthesize(42);
    let session = obs::Session::begin();
    PacorFlow::new(FlowConfig::default().with_threads(threads))
        .run(&problem)
        .expect("bench designs route");
    session.finish()
}

#[test]
fn chrome_trace_is_an_array_of_well_formed_events() {
    let report = traced_run(BenchDesign::S1, 1);
    let json = obs::chrome_trace(&report);
    let value: Value = serde_json::from_str(&json).expect("trace is valid JSON");
    let Value::Array(events) = &value else {
        panic!("trace root must be a JSON array");
    };
    assert!(!events.is_empty());
    for event in events {
        assert!(
            matches!(event.field("name").unwrap(), Value::Str(_)),
            "name must be a string"
        );
        let Value::Str(ph) = event.field("ph").unwrap() else {
            panic!("ph must be a string");
        };
        // Every non-metadata event carries the mandatory keys;
        // metadata (`ph: "M"`) events are timestamp-free by design.
        let mandatory: &[&str] = if ph == "M" {
            &["name", "ph", "pid", "args"]
        } else {
            &["name", "ph", "ts", "pid", "tid"]
        };
        for key in mandatory {
            event
                .field(key)
                .unwrap_or_else(|_| panic!("event missing `{key}`: {event:?}"));
        }
        assert!(
            ["X", "i", "C", "M"].contains(&ph.as_str()),
            "unknown phase {ph}"
        );
    }
    // The trace names its process and every thread lane, and carries
    // the counter totals as a zero-duration `run.totals` span.
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| match e.field("name") {
            Ok(Value::Str(s)) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    for expected in ["process_name", "thread_name", "run.totals"] {
        assert!(names.contains(&expected), "trace must carry {expected}");
    }
}

#[test]
fn trace_spans_cover_every_stage() {
    let report = traced_run(BenchDesign::S1, 1);
    for stage in [
        "stage.clustering",
        "stage.lm_routing",
        "stage.mst_routing",
        "stage.escape",
        "stage.detour",
    ] {
        assert!(
            report.span_count(stage) >= 1,
            "missing span for {stage}"
        );
    }
    // The A* expansion counter is exported as a plottable series.
    let has_series = report.events().iter().any(|e| {
        matches!(e, obs::TraceEvent::Counter { name, .. } if *name == "astar.expansions")
    });
    assert!(has_series, "expected an astar.expansions counter series");
}

#[test]
fn metrics_json_is_byte_identical_across_thread_counts() {
    for design in [BenchDesign::S1, BenchDesign::S2] {
        let single = obs::metrics_json(&traced_run(design, 1));
        let multi = obs::metrics_json(&traced_run(design, 4));
        assert_eq!(single, multi, "{design:?} metrics differ by thread count");
        // And it must be valid JSON with the two expected sections.
        let value: Value = serde_json::from_str(&single).expect("metrics JSON parses");
        value.field("counters").expect("counters section");
        value.field("histograms").expect("histograms section");
    }
}

#[test]
fn flow_session_populates_report_counters() {
    let problem = BenchDesign::S1.synthesize(42);
    // No outer session: the flow's own nested session must still fill
    // the report's metrics.
    let report = PacorFlow::new(FlowConfig::default())
        .run(&problem)
        .expect("routes");
    assert!(report.metrics.counter("astar.expansions") > 0);
    assert!(report.metrics.counter("astar.queries") > 0);
    assert!(report.metrics.counter("negotiate.rounds") > 0);
    // Counters arrive name-sorted (the binary-search lookup relies on it).
    let names: Vec<&str> = report
        .metrics
        .counters
        .iter()
        .map(|(n, _)| n.as_str())
        .collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted);
}
