//! Property-based tests for the routers.

use pacor_grid::{Grid, ObsMap, Point};
use pacor_route::{
    AStar, BoundedAStar, NegotiationMode, NegotiationRouter, RipUpPolicy, RouteRequest,
};
use proptest::prelude::*;
use std::collections::{HashSet, VecDeque};

/// Reference BFS shortest-path length, or `None` when unreachable.
fn bfs_len(obs: &ObsMap, from: Point, to: Point) -> Option<u64> {
    if from == to {
        return Some(0);
    }
    let mut dist = std::collections::HashMap::new();
    dist.insert(from, 0u64);
    let mut q = VecDeque::from([from]);
    while let Some(p) = q.pop_front() {
        for n in p.neighbors4() {
            if n == to {
                return Some(dist[&p] + 1);
            }
            if !obs.is_blocked(n) && !dist.contains_key(&n) {
                dist.insert(n, dist[&p] + 1);
                q.push_back(n);
            }
        }
    }
    None
}

fn build_map(obst: &HashSet<(i32, i32)>, w: u32, h: u32) -> ObsMap {
    let mut grid = Grid::new(w, h).unwrap();
    for &(x, y) in obst {
        grid.set_obstacle(Point::new(x, y));
    }
    ObsMap::new(&grid)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn astar_is_optimal_vs_bfs(
        obst in prop::collection::hash_set((0i32..12, 0i32..12), 0..40),
        sx in 0i32..12, sy in 0i32..12,
        tx in 0i32..12, ty in 0i32..12,
    ) {
        let mut obst = obst;
        obst.remove(&(sx, sy));
        obst.remove(&(tx, ty));
        let obs = build_map(&obst, 12, 12);
        let (s, t) = (Point::new(sx, sy), Point::new(tx, ty));
        let astar = AStar::new(&obs).point_to_point(s, t);
        let reference = bfs_len(&obs, s, t);
        match (astar, reference) {
            (Some(p), Some(l)) => {
                prop_assert_eq!(p.len(), l, "A* not optimal");
                prop_assert_eq!(p.source(), s);
                prop_assert_eq!(p.target(), t);
                for c in p.cells().iter().skip(1) {
                    prop_assert!(!obs.is_blocked(*c) || *c == t);
                }
            }
            (None, None) => {}
            (a, b) => prop_assert!(false, "reachability mismatch: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn astar_multi_target_returns_nearest(
        sx in 0i32..10, sy in 0i32..10,
        targets in prop::collection::vec((0i32..10, 0i32..10), 1..5),
    ) {
        let obs = build_map(&HashSet::new(), 10, 10);
        let s = Point::new(sx, sy);
        let tgts: Vec<Point> = targets.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let p = AStar::new(&obs).route(&[s], &tgts).expect("open grid routes");
        let best = tgts.iter().map(|t| s.manhattan(*t)).min().unwrap();
        prop_assert_eq!(p.len(), best);
        prop_assert!(tgts.contains(&p.target()));
    }

    #[test]
    fn bounded_router_respects_bound(
        sx in 1i32..10, sy in 1i32..10,
        tx in 1i32..10, ty in 1i32..10,
        extra in 0u64..12,
    ) {
        prop_assume!((sx, sy) != (tx, ty));
        let obs = build_map(&HashSet::new(), 12, 12);
        let (s, t) = (Point::new(sx, sy), Point::new(tx, ty));
        let d = s.manhattan(t);
        let lt = d + extra;
        if let Some(p) = BoundedAStar::new(&obs).route_at_least(s, t, lt) {
            prop_assert!(p.len() >= lt);
            // Minimality above the bound: parity forces at most +1.
            prop_assert!(p.len() <= lt + 1);
            prop_assert_eq!(p.source(), s);
            prop_assert_eq!(p.target(), t);
            // Self-avoiding.
            let mut seen = HashSet::new();
            for c in p.cells() {
                prop_assert!(seen.insert(*c), "revisited {c}");
            }
        }
    }

    #[test]
    fn bounded_router_zero_bound_equals_shortest(
        sx in 0i32..8, sy in 0i32..8, tx in 0i32..8, ty in 0i32..8,
    ) {
        let obs = build_map(&HashSet::new(), 8, 8);
        let (s, t) = (Point::new(sx, sy), Point::new(tx, ty));
        let p = BoundedAStar::new(&obs).route_at_least(s, t, 0).expect("open grid");
        prop_assert_eq!(p.len(), s.manhattan(t));
    }

    #[test]
    fn ripup_policies_share_invariants(
        obst in prop::collection::hash_set((0i32..14, 0i32..14), 0..30),
        terminals in prop::collection::hash_set((0i32..14, 0i32..14), 4..10),
    ) {
        // Pair up distinct free terminals into point-to-point requests.
        let mut obst = obst;
        for t in &terminals {
            obst.remove(t);
        }
        let cells: Vec<Point> = terminals.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let edges: Vec<RouteRequest> = cells
            .chunks_exact(2)
            .map(|c| RouteRequest::point_to_point(c[0], c[1]))
            .collect();
        prop_assume!(!edges.is_empty());

        let base = build_map(&obst, 14, 14);
        let mut obs_full = base.clone();
        let mut obs_inc = base.clone();
        let full = NegotiationRouter::new()
            .with_ripup_policy(RipUpPolicy::Full)
            .route_all(&mut obs_full, &edges);
        let inc = NegotiationRouter::new()
            .with_ripup_policy(RipUpPolicy::Incremental)
            .route_all(&mut obs_inc, &edges);

        // Round 1 runs identical logic under both policies (the policies
        // only differ in what they rip *between* rounds), so a one-round
        // run under either policy forces the exact same one-round run
        // under the other.
        prop_assert_eq!(full.iterations == 1, inc.iterations == 1,
            "one-round convergence must not depend on the rip-up policy \
             (full {} rounds, incremental {})", full.iterations, inc.iterations);
        if full.iterations == 1 {
            prop_assert_eq!(full.complete, inc.complete);
            prop_assert_eq!(full.ripups, inc.ripups);
            for (e, (pf, pi)) in full.paths.iter().zip(&inc.paths).enumerate() {
                match (pf, pi) {
                    (Some(a), Some(b)) => prop_assert_eq!(a.cells(), b.cells(),
                        "edge {e}: single-round paths diverge"),
                    (None, None) => {}
                    _ => prop_assert!(false, "edge {e}: single-round routability diverges"),
                }
            }
        }

        // Per-policy invariants hold regardless of contention.
        for (obs, out, label) in [
            (&obs_full, &full, "full"),
            (&obs_inc, &inc, "incremental"),
        ] {
            prop_assert_eq!(out.complete, out.paths.iter().all(Option::is_some));
            prop_assert!(out.iterations >= 1 && out.iterations <= 10);
            if out.complete {
                // Lengths respect the Manhattan lower bound, and — being
                // self-avoiding — never exceed the grid area. (No fixed
                // detour window is sound here: accumulated history costs
                // can push a contended net on an arbitrarily long legal
                // excursion.)
                for (e, req) in edges.iter().enumerate() {
                    let lower = req.sources[0].manhattan(req.targets[0]);
                    let len = out.paths[e].as_ref().unwrap().len();
                    prop_assert!(len >= lower,
                        "{label} edge {e}: len {len} below Manhattan bound {lower}");
                    prop_assert!(len < (14 * 14) as u64,
                        "{label} edge {e}: len {len} exceeds the grid area");
                }
                // Routed cells stay blocked, and paths are disjoint except
                // at terminals (A* exempts source/target cells from
                // blockage, so a path may cross another net's endpoint).
                let endpoints: HashSet<Point> = edges
                    .iter()
                    .flat_map(|r| r.sources.iter().chain(&r.targets))
                    .copied()
                    .collect();
                let mut seen: HashSet<Point> = HashSet::new();
                for p in out.paths.iter().flatten() {
                    for c in p.cells() {
                        prop_assert!(obs.is_blocked(*c));
                        prop_assert!(seen.insert(*c) || endpoints.contains(c),
                            "{label}: paths overlap at non-terminal {c}");
                    }
                }
            } else {
                // Failure restores the map to its pre-negotiation state.
                prop_assert_eq!(obs.blocked_count(), base.blocked_count(),
                    "{label}: failed negotiation must restore the map");
            }
        }
    }

    #[test]
    fn parallel_negotiation_matches_serial(
        obst in prop::collection::hash_set((0i32..14, 0i32..14), 0..30),
        terminals in prop::collection::hash_set((0i32..14, 0i32..14), 4..10),
        threads in 1usize..=8,
    ) {
        // The speculative-parallel mode must be observationally
        // indistinguishable from the serial mode on arbitrary problems
        // at any thread count, under both rip-up policies: same
        // outcome, same round/rip-up counts, same paths cell-for-cell,
        // same final obstacle map.
        let mut obst = obst;
        for t in &terminals {
            obst.remove(t);
        }
        let cells: Vec<Point> = terminals.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let edges: Vec<RouteRequest> = cells
            .chunks_exact(2)
            .map(|c| RouteRequest::point_to_point(c[0], c[1]))
            .collect();
        prop_assume!(!edges.is_empty());

        let base = build_map(&obst, 14, 14);
        for policy in [RipUpPolicy::Full, RipUpPolicy::Incremental] {
            let mut obs_serial = base.clone();
            let mut obs_parallel = base.clone();
            let serial = NegotiationRouter::new()
                .with_ripup_policy(policy)
                .route_all(&mut obs_serial, &edges);
            let parallel = NegotiationRouter::new()
                .with_ripup_policy(policy)
                .with_mode(NegotiationMode::Parallel)
                .with_threads(threads)
                .route_all(&mut obs_parallel, &edges);

            prop_assert_eq!(serial.complete, parallel.complete,
                "{policy:?}/{threads}t: completion diverges");
            prop_assert_eq!(serial.iterations, parallel.iterations,
                "{policy:?}/{threads}t: round counts diverge");
            prop_assert_eq!(serial.ripups, parallel.ripups,
                "{policy:?}/{threads}t: rip-up counts diverge");
            for (e, (ps, pp)) in serial.paths.iter().zip(&parallel.paths).enumerate() {
                match (ps, pp) {
                    (Some(a), Some(b)) => prop_assert_eq!(a.cells(), b.cells(),
                        "{policy:?}/{threads}t edge {e}: paths diverge"),
                    (None, None) => {}
                    _ => prop_assert!(false,
                        "{policy:?}/{threads}t edge {e}: routability diverges"),
                }
            }
            prop_assert_eq!(obs_serial.blocked_count(), obs_parallel.blocked_count(),
                "{policy:?}/{threads}t: final obstacle maps diverge");
        }
    }

    #[test]
    fn negotiation_outcome_consistency(
        rows in prop::collection::vec((1i32..10, 1i32..10), 1..4),
    ) {
        // Horizontal nets on distinct rows of a 12-wide grid.
        let mut rows = rows;
        rows.sort_by_key(|r| (r.1, r.0));
        rows.dedup_by_key(|r| r.1); // one net per row y
        let mut obs = build_map(&HashSet::new(), 12, 12);
        let edges: Vec<RouteRequest> = rows
            .iter()
            .map(|&(x, y)| RouteRequest::point_to_point(Point::new(x.min(9), y), Point::new(11, y)))
            .collect();
        let out = NegotiationRouter::new().route_all(&mut obs, &edges);
        prop_assert_eq!(out.complete, out.paths.iter().all(Option::is_some));
        prop_assert!(out.iterations >= 1);
        if out.complete {
            // All paths blocked and pairwise disjoint.
            let mut seen: HashSet<Point> = HashSet::new();
            for p in out.paths.iter().flatten() {
                for c in p.cells() {
                    prop_assert!(obs.is_blocked(*c));
                    prop_assert!(seen.insert(*c), "paths overlap at {c}");
                }
            }
        }
    }
}
