/root/repo/target/release/examples/render_layout-8b88fd72f9298d0f.d: examples/render_layout.rs

/root/repo/target/release/examples/render_layout-8b88fd72f9298d0f: examples/render_layout.rs

examples/render_layout.rs:
