//! Pressure-propagation model: turn routed channel lengths into arrival
//! times and synchronization skews.
//!
//! The paper's motivation (Section 1) is physical: "Using the flexible
//! PDMS material, pressure propagation is very slow from the control pin
//! to the corresponding valve(s) through the control channel", and the
//! propagation time grows with channel length — which is why matched
//! *lengths* imply matched *switching times*. This module provides the
//! simplest first-order model consistent with that argument: a constant
//! effective propagation speed over channel length, configurable for the
//! device technology. It quantifies what a residual mismatch of `ΔL`
//! grid tracks costs in microseconds of valve skew.

use crate::RoutedCluster;
use pacor_grid::{DesignRules, GridLen};
use serde::{Deserialize, Serialize};

/// First-order pressure-propagation model.
///
/// # Examples
///
/// ```
/// use pacor::PropagationModel;
/// use pacor::grid::DesignRules;
///
/// let model = PropagationModel::typical_pdms(DesignRules::typical_pdms());
/// // A 50-track channel (10 mm at 200 μm pitch) takes 0.1 s at 0.1 m/s.
/// let t = model.delay_us(50);
/// assert!((t - 100_000.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PropagationModel {
    rules: DesignRules,
    /// Effective pressure-front speed in the channel, m/s.
    speed_m_per_s: f64,
}

impl PropagationModel {
    /// Creates a model from design rules and an effective speed (m/s).
    ///
    /// # Panics
    ///
    /// Panics when `speed_m_per_s` is not finite and positive.
    pub fn new(rules: DesignRules, speed_m_per_s: f64) -> Self {
        assert!(
            speed_m_per_s.is_finite() && speed_m_per_s > 0.0,
            "propagation speed must be positive"
        );
        Self {
            rules,
            speed_m_per_s,
        }
    }

    /// A conservative PDMS figure: pressure fronts in soft elastomer
    /// channels are orders of magnitude slower than acoustic speeds;
    /// 0.1 m/s represents the slow-propagation regime the paper warns
    /// about for portable (low driving pressure) devices.
    pub fn typical_pdms(rules: DesignRules) -> Self {
        Self::new(rules, 0.1)
    }

    /// The design rules in use.
    pub fn rules(&self) -> &DesignRules {
        &self.rules
    }

    /// Effective speed (m/s).
    pub fn speed_m_per_s(&self) -> f64 {
        self.speed_m_per_s
    }

    /// Propagation delay of a channel of `len` grid tracks, in µs.
    pub fn delay_us(&self, len: GridLen) -> f64 {
        let meters = self.rules.physical_length_um(len) * 1e-6;
        meters / self.speed_m_per_s * 1e6
    }

    /// Worst-case switching skew of a routed cluster, in µs: the delay
    /// difference between its longest and shortest member channels.
    /// `None` for clusters without per-member lengths (unconstrained).
    pub fn cluster_skew_us(&self, rc: &RoutedCluster) -> Option<f64> {
        let lens = rc.member_lengths()?;
        let max = *lens.iter().max()?;
        let min = *lens.iter().min()?;
        Some(self.delay_us(max - min))
    }

    /// The largest length mismatch `δ` (grid tracks) that keeps cluster
    /// skew below `budget_us` microseconds — the inverse problem a
    /// designer solves when choosing the threshold for
    /// [`Problem::delta`](crate::Problem).
    pub fn delta_for_skew_budget(&self, budget_us: f64) -> GridLen {
        if budget_us <= 0.0 {
            return 0;
        }
        let meters = budget_us * 1e-6 * self.speed_m_per_s;
        let um = meters * 1e6;
        // Epsilon guards the floor against round-trip floating-point dust
        // (delay_us followed by delta_for_skew_budget must be ≥ identity).
        (um / self.rules.pitch_um() + 1e-9).floor() as GridLen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RoutedKind};
    use pacor_grid::{GridPath, Point};
    use pacor_valves::{Cluster, ClusterId, ValveId};

    fn model() -> PropagationModel {
        PropagationModel::typical_pdms(DesignRules::typical_pdms())
    }

    #[test]
    fn delay_scales_linearly() {
        let m = model();
        assert_eq!(m.delay_us(0), 0.0);
        assert!((m.delay_us(10) - 2.0 * m.delay_us(5)).abs() < 1e-9);
    }

    #[test]
    fn skew_budget_roundtrip() {
        let m = model();
        for delta in [0u64, 1, 5, 40] {
            let budget = m.delay_us(delta);
            // The recovered δ for that budget is at least `delta`.
            assert!(m.delta_for_skew_budget(budget) >= delta);
            // And a hair under the budget gives strictly less.
            if delta > 0 {
                assert!(m.delta_for_skew_budget(budget * 0.99) < delta);
            }
        }
        assert_eq!(m.delta_for_skew_budget(-1.0), 0);
    }

    #[test]
    fn cluster_skew_from_member_lengths() {
        let cells: Vec<Point> = (0..=6).map(|x| Point::new(x, 0)).collect();
        let half_a = GridPath::new(cells[..=2].to_vec()).unwrap();
        let mut rev = cells[2..].to_vec();
        rev.reverse();
        let half_b = GridPath::new(rev).unwrap();
        let rc = RoutedCluster {
            cluster: Cluster::new(ClusterId(0), vec![ValveId(0), ValveId(1)], true),
            member_positions: vec![Point::new(0, 0), Point::new(6, 0)],
            kind: RoutedKind::LmPair {
                junction: Point::new(2, 0),
                half_a,
                half_b,
            },
            escape: None,
        };
        let m = model();
        // Halves are 2 and 4 → skew = delay(2).
        let skew = m.cluster_skew_us(&rc).unwrap();
        assert!((skew - m.delay_us(2)).abs() < 1e-9);
    }

    #[test]
    fn singleton_has_no_skew() {
        let rc = RoutedCluster {
            cluster: Cluster::new(ClusterId(0), vec![ValveId(0)], false),
            member_positions: vec![Point::new(0, 0)],
            kind: RoutedKind::Singleton,
            escape: None,
        };
        assert!(model().cluster_skew_us(&rc).is_none());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_speed_panics() {
        PropagationModel::new(DesignRules::typical_pdms(), 0.0);
    }
}
