/root/repo/target/debug/deps/flow_properties-c12fedd1cd54015a.d: tests/flow_properties.rs

/root/repo/target/debug/deps/flow_properties-c12fedd1cd54015a: tests/flow_properties.rs

tests/flow_properties.rs:
