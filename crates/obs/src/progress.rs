//! Streaming telemetry: typed, versioned progress events emitted live
//! at stage and round boundaries.
//!
//! Everything else in this crate is post-hoc — nothing is visible
//! until the flow exits. This module streams [`ProgressEvent`]s as they
//! happen to a set of [`TelemetrySink`]s (JSONL to a writer, an
//! in-memory buffer for tests, a human ticker, or nothing), so a
//! long-running route is observable while it runs.
//!
//! # Recording model
//!
//! [`telemetry_install`] stores a shared stream core in a thread-local
//! slot (separate from the frame stack and the flight recorder);
//! [`telemetry_take`] removes it, finishes every sink and returns the
//! event count. With nothing installed every emit helper is a no-op
//! behind a single thread-local check — the disabled cost of an emit
//! site is one branch.
//!
//! # Determinism
//!
//! Every emit site sits at a session-thread commit point (the same
//! points the flight recorder uses), so the event *sequence* is
//! byte-identical across thread counts, negotiation modes and rip-up
//! policies wherever the routed result is. Wall-clock fields
//! (`elapsed_us`, `eta_us`) are the one exception; a
//! [`TelemetryConfig::deterministic`] configuration zeroes them (and
//! disables the watchdog), making the raw JSONL stream itself
//! byte-comparable — the invariance tests assert exactly that.
//!
//! # Watchdog
//!
//! With timing enabled, per-stage wall-clock budgets and a heartbeat
//! cadence can be configured. A watchdog thread (sharing the stream
//! core, so a stalled session thread cannot starve it) emits a
//! structured [`ProgressEvent::BudgetExceeded`] the moment a stage
//! overruns its budget — carrying the last observed negotiation round
//! and history pressure as a live congestion summary — and
//! [`ProgressEvent::Heartbeat`]s whenever the stream has been silent
//! for the cadence, so a stalled run is distinguishable from a slow
//! one.

use crate::export::push_json_string;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Schema identifier stamped on every emitted JSONL line.
pub const TELEMETRY_SCHEMA: &str = "pacor-telemetry-v1";

/// A typed telemetry event. One JSONL line per event; every line
/// carries `schema`, a monotonically increasing `seq`, and `kind`
/// (the [`ProgressEvent::kind`] name) ahead of the per-kind fields.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgressEvent {
    /// The flow accepted a problem and is about to run stage 1.
    FlowStarted {
        /// Design name.
        design: String,
        /// Chip width in cells.
        width: u32,
        /// Chip height in cells.
        height: u32,
        /// Total valve count.
        valves: u64,
        /// Escape pin count.
        pins: u64,
        /// Declared length-matching cluster count.
        lm_clusters: u64,
        /// Flow variant label (`PACOR`, `w/o Sel`, `Detour First`).
        variant: String,
        /// Rip-up policy label.
        policy: String,
        /// Negotiation mode label.
        mode: String,
        /// Effective worker-thread count.
        threads: u64,
    },
    /// A flow stage began.
    StageEntered {
        /// Stage name (`clustering`, `lm_routing`, `mst_routing`,
        /// `escape`, `detour`).
        stage: &'static str,
    },
    /// A flow stage finished.
    StageExited {
        /// Stage name.
        stage: &'static str,
        /// Items the stage processed (clusters, routed clusters, …).
        items: u64,
        /// Wall-clock spent in the stage (0 in deterministic mode).
        elapsed_us: u64,
    },
    /// One negotiation round completed.
    RoundProgress {
        /// Telemetry session id (one per `route_all` call, 1-based).
        session: u32,
        /// Round number within the session (1-based).
        round: u32,
        /// Rounds left before the γ threshold (0 on convergence).
        rounds_left: u32,
        /// Nets attempted this round.
        attempted: u64,
        /// Nets currently routed after this round.
        routed: u64,
        /// Nets that failed this round.
        failed: u64,
        /// Cumulative rip-ups in this session so far.
        ripups: u64,
        /// History pressure: cells carrying nonzero history cost.
        pressure: u64,
        /// Completion permille (`routed * 1000 / nets`).
        completion_milli: u64,
        /// Wall-clock since the session began (0 in deterministic mode).
        elapsed_us: u64,
        /// Worst-case ETA from the round-over-round trend
        /// (`elapsed_us / round * rounds_left`; 0 in deterministic mode).
        eta_us: u64,
    },
    /// DME candidate generation finished for the LM stage.
    DmeProgress {
        /// Length-matching clusters that generated candidates.
        clusters: u64,
        /// Total candidate Steiner trees across them.
        candidates: u64,
    },
    /// The MST batch committed (aggregated — per-wave grouping differs
    /// between modes, so only the mode-invariant totals are streamed).
    MstProgress {
        /// Clusters entering the batch.
        clusters: u64,
        /// Routed clusters leaving the batch (splits included).
        committed: u64,
        /// De-clustering splits performed.
        splits: u64,
        /// MST edges committed.
        edges: u64,
    },
    /// One escape-stage recovery round completed.
    EscapeProgress {
        /// Escape phase (1 = pending-only, 2 = rip-up, 3 = last resort).
        phase: u32,
        /// Cumulative escape round counter.
        round: u32,
        /// Escapes solved for this round.
        pending: u64,
        /// Escapes still failing after this round's solve.
        failed: u64,
        /// Cumulative de-clustered victims so far.
        declustered: u64,
        /// Cumulative ripped escapes so far.
        ripped: u64,
    },
    /// Watchdog liveness tick: the stream has been silent for the
    /// heartbeat cadence but the flow is still running (timing mode
    /// only).
    Heartbeat {
        /// Stage currently running (`flow` between stages).
        stage: &'static str,
        /// Wall-clock spent in that stage so far.
        elapsed_us: u64,
    },
    /// A stage overran its wall-clock budget (timing mode only).
    BudgetExceeded {
        /// The overrunning stage.
        stage: &'static str,
        /// The budget it exceeded, in milliseconds.
        budget_ms: u64,
        /// Wall-clock spent in the stage when the overrun was detected.
        elapsed_us: u64,
        /// Last observed negotiation round (live congestion summary).
        round: u32,
        /// Last observed history pressure (live congestion summary).
        pressure: u64,
    },
    /// Terminal summary; always the last event of a flow.
    FlowFinished {
        /// Clusters that routed completely.
        routed: u64,
        /// Clusters left incomplete.
        failed: u64,
        /// Length-matched clusters within δ.
        matched: u64,
        /// Total wire length.
        total_length: u64,
        /// Completion permille over valves.
        completion_milli: u64,
        /// Events emitted before this one (== this event's `seq`).
        events: u64,
        /// Flow wall-clock (0 in deterministic mode).
        elapsed_us: u64,
    },
}

impl ProgressEvent {
    /// The event's kind name as it appears on the JSONL line.
    pub fn kind(&self) -> &'static str {
        match self {
            ProgressEvent::FlowStarted { .. } => "flow_started",
            ProgressEvent::StageEntered { .. } => "stage_entered",
            ProgressEvent::StageExited { .. } => "stage_exited",
            ProgressEvent::RoundProgress { .. } => "round_progress",
            ProgressEvent::DmeProgress { .. } => "dme_progress",
            ProgressEvent::MstProgress { .. } => "mst_progress",
            ProgressEvent::EscapeProgress { .. } => "escape_progress",
            ProgressEvent::Heartbeat { .. } => "heartbeat",
            ProgressEvent::BudgetExceeded { .. } => "budget_exceeded",
            ProgressEvent::FlowFinished { .. } => "flow_finished",
        }
    }

    /// Renders the event as one JSONL line (no trailing newline).
    fn render(&self, seq: u64) -> String {
        let mut s = String::with_capacity(192);
        let _ = write!(
            s,
            "{{\"schema\":\"{TELEMETRY_SCHEMA}\",\"seq\":{seq},\"kind\":\"{}\"",
            self.kind()
        );
        match self {
            ProgressEvent::FlowStarted {
                design,
                width,
                height,
                valves,
                pins,
                lm_clusters,
                variant,
                policy,
                mode,
                threads,
            } => {
                s.push_str(",\"design\":");
                push_json_string(&mut s, design);
                let _ = write!(
                    s,
                    ",\"width\":{width},\"height\":{height},\"valves\":{valves},\"pins\":{pins},\"lm_clusters\":{lm_clusters},\"variant\":"
                );
                push_json_string(&mut s, variant);
                s.push_str(",\"policy\":");
                push_json_string(&mut s, policy);
                s.push_str(",\"mode\":");
                push_json_string(&mut s, mode);
                let _ = write!(s, ",\"threads\":{threads}");
            }
            ProgressEvent::StageEntered { stage } => {
                let _ = write!(s, ",\"stage\":\"{stage}\"");
            }
            ProgressEvent::StageExited {
                stage,
                items,
                elapsed_us,
            } => {
                let _ = write!(
                    s,
                    ",\"stage\":\"{stage}\",\"items\":{items},\"elapsed_us\":{elapsed_us}"
                );
            }
            ProgressEvent::RoundProgress {
                session,
                round,
                rounds_left,
                attempted,
                routed,
                failed,
                ripups,
                pressure,
                completion_milli,
                elapsed_us,
                eta_us,
            } => {
                let _ = write!(
                    s,
                    ",\"session\":{session},\"round\":{round},\"rounds_left\":{rounds_left},\"attempted\":{attempted},\"routed\":{routed},\"failed\":{failed},\"ripups\":{ripups},\"pressure\":{pressure},\"completion_milli\":{completion_milli},\"elapsed_us\":{elapsed_us},\"eta_us\":{eta_us}"
                );
            }
            ProgressEvent::DmeProgress {
                clusters,
                candidates,
            } => {
                let _ = write!(s, ",\"clusters\":{clusters},\"candidates\":{candidates}");
            }
            ProgressEvent::MstProgress {
                clusters,
                committed,
                splits,
                edges,
            } => {
                let _ = write!(
                    s,
                    ",\"clusters\":{clusters},\"committed\":{committed},\"splits\":{splits},\"edges\":{edges}"
                );
            }
            ProgressEvent::EscapeProgress {
                phase,
                round,
                pending,
                failed,
                declustered,
                ripped,
            } => {
                let _ = write!(
                    s,
                    ",\"phase\":{phase},\"round\":{round},\"pending\":{pending},\"failed\":{failed},\"declustered\":{declustered},\"ripped\":{ripped}"
                );
            }
            ProgressEvent::Heartbeat { stage, elapsed_us } => {
                let _ = write!(s, ",\"stage\":\"{stage}\",\"elapsed_us\":{elapsed_us}");
            }
            ProgressEvent::BudgetExceeded {
                stage,
                budget_ms,
                elapsed_us,
                round,
                pressure,
            } => {
                let _ = write!(
                    s,
                    ",\"stage\":\"{stage}\",\"budget_ms\":{budget_ms},\"elapsed_us\":{elapsed_us},\"round\":{round},\"pressure\":{pressure}"
                );
            }
            ProgressEvent::FlowFinished {
                routed,
                failed,
                matched,
                total_length,
                completion_milli,
                events,
                elapsed_us,
            } => {
                let _ = write!(
                    s,
                    ",\"routed\":{routed},\"failed\":{failed},\"matched\":{matched},\"total_length\":{total_length},\"completion_milli\":{completion_milli},\"events\":{events},\"elapsed_us\":{elapsed_us}"
                );
            }
        }
        s.push('}');
        s
    }

    /// Zeroes every wall-clock field (deterministic mode).
    fn strip_timing(&mut self) {
        match self {
            ProgressEvent::StageExited { elapsed_us, .. }
            | ProgressEvent::Heartbeat { elapsed_us, .. }
            | ProgressEvent::BudgetExceeded { elapsed_us, .. }
            | ProgressEvent::FlowFinished { elapsed_us, .. } => *elapsed_us = 0,
            ProgressEvent::RoundProgress {
                elapsed_us, eta_us, ..
            } => {
                *elapsed_us = 0;
                *eta_us = 0;
            }
            _ => {}
        }
    }
}

/// Destination for the event stream. `emit` receives both the typed
/// event (for human renderings) and the prerendered JSONL line.
pub trait TelemetrySink: Send {
    /// Consumes one event.
    fn emit(&mut self, event: &ProgressEvent, line: &str);

    /// Flushes / finalizes the sink at [`telemetry_take`] time.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error the sink ran into (during emission
    /// or finalization).
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Discards everything (placeholder / benchmarking sink).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn emit(&mut self, _event: &ProgressEvent, _line: &str) {}
}

/// Collects rendered lines into shared memory, for tests: keep the
/// handle from [`MemorySink::lines`] and read it after
/// [`telemetry_take`].
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared handle to the collected lines.
    pub fn lines(&self) -> Arc<Mutex<Vec<String>>> {
        Arc::clone(&self.lines)
    }
}

impl TelemetrySink for MemorySink {
    fn emit(&mut self, _event: &ProgressEvent, line: &str) {
        lock(&self.lines).push(line.to_string());
    }
}

/// Streams JSONL lines to an arbitrary writer (e.g. stderr),
/// line-buffered: every event is written and flushed immediately.
pub struct WriterSink {
    out: Box<dyn Write + Send>,
    error: Option<io::Error>,
}

impl std::fmt::Debug for WriterSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriterSink").field("error", &self.error).finish()
    }
}

impl WriterSink {
    /// Wraps a writer.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        Self { out, error: None }
    }

    /// Streams to standard error (the CLI's `--stream-out -`).
    pub fn stderr() -> Self {
        Self::new(Box::new(io::stderr()))
    }
}

impl TelemetrySink for WriterSink {
    fn emit(&mut self, _event: &ProgressEvent, line: &str) {
        if self.error.is_some() {
            return;
        }
        let r = writeln!(self.out, "{line}").and_then(|()| self.out.flush());
        if let Err(e) = r {
            self.error = Some(e);
        }
    }

    fn finish(&mut self) -> io::Result<()> {
        match self.error.take() {
            Some(e) => Err(e),
            None => self.out.flush(),
        }
    }
}

/// Streams JSONL lines to `<path>.tmp` (line-buffered) and renames the
/// temp file onto `path` only on a clean [`TelemetrySink::finish`] — a
/// run killed mid-stream never leaves a torn final file, only the
/// clearly-marked temp (which a later [`StreamWriter::create`] for the
/// same path truncates). A missing parent directory surfaces as a
/// clean `Err` at creation time.
#[derive(Debug)]
pub struct StreamWriter {
    tmp: PathBuf,
    path: PathBuf,
    out: Option<BufWriter<File>>,
    error: Option<io::Error>,
}

impl StreamWriter {
    /// Opens the temp file next to `path`.
    ///
    /// # Errors
    ///
    /// Any error opening `<path>.tmp` for writing — notably
    /// `NotFound` when the parent directory does not exist.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        let tmp = crate::export::tmp_path_of(&path);
        let file = File::create(&tmp)?;
        Ok(Self {
            tmp,
            path,
            out: Some(BufWriter::new(file)),
            error: None,
        })
    }
}

impl TelemetrySink for StreamWriter {
    fn emit(&mut self, _event: &ProgressEvent, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Some(out) = self.out.as_mut() {
            let r = writeln!(out, "{line}").and_then(|()| out.flush());
            if let Err(e) = r {
                self.error = Some(e);
            }
        }
    }

    fn finish(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            self.out = None;
            let _ = std::fs::remove_file(&self.tmp);
            return Err(e);
        }
        let Some(mut out) = self.out.take() else {
            return Ok(());
        };
        out.flush()?;
        drop(out);
        crate::export::rename_or_cleanup(&self.tmp, &self.path)
    }
}

impl Drop for StreamWriter {
    fn drop(&mut self) {
        // Not finished cleanly (simulated kill / panic unwind): remove
        // the temp file and leave the final path untouched.
        if self.out.take().is_some() {
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

/// Human one-line progress ticker on stderr (the CLI's `--progress`):
/// stage transitions, per-round negotiation progress, watchdog alarms
/// and the terminal summary.
#[derive(Debug, Default, Clone, Copy)]
pub struct TickerSink;

impl TelemetrySink for TickerSink {
    fn emit(&mut self, event: &ProgressEvent, _line: &str) {
        match event {
            ProgressEvent::StageEntered { stage } => eprintln!("[pacor] stage {stage}"),
            ProgressEvent::RoundProgress {
                session,
                round,
                routed,
                failed,
                ripups,
                completion_milli,
                ..
            } => eprintln!(
                "[pacor] s{session} r{round}: {routed} routed, {failed} failed, {ripups} ripups, {}.{}% complete",
                completion_milli / 10,
                completion_milli % 10
            ),
            ProgressEvent::BudgetExceeded {
                stage,
                budget_ms,
                elapsed_us,
                ..
            } => eprintln!(
                "[pacor] WATCHDOG: stage {stage} over budget ({budget_ms} ms), at {} ms",
                elapsed_us / 1000
            ),
            ProgressEvent::Heartbeat { stage, elapsed_us } => {
                eprintln!("[pacor] heartbeat: {stage} still running ({} ms)", elapsed_us / 1000)
            }
            ProgressEvent::FlowFinished {
                routed,
                failed,
                total_length,
                completion_milli,
                ..
            } => eprintln!(
                "[pacor] done: {routed} routed, {failed} failed, length {total_length}, {}.{}% complete",
                completion_milli / 10,
                completion_milli % 10
            ),
            _ => {}
        }
    }
}

/// Per-stage wall-clock budgets in milliseconds; `u64::MAX` means
/// unbudgeted. A budget of 0 always fires (useful for tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageBudgets {
    /// Stage 1 (valve clustering) budget.
    pub clustering: u64,
    /// Stage 2 (LM cluster routing) budget.
    pub lm_routing: u64,
    /// Stage 3 (MST routing) budget.
    pub mst_routing: u64,
    /// Stages 4–5 (escape) budget.
    pub escape: u64,
    /// Stage 6 (detour) budget.
    pub detour: u64,
}

impl StageBudgets {
    /// No stage is budgeted.
    pub const UNLIMITED: StageBudgets = StageBudgets {
        clustering: u64::MAX,
        lm_routing: u64::MAX,
        mst_routing: u64::MAX,
        escape: u64::MAX,
        detour: u64::MAX,
    };

    /// The budget for a stage name (`u64::MAX` for unknown stages).
    pub fn budget_ms(&self, stage: &str) -> u64 {
        match stage {
            "clustering" => self.clustering,
            "lm_routing" => self.lm_routing,
            "mst_routing" => self.mst_routing,
            "escape" => self.escape,
            "detour" => self.detour,
            _ => u64::MAX,
        }
    }

    /// Whether any stage carries a finite budget.
    pub fn any(&self) -> bool {
        self.clustering != u64::MAX
            || self.lm_routing != u64::MAX
            || self.mst_routing != u64::MAX
            || self.escape != u64::MAX
            || self.detour != u64::MAX
    }
}

impl Default for StageBudgets {
    fn default() -> Self {
        Self::UNLIMITED
    }
}

/// Telemetry behavior knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetryConfig {
    /// Zero every wall-clock field and disable the watchdog, making
    /// the raw JSONL stream byte-comparable across runs.
    pub deterministic: bool,
    /// Heartbeat cadence in milliseconds (0 = no heartbeat). Ignored
    /// in deterministic mode.
    pub heartbeat_ms: u64,
    /// Per-stage wall-clock budgets. Ignored in deterministic mode.
    pub budgets: StageBudgets,
}

impl TelemetryConfig {
    /// Timing-free configuration for byte-identity tests.
    pub fn deterministic() -> Self {
        Self {
            deterministic: true,
            ..Self::default()
        }
    }
}

/// Snapshot of per-round negotiation progress handed to
/// [`telemetry_round`]; wall-clock fields are filled in by the stream
/// core.
#[derive(Debug, Clone, Copy)]
pub struct RoundStats {
    /// Telemetry session id from [`telemetry_begin_session`].
    pub session: u32,
    /// Round number (1-based).
    pub round: u32,
    /// Rounds left before γ (0 on convergence).
    pub rounds_left: u32,
    /// Nets attempted this round.
    pub attempted: u64,
    /// Nets currently routed.
    pub routed: u64,
    /// Nets that failed this round.
    pub failed: u64,
    /// Cumulative rip-ups so far.
    pub ripups: u64,
    /// Cells carrying nonzero history cost.
    pub pressure: u64,
    /// Completion permille.
    pub completion_milli: u64,
}

/// Shared stream state: config, sinks and the counters/timers the
/// emit helpers and the watchdog both need.
struct StreamCore {
    cfg: TelemetryConfig,
    sinks: Vec<Box<dyn TelemetrySink>>,
    seq: u64,
    start: Instant,
    stage: Option<(&'static str, Instant)>,
    sessions: u32,
    session_start: Instant,
    last_round: u32,
    last_pressure: u64,
    budget_fired: Vec<&'static str>,
    last_emit: Instant,
}

impl StreamCore {
    fn emit(&mut self, mut event: ProgressEvent) {
        if self.cfg.deterministic {
            event.strip_timing();
        }
        let line = event.render(self.seq);
        self.seq += 1;
        self.last_emit = Instant::now();
        for sink in &mut self.sinks {
            sink.emit(&event, &line);
        }
    }

    /// Synchronous budget check (stage-exit path), so an overrun is
    /// reported even when the watchdog thread never got a tick in.
    fn check_budget(&mut self, stage: &'static str, elapsed_us: u64) {
        if self.cfg.deterministic {
            return;
        }
        let budget_ms = self.cfg.budgets.budget_ms(stage);
        if elapsed_us >= budget_ms.saturating_mul(1000) && !self.budget_fired.contains(&stage) {
            self.budget_fired.push(stage);
            let (round, pressure) = (self.last_round, self.last_pressure);
            self.emit(ProgressEvent::BudgetExceeded {
                stage,
                budget_ms,
                elapsed_us,
                round,
                pressure,
            });
        }
    }
}

/// The installed telemetry stream of the current thread.
struct TelemetryHandle {
    core: Arc<Mutex<StreamCore>>,
    watchdog: Option<(Arc<AtomicBool>, JoinHandle<()>)>,
}

thread_local! {
    static TELEMETRY: RefCell<Option<TelemetryHandle>> = const { RefCell::new(None) };
}

/// Locks a mutex, recovering from poisoning (a sink panic must not
/// take the whole stream down).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Installs a telemetry stream on the current thread, replacing (and
/// silently dropping) any previous one. Spawns the watchdog thread
/// when timing is live and a heartbeat cadence or stage budget is
/// configured.
pub fn telemetry_install(cfg: TelemetryConfig, sinks: Vec<Box<dyn TelemetrySink>>) {
    let now = Instant::now();
    let core = Arc::new(Mutex::new(StreamCore {
        cfg,
        sinks,
        seq: 0,
        start: now,
        stage: None,
        sessions: 0,
        session_start: now,
        last_round: 0,
        last_pressure: 0,
        budget_fired: Vec::new(),
        last_emit: now,
    }));
    let watchdog = if !cfg.deterministic && (cfg.heartbeat_ms > 0 || cfg.budgets.any()) {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let shared = Arc::clone(&core);
        let handle = std::thread::spawn(move || watchdog_loop(&shared, &flag));
        Some((stop, handle))
    } else {
        None
    };
    TELEMETRY.with(|t| *t.borrow_mut() = Some(TelemetryHandle { core, watchdog }));
}

/// Watchdog body: ticks a few times per heartbeat period, emitting
/// `BudgetExceeded` the moment the running stage overruns its budget
/// and `Heartbeat` whenever the stream has been silent for the
/// cadence.
fn watchdog_loop(core: &Mutex<StreamCore>, stop: &AtomicBool) {
    let tick = {
        let cfg = lock(core).cfg;
        let hb = if cfg.heartbeat_ms > 0 { cfg.heartbeat_ms / 4 } else { 50 };
        Duration::from_millis(hb.clamp(5, 50))
    };
    while !stop.load(Ordering::Relaxed) {
        std::thread::park_timeout(tick);
        let mut core = lock(core);
        if let Some((stage, started)) = core.stage {
            let elapsed_us = started.elapsed().as_micros() as u64;
            core.check_budget(stage, elapsed_us);
        }
        let hb = core.cfg.heartbeat_ms;
        if hb > 0 && core.last_emit.elapsed() >= Duration::from_millis(hb) {
            let (stage, elapsed_us) = match core.stage {
                Some((stage, started)) => (stage, started.elapsed().as_micros() as u64),
                None => ("flow", core.start.elapsed().as_micros() as u64),
            };
            core.emit(ProgressEvent::Heartbeat { stage, elapsed_us });
        }
    }
}

/// Removes the current thread's telemetry stream: stops the watchdog,
/// finishes every sink, and returns the emitted-event count — or the
/// first sink error. `None` when nothing was installed.
pub fn telemetry_take() -> Option<io::Result<u64>> {
    let handle = TELEMETRY.with(|t| t.borrow_mut().take())?;
    if let Some((stop, join)) = handle.watchdog {
        stop.store(true, Ordering::Relaxed);
        join.thread().unpark();
        let _ = join.join();
    }
    let mut core = lock(&handle.core);
    let mut first_err = None;
    for sink in &mut core.sinks {
        if let Err(e) = sink.finish() {
            first_err.get_or_insert(e);
        }
    }
    Some(match first_err {
        Some(e) => Err(e),
        None => Ok(core.seq),
    })
}

/// Whether the current thread has a telemetry stream installed. Emit
/// sites with non-trivial argument computation check this first, so
/// the disabled cost stays at one branch.
pub fn telemetry_active() -> bool {
    TELEMETRY.with(|t| t.borrow().is_some())
}

/// RAII guard from [`telemetry_pause`]: reinstalls the suspended
/// stream on drop.
#[must_use = "dropping the guard immediately resumes the stream"]
pub struct TelemetryPause {
    handle: Option<TelemetryHandle>,
}

impl Drop for TelemetryPause {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            TELEMETRY.with(|t| *t.borrow_mut() = Some(handle));
        }
    }
}

/// Suspends the current thread's telemetry stream until the returned
/// guard drops: emits in between are no-ops, but — unlike
/// [`telemetry_take`] — the watchdog keeps running and no sink is
/// finished, so the stream resumes exactly where it left off (same
/// `seq` chain, same sinks). The hierarchical flow wraps its
/// region-parallel fan-out in this so per-region stage events never
/// reach the stream, whether a region runs inline on the session
/// thread or on a worker (workers have no stream installed either
/// way). Pausing with nothing installed — or pausing twice — is a
/// harmless no-op.
pub fn telemetry_pause() -> TelemetryPause {
    TelemetryPause {
        handle: TELEMETRY.with(|t| t.borrow_mut().take()),
    }
}

/// Runs `core_op` against the installed stream core, if any.
fn with_core(core_op: impl FnOnce(&mut StreamCore)) {
    TELEMETRY.with(|t| {
        if let Some(handle) = t.borrow().as_ref() {
            core_op(&mut lock(&handle.core));
        }
    });
}

/// Emits the event built by `f` (called only when telemetry is
/// installed; the disabled cost is one thread-local check).
pub fn progress(f: impl FnOnce() -> ProgressEvent) {
    with_core(|core| core.emit(f()));
}

/// Marks a flow stage as entered: starts its watchdog timer and
/// emits [`ProgressEvent::StageEntered`].
pub fn telemetry_stage_enter(stage: &'static str) {
    with_core(|core| {
        core.stage = Some((stage, Instant::now()));
        core.budget_fired.retain(|s| *s != stage);
        core.emit(ProgressEvent::StageEntered { stage });
    });
}

/// Marks a flow stage as exited: emits a synchronous budget check
/// plus [`ProgressEvent::StageExited`] with the stage's wall-clock,
/// and clears the watchdog timer.
pub fn telemetry_stage_exit(stage: &'static str, items: u64) {
    with_core(|core| {
        let elapsed_us = match core.stage.take() {
            Some((_, started)) => started.elapsed().as_micros() as u64,
            None => 0,
        };
        core.check_budget(stage, elapsed_us);
        core.emit(ProgressEvent::StageExited {
            stage,
            items,
            elapsed_us,
        });
    });
}

/// Allocates the next telemetry session id (one per negotiation
/// `route_all` call) and restarts the per-session ETA timer. Returns 0
/// when telemetry is inactive.
pub fn telemetry_begin_session() -> u32 {
    let mut id = 0;
    with_core(|core| {
        core.sessions += 1;
        core.session_start = Instant::now();
        id = core.sessions;
    });
    id
}

/// Emits [`ProgressEvent::RoundProgress`] for one negotiation round,
/// filling the wall-clock and trend-ETA fields from the session timer
/// (zeroed in deterministic mode).
pub fn telemetry_round(stats: RoundStats) {
    with_core(|core| {
        core.last_round = stats.round;
        core.last_pressure = stats.pressure;
        let elapsed_us = if core.cfg.deterministic {
            0
        } else {
            core.session_start.elapsed().as_micros() as u64
        };
        let eta_us = elapsed_us / u64::from(stats.round.max(1)) * u64::from(stats.rounds_left);
        core.emit(ProgressEvent::RoundProgress {
            session: stats.session,
            round: stats.round,
            rounds_left: stats.rounds_left,
            attempted: stats.attempted,
            routed: stats.routed,
            failed: stats.failed,
            ripups: stats.ripups,
            pressure: stats.pressure,
            completion_milli: stats.completion_milli,
            elapsed_us,
            eta_us,
        });
    });
}

/// Emits the terminal [`ProgressEvent::FlowFinished`], stamping the
/// prior-event count and the flow wall-clock.
pub fn telemetry_flow_finished(
    routed: u64,
    failed: u64,
    matched: u64,
    total_length: u64,
    completion_milli: u64,
) {
    with_core(|core| {
        let events = core.seq;
        let elapsed_us = core.start.elapsed().as_micros() as u64;
        core.emit(ProgressEvent::FlowFinished {
            routed,
            failed,
            matched,
            total_length,
            completion_milli,
            events,
            elapsed_us,
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(lines: &Arc<Mutex<Vec<String>>>) -> Vec<String> {
        lock(lines).clone()
    }

    #[test]
    fn inactive_emits_are_noops() {
        assert!(!telemetry_active());
        let mut built = false;
        progress(|| {
            built = true;
            ProgressEvent::StageEntered { stage: "noop" }
        });
        assert!(!built, "event constructor must not run when inactive");
        telemetry_stage_enter("noop");
        telemetry_stage_exit("noop", 0);
        telemetry_round(RoundStats {
            session: 0,
            round: 1,
            rounds_left: 0,
            attempted: 0,
            routed: 0,
            failed: 0,
            ripups: 0,
            pressure: 0,
            completion_milli: 0,
        });
        assert_eq!(telemetry_begin_session(), 0);
        assert!(telemetry_take().is_none());
    }

    #[test]
    fn memory_sink_collects_versioned_lines() {
        let sink = MemorySink::new();
        let lines = sink.lines();
        telemetry_install(TelemetryConfig::deterministic(), vec![Box::new(sink)]);
        assert!(telemetry_active());
        telemetry_stage_enter("clustering");
        telemetry_stage_exit("clustering", 7);
        telemetry_flow_finished(3, 0, 2, 44, 1000);
        let n = telemetry_take().unwrap().unwrap();
        assert_eq!(n, 3);
        let got = drain(&lines);
        assert_eq!(got.len(), 3);
        for (i, line) in got.iter().enumerate() {
            assert!(line.starts_with(&format!(
                "{{\"schema\":\"{TELEMETRY_SCHEMA}\",\"seq\":{i},\"kind\":"
            )));
            assert!(line.ends_with('}'));
        }
        assert!(got[1].contains("\"items\":7"));
        assert!(got[1].contains("\"elapsed_us\":0"), "deterministic: {}", got[1]);
        assert!(got[2].contains("\"events\":2"));
    }

    #[test]
    fn pause_suspends_and_resumes_the_stream() {
        let sink = MemorySink::new();
        let lines = sink.lines();
        telemetry_install(TelemetryConfig::deterministic(), vec![Box::new(sink)]);
        telemetry_stage_enter("before");
        {
            let _pause = telemetry_pause();
            assert!(!telemetry_active());
            telemetry_stage_enter("hidden");
            telemetry_stage_exit("hidden", 99);
            let _double = telemetry_pause(); // no-op: nothing left to take
        }
        assert!(telemetry_active(), "guard drop must reinstall the stream");
        telemetry_stage_exit("before", 1);
        telemetry_take().unwrap().unwrap();
        let got = drain(&lines);
        assert_eq!(got.len(), 2, "paused events must not be emitted: {got:?}");
        assert!(got[0].contains("\"stage\":\"before\""));
        assert!(got[1].contains("\"seq\":1"), "seq chain resumes: {}", got[1]);
    }

    #[test]
    fn pause_without_stream_is_a_noop() {
        assert!(!telemetry_active());
        drop(telemetry_pause());
        assert!(!telemetry_active());
    }

    #[test]
    fn deterministic_mode_zeroes_round_timing() {
        let sink = MemorySink::new();
        let lines = sink.lines();
        telemetry_install(TelemetryConfig::deterministic(), vec![Box::new(sink)]);
        let s = telemetry_begin_session();
        assert_eq!(s, 1);
        telemetry_round(RoundStats {
            session: s,
            round: 2,
            rounds_left: 8,
            attempted: 5,
            routed: 3,
            failed: 2,
            ripups: 1,
            pressure: 9,
            completion_milli: 600,
        });
        telemetry_take().unwrap().unwrap();
        let got = drain(&lines);
        assert_eq!(got.len(), 1);
        assert!(got[0].contains("\"elapsed_us\":0,\"eta_us\":0"), "{}", got[0]);
        assert!(got[0].contains("\"rounds_left\":8"));
        assert!(got[0].contains("\"pressure\":9"));
    }

    #[test]
    fn budget_zero_fires_once_at_stage_exit() {
        let sink = MemorySink::new();
        let lines = sink.lines();
        let cfg = TelemetryConfig {
            deterministic: false,
            heartbeat_ms: 0,
            budgets: StageBudgets {
                escape: 0,
                ..StageBudgets::UNLIMITED
            },
        };
        telemetry_install(cfg, vec![Box::new(sink)]);
        telemetry_stage_enter("escape");
        telemetry_stage_exit("escape", 1);
        telemetry_stage_enter("detour");
        telemetry_stage_exit("detour", 1);
        telemetry_take().unwrap().unwrap();
        let got = drain(&lines);
        let exceeded: Vec<_> = got
            .iter()
            .filter(|l| l.contains("\"kind\":\"budget_exceeded\""))
            .collect();
        assert_eq!(exceeded.len(), 1, "{got:?}");
        assert!(exceeded[0].contains("\"stage\":\"escape\""));
        assert!(exceeded[0].contains("\"budget_ms\":0"));
        // The alarm precedes the stage_exited line for the same stage.
        let alarm = got.iter().position(|l| l.contains("budget_exceeded")).unwrap();
        let exit = got
            .iter()
            .position(|l| l.contains("stage_exited") && l.contains("escape"))
            .unwrap();
        assert!(alarm < exit);
    }

    #[test]
    fn watchdog_emits_heartbeat_and_budget_mid_stage() {
        let sink = MemorySink::new();
        let lines = sink.lines();
        let cfg = TelemetryConfig {
            deterministic: false,
            heartbeat_ms: 20,
            budgets: StageBudgets {
                lm_routing: 0,
                ..StageBudgets::UNLIMITED
            },
        };
        telemetry_install(cfg, vec![Box::new(sink)]);
        telemetry_stage_enter("lm_routing");
        // Give the watchdog a few ticks while the "stage" stalls.
        std::thread::sleep(Duration::from_millis(120));
        telemetry_take().unwrap().unwrap();
        let got = drain(&lines);
        assert!(
            got.iter().any(|l| l.contains("\"kind\":\"heartbeat\"")),
            "no heartbeat in {got:?}"
        );
        assert!(
            got.iter().any(|l| l.contains("\"kind\":\"budget_exceeded\"")
                && l.contains("\"stage\":\"lm_routing\"")),
            "no mid-stage budget alarm in {got:?}"
        );
    }

    #[test]
    fn deterministic_mode_never_spawns_watchdog() {
        let sink = MemorySink::new();
        let lines = sink.lines();
        let cfg = TelemetryConfig {
            deterministic: true,
            heartbeat_ms: 1,
            budgets: StageBudgets {
                clustering: 0,
                ..StageBudgets::UNLIMITED
            },
        };
        telemetry_install(cfg, vec![Box::new(sink)]);
        telemetry_stage_enter("clustering");
        std::thread::sleep(Duration::from_millis(30));
        telemetry_stage_exit("clustering", 1);
        telemetry_take().unwrap().unwrap();
        let got = drain(&lines);
        assert!(
            got.iter().all(|l| !l.contains("heartbeat") && !l.contains("budget_exceeded")),
            "wall-clock events leaked into deterministic stream: {got:?}"
        );
    }

    #[test]
    fn stream_writer_renames_only_on_finish() {
        let dir = std::env::temp_dir().join("pacor_stream_writer_clean");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let mut w = StreamWriter::create(&path).unwrap();
        w.emit(&ProgressEvent::StageEntered { stage: "escape" }, "{\"k\":1}");
        assert!(!path.exists(), "final file must not exist mid-stream");
        assert!(dir.join("events.jsonl.tmp").exists());
        w.finish().unwrap();
        assert!(path.exists());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"k\":1}\n");
        assert!(!dir.join("events.jsonl.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_writer_killed_mid_run_leaves_no_torn_file() {
        let dir = std::env::temp_dir().join("pacor_stream_writer_torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        {
            let mut w = StreamWriter::create(&path).unwrap();
            w.emit(&ProgressEvent::StageEntered { stage: "escape" }, "{\"k\":1}");
            // Dropped without finish — the simulated kill.
        }
        assert!(!path.exists(), "torn final file left behind");
        assert!(!dir.join("events.jsonl.tmp").exists(), "temp file left behind");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_writer_missing_parent_errors_cleanly() {
        let path = std::env::temp_dir()
            .join("pacor_stream_no_such_dir")
            .join("events.jsonl");
        let err = StreamWriter::create(&path).expect_err("parent is missing");
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn sessions_count_up_and_reset_per_install() {
        let sink = MemorySink::new();
        telemetry_install(TelemetryConfig::deterministic(), vec![Box::new(sink)]);
        assert_eq!(telemetry_begin_session(), 1);
        assert_eq!(telemetry_begin_session(), 2);
        telemetry_take().unwrap().unwrap();
        let sink = MemorySink::new();
        telemetry_install(TelemetryConfig::deterministic(), vec![Box::new(sink)]);
        assert_eq!(telemetry_begin_session(), 1);
        telemetry_take().unwrap().unwrap();
    }

    #[test]
    fn every_kind_renders_with_schema_and_kind() {
        let events = [
            ProgressEvent::FlowStarted {
                design: "T\"1".into(),
                width: 4,
                height: 4,
                valves: 1,
                pins: 1,
                lm_clusters: 0,
                variant: "PACOR".into(),
                policy: "full".into(),
                mode: "serial".into(),
                threads: 1,
            },
            ProgressEvent::StageEntered { stage: "escape" },
            ProgressEvent::StageExited {
                stage: "escape",
                items: 2,
                elapsed_us: 3,
            },
            ProgressEvent::RoundProgress {
                session: 1,
                round: 1,
                rounds_left: 9,
                attempted: 4,
                routed: 4,
                failed: 0,
                ripups: 0,
                pressure: 0,
                completion_milli: 1000,
                elapsed_us: 0,
                eta_us: 0,
            },
            ProgressEvent::DmeProgress {
                clusters: 2,
                candidates: 8,
            },
            ProgressEvent::MstProgress {
                clusters: 3,
                committed: 4,
                splits: 1,
                edges: 5,
            },
            ProgressEvent::EscapeProgress {
                phase: 1,
                round: 1,
                pending: 3,
                failed: 0,
                declustered: 0,
                ripped: 0,
            },
            ProgressEvent::Heartbeat {
                stage: "escape",
                elapsed_us: 5,
            },
            ProgressEvent::BudgetExceeded {
                stage: "escape",
                budget_ms: 1,
                elapsed_us: 2000,
                round: 3,
                pressure: 4,
            },
            ProgressEvent::FlowFinished {
                routed: 5,
                failed: 0,
                matched: 2,
                total_length: 44,
                completion_milli: 1000,
                events: 9,
                elapsed_us: 0,
            },
        ];
        for (i, e) in events.iter().enumerate() {
            let line = e.render(i as u64);
            assert!(line.starts_with(&format!(
                "{{\"schema\":\"{TELEMETRY_SCHEMA}\",\"seq\":{i},\"kind\":\"{}\"",
                e.kind()
            )));
            assert!(line.ends_with('}'));
            assert_eq!(line.matches('{').count(), 1, "flat object: {line}");
        }
        // The quote in the design name must be escaped.
        assert!(events[0].render(0).contains("\"design\":\"T\\\"1\""));
    }
}
