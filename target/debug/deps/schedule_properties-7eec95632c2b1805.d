/root/repo/target/debug/deps/schedule_properties-7eec95632c2b1805.d: crates/valves/tests/schedule_properties.rs

/root/repo/target/debug/deps/schedule_properties-7eec95632c2b1805: crates/valves/tests/schedule_properties.rs

crates/valves/tests/schedule_properties.rs:
