//! Quickstart: define a small biochip control layer by hand, run the full
//! PACOR flow, and inspect the routing report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pacor_repro::grid::Point;
use pacor_repro::pacor::{FlowConfig, PacorFlow, Problem};
use pacor_repro::valves::{Valve, ValveId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 20×20-track control layer. Two mixer valves (v0, v1) must switch
    // simultaneously — a length-matching pair — and a third independent
    // valve (v2) shares the chip.
    //
    // Activation sequences use the paper's "0-1-X" notation: v0 and v1
    // are driven identically; v2 clashes with them at step 0.
    let problem = Problem::builder("quickstart", 20, 20)
        .valve(Valve::new(ValveId(0), Point::new(4, 10), "0101".parse()?))
        .valve(Valve::new(ValveId(1), Point::new(14, 10), "0101".parse()?))
        .valve(Valve::new(ValveId(2), Point::new(9, 4), "1010".parse()?))
        .lm_cluster(vec![ValveId(0), ValveId(1)])
        .delta(1) // channel lengths must agree within one grid track
        .pins((0..10).map(|i| Point::new(0, 2 * i))) // candidate pins, west edge
        .obstacle(Point::new(9, 10)) // a flow-layer feature to route around
        .build()?;

    let report = PacorFlow::new(FlowConfig::default()).run(&problem)?;

    println!("{report}");
    println!();
    println!(
        "routed {}/{} valves ({:.0}% completion)",
        report.valves_routed,
        report.valves_total,
        report.completion_rate() * 100.0
    );
    for (i, c) in report.clusters.iter().enumerate() {
        println!(
            "cluster {i}: {} valve(s), length {}, {}",
            c.size,
            c.total_length,
            match (c.length_constrained, c.matched) {
                (true, true) => "length-matched ✓".to_string(),
                (true, false) => format!("NOT matched (mismatch {:?})", c.mismatch),
                (false, _) => "unconstrained".to_string(),
            }
        );
    }

    assert_eq!(report.completion_rate(), 1.0, "quickstart must route fully");
    Ok(())
}
