//! Property-based tests for valve compatibility and clustering.

use pacor_grid::Point;
use pacor_valves::{ActivationSequence, ActivationStatus, Valve, ValveId, ValveSet};
use proptest::prelude::*;

fn arb_status() -> impl Strategy<Value = ActivationStatus> {
    prop_oneof![
        Just(ActivationStatus::Open),
        Just(ActivationStatus::Closed),
        Just(ActivationStatus::DontCare),
    ]
}

fn arb_sequence(len: usize) -> impl Strategy<Value = ActivationSequence> {
    prop::collection::vec(arb_status(), len).prop_map(ActivationSequence::new)
}

fn arb_valve_set(n: usize, len: usize) -> impl Strategy<Value = ValveSet> {
    prop::collection::vec(arb_sequence(len), n).prop_map(|seqs| {
        seqs.into_iter()
            .enumerate()
            .map(|(i, s)| Valve::new(ValveId(i as u32), Point::new(i as i32, 0), s))
            .collect()
    })
}

proptest! {
    #[test]
    fn compatibility_symmetric_and_reflexive(a in arb_sequence(6), b in arb_sequence(6)) {
        prop_assert!(a.is_compatible(&a));
        prop_assert_eq!(a.is_compatible(&b), b.is_compatible(&a));
    }

    #[test]
    fn unify_agrees_with_compatibility(a in arb_sequence(5), b in arb_sequence(5)) {
        let u = a.unify(&b);
        prop_assert_eq!(u.is_some(), a.is_compatible(&b));
        if let Some(u) = u {
            prop_assert!(u.is_compatible(&a));
            prop_assert!(u.is_compatible(&b));
            // Unification never introduces don't-cares.
            prop_assert!(u.dont_care_count() <= a.dont_care_count().min(b.dont_care_count()));
        }
    }

    #[test]
    fn parse_display_roundtrip(s in arb_sequence(12)) {
        let text = s.to_string();
        let back: ActivationSequence = text.parse().unwrap();
        prop_assert_eq!(back, s);
    }

    #[test]
    fn greedy_clusters_partition_and_are_cliques(set in arb_valve_set(10, 4)) {
        let clusters = set.cluster_greedy(&[]);
        // Partition: every valve appears exactly once.
        let mut seen: Vec<ValveId> = clusters.iter().flat_map(|c| c.members().to_vec()).collect();
        seen.sort();
        let expected: Vec<ValveId> = set.iter().map(|v| v.id()).collect();
        prop_assert_eq!(seen, expected);
        // Clique: every pair in a cluster is compatible.
        let g = set.compat_graph();
        for c in &clusters {
            prop_assert!(g.is_clique(c.members()));
        }
    }

    #[test]
    fn exact_cover_lower_bounds_greedy(set in arb_valve_set(8, 3)) {
        let exact = set.min_clique_cover_exact();
        let greedy = set.cluster_greedy(&[]).len();
        prop_assert!(exact <= greedy);
        prop_assert!(greedy <= set.len());
        // Exact cover is at least the count implied by a crude bound: each
        // cluster has >= 1 valve.
        prop_assert!(exact >= 1 || set.is_empty());
    }

    #[test]
    fn compat_graph_matches_pairwise(set in arb_valve_set(7, 3)) {
        let g = set.compat_graph();
        for a in set.iter() {
            for b in set.iter() {
                let expect = a.id() != b.id() && a.is_compatible(b);
                prop_assert_eq!(g.are_compatible(a.id(), b.id()), expect);
            }
        }
    }
}
