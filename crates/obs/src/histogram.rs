//! Fixed-bucket histograms for hot-path value distributions.

/// Number of power-of-two buckets; values ≥ 2^(BUCKETS−2) share the last.
const BUCKETS: usize = 17;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `0` counts zeros, bucket `i ≥ 1` counts values in
/// `[2^(i−1), 2^i)`, and the final bucket absorbs everything larger.
/// All state is integral, so merging and exporting are exactly
/// reproducible — no floating-point quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl Histogram {
    /// Records one sample. The sum saturates rather than wraps.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    fn bucket_of(value: u64) -> usize {
        ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The bucket counts, low to high.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Lower bound of bucket `i` (0, then 2^(i−1)).
    fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Nearest-rank percentile estimate for `percent` ∈ [0, 100].
    ///
    /// The 0-based rank is `⌊(count−1)·percent/100⌋`; the estimate is
    /// the lower bound of the bucket holding that rank, clamped to the
    /// observed `[min, max]`. Entirely integral, so merging order and
    /// thread count cannot perturb it. When every sample lands on its
    /// bucket's lower bound (powers of two, zeros, or a constant
    /// sample) the estimate is **exact**; otherwise it under-reports by
    /// less than one bucket width.
    pub fn quantile(&self, percent: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if percent >= 100 {
            return self.max;
        }
        let rank = ((self.count - 1) as u128 * percent as u128 / 100) as u64;
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum > rank {
                return Self::bucket_floor(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate (see [`Histogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(50)
    }

    /// 95th-percentile estimate (see [`Histogram::quantile`]).
    pub fn p95(&self) -> u64 {
        self.quantile(95)
    }

    /// 99th-percentile estimate (see [`Histogram::quantile`]).
    pub fn p99(&self) -> u64 {
        self.quantile(99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_follow_powers_of_two() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1024, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.buckets()[0], 1); // 0
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 2); // 2, 3
        assert_eq!(h.buckets()[3], 1); // 4
        assert_eq!(h.buckets()[11], 1); // 1024
        assert_eq!(h.buckets()[BUCKETS - 1], 1); // overflow bucket
    }

    #[test]
    fn empty_histogram_reports_zero_min() {
        let h = Histogram::default();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn merge_matches_sequential_observation() {
        let mut all = Histogram::default();
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in 0..100u64 {
            all.observe(v * 31 % 257);
            if v % 2 == 0 {
                a.observe(v * 31 % 257);
            } else {
                b.observe(v * 31 % 257);
            }
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn quantiles_exact_on_distinct_powers_of_two() {
        // Sorted samples: [1, 2, 4, 8, 16, 32, 64, 128] — one per
        // bucket, each equal to its bucket's lower bound, so the
        // nearest-rank estimate is exact.
        let mut h = Histogram::default();
        for i in 0..8u32 {
            h.observe(1u64 << i);
        }
        // rank(p) = floor(7p/100): p50 → 3, p95 → 6, p99 → 6.
        assert_eq!(h.p50(), 8);
        assert_eq!(h.p95(), 64);
        assert_eq!(h.p99(), 64);
        assert_eq!(h.quantile(0), 1);
        assert_eq!(h.quantile(100), 128);
    }

    #[test]
    fn quantiles_exact_on_constant_and_tiny_samples() {
        let mut h = Histogram::default();
        for _ in 0..10 {
            h.observe(7);
        }
        // One bucket; the clamp to [min, max] = [7, 7] makes every
        // percentile exactly 7.
        assert_eq!((h.p50(), h.p95(), h.p99()), (7, 7, 7));

        let mut single = Histogram::default();
        single.observe(1000);
        assert_eq!((single.p50(), single.p99()), (1000, 1000));

        let empty = Histogram::default();
        assert_eq!((empty.p50(), empty.p95(), empty.p99()), (0, 0, 0));
    }

    #[test]
    fn quantiles_exact_on_zeros_and_monotone() {
        let mut h = Histogram::default();
        for v in [0u64, 0, 0, 0, 0, 0, 0, 0, 0, 1024] {
            h.observe(v);
        }
        // rank(50) = 4 → bucket 0 → 0; rank(95) = 8 → still 0;
        // rank(99) = 8 → 0. Only rank 9 reaches the outlier.
        assert_eq!((h.p50(), h.p95(), h.p99()), (0, 0, 0));
        assert_eq!(h.quantile(100), 1024);
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
    }

    #[test]
    fn quantiles_clamped_within_observed_range() {
        let mut h = Histogram::default();
        // 5 and 7 share bucket [4, 8); the bucket floor 4 is below the
        // observed min, so the clamp must lift the estimate to 5.
        h.observe(5);
        h.observe(7);
        assert_eq!(h.p50(), 5);
        assert_eq!(h.quantile(100), 7);
    }

    #[test]
    fn merging_empty_is_identity() {
        let mut h = Histogram::default();
        h.observe(5);
        let before = h.clone();
        h.merge(&Histogram::default());
        assert_eq!(h, before);
    }
}
