//! Golden end-to-end snapshots of the benchmark-suite chips.
//!
//! Every stage rewrite in this repository must be behavior-identical:
//! same routed lengths, same completion, same negotiation/escape work,
//! byte-identical post-mortem report. These tests lock each bench chip
//! (at the shared `BENCH_SEED`) against fixtures committed under
//! `tests/fixtures/golden/`, so an optimization PR can swap a kernel
//! and prove nothing observable moved.
//!
//! Regenerate fixtures after an *intentional* routing change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_flow -- --include-ignored
//! ```
//!
//! The largest chip (`B3-dense96`) is `#[ignore]`d because a debug-mode
//! run takes minutes; `make golden` runs it in release as part of
//! `make verify`.

use pacor_bench::{BENCH_SEED, FLOW_BENCH_CHIPS, FLOW_SMOKE_CHIP};
use pacor_repro::pacor::obs;
use pacor_repro::pacor::route::RipUpPolicy;
use pacor_repro::pacor::{synthesize_params, DesignParams, FlowConfig, PacorFlow};
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/golden"
    ))
}

/// The deterministic scalar outcome of one run, serialized as the
/// metrics fixture. Key order is fixed by serde_json's BTreeMap map
/// representation, so the bytes are stable.
fn metrics_snapshot(params: DesignParams, policy: RipUpPolicy) -> String {
    let problem = synthesize_params(params, BENCH_SEED);
    let config = FlowConfig::default().with_ripup_policy(policy);
    let report = PacorFlow::new(config)
        .run(&problem)
        .expect("bench chips route");
    let c = |name: &str| report.metrics.counter(name);
    // Hand-built JSON (the vendored serde_json has no `json!`): fixed
    // key order, `{:?}` for the f64 (shortest round-trip formatting).
    format!(
        "{{\n  \"chip\": \"{}\",\n  \"policy\": \"{}\",\n  \"seed\": {},\n  \
         \"total_length\": {},\n  \"completion_rate\": {:?},\n  \
         \"valves_routed\": {},\n  \"valves_total\": {},\n  \
         \"matched_clusters\": {},\n  \"matched_length\": {},\n  \
         \"clusters_multi\": {},\n  \"rounds\": {},\n  \"ripups\": {},\n  \
         \"escape_rounds\": {},\n  \"escape_ripped\": {},\n  \
         \"escape_declustered\": {},\n  \"astar_queries\": {},\n  \
         \"astar_expansions\": {},\n  \"detour_segments\": {}\n}}\n",
        params.name,
        policy.label(),
        BENCH_SEED,
        report.total_length,
        report.completion_rate(),
        report.valves_routed,
        report.valves_total,
        report.matched_clusters,
        report.matched_length,
        report.clusters_multi,
        c("negotiate.rounds"),
        c("negotiate.ripups"),
        c("escape.rounds"),
        c("escape.ripped"),
        c("escape.declustered"),
        c("astar.queries"),
        c("astar.expansions"),
        c("detour.segments"),
    )
}

/// The post-mortem report bytes of one flight-recorded run.
fn postmortem_snapshot(params: DesignParams, policy: RipUpPolicy) -> String {
    let problem = synthesize_params(params, BENCH_SEED);
    let config = FlowConfig::default().with_ripup_policy(policy);
    obs::flight_install(config.recorder_config());
    PacorFlow::new(config)
        .run(&problem)
        .expect("bench chips route");
    let log = obs::flight_take().expect("recorder installed");
    obs::post_mortem_json(&log)
}

fn check_or_update(name: &str, actual: &str) {
    let path = fixture_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(fixture_dir()).expect("fixture dir");
        std::fs::write(&path, actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test --test golden_flow -- --include-ignored",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "golden snapshot {name} drifted — a supposedly behavior-identical \
         change moved observable output (rerun with UPDATE_GOLDEN=1 only \
         if the change is intentional)"
    );
}

fn check_chip(params: DesignParams) {
    for policy in [RipUpPolicy::Full, RipUpPolicy::Incremental] {
        check_or_update(
            &format!("{}-{}.json", params.name, policy.label()),
            &metrics_snapshot(params, policy),
        );
        check_or_update(
            &format!("{}-{}.report.json", params.name, policy.label()),
            &postmortem_snapshot(params, policy),
        );
    }
}

#[test]
fn golden_b0_smoke16() {
    check_chip(FLOW_SMOKE_CHIP);
}

#[test]
fn golden_b1_dense24() {
    check_chip(FLOW_BENCH_CHIPS[0]);
}

#[test]
fn golden_b2_dense48() {
    check_chip(FLOW_BENCH_CHIPS[1]);
}

#[test]
#[ignore = "minutes in debug; `make golden` runs it in release"]
fn golden_b3_dense96() {
    check_chip(FLOW_BENCH_CHIPS[2]);
}
