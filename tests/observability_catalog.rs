//! Anti-rot guard for `docs/OBSERVABILITY.md`: run a smoke flow that
//! exercises both negotiation modes and both rip-up policies with the
//! flight recorder installed and the telemetry stream collecting, and
//! assert that every counter, histogram, span, instant, recorder-event
//! name, and telemetry event kind actually emitted appears in the
//! catalog. Adding an emit site without cataloging it fails here.

use pacor_repro::pacor::obs::{self, TraceEvent};
use pacor_repro::pacor::route::{NegotiationMode, RipUpPolicy};
use pacor_repro::pacor::{self, synthesize_params, DesignParams, FlowConfig, PacorFlow, RoutingMode};
use std::collections::BTreeSet;

/// Dense enough that negotiation rips up and escape recovers, so the
/// rarer emit sites (rip-up, de-clustering, detouring) all fire.
const DENSE: DesignParams = DesignParams {
    name: "D1-dense24",
    width: 24,
    height: 24,
    valves: 18,
    control_pins: 40,
    obstacles: 50,
    multi_clusters: 8,
    pairs_only: false,
};

fn read_catalog() -> String {
    std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/docs/OBSERVABILITY.md"
    ))
    .expect("docs/OBSERVABILITY.md exists")
}

#[test]
fn every_emitted_name_is_catalogued() {
    let problem = synthesize_params(DENSE, 42);

    let session = obs::Session::begin();
    let config = FlowConfig::default()
        .with_threads(4)
        .with_negotiation_mode(NegotiationMode::Parallel);
    obs::flight_install(config.recorder_config());
    let sink = obs::MemorySink::new();
    let lines_handle = sink.lines();
    obs::telemetry_install(obs::TelemetryConfig::deterministic(), vec![Box::new(sink)]);
    let mut kinds: BTreeSet<&'static str> = BTreeSet::new();
    for policy in [RipUpPolicy::Full, RipUpPolicy::Incremental] {
        PacorFlow::new(config.with_ripup_policy(policy))
            .run(&problem)
            .expect("dense chip routes");
    }
    // A multi-region hierarchical run (gcell smaller than the chip), so
    // the `global.*` counters/histogram and the global/regions/stitch/
    // repair emit sites are guarded too.
    PacorFlow::new(
        config
            .with_routing_mode(RoutingMode::Hierarchical)
            .with_gcell_size(8),
    )
    .run(&problem)
    .expect("dense chip routes hierarchically");
    let log = obs::flight_take().expect("recorder installed");
    obs::telemetry_take()
        .expect("telemetry installed")
        .expect("no sink errors");
    kinds.extend(log.events().iter().map(|e| e.kind()));
    let report = session.finish();

    // Telemetry event kinds pulled from the raw JSONL stream, so the
    // doc's streaming-telemetry section rots as loudly as the rest.
    let telemetry_kinds: BTreeSet<String> = lines_handle
        .lock()
        .expect("sink lines")
        .iter()
        .map(|l| {
            let rest = l.split("\"kind\":\"").nth(1).expect("line carries kind");
            rest[..rest.find('"').expect("kind is quoted")].to_string()
        })
        .collect();
    assert!(
        telemetry_kinds.contains("round_progress") && telemetry_kinds.contains("escape_progress"),
        "smoke flow too tame to guard the telemetry catalog: {telemetry_kinds:?}"
    );

    let mut names: BTreeSet<String> = BTreeSet::new();
    names.extend(report.counters().map(|(n, _)| n.to_string()));
    names.extend(report.histograms().map(|(n, _)| n.to_string()));
    for event in report.events() {
        match event {
            TraceEvent::Span { name, .. }
            | TraceEvent::Instant { name, .. }
            | TraceEvent::Counter { name, .. } => {
                names.insert(name.to_string());
            }
        }
    }
    names.extend(kinds.iter().map(|k| k.to_string()));
    names.extend(telemetry_kinds);
    assert!(
        names.contains("negotiate.ripups")
            && names.contains("rip_up")
            && names.contains("global.regions")
            && names.contains("global.corridor_len"),
        "smoke flow too tame to guard the catalog: {names:?}"
    );

    let catalog = read_catalog();
    let missing: Vec<&String> = names
        .iter()
        .filter(|n| !catalog.contains(&format!("`{n}`")))
        .collect();
    assert!(
        missing.is_empty(),
        "emitted names missing from docs/OBSERVABILITY.md: {missing:?}"
    );
}

/// Recursively collects every object key of a JSON value.
fn collect_keys(value: &serde::Value, keys: &mut BTreeSet<String>) {
    match value {
        serde::Value::Object(entries) => {
            for (k, v) in entries {
                keys.insert(k.clone());
                collect_keys(v, keys);
            }
        }
        serde::Value::Array(items) => {
            for v in items {
                collect_keys(v, keys);
            }
        }
        _ => {}
    }
}

#[test]
fn digest_and_diff_schema_keys_are_catalogued() {
    let problem = synthesize_params(DENSE, 42);
    let config = FlowConfig::default();
    let session = obs::Session::begin();
    let report = PacorFlow::new(config).run(&problem).expect("routes");
    let obs_report = session.finish();
    let digest = pacor::run_digest(&problem, &config, &report, &obs_report);

    // A perturbed clone populates every rundiff section: fingerprint
    // drift, quality drift, counter drift, and span add/remove/change.
    let mut other = digest.clone();
    other.fingerprint.config[1].1 = "0.987".to_string();
    other.outcome.total_length += 1;
    if let Some(c) = other.counters.first_mut() {
        c.1 += 1;
    }
    let moved = other.wall.spans.remove(0);
    other.wall.spans.push(obs::SpanNode {
        name: "added.span".to_string(),
        ..moved
    });
    let diff = obs::diff_runs(&digest, &other);
    assert!(
        !diff.fingerprint.is_empty()
            && !diff.quality.is_empty()
            && !diff.metrics.is_empty()
            && !diff.span_added.is_empty()
            && !diff.span_removed.is_empty(),
        "perturbation too tame to guard every rundiff section"
    );

    let mut keys: BTreeSet<String> = BTreeSet::new();
    let digest_doc: serde::Value =
        serde_json::from_str(&digest.to_json()).expect("digest JSON parses");
    collect_keys(&digest_doc, &mut keys);
    let diff_doc: serde::Value =
        serde_json::from_str(&obs::diff_json(&diff)).expect("diff JSON parses");
    collect_keys(&diff_doc, &mut keys);
    assert!(
        keys.contains("fingerprint") && keys.contains("span_changed") && keys.contains("slack"),
        "schema walk too tame to guard the catalog: {keys:?}"
    );

    let catalog = read_catalog();
    let missing: Vec<&String> = keys
        .iter()
        .filter(|k| !catalog.contains(&format!("`{k}`")))
        .collect();
    assert!(
        missing.is_empty(),
        "digest/diff schema keys missing from docs/OBSERVABILITY.md: {missing:?}"
    );
}
