//! Maximum weight clique solvers for the PACOR reproduction.
//!
//! PACOR selects one candidate Steiner tree per cluster by formulating a
//! maximum weight clique problem (MWCP, Section 4.2): each candidate tree
//! becomes a node weighted by its length-mismatch cost (Eq. 2), and each
//! pair of trees from *different* clusters gets an edge weighted by their
//! overlap cost (Eq. 3). Because same-cluster candidates share no edge, a
//! clique picks at most one tree per cluster; the maximum weight clique is
//! the selection.
//!
//! The paper solves the MWCP with a Gurobi ILP. This crate substitutes an
//! exact **branch-and-bound** solver (plus a greedy constructor and a tabu
//! local search used both as B&B warm start and as a fallback for large
//! instances). At the benchmark sizes of the paper (≤ ~40 clusters × a few
//! candidates each) the exact solver returns the same optimum the ILP
//! would.
//!
//! # Examples
//!
//! ```
//! use pacor_clique::{Solver, WeightedGraph};
//!
//! let mut g = WeightedGraph::new(3);
//! g.set_node_weight(0, 5.0);
//! g.set_node_weight(1, 4.0);
//! g.set_node_weight(2, 10.0);
//! g.add_edge(0, 1, -1.0); // 0 and 1 can coexist at a small penalty
//! let best = Solver::exact().solve(&g);
//! assert_eq!(best.nodes, vec![2]); // {0,1} weighs 8, {2} weighs 10
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod annealing;
mod bitset;
mod exact;
mod graph;
mod greedy;
mod local_search;
mod selection;

pub use annealing::QuboAnnealer;
pub use bitset::BitBranchAndBound;
pub use exact::BranchAndBound;
pub use graph::{CliqueSolution, WeightedGraph};
pub use greedy::Greedy;
pub use local_search::TabuLocalSearch;
pub use selection::{
    select_one_per_group, select_with_solver, GroupSelection, PairCost, SelectionInstance,
};

/// Unified front-end over the clique solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Solver {
    /// Exact branch-and-bound (optimal; exponential worst case).
    Exact,
    /// Greedy construction only.
    Greedy,
    /// Greedy construction refined by tabu local search.
    LocalSearch {
        /// Number of improvement iterations.
        iterations: usize,
    },
    /// QUBO formulation solved by simulated annealing (the paper's
    /// "unconstrained quadratic programming based method").
    Annealing {
        /// RNG seed (deterministic results per seed).
        seed: u64,
        /// Number of annealing sweeps.
        sweeps: usize,
    },
}

impl Solver {
    /// The exact solver.
    pub fn exact() -> Self {
        Solver::Exact
    }

    /// Runs the chosen algorithm on `graph`.
    pub fn solve(self, graph: &WeightedGraph) -> CliqueSolution {
        match self {
            Solver::Exact => BranchAndBound::new().solve(graph),
            Solver::Greedy => Greedy.solve(graph),
            Solver::LocalSearch { iterations } => TabuLocalSearch::new(iterations).solve(graph),
            Solver::Annealing { seed, sweeps } => {
                QuboAnnealer::new(seed).with_sweeps(sweeps).solve(graph)
            }
        }
    }
}
