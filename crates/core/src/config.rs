//! Flow configuration and self-comparison variants.

use pacor_route::{NegotiationMode, RipUpPolicy};
use serde::{Deserialize, Serialize};

/// Which version of the flow to run — the paper's Table 2 compares three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FlowVariant {
    /// The full PACOR flow (candidate selection + final-stage detouring).
    #[default]
    Pacor,
    /// "w/o Sel": skip the MWCP candidate Steiner tree selection and take
    /// the first (canonical) candidate for every cluster.
    WithoutSelection,
    /// "Detour First": detour for length matching immediately after the
    /// negotiation-based routing, before escape routing.
    DetourFirst,
}

impl FlowVariant {
    /// All three variants, in the paper's column order.
    pub const ALL: [FlowVariant; 3] = [
        FlowVariant::WithoutSelection,
        FlowVariant::DetourFirst,
        FlowVariant::Pacor,
    ];

    /// The paper's column label.
    pub fn label(self) -> &'static str {
        match self {
            FlowVariant::Pacor => "PACOR",
            FlowVariant::WithoutSelection => "w/o Sel",
            FlowVariant::DetourFirst => "Detour First",
        }
    }
}

/// Which escape-stage solver drives `escape_all`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EscapeSolver {
    /// Persistent network with delta edits, warm-started min-cost flow,
    /// and windowed recovery solves (the default).
    #[default]
    Incremental,
    /// Full per-round network rebuild and cold solve — the pre-rewrite
    /// behaviour, kept for ablation and the `escape-smoke` equivalence
    /// check.
    Reference,
}

impl EscapeSolver {
    /// Parses a CLI-style name (`incremental` / `reference`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "incremental" => Some(EscapeSolver::Incremental),
            "reference" => Some(EscapeSolver::Reference),
            _ => None,
        }
    }

    /// The CLI-facing name (matches [`EscapeSolver::parse`]).
    pub fn label(self) -> &'static str {
        match self {
            EscapeSolver::Incremental => "incremental",
            EscapeSolver::Reference => "reference",
        }
    }
}

/// How the flow traverses the chip: one flat pass, or a hierarchical
/// global-then-detailed split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RoutingMode {
    /// One detailed pass over the whole chip (the paper's flow).
    #[default]
    Flat,
    /// Coarsen the chip into capacity-tracked gcells, assign each
    /// cluster a congestion-aware corridor, then run the detailed flow
    /// per vertical region stripe — deterministically in parallel —
    /// and stitch cross-region clusters in a final repair pass.
    Hierarchical,
}

impl RoutingMode {
    /// Parses a CLI-style name (`flat` / `hierarchical`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "flat" => Some(RoutingMode::Flat),
            "hierarchical" => Some(RoutingMode::Hierarchical),
            _ => None,
        }
    }

    /// The CLI-facing name.
    pub fn label(self) -> &'static str {
        match self {
            RoutingMode::Flat => "flat",
            RoutingMode::Hierarchical => "hierarchical",
        }
    }
}

/// Tunable parameters of the flow, defaulting to the paper's values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowConfig {
    /// Flow variant to run.
    pub variant: FlowVariant,
    /// Mismatch-vs-overlap weighting λ in Eqs. (2)/(3); paper: 0.1.
    pub lambda: f64,
    /// Negotiation iteration threshold γ (Algorithm 1); paper: 10.
    pub gamma: u32,
    /// History base cost `b`; paper: 1.0.
    pub history_base: f64,
    /// History decay α (Eq. 5); paper: 0.1.
    pub history_alpha: f64,
    /// Detouring iteration threshold θ (Algorithm 2); paper: 10.
    pub theta: u32,
    /// Maximum escape-routing rip-up / de-clustering rounds.
    pub max_ripup_rounds: u32,
    /// Candidate Steiner trees per cluster.
    pub max_candidates: usize,
    /// Use the exact MWCP solver up to this many candidate nodes; larger
    /// instances fall back to tabu local search (the paper's Gurobi ILP
    /// has no such limit, but behaves identically at benchmark scale).
    pub exact_selection_limit: usize,
    /// DFS node budget per exact-length attempt in the bounded router.
    pub detour_node_budget: u64,
    /// Worker threads for the data-parallel stages (DME candidate
    /// generation, MWCP pair scoring). Results are merged in fixed
    /// cluster order, so any value yields bit-identical routing; 1
    /// disables the fan-out entirely.
    pub thread_count: usize,
    /// What negotiation rips up between failed rounds. `Incremental`
    /// (the default) keeps converged paths; `Full` is the paper's
    /// Algorithm 1 verbatim, kept for ablation.
    pub ripup_policy: RipUpPolicy,
    /// How each negotiation round attempts its pending nets. `Parallel`
    /// speculates all of them concurrently over `thread_count` workers
    /// and commits deterministically, producing the identical routed
    /// result as `Serial` (the default) at any thread count.
    pub negotiation_mode: NegotiationMode,
    /// Escape-stage solver: incremental persistent network (default) or
    /// the full-rebuild reference path.
    pub escape_solver: EscapeSolver,
    /// Flight-recorder event-ring capacity (oldest events dropped on
    /// overflow). Only read when a recorder is installed.
    pub recorder_capacity: usize,
    /// Negotiation rounds between flight-recorder congestion snapshots
    /// (round 1 and final rounds are always captured).
    pub recorder_cadence: u32,
    /// Flat single-pass routing (the default) or the hierarchical
    /// global-then-detailed split for large chips.
    pub routing_mode: RoutingMode,
    /// Gcell tile side in grid cells for the hierarchical global stage.
    /// A tile at least as large as the chip degenerates to one region
    /// and reproduces the flat flow byte-for-byte.
    pub gcell_size: u32,
    /// Halo in grid cells added around each cluster's bounding box when
    /// deciding whether it fits a single region stripe.
    pub region_halo: u32,
    /// The escape stage is running inside a hierarchical region/stitch
    /// window: build its flow networks by flooding out from the sources
    /// (cost proportional to the window, not the chip) and skip the
    /// last-resort phase — a pin-starved window would churn through
    /// hopeless global rounds there; failures bubble up to the
    /// whole-chip repair pass instead, which runs with this off.
    pub escape_windowed: bool,
}

impl Default for FlowConfig {
    fn default() -> Self {
        Self {
            variant: FlowVariant::Pacor,
            lambda: 0.1,
            gamma: 10,
            history_base: 1.0,
            history_alpha: 0.1,
            theta: 10,
            max_ripup_rounds: 5,
            max_candidates: 6,
            exact_selection_limit: 128,
            detour_node_budget: 200_000,
            thread_count: 1,
            ripup_policy: RipUpPolicy::default(),
            negotiation_mode: NegotiationMode::default(),
            escape_solver: EscapeSolver::default(),
            recorder_capacity: pacor_obs::RecorderConfig::default().capacity,
            recorder_cadence: pacor_obs::RecorderConfig::default().snapshot_cadence,
            routing_mode: RoutingMode::Flat,
            gcell_size: 64,
            region_halo: 2,
            escape_windowed: false,
        }
    }
}

impl FlowConfig {
    /// The default configuration for a given variant.
    pub fn for_variant(variant: FlowVariant) -> Self {
        Self {
            variant,
            ..Self::default()
        }
    }

    /// Sets the worker-thread count for the data-parallel stages
    /// (0 is treated as 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.thread_count = threads.max(1);
        self
    }

    /// Sets the negotiation rip-up policy.
    pub fn with_ripup_policy(mut self, ripup_policy: RipUpPolicy) -> Self {
        self.ripup_policy = ripup_policy;
        self
    }

    /// Sets the negotiation round-attempt mode.
    pub fn with_negotiation_mode(mut self, negotiation_mode: NegotiationMode) -> Self {
        self.negotiation_mode = negotiation_mode;
        self
    }

    /// Sets the escape-stage solver.
    pub fn with_escape_solver(mut self, escape_solver: EscapeSolver) -> Self {
        self.escape_solver = escape_solver;
        self
    }

    /// Sets the flight-recorder event capacity.
    pub fn with_recorder_capacity(mut self, capacity: usize) -> Self {
        self.recorder_capacity = capacity;
        self
    }

    /// Sets the flight-recorder snapshot cadence (0 is treated as 1).
    pub fn with_recorder_cadence(mut self, cadence: u32) -> Self {
        self.recorder_cadence = cadence.max(1);
        self
    }

    /// Sets the routing mode (flat or hierarchical).
    pub fn with_routing_mode(mut self, routing_mode: RoutingMode) -> Self {
        self.routing_mode = routing_mode;
        self
    }

    /// Sets the gcell tile side for the hierarchical global stage
    /// (0 is treated as 1).
    pub fn with_gcell_size(mut self, gcell_size: u32) -> Self {
        self.gcell_size = gcell_size.max(1);
        self
    }

    /// Sets the region halo for the hierarchical partitioner.
    pub fn with_region_halo(mut self, region_halo: u32) -> Self {
        self.region_halo = region_halo;
        self
    }

    /// Enables or disables the escape stage's last-resort phase.
    pub fn with_escape_windowed(mut self, on: bool) -> Self {
        self.escape_windowed = on;
        self
    }

    /// The [`pacor_obs::RecorderConfig`] these knobs describe, for
    /// callers that install a flight recorder around the flow.
    pub fn recorder_config(&self) -> pacor_obs::RecorderConfig {
        pacor_obs::RecorderConfig {
            capacity: self.recorder_capacity,
            snapshot_cadence: self.recorder_cadence,
            ..pacor_obs::RecorderConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = FlowConfig::default();
        assert_eq!(c.variant, FlowVariant::Pacor);
        assert_eq!(c.lambda, 0.1);
        assert_eq!(c.gamma, 10);
        assert_eq!(c.history_base, 1.0);
        assert_eq!(c.history_alpha, 0.1);
        assert_eq!(c.theta, 10);
        assert_eq!(c.thread_count, 1, "parallelism is opt-in");
        assert_eq!(c.ripup_policy, RipUpPolicy::Incremental);
        assert_eq!(c.negotiation_mode, NegotiationMode::Serial);
        assert_eq!(c.escape_solver, EscapeSolver::Incremental);
        assert_eq!(c.recorder_config(), pacor_obs::RecorderConfig::default());
        assert_eq!(c.routing_mode, RoutingMode::Flat, "hierarchy is opt-in");
        assert_eq!(c.gcell_size, 64);
        assert_eq!(c.region_halo, 2);
        assert!(!c.escape_windowed, "flat escape always runs to the end");
    }

    #[test]
    fn routing_mode_parse() {
        assert_eq!(RoutingMode::parse("flat"), Some(RoutingMode::Flat));
        assert_eq!(
            RoutingMode::parse("hierarchical"),
            Some(RoutingMode::Hierarchical)
        );
        assert_eq!(RoutingMode::parse("Hierarchical"), None);
        assert_eq!(RoutingMode::Flat.label(), "flat");
        assert_eq!(RoutingMode::Hierarchical.label(), "hierarchical");
        let c = FlowConfig::default()
            .with_routing_mode(RoutingMode::Hierarchical)
            .with_gcell_size(0)
            .with_region_halo(5);
        assert_eq!(c.routing_mode, RoutingMode::Hierarchical);
        assert_eq!(c.gcell_size, 1, "a zero tile would loop forever");
        assert_eq!(c.region_halo, 5);
    }

    #[test]
    fn recorder_knobs_reach_the_recorder_config() {
        let c = FlowConfig::default()
            .with_recorder_capacity(128)
            .with_recorder_cadence(2);
        assert_eq!(c.recorder_config().capacity, 128);
        assert_eq!(c.recorder_config().snapshot_cadence, 2);
        assert_eq!(
            FlowConfig::default()
                .with_recorder_cadence(0)
                .recorder_cadence,
            1,
            "cadence 0 would divide by zero; clamp to every round"
        );
    }

    #[test]
    fn escape_solver_parse() {
        assert_eq!(
            EscapeSolver::parse("incremental"),
            Some(EscapeSolver::Incremental)
        );
        assert_eq!(
            EscapeSolver::parse("reference"),
            Some(EscapeSolver::Reference)
        );
        assert_eq!(EscapeSolver::parse("Reference"), None);
        assert_eq!(
            FlowConfig::default()
                .with_escape_solver(EscapeSolver::Reference)
                .escape_solver,
            EscapeSolver::Reference
        );
    }

    #[test]
    fn variant_labels() {
        assert_eq!(FlowVariant::Pacor.label(), "PACOR");
        assert_eq!(FlowVariant::WithoutSelection.label(), "w/o Sel");
        assert_eq!(FlowVariant::DetourFirst.label(), "Detour First");
        assert_eq!(FlowVariant::ALL.len(), 3);
    }

    #[test]
    fn for_variant_sets_variant_only() {
        let c = FlowConfig::for_variant(FlowVariant::DetourFirst);
        assert_eq!(c.variant, FlowVariant::DetourFirst);
        assert_eq!(c.lambda, FlowConfig::default().lambda);
    }
}
