/root/repo/target/release/deps/full_flow-8aa518133a7190dc.d: tests/full_flow.rs

/root/repo/target/release/deps/full_flow-8aa518133a7190dc: tests/full_flow.rs

tests/full_flow.rs:
