//! Geometry and routing-grid substrate for the PACOR reproduction.
//!
//! The control layer of a flow-based microfluidic biochip is routed on a
//! uniform grid whose pitch is derived from the minimum channel width and
//! spacing design rules (PACOR, Section 4.1). This crate provides:
//!
//! * [`Point`] / [`Rect`] — integer Manhattan geometry,
//! * [`Grid`] — the routing grid with cell states,
//! * [`ObsMap`] — the boolean obstacle map used by the negotiation router
//!   (Algorithm 1 of the paper), with checkpoint/rollback for rip-up,
//! * [`DesignRules`] — physical-to-grid conversion,
//! * [`GridPath`] — a routed channel segment with length accounting,
//! * the [`olcost`] bounding-box overlap cost of Eq. (4).
//!
//! # Examples
//!
//! ```
//! use pacor_grid::{Grid, Point};
//!
//! let mut grid = Grid::new(10, 10)?;
//! grid.set_obstacle(Point::new(3, 3));
//! assert!(grid.is_obstacle(Point::new(3, 3)));
//! assert_eq!(Point::new(0, 0).manhattan(Point::new(3, 4)), 7);
//! # Ok::<(), pacor_grid::GridError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod error;
mod gcell;
mod grid;
mod obsmap;
mod overlap;
mod path;
mod point;
mod rect;
mod rules;

pub use analysis::{corridor_capacity, grid_components, Components};
pub use error::GridError;
pub use gcell::GcellGrid;
pub use grid::{Cell, Grid};
pub use obsmap::ObsMap;
pub use overlap::{bbox_of_edge, olcost};
pub use path::GridPath;
pub use point::Point;
pub use rect::Rect;
pub use rules::DesignRules;

/// Length measured in routing-grid units (edges traversed).
///
/// The paper measures all channel lengths in grid units; the
/// length-matching threshold `δ` is expressed in the same unit.
pub type GridLen = u64;
