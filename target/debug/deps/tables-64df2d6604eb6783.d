/root/repo/target/debug/deps/tables-64df2d6604eb6783.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-64df2d6604eb6783: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
