//! Property-based tests for the MWCP solvers.

use pacor_clique::{
    select_one_per_group, BranchAndBound, Greedy, QuboAnnealer, SelectionInstance, Solver,
    TabuLocalSearch, WeightedGraph,
};
use proptest::prelude::*;

/// Strategy: a random node/edge weighted graph of up to `n` nodes.
fn arb_graph(max_n: usize) -> impl Strategy<Value = WeightedGraph> {
    (2..=max_n).prop_flat_map(|n| {
        let weights = prop::collection::vec(-4.0f64..8.0, n);
        let edges = prop::collection::vec(
            ((0..n), (0..n), -3.0f64..3.0),
            0..(n * (n - 1) / 2).max(1),
        );
        (weights, edges).prop_map(move |(ws, es)| {
            let mut g = WeightedGraph::new(n);
            for (v, w) in ws.into_iter().enumerate() {
                g.set_node_weight(v, w);
            }
            for (u, v, w) in es {
                if u != v {
                    g.add_edge(u, v, w);
                }
            }
            g
        })
    })
}

/// Brute-force optimum over all subsets.
fn brute_force(g: &WeightedGraph) -> f64 {
    let n = g.len();
    let mut best = 0.0f64;
    for mask in 0u32..(1 << n) {
        let nodes: Vec<usize> = (0..n).filter(|&v| mask & (1 << v) != 0).collect();
        if g.is_clique(&nodes) {
            best = best.max(g.weight_of(&nodes));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_matches_brute_force(g in arb_graph(9)) {
        let exact = BranchAndBound::new().solve(&g);
        prop_assert!(g.is_clique(&exact.nodes));
        prop_assert!((exact.weight - brute_force(&g)).abs() < 1e-9);
    }

    #[test]
    fn heuristics_are_feasible_and_bounded_by_exact(g in arb_graph(10)) {
        let exact = BranchAndBound::new().solve(&g);
        for sol in [
            Greedy.solve(&g),
            TabuLocalSearch::new(60).solve(&g),
            QuboAnnealer::new(11).with_sweeps(120).solve(&g),
        ] {
            prop_assert!(g.is_clique(&sol.nodes));
            prop_assert!(sol.weight <= exact.weight + 1e-9);
            prop_assert!(sol.weight >= 0.0);
            prop_assert!((g.weight_of(&sol.nodes) - sol.weight).abs() < 1e-9);
        }
    }

    #[test]
    fn tabu_dominates_greedy(g in arb_graph(10)) {
        let greedy = Greedy.solve(&g);
        let tabu = TabuLocalSearch::new(80).solve(&g);
        prop_assert!(tabu.weight + 1e-9 >= greedy.weight);
    }

    #[test]
    fn solver_enum_routes_to_algorithms(g in arb_graph(8)) {
        let exact = Solver::Exact.solve(&g);
        let annealed = Solver::Annealing { seed: 5, sweeps: 100 }.solve(&g);
        prop_assert!(annealed.weight <= exact.weight + 1e-9);
    }

    #[test]
    fn selection_always_picks_one_per_group(
        sizes in prop::collection::vec(1usize..4, 1..5),
        costs in prop::collection::vec(-3.0f64..0.0, 16),
    ) {
        let groups: Vec<Vec<f64>> = sizes
            .iter()
            .enumerate()
            .map(|(g, &k)| (0..k).map(|i| costs[(g * 3 + i) % costs.len()]).collect())
            .collect();
        let inst = SelectionInstance::new(groups.clone());
        let sel = select_one_per_group(&inst, 64);
        prop_assert_eq!(sel.picks.len(), groups.len());
        for (g, &pick) in sel.picks.iter().enumerate() {
            prop_assert!(pick < groups[g].len());
        }
        // Cost equals the sum of picked node weights (no pair costs here).
        let expect: f64 = sel.picks.iter().enumerate().map(|(g, &i)| groups[g][i]).sum();
        prop_assert!((sel.cost - expect).abs() < 1e-9);
    }

    #[test]
    fn selection_exact_beats_or_ties_any_fixed_choice(
        seed in 0u64..1000,
    ) {
        // Construct a 3-group instance with pair costs from the seed.
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let groups = vec![vec![next(), next()], vec![next(), next()], vec![next()]];
        let mut inst = SelectionInstance::new(groups);
        for ga in 0..3usize {
            for gb in (ga + 1)..3 {
                inst.add_pair_cost((ga, 0), (gb, 0), next().min(0.0));
            }
        }
        let sel = select_one_per_group(&inst, 64);
        // Compare against the all-zeros and all-lasts fixed choices.
        for fixed in [[0usize, 0, 0], [1, 1, 0]] {
            let mut cost: f64 = fixed
                .iter()
                .enumerate()
                .map(|(g, &i)| inst.groups[g][i.min(inst.groups[g].len() - 1)])
                .sum();
            for &((ga, ia), (gb, ib), c) in &inst.pair_costs {
                let fa = fixed[ga].min(inst.groups[ga].len() - 1);
                let fb = fixed[gb].min(inst.groups[gb].len() - 1);
                if fa == ia && fb == ib {
                    cost += c;
                }
            }
            prop_assert!(sel.cost >= cost - 1e-9);
        }
    }
}
