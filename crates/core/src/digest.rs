//! Builds the longitudinal [`RunDigest`] record for one flow run.
//!
//! The flow itself stays digest-agnostic: callers that hold the
//! problem, the config, the [`RouteReport`] and an observability
//! session's [`ObsReport`] (the CLI's `--digest-out`, `bench_flow
//! --ledger`) assemble the digest here. See `pacor_obs::RunDigest` for
//! the schema and determinism contract.

use crate::{FlowConfig, Problem, RouteReport};
use pacor_obs::{
    fnv1a64, is_work_metric, span_tree, ClusterDigest, Fingerprint, HistogramSummary, ObsReport,
    Outcome, RunDigest, WallFacts,
};

/// A stable hash of the full problem instance. The `Problem` `Debug`
/// form spells out every field — geometry, valves, compatibility,
/// clusters, δ, pins, obstacles — so FNV-1a over it changes whenever
/// any routing input changes, without `pacor` needing a JSON encoder.
pub fn problem_hash(problem: &Problem) -> u64 {
    fnv1a64(format!("{problem:?}").as_bytes())
}

/// The deterministic `FlowConfig` fields as ordered (name, value)
/// pairs — exactly the knobs that change the routed result. The
/// equivalence axes (threads, negotiation mode, rip-up policy, escape
/// solver, routing mode and its tiling knobs, recorder knobs) are
/// excluded by design: they are recorded in the digest's `wall`
/// sub-object instead, so runs across those axes share a fingerprint
/// and diff cleanly against each other.
pub fn config_fingerprint(config: &FlowConfig) -> Vec<(String, String)> {
    let pair = |k: &str, v: String| (k.to_string(), v);
    vec![
        pair("variant", config.variant.label().to_string()),
        pair("lambda", format!("{}", config.lambda)),
        pair("gamma", format!("{}", config.gamma)),
        pair("history_base", format!("{}", config.history_base)),
        pair("history_alpha", format!("{}", config.history_alpha)),
        pair("theta", format!("{}", config.theta)),
        pair("max_ripup_rounds", format!("{}", config.max_ripup_rounds)),
        pair("max_candidates", format!("{}", config.max_candidates)),
        pair(
            "exact_selection_limit",
            format!("{}", config.exact_selection_limit),
        ),
        pair("detour_node_budget", format!("{}", config.detour_node_budget)),
    ]
}

/// Assembles the `pacor-rundigest-v1` record for one finished run from
/// the inputs, the routed result, and the observability session that
/// wrapped the run.
pub fn run_digest(
    problem: &Problem,
    config: &FlowConfig,
    report: &RouteReport,
    obs: &ObsReport,
) -> RunDigest {
    let fingerprint = Fingerprint {
        chip: problem.name.clone(),
        chip_hash: problem_hash(problem),
        config: config_fingerprint(config),
    };
    let outcome = Outcome {
        completion_milli: (report.completion_rate() * 1000.0).round() as u64,
        total_length: report.total_length,
        matched_clusters: report.matched_clusters as u64,
        matched_length: report.matched_length,
        clusters_multi: report.clusters_multi as u64,
        valves_routed: report.valves_routed as u64,
        valves_total: report.valves_total as u64,
        rounds: report.metrics.counter("negotiate.rounds"),
        ripups: report.metrics.counter("negotiate.ripups"),
        escape_rounds: report.escape_recovery.0 as u64,
        escape_declustered: report.escape_recovery.1 as u64,
        escape_ripped: report.escape_recovery.2 as u64,
    };
    let clusters = report
        .clusters
        .iter()
        .map(|c| ClusterDigest {
            size: c.size as u64,
            lm: c.length_constrained,
            complete: c.complete,
            matched: c.matched,
            length: c.total_length,
            mismatch: c.mismatch,
            slack: c.mismatch.map(|m| problem.delta as i64 - m as i64),
        })
        .collect();
    let mut counters = Vec::new();
    let mut work_counters = Vec::new();
    for (name, total) in obs.counters() {
        if is_work_metric(name) {
            work_counters.push((name.to_string(), total));
        } else {
            counters.push((name.to_string(), total));
        }
    }
    let mut histograms = Vec::new();
    let mut work_histograms = Vec::new();
    for (name, hist) in obs.histograms() {
        let summary = HistogramSummary::of(hist);
        if is_work_metric(name) {
            work_histograms.push((name.to_string(), summary));
        } else {
            histograms.push((name.to_string(), summary));
        }
    }
    RunDigest {
        fingerprint,
        outcome,
        clusters,
        counters,
        histograms,
        wall: WallFacts {
            threads: config.thread_count.max(1) as u64,
            mode: config.negotiation_mode.label().to_string(),
            policy: config.ripup_policy.label().to_string(),
            escape_solver: config.escape_solver.label().to_string(),
            routing: config.routing_mode.label().to_string(),
            // Quantized to the rendered precision (3 decimals) so a
            // digest re-parsed from disk compares equal to the
            // in-memory one.
            wall_ms: (report.runtime.as_secs_f64() * 1_000_000.0).round() / 1000.0,
            work_counters,
            work_histograms,
            spans: span_tree(obs.events()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BenchDesign, EscapeSolver, PacorFlow};

    #[test]
    fn digest_reflects_problem_config_and_outcome() {
        let problem = BenchDesign::S1.synthesize(42);
        let config = FlowConfig::default();
        let session = pacor_obs::Session::begin();
        let report = PacorFlow::new(config).run(&problem).expect("routes");
        let obs = session.finish();
        let digest = run_digest(&problem, &config, &report, &obs);

        assert_eq!(digest.fingerprint.chip, problem.name);
        assert_eq!(digest.fingerprint.chip_hash, problem_hash(&problem));
        assert_eq!(digest.outcome.completion_milli, 1000);
        assert_eq!(digest.outcome.total_length, report.total_length);
        assert_eq!(digest.clusters.len(), report.clusters.len());
        assert_eq!(
            digest.outcome.rounds,
            report.metrics.counter("negotiate.rounds")
        );
        // The counter split is clean: no work metric on the
        // deterministic side, and vice versa.
        assert!(digest.counters.iter().all(|(n, _)| !is_work_metric(n)));
        assert!(digest
            .wall
            .work_counters
            .iter()
            .all(|(n, _)| is_work_metric(n)));
        assert!(
            digest.counters.iter().any(|(n, _)| n == "negotiate.rounds"),
            "deterministic counters captured"
        );
        assert!(
            digest
                .wall
                .work_counters
                .iter()
                .any(|(n, _)| n.starts_with("astar.")),
            "work counters captured"
        );
        assert!(!digest.wall.spans.is_empty(), "span tree captured");
        // LM slack is measured against the problem's δ.
        let lm = digest
            .clusters
            .iter()
            .find(|c| c.lm && c.mismatch.is_some())
            .expect("S1 has an LM cluster");
        assert_eq!(
            lm.slack,
            lm.mismatch.map(|m| problem.delta as i64 - m as i64)
        );
        // And the document round-trips.
        let back = pacor_obs::RunDigest::from_json(&digest.to_json()).expect("parses");
        assert_eq!(back, digest);
    }

    #[test]
    fn problem_hash_tracks_every_input() {
        let a = BenchDesign::S1.synthesize(42);
        let b = BenchDesign::S1.synthesize(43);
        assert_ne!(problem_hash(&a), problem_hash(&b), "seed changes the hash");
        let mut c = a.clone();
        c.delta += 1;
        assert_ne!(problem_hash(&a), problem_hash(&c), "δ changes the hash");
        assert_eq!(problem_hash(&a), problem_hash(&a.clone()));
    }

    #[test]
    fn fingerprint_excludes_equivalence_axes() {
        let base = FlowConfig::default();
        let same = [
            base.with_threads(8),
            base.with_negotiation_mode(pacor_route::NegotiationMode::Parallel),
            base.with_ripup_policy(pacor_route::RipUpPolicy::Full),
            base.with_escape_solver(EscapeSolver::Reference),
            base.with_routing_mode(crate::RoutingMode::Hierarchical)
                .with_gcell_size(8),
        ];
        for cfg in same {
            assert_eq!(
                config_fingerprint(&base),
                config_fingerprint(&cfg),
                "equivalence axes must not move the fingerprint"
            );
        }
        let mut tuned = base;
        tuned.lambda = 0.5;
        assert_ne!(config_fingerprint(&base), config_fingerprint(&tuned));
    }
}
