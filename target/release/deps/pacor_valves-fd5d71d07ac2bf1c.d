/root/repo/target/release/deps/pacor_valves-fd5d71d07ac2bf1c.d: crates/valves/src/lib.rs crates/valves/src/addressing.rs crates/valves/src/cluster.rs crates/valves/src/compat.rs crates/valves/src/schedule.rs crates/valves/src/sequence.rs crates/valves/src/valve.rs

/root/repo/target/release/deps/libpacor_valves-fd5d71d07ac2bf1c.rlib: crates/valves/src/lib.rs crates/valves/src/addressing.rs crates/valves/src/cluster.rs crates/valves/src/compat.rs crates/valves/src/schedule.rs crates/valves/src/sequence.rs crates/valves/src/valve.rs

/root/repo/target/release/deps/libpacor_valves-fd5d71d07ac2bf1c.rmeta: crates/valves/src/lib.rs crates/valves/src/addressing.rs crates/valves/src/cluster.rs crates/valves/src/compat.rs crates/valves/src/schedule.rs crates/valves/src/sequence.rs crates/valves/src/valve.rs

crates/valves/src/lib.rs:
crates/valves/src/addressing.rs:
crates/valves/src/cluster.rs:
crates/valves/src/compat.rs:
crates/valves/src/schedule.rs:
crates/valves/src/sequence.rs:
crates/valves/src/valve.rs:
