//! Grid routers for the PACOR reproduction.
//!
//! Three routing engines, matching Sections 3, 4.3 and 6 of the paper:
//!
//! * [`AStar`] — A\* search over the routing grid with point-to-point,
//!   point-to-path and path-to-path modes (multi-source / multi-target),
//!   used by the MST-based cluster routing;
//! * [`NegotiationRouter`] — Algorithm 1: iterative rip-up & reroute of a
//!   set of tree edges with PathFinder-style history costs
//!   (`Ch ← b + α·Ch`, Eq. 5) that progressively discourage congested
//!   cells;
//! * [`BoundedAStar`] — the minimum-length *bounded* router of Section 6:
//!   returns a self-avoiding path whose length is at least a prescribed
//!   lower bound (and as close above it as the search can achieve), used
//!   to detour short full paths for length matching.
//!
//! # Examples
//!
//! ```
//! use pacor_grid::{Grid, ObsMap, Point};
//! use pacor_route::AStar;
//!
//! let grid = Grid::new(8, 8)?;
//! let obs = ObsMap::new(&grid);
//! let path = AStar::new(&obs)
//!     .point_to_point(Point::new(0, 0), Point::new(5, 3))
//!     .expect("open grid always routes");
//! assert_eq!(path.len(), 8);
//! # Ok::<(), pacor_grid::GridError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod astar;
mod bounded;
mod history;
mod negotiation;
mod parallel;

pub use astar::{AStar, AStarScratch};
pub use bounded::BoundedAStar;
pub use history::HistoryCost;
pub use negotiation::{
    NegotiationMode, NegotiationOutcome, NegotiationRouter, NetOrdering, RipUpPolicy, RouteRequest,
};
pub use parallel::{effective_threads, parallel_map, parallel_map_with};
