/root/repo/target/debug/deps/properties-9d90f0fd761f1c2f.d: crates/route/tests/properties.rs

/root/repo/target/debug/deps/properties-9d90f0fd761f1c2f: crates/route/tests/properties.rs

crates/route/tests/properties.rs:
