/root/repo/target/release/deps/pacor_grid-f26885014fa60972.d: crates/grid/src/lib.rs crates/grid/src/analysis.rs crates/grid/src/error.rs crates/grid/src/grid.rs crates/grid/src/obsmap.rs crates/grid/src/overlap.rs crates/grid/src/path.rs crates/grid/src/point.rs crates/grid/src/rect.rs crates/grid/src/rules.rs

/root/repo/target/release/deps/libpacor_grid-f26885014fa60972.rlib: crates/grid/src/lib.rs crates/grid/src/analysis.rs crates/grid/src/error.rs crates/grid/src/grid.rs crates/grid/src/obsmap.rs crates/grid/src/overlap.rs crates/grid/src/path.rs crates/grid/src/point.rs crates/grid/src/rect.rs crates/grid/src/rules.rs

/root/repo/target/release/deps/libpacor_grid-f26885014fa60972.rmeta: crates/grid/src/lib.rs crates/grid/src/analysis.rs crates/grid/src/error.rs crates/grid/src/grid.rs crates/grid/src/obsmap.rs crates/grid/src/overlap.rs crates/grid/src/path.rs crates/grid/src/point.rs crates/grid/src/rect.rs crates/grid/src/rules.rs

crates/grid/src/lib.rs:
crates/grid/src/analysis.rs:
crates/grid/src/error.rs:
crates/grid/src/grid.rs:
crates/grid/src/obsmap.rs:
crates/grid/src/overlap.rs:
crates/grid/src/path.rs:
crates/grid/src/point.rs:
crates/grid/src/rect.rs:
crates/grid/src/rules.rs:
