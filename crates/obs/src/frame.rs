//! Recording frames: the per-thread (and per-task) event buffers.

use crate::Histogram;
use std::collections::BTreeMap;

/// One recorded trace event, in Chrome trace-event vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A complete span (`ph: "X"`): a named interval with a duration.
    Span {
        /// Span name.
        name: &'static str,
        /// Start, µs since the process epoch.
        ts: u64,
        /// Duration in µs.
        dur: u64,
        /// Lane: 0 for the session thread, task index + 1 for task frames.
        tid: u32,
        /// Key/value arguments.
        args: Vec<(&'static str, u64)>,
    },
    /// An instant marker (`ph: "i"`).
    Instant {
        /// Event name.
        name: &'static str,
        /// Timestamp, µs since the process epoch.
        ts: u64,
        /// Lane (see [`TraceEvent::Span::tid`]).
        tid: u32,
        /// Key/value arguments.
        args: Vec<(&'static str, u64)>,
    },
    /// A counter-series sample (`ph: "C"`).
    Counter {
        /// Counter name.
        name: &'static str,
        /// Timestamp, µs since the process epoch.
        ts: u64,
        /// Lane (see [`TraceEvent::Span::tid`]).
        tid: u32,
        /// The counter's running total at `ts`.
        value: u64,
    },
}

/// An event buffer: counters, histograms and trace events recorded by
/// one session or one parallel task.
///
/// Frames are deliberately cheap to create (three empty collections) —
/// the data-parallel stages make one per work item.
#[derive(Debug, Clone, Default)]
pub struct Frame {
    tid: u32,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    events: Vec<TraceEvent>,
}

impl Frame {
    /// Creates an empty frame labelled with trace lane `tid`.
    pub(crate) fn new(tid: u32) -> Self {
        Self {
            tid,
            ..Self::default()
        }
    }

    pub(crate) fn tid(&self) -> u32 {
        self.tid
    }

    pub(crate) fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    pub(crate) fn counter(&self, name: &'static str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub(crate) fn record(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().observe(value);
    }

    pub(crate) fn push_event(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Merges `other` into `self`: counters add, histograms combine,
    /// events append in `other`'s recording order. Callers merging many
    /// task frames must do so in fixed task order to stay deterministic.
    pub(crate) fn merge(&mut self, other: Frame) {
        for (name, delta) in other.counters {
            *self.counters.entry(name).or_insert(0) += delta;
        }
        for (name, hist) in other.histograms {
            self.histograms.entry(name).or_default().merge(&hist);
        }
        self.events.extend(other.events);
    }

    pub(crate) fn into_parts(
        self,
    ) -> (
        BTreeMap<&'static str, u64>,
        BTreeMap<&'static str, Histogram>,
        Vec<TraceEvent>,
    ) {
        (self.counters, self.histograms, self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters_and_appends_events() {
        let mut a = Frame::new(0);
        a.counter_add("c", 1);
        a.push_event(TraceEvent::Instant {
            name: "first",
            ts: 1,
            tid: 0,
            args: vec![],
        });
        let mut b = Frame::new(1);
        b.counter_add("c", 2);
        b.counter_add("d", 5);
        b.record("h", 9);
        b.push_event(TraceEvent::Instant {
            name: "second",
            ts: 2,
            tid: 1,
            args: vec![],
        });
        a.merge(b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("d"), 5);
        assert_eq!(a.events.len(), 2);
        assert_eq!(a.histograms["h"].count(), 1);
    }
}
